// Ablation: batch-system allocation policy (Section 4.1.2: "batch
// system allocation policies (e.g., packed or scattered node layout)
// can play an important role for performance and need to be
// mentioned"). Compares ping-pong latency and simulated-HPL completion
// under packed vs scattered allocations of the same machine.
#include <cstdio>
#include <vector>

#include "hpl/sim_hpl.hpp"
#include "sim/machine.hpp"
#include "simmpi/comm.hpp"
#include "sim/task.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

namespace {

std::vector<double> pingpong_with_policy(const sim::Machine& machine,
                                         sim::AllocationPolicy policy,
                                         std::size_t samples, std::uint64_t seed) {
  std::vector<double> out;
  out.reserve(samples);
  simmpi::World world(machine, 2, seed, policy);
  world.launch_on(0, [&](simmpi::Comm& c) -> sim::Task<void> {
    for (std::size_t i = 0; i < samples + 16; ++i) {
      const double t0 = c.wtime();
      co_await c.send(1, 1, 64);
      (void)co_await c.recv(1, 2);
      if (i >= 16) out.push_back((c.wtime() - t0) / 2.0 * 1e6);
    }
  });
  world.launch_on(1, [&](simmpi::Comm& c) -> sim::Task<void> {
    for (std::size_t i = 0; i < samples + 16; ++i) {
      (void)co_await c.recv(0, 1);
      co_await c.send(0, 2, 64);
    }
  });
  world.run();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: packed vs scattered node allocation (Sec. 4.1.2) ===\n\n");
  const auto machine = sim::make_daint();

  // Many allocations per policy: the allocation itself is the factor.
  std::vector<double> packed_med, scattered_med;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    packed_med.push_back(stats::median(
        pingpong_with_policy(machine, sim::AllocationPolicy::kPacked, 500, seed)));
    scattered_med.push_back(stats::median(
        pingpong_with_policy(machine, sim::AllocationPolicy::kScattered, 500, seed)));
  }
  std::printf("64 B ping-pong median latency over 30 fresh allocations each:\n");
  std::printf("  packed:    median %.3f us  (min %.3f, max %.3f)\n",
              stats::median(packed_med), stats::min_value(packed_med),
              stats::max_value(packed_med));
  std::printf("  scattered: median %.3f us  (min %.3f, max %.3f)\n",
              stats::median(scattered_med), stats::min_value(scattered_med),
              stats::max_value(scattered_med));
  const std::vector<std::vector<double>> groups = {packed_med, scattered_med};
  const auto kw = stats::kruskal_wallis(groups);
  std::printf("  Kruskal-Wallis p = %.4g -> %s\n\n", kw.p_value,
              kw.reject(0.05) ? "allocation policy matters (report it!)"
                              : "no significant difference at this scale");

  std::printf("packed allocations keep both ranks in one dragonfly group (1-2\n");
  std::printf("hops); scattered ones usually cross groups (3 hops + optical).\n\n");

  // HPL under both policies: scattered spreads broadcast paths.
  hpl::SimHplConfig config;
  std::vector<double> t_scattered;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    t_scattered.push_back(hpl::simulate_hpl_run(machine, config, seed).completion_s);
  }
  std::printf("simulated HPL (64 nodes, N=314k), scattered allocations:\n");
  std::printf("  median %.1f s over 10 runs (Figure 1 uses this policy; packed\n",
              stats::median(t_scattered));
  std::printf("  allocations shorten broadcast paths but are rarely granted for\n");
  std::printf("  64-node jobs on a busy machine -- document what the batch system\n");
  std::printf("  actually gave you, per Rule 9)\n");
  return 0;
}
