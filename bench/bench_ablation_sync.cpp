// Ablation: how does the choice of start synchronization change what
// you measure? (Section 4.2.1: barriers "may be unreliable because
// neither MPI nor OpenMP provides timing guarantees"; the paper proposes
// the delay-window scheme instead.)
//
// Measures the same MPI_Reduce on the same simulated machine under
// three protocols -- window sync, barrier sync, and free-running -- and
// shows how the reported distribution shifts, including the measured
// start skew of each scheme.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

namespace {

enum class Sync { kWindow, kBarrier, kNone };

struct AblationResult {
  std::vector<double> reduce_us;    ///< per-iteration max across ranks
  std::vector<double> start_skew_us;  ///< true spread of iteration starts
};

AblationResult run(Sync sync, int ranks, std::size_t iterations) {
  simmpi::World world(sim::make_daint(), ranks, 77);
  AblationResult out;
  out.reduce_us.assign(iterations, 0.0);
  out.start_skew_us.assign(iterations, 0.0);
  std::vector<std::vector<double>> t_start(iterations,
                                           std::vector<double>(ranks, 0.0));
  std::vector<std::vector<double>> t_end(iterations, std::vector<double>(ranks, 0.0));

  world.launch([&, sync](simmpi::Comm& c) -> sim::Task<void> {
    for (std::size_t i = 0; i < out.reduce_us.size(); ++i) {
      switch (sync) {
        case Sync::kWindow: co_await simmpi::window_sync(c, 200e-6); break;
        case Sync::kBarrier: co_await simmpi::barrier(c); break;
        case Sync::kNone: break;
      }
      t_start[i][c.rank()] = c.world().engine().now();  // true time
      (void)co_await simmpi::reduce(c, 1.0, 0);
      t_end[i][c.rank()] = c.world().engine().now();
    }
  });
  world.run();

  for (std::size_t i = 0; i < out.reduce_us.size(); ++i) {
    const auto [s_lo, s_hi] = std::minmax_element(t_start[i].begin(), t_start[i].end());
    out.start_skew_us[i] = (*s_hi - *s_lo) * 1e6;
    const double end = *std::max_element(t_end[i].begin(), t_end[i].end());
    out.reduce_us[i] = (end - *s_lo) * 1e6;  // first start -> last finish
  }
  return out;
}

void report(const char* name, const AblationResult& r) {
  const auto b = stats::box_stats(r.reduce_us);
  std::printf("%-10s reduce: med %6.2f us  q1 %6.2f  q3 %6.2f  p99 %6.2f"
              "   start skew: med %6.2f us  max %7.2f\n",
              name, b.median, b.q1, b.q3, stats::quantile(r.reduce_us, 0.99),
              stats::median(r.start_skew_us), stats::max_value(r.start_skew_us));
}

}  // namespace

int main() {
  std::printf("=== Ablation: start-synchronization scheme (Section 4.2.1) ===\n");
  std::printf("1,000 MPI_Reduce measurements on 32 ranks of daint-sim per scheme\n\n");

  const auto window = run(Sync::kWindow, 32, 1000);
  const auto barrier = run(Sync::kBarrier, 32, 1000);
  const auto none = run(Sync::kNone, 32, 1000);

  report("window", window);
  report("barrier", barrier);
  report("none", none);

  std::printf("\nobservations:\n");
  std::printf(" - window sync compresses start skew to the clock-offset estimation\n");
  std::printf("   error; measured times then reflect the collective itself;\n");
  std::printf(" - a barrier leaves the skew of its own last-arrival wave in the\n");
  std::printf("   measurement (no timing guarantee, exactly the paper's caveat);\n");
  std::printf(" - free-running iterations pipeline into each other: the 'latency'\n");
  std::printf("   becomes a throughput artifact. Rule 10: report which scheme you used.\n\n");

  std::vector<core::NamedSeries> series = {{"window", window.reduce_us},
                                           {"barrier", barrier.reduce_us},
                                           {"none", none.reduce_us}};
  core::PlotOptions opts;
  opts.title = "reduce completion (first start -> last finish, us)";
  opts.x_label = "us";
  std::fputs(core::render_box(series, opts).c_str(), stdout);
  return 0;
}
