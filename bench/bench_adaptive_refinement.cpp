// Adaptive level refinement (Section 4.2 / SKaMPI): sweep ping-pong
// latency over message sizes, letting the refiner decide where to spend
// the measurement budget. It discovers the eager->rendezvous protocol
// step without being told where it is, inserting extra levels around
// the discontinuity and extra samples where variance is highest.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "core/refinement.hpp"
#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "simmpi/comm.hpp"

using namespace sci;

int main() {
  std::printf("=== Adaptive level refinement: latency vs message size ===\n");
  const auto machine = sim::make_dora();
  std::printf("machine: dora-sim, eager limit %zu B (the refiner does not know this)\n\n",
              machine.loggp.eager_threshold_bytes);

  // One persistent simulated world; each measurement is one ping-pong at
  // the requested size.
  simmpi::World world(machine, 2, 42);
  // Server rank: echo forever-ish (generous upper bound on requests).
  constexpr std::size_t kMaxRequests = 100000;
  world.launch_on(1, [&](simmpi::Comm& c) -> sim::Task<void> {
    for (std::size_t i = 0; i < kMaxRequests; ++i) {
      simmpi::Message m = co_await c.recv(0, simmpi::kAnyTag);
      if (m.tag == 0) co_return;  // shutdown
      co_await c.send(0, m.tag, m.bytes);
    }
  });

  // Client coroutine executes queued probes; measure_adaptive_levels
  // drives it synchronously through the engine.
  double pending_level = 0.0;
  double last_result_us = 0.0;
  auto probe = [&](double level) {
    pending_level = level;
    world.launch_on(0, [&](simmpi::Comm& c) -> sim::Task<void> {
      const auto bytes = static_cast<std::size_t>(pending_level);
      const double t0 = c.wtime();
      co_await c.send(1, 1, bytes);
      (void)co_await c.recv(1, 1);
      last_result_us = (c.wtime() - t0) / 2.0 * 1e6;
    });
    world.step();  // tolerate the parked echo server between probes
    return last_result_us;
  };

  core::RefinementOptions opts;
  opts.initial_samples = 12;
  opts.batch = 8;
  opts.total_budget = 800;
  opts.interpolation_tolerance = 0.08;
  std::vector<double> sizes = {64, 1024, 4096, 16384, 65536, 262144};
  const auto levels = core::measure_adaptive_levels(probe, sizes, opts);

  // Shut the echo server down.
  world.launch_on(0, [](simmpi::Comm& c) -> sim::Task<void> {
    co_await c.send(1, 0, 8);
  });
  world.run();

  std::printf("%10s %8s %10s %22s %9s\n", "bytes", "samples", "median", "95% CI (us)",
              "origin");
  core::XYSeries curve{"median latency", 'o', {}, {}};
  for (const auto& lvl : levels) {
    std::printf("%10.0f %8zu %9.2f  [%8.3f, %8.3f] %9s\n", lvl.level,
                lvl.samples.size(), lvl.median, lvl.ci.lower, lvl.ci.upper,
                lvl.inserted ? "inserted" : "initial");
    curve.x.push_back(std::log2(lvl.level));
    curve.y.push_back(lvl.median);
  }

  std::size_t inserted_near_limit = 0;
  for (const auto& lvl : levels) {
    if (lvl.inserted && lvl.level > 4096 && lvl.level < 262144) ++inserted_near_limit;
  }
  std::printf("\nlevels inserted around the (hidden) protocol switch: %zu\n",
              inserted_near_limit);
  std::printf("the refiner concentrates effort where the curve bends -- exactly the\n");
  std::printf("SKaMPI idea the paper cites for measuring \"levels where the\n");
  std::printf("uncertainty is highest\".\n\n");

  core::PlotOptions popts;
  popts.title = "median latency (us) vs log2(bytes)";
  popts.x_label = "log2(message bytes)";
  popts.height = 12;
  std::fputs(core::render_xy(std::vector<core::XYSeries>{curve}, popts).c_str(), stdout);
  return 0;
}
