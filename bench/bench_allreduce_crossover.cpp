// Collective algorithm crossover: recursive doubling (latency-optimal,
// log2 p full-vector exchanges) vs ring reduce-scatter/allgather
// (bandwidth-optimal, 2(p-1)/p of the vector total) as a function of
// payload size -- the switch every production MPI hides behind a
// tuning threshold. The methodology point: a paper reporting "allreduce
// takes X us" without the payload and algorithm documents nothing
// (Rule 9); the crossover moves with both the machine and p.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

namespace {

double median_allreduce_us(const sim::Machine& machine, int ranks, std::size_t doubles,
                           simmpi::AllreduceAlgo algo, std::uint64_t seed) {
  constexpr std::size_t kIters = 30;
  simmpi::World world(machine, ranks, seed);
  std::vector<double> times;
  world.launch([&](simmpi::Comm& c) -> sim::Task<void> {
    for (std::size_t i = 0; i < kIters; ++i) {
      co_await simmpi::window_sync(c, 200e-6);
      const double t0 = c.world().engine().now();
      std::vector<double> v(doubles, 1.0);
      (void)co_await simmpi::allreduce_v(c, std::move(v), simmpi::ReduceOp::kSum, algo);
      if (c.rank() == 0) times.push_back(c.world().engine().now() - t0);
    }
  });
  world.run();
  return stats::median(times) * 1e6;
}

}  // namespace

int main() {
  std::printf("=== Allreduce algorithm crossover (16 ranks, daint-sim) ===\n");
  std::printf("median of 30 window-synced calls; rank-0 observed completion\n\n");
  const auto machine = sim::make_daint();
  constexpr int kRanks = 16;

  std::printf("%12s %16s %12s %10s\n", "payload [B]", "rec-doubling[us]", "ring [us]",
              "winner");
  core::XYSeries rd{"doubling", 'd', {}, {}};
  core::XYSeries ring{"ring", 'r', {}, {}};
  double crossover_bytes = 0.0;
  bool ring_won_before = false;
  for (std::size_t doubles : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
    const double t_rd = median_allreduce_us(machine, kRanks, doubles,
                                            simmpi::AllreduceAlgo::kRecursiveDoubling,
                                            100 + doubles);
    const double t_ring = median_allreduce_us(machine, kRanks, doubles,
                                              simmpi::AllreduceAlgo::kRing,
                                              100 + doubles);
    const bool ring_wins = t_ring < t_rd;
    if (ring_wins && !ring_won_before) crossover_bytes = 8.0 * doubles;
    ring_won_before = ring_won_before || ring_wins;
    std::printf("%12zu %16.1f %12.1f %10s\n", 8 * doubles, t_rd, t_ring,
                ring_wins ? "ring" : "doubling");
    rd.x.push_back(std::log2(8.0 * doubles));
    rd.y.push_back(t_rd);
    ring.x.push_back(std::log2(8.0 * doubles));
    ring.y.push_back(t_ring);
  }
  std::printf("\nfirst payload where the ring wins here: ~%.0f B (kAuto switches\n",
              crossover_bytes);
  std::printf("at 256 KiB). On the noiseless machine the crossover sits near\n");
  std::printf("128 KiB; congestion hits the ring's 2(p-1) serialized steps harder\n");
  std::printf("than doubling's log2(p), pushing it out -- thresholds tuned on a\n");
  std::printf("quiet testbed mispredict production (Rules 9/11: document and model).\n\n");

  core::PlotOptions opts;
  opts.title = "median allreduce (us) vs log2(payload bytes), log y";
  opts.x_label = "log2(bytes)";
  opts.height = 12;
  std::fputs(core::render_xy(std::vector<core::XYSeries>{rd, ring}, opts,
                             /*log_y=*/true)
                 .c_str(),
             stdout);
  return 0;
}
