// System performance consistency over time, measured as the coefficient
// of variation (Section 3.1.2 cites Kramer & Ryan [34] and Skinner &
// Kramer [52]: the CoV "has been demonstrated as a good measure for the
// performance consistency of a system over longer periods of time").
//
// Methodology (as in [34]): run the same probe repeatedly over many
// "days" -- here, fresh batch allocations with fresh noise -- and track
// the within-window CoV and the drift of the window medians. A
// consistent system has low, stable CoV; an inconsistent one shows both
// higher CoV and wandering medians.
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

namespace {

struct ConsistencyResult {
  std::vector<double> window_cov;
  std::vector<double> window_median_us;
};

ConsistencyResult probe(const sim::Machine& machine, std::size_t windows,
                        std::size_t samples_per_window) {
  ConsistencyResult out;
  for (std::size_t w = 0; w < windows; ++w) {
    // Each window is a fresh allocation: new placement, new congestion.
    const auto s = simmpi::pingpong_latency(machine, samples_per_window, 64, 9000 + w);
    out.window_cov.push_back(stats::coefficient_of_variation(s));
    out.window_median_us.push_back(stats::median(s) * 1e6);
  }
  return out;
}

void report(const char* name, const ConsistencyResult& r) {
  const auto cov_box = stats::box_stats(r.window_cov);
  const auto med_box = stats::box_stats(r.window_median_us);
  std::printf("%-8s  CoV per window: med %.3f  [q1 %.3f, q3 %.3f, max %.3f]\n", name,
              cov_box.median, cov_box.q1, cov_box.q3, cov_box.max);
  std::printf("          window medians (us): %.3f .. %.3f (spread %.1f%%)\n",
              med_box.min, med_box.max,
              100.0 * (med_box.max - med_box.min) / med_box.min);
}

}  // namespace

int main() {
  std::printf("=== System consistency: CoV over repeated allocations ===\n");
  constexpr std::size_t kWindows = 24;
  constexpr std::size_t kSamples = 4000;
  std::printf("%zu windows x %zu 64 B ping-pong samples, fresh allocation each\n\n",
              kWindows, kSamples);

  const auto dora = probe(sim::make_dora(), kWindows, kSamples);
  const auto pilatus = probe(sim::make_pilatus(), kWindows, kSamples);

  report("dora", dora);
  report("pilatus", pilatus);

  const std::vector<std::vector<double>> groups = {dora.window_cov, pilatus.window_cov};
  const auto kw = stats::kruskal_wallis(groups);
  const bool dora_more_consistent =
      stats::median(dora.window_cov) < stats::median(pilatus.window_cov);
  std::printf("\nCoV comparison (Kruskal-Wallis): p = %.3g -> %s is the more\n",
              kw.p_value, dora_more_consistent ? "dora" : "pilatus");
  std::printf("consistent system (lower CoV). Procurements specify upper bounds\n");
  std::printf("on exactly this number (Section 3.1.2).\n\n");

  std::vector<core::NamedSeries> series = {{"dora CoV", dora.window_cov},
                                           {"pilatus CoV", pilatus.window_cov}};
  core::PlotOptions opts;
  opts.title = "per-window coefficient of variation";
  opts.x_label = "CoV";
  std::fputs(core::render_box(series, opts).c_str(), stdout);
  return 0;
}
