// CampaignRunner scaling benchmark: the acceptance experiment for the
// sci::exec parallel runner. A 4-machine x 4-size simulated ping-pong
// latency campaign (16 cells, 4000 samples each) runs with 1, 2, 4, and
// 8 workers; for each worker count we report wall-clock time, speedup
// over the single-worker run, and verify the determinism contract by
// comparing the exported per-sample CSV byte-for-byte against the
// 1-worker reference. The cache is disabled so every run executes all
// cells.
//
// Expected behaviour: near-linear speedup up to the host's core count
// (cells are independent simulator worlds with no shared state). On a
// single-core host every worker count collapses to ~1x -- the contract
// still holds (identical bytes), there is just no parallel hardware to
// exploit. Results for this repo's reference container are recorded in
// bench/RESULTS_exec_campaign.md.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "obs/bench_report.hpp"

using namespace sci;

namespace {

exec::Campaign make_campaign() {
  exec::CampaignSpec spec;
  spec.name = "exec_scaling_bench";
  spec.description = "4 systems x 4 message sizes, simulated ping-pong";
  spec.factors.push_back({"system", {"daint", "dora", "pilatus", "bgq"}});
  spec.factors.push_back({"message_bytes", {"64", "1024", "4096", "16384"}});
  spec.seed = 7;
  return exec::Campaign(spec);
}

std::string samples_csv(const exec::CampaignResult& result) {
  std::ostringstream os;
  result.samples_dataset().write_csv(os);
  return os.str();
}

exec::SimBackendOptions make_backend_options(std::size_t samples) {
  exec::SimBackendOptions bopts;
  bopts.kernel = exec::SimKernel::kPingPong;
  bopts.samples = samples;
  bopts.scale = 1e6;
  bopts.unit = "us";
  return bopts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
  }
  constexpr std::size_t kSamplesPerCell = 4000;

  std::printf("CampaignRunner scaling: 16 cells x %zu samples, cache off\n",
              kSamplesPerCell);
  std::printf("hardware_concurrency: %u\n\n", std::thread::hardware_concurrency());
  std::printf("%8s %12s %9s %12s\n", "workers", "wall [ms]", "speedup", "bytes-equal");

  obs::BenchReporter reporter("exec_campaign");
  std::string reference_csv;
  double reference_ms = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    exec::SimBackend backend(make_backend_options(kSamplesPerCell));
    exec::CampaignRunnerOptions ropts;
    ropts.workers = workers;
    ropts.use_cache = false;
    exec::CampaignRunner runner(backend, make_campaign(), ropts);

    const auto t0 = std::chrono::steady_clock::now();
    const exec::CampaignResult result = runner.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

    const std::string csv = samples_csv(result);
    bool equal = true;
    if (reference_csv.empty()) {
      reference_csv = csv;
      reference_ms = ms;
    } else {
      equal = csv == reference_csv;
    }
    std::printf("%8zu %12.1f %8.2fx %12s\n", workers, ms, reference_ms / ms,
                equal ? "yes" : "NO -- CONTRACT VIOLATED");
    if (!equal) return 1;
    const double sample[] = {ms};
    reporter.add_metric("wall_ms." + std::to_string(workers) + "w", "ms", sample);
  }
  if (!json_dir.empty()) {
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::fprintf(stderr, "could not write BENCH json into %s\n", json_dir.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
