// Sequential-stopping acceptance benchmark: fixed replication counts
// vs CI-driven sequential stopping at MATCHED target CI width, on a
// ping-pong campaign whose grid mixes quiet interconnects with a
// fault-injected straggler system -- the heterogeneity adaptive
// measurement control exists for (paper Sec. 4.1.2: stop when the CI is
// tight, not after a rep count chosen in advance).
//
// Part 1 runs the sequential campaign once (deterministic: stop
// decisions are pure functions of the sampled values) and derives the
// fixed-design comparator from it: a fixed campaign must provision
// EVERY config with the rep count its noisiest config needed, because
// the experimenter picks one replication number up front without
// knowing which cell is noisy. Both designs are then verified to reach
// the target CI width on every config, and the replication-savings
// ratio (fixed total reps / sequential total reps) is required to be
// >= 2x in the full run.
//
// Part 2 pins the determinism contract: sequential campaign sample CSVs
// are byte-equal across {1,2,4,8} workers.
//
// Part 3 is the wall-clock duel, dogfooding the library's rules (5/7):
// interleaved timed runs of both designs, medians + 95% nonparametric
// CIs, never a bare mean.
//
// `--smoke` trims the duel's timed runs for CI (invariants still
// asserted; the >= 2x savings target is evaluated in both modes since
// parts 1 and 2 are deterministic and identical across modes).
// `--json DIR` writes BENCH_exec_sequential.json via obs::BenchReporter
// for the performance-history pipeline.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "obs/bench_report.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

namespace {

bool g_smoke = false;
int g_failures = 0;
obs::BenchReporter* g_reporter = nullptr;  ///< set when --json DIR is given

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what);
    ++g_failures;
  }
}

struct Summary {
  double median = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Median + 95% nonparametric CI (order-statistic ranks) when n permits.
Summary summarize(const std::vector<double>& samples) {
  Summary s;
  const auto sorted = stats::sorted_copy(samples);
  s.median = stats::quantile_sorted(sorted, 0.5);
  if (sorted.size() > 5) {
    const auto ci = stats::quantile_confidence_interval_sorted(sorted, 0.5, 0.95);
    s.lo = ci.lower;
    s.hi = ci.upper;
  } else {
    s.lo = sorted.front();
    s.hi = sorted.back();
  }
  return s;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------- the campaign

constexpr double kTarget = 0.02;  ///< relative CI half-width target

// Same in both modes: parts [1] and [2] are deterministic (identical
// stop decisions either way), so smoke only trims the timed duel reps.
std::size_t samples_per_rep() { return 60; }

exec::SimBackend make_backend() {
  exec::SimBackendOptions options;
  options.kernel = exec::SimKernel::kPingPong;
  options.samples = samples_per_rep();
  options.warmup = 4;
  options.message_bytes = 64;
  options.scale = 1e6;
  options.unit = "us";
  return exec::SimBackend(options);
}

/// Grid: two quiet interconnects plus the fault-injected straggler
/// variant. The chaos config needs many replications to pin its median;
/// the quiet ones converge almost immediately -- exactly the imbalance
/// a fixed design cannot exploit.
exec::Campaign make_campaign(exec::StoppingPolicy stopping) {
  exec::CampaignSpec spec;
  spec.name = "seq_duel";
  spec.factors.push_back({"system", {"daint", "dora", "dora+chaos"}});
  spec.factors.push_back({"message_bytes", {"64", "4096"}});
  spec.seed = 0x5e9;
  spec.stopping = stopping;
  return exec::Campaign(spec);
}

exec::StoppingPolicy sequential_policy() {
  return exec::StoppingPolicy::sequential_ci(kTarget, /*min_reps=*/2,
                                             /*max_reps=*/96);
}

exec::CampaignResult run_campaign(exec::Backend& backend,
                                  const exec::Campaign& campaign,
                                  std::size_t workers) {
  exec::CampaignRunnerOptions options;
  options.workers = workers;
  options.use_cache = false;  // every cell must actually execute
  exec::CampaignRunner runner(backend, campaign, options);
  return runner.run();
}

/// Pooled relative CI half-width of the median for one config.
double achieved_width(const exec::CampaignResult& result, std::size_t config) {
  const std::vector<double> pooled = result.merged_series(config);
  const auto ci = stats::quantile_confidence_interval(pooled, 0.5, 0.95);
  const double center = stats::quantile(pooled, 0.5);
  return std::max(ci.upper - center, center - ci.lower) / center;
}

std::string samples_csv(const exec::CampaignResult& result) {
  std::ostringstream os;
  result.samples_dataset().write_csv(os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
  }
  obs::BenchReporter reporter("exec_sequential");
  reporter.set_context("mode", g_smoke ? "smoke" : "full");
  if (!json_dir.empty()) g_reporter = &reporter;
  std::printf("bench_exec_sequential (%s, %u hardware thread(s))\n",
              g_smoke ? "smoke" : "full", std::thread::hardware_concurrency());

  exec::SimBackend backend = make_backend();

  // ---- [1] replication budgets at matched CI width -------------------
  std::printf("\n[1] replication budgets at matched target (CI half-width <= %.0f%%)\n",
              kTarget * 100.0);
  const exec::Campaign seq_campaign = make_campaign(sequential_policy());
  const exec::CampaignResult seq = run_campaign(backend, seq_campaign, 2);
  check(seq.failed == 0, "sequential: no cell failed");

  std::size_t seq_total = 0;
  std::size_t worst_reps = 0;
  for (std::size_t c = 0; c < seq.config_count(); ++c) {
    const auto& info = seq.stopping[c];
    check(info.converged, "sequential: every config converged below the rep cap");
    seq_total += info.reps;
    worst_reps = std::max(worst_reps, info.reps);
    const std::string label = seq_campaign.config(c).level("system") + "/" +
                              seq_campaign.config(c).level("message_bytes") + "B";
    std::printf("  %-18s sequential stopped at %3zu reps (round %zu, CI +-%.2f%%)\n",
                label.c_str(), info.reps, info.stop_round,
                info.rel_ci_half_width * 100.0);
  }

  // The fixed design's honest comparator: one rep count chosen up
  // front must cover the noisiest cell, so every cell pays it.
  const exec::Campaign fixed_campaign =
      make_campaign(exec::StoppingPolicy::fixed(worst_reps));
  const exec::CampaignResult fixed = run_campaign(backend, fixed_campaign, 2);
  check(fixed.failed == 0, "fixed: no cell failed");
  const std::size_t fixed_total = fixed.cells.size();
  for (std::size_t c = 0; c < fixed.config_count(); ++c) {
    check(achieved_width(fixed, c) <= kTarget,
          "fixed comparator reaches the target width on every config");
    check(achieved_width(seq, c) <= kTarget,
          "sequential reaches the target width on every config");
  }

  const double savings =
      static_cast<double>(fixed_total) / static_cast<double>(seq_total);
  std::printf("  fixed-at-%zu total %zu reps vs sequential total %zu reps: "
              "%.2fx fewer replications\n",
              worst_reps, fixed_total, seq_total, savings);
  check(savings >= 2.0, ">= 2x fewer total replications at matched CI width");
  if (g_reporter != nullptr) {
    g_reporter->add_counter("sequential_total_reps", seq_total);
    g_reporter->add_counter("fixed_total_reps", fixed_total);
    g_reporter->add_counter("rounds", seq.rounds);
  }

  // ---- [2] determinism ----------------------------------------------
  std::printf("\n[2] determinism\n");
  const std::string reference = samples_csv(seq);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    exec::SimBackend fresh = make_backend();
    const exec::CampaignResult again =
        run_campaign(fresh, make_campaign(sequential_policy()), workers);
    char what[96];
    std::snprintf(what, sizeof what,
                  "sequential CSV bytes equal @%zu workers", workers);
    check(samples_csv(again) == reference, what);
  }
  std::printf("  sequential CSVs byte-equal across {1,2,4,8} workers\n");

  // ---- [3] wall-clock duel ------------------------------------------
  std::printf("\n[3] wall-clock duel (interleaved, %s)\n",
              g_smoke ? "3 timed runs" : "15 timed runs");
  const std::size_t reps = g_smoke ? 3 : 15;
  std::vector<double> fixed_s, seq_s;
  fixed_s.reserve(reps);
  seq_s.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    {
      exec::SimBackend b = make_backend();
      const double t0 = now_s();
      (void)run_campaign(b, fixed_campaign, 2);
      fixed_s.push_back(now_s() - t0);
    }
    {
      exec::SimBackend b = make_backend();
      const double t0 = now_s();
      (void)run_campaign(b, make_campaign(sequential_policy()), 2);
      seq_s.push_back(now_s() - t0);
    }
  }
  const Summary fs = summarize(fixed_s);
  const Summary ss = summarize(seq_s);
  std::printf("  fixed      %7.3f s [%7.3f, %7.3f]\n", fs.median, fs.lo, fs.hi);
  std::printf("  sequential %7.3f s [%7.3f, %7.3f]   speedup %.2fx\n", ss.median,
              ss.lo, ss.hi, fs.median / ss.median);
  if (!g_smoke) {
    // The duel's floor is deliberately below the replication savings:
    // sequential pays round barriers and per-round thread spawns.
    check(ss.median < fs.median, "sequential campaign is faster wall-clock");
  }
  if (g_reporter != nullptr) {
    g_reporter->add_metric("fixed.wall", "s", fixed_s, obs::Improve::kLower);
    g_reporter->add_metric("sequential.wall", "s", seq_s, obs::Improve::kLower);
  }

  if (g_reporter != nullptr) {
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::printf("FAILED: could not write BENCH json into %s\n", json_dir.c_str());
      ++g_failures;
    } else {
      std::printf("\nwrote %s\n", path.c_str());
    }
  }
  if (g_failures == 0) {
    std::printf("\nall checks passed\n");
    return 0;
  }
  std::printf("\n%d check(s) FAILED\n", g_failures);
  return 1;
}
