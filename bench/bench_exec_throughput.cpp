// Campaign-throughput acceptance benchmark for PR 4 (pooled coroutine
// frames + reusable worlds + per-worker backend contexts), dogfooding
// the library's own methodology (Rules 5/7: median + 95% nonparametric
// CI, never a bare mean of wall-clock times).
//
// Part 1 times a setup-dominated campaign -- small-message ping-pong
// with few samples, and a short reduce -- in two configurations,
// interleaved so drift hits both equally:
//   baseline   reuse_contexts=false + frame pooling disabled: every
//              replication builds a fresh World and heap-allocates
//              every coroutine frame (the pre-PR-4 execution path);
//   reuse      reuse_contexts=true + frame pooling enabled: per-worker
//              contexts World::reset() a warm world per replication.
// The reported metric is campaign throughput in replications/second.
//
// Part 2 pins the determinism contract the speedup must not buy at any
// price: campaign sample CSVs are byte-equal across 1/2/4/8 workers
// with reuse on, and equal to the unpooled no-reuse baseline CSV.
//
// Part 3 audits allocations: per-replication coro_frame_heap_allocs and
// callback_heap_spills must be zero from the second replication onward
// (runner audit fields), and a warmed payload-free replication must
// make exactly zero calls into the global allocator.
//
// `--smoke` shrinks sizes for CI: the invariants (byte-equal CSVs, zero
// allocations) are still asserted; the >= 2x throughput target is only
// evaluated in the full run and recorded in
// bench/RESULTS_exec_throughput.md.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "obs/bench_report.hpp"
#include "sim/frame_pool.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every allocator call in the process goes through
// here, so "zero allocations" is an observed fact, not a claim.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace sci;

namespace {

bool g_smoke = false;
int g_failures = 0;
obs::BenchReporter* g_reporter = nullptr;  ///< set when --json DIR is given

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what);
    ++g_failures;
  }
}

struct Summary {
  double median = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Median + 95% nonparametric CI (order-statistic ranks) when n permits.
Summary summarize(const std::vector<double>& samples) {
  Summary s;
  const auto sorted = stats::sorted_copy(samples);
  s.median = stats::quantile_sorted(sorted, 0.5);
  if (sorted.size() > 5) {
    const auto ci = stats::quantile_confidence_interval_sorted(sorted, 0.5, 0.95);
    s.lo = ci.lower;
    s.hi = ci.upper;
  } else {
    s.lo = sorted.front();
    s.hi = sorted.back();
  }
  return s;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pooling toggle for the calling thread AND threads created later
/// (campaign workers inherit the default).
void set_pooling(bool on) {
  sim::FramePool::set_default_enabled(on);
  sim::FramePool::local().set_enabled(on);
}

// ------------------------------------------------------- the campaigns

exec::SimBackendOptions pingpong_options() {
  exec::SimBackendOptions options;
  options.kernel = exec::SimKernel::kPingPong;
  options.samples = 8;  // few samples: setup-dominated
  options.warmup = 2;
  options.message_bytes = 8;
  return options;
}

exec::SimBackendOptions reduce_options() {
  exec::SimBackendOptions options;
  options.kernel = exec::SimKernel::kReduce;
  options.iterations = 3;  // short reduce
  options.ranks = 4;
  return options;
}

exec::Campaign make_campaign(std::size_t replications) {
  exec::CampaignSpec spec;
  spec.name = "throughput";
  spec.factors.push_back({"system", {"dora", "pilatus"}});
  spec.replications = replications;
  spec.seed = 0x7497e5;
  return exec::Campaign(spec);
}

/// One timed campaign run; returns replications/second.
double time_campaign(exec::Backend& backend, const exec::Campaign& campaign,
                     std::size_t workers, bool reuse) {
  exec::CampaignRunnerOptions options;
  options.workers = workers;
  options.use_cache = false;  // every cell must actually execute
  options.reuse_contexts = reuse;
  exec::CampaignRunner runner(backend, campaign, options);
  const double t0 = now_s();
  const exec::CampaignResult result = runner.run();
  const double dt = now_s() - t0;
  check(result.failed == 0, "no campaign cell failed");
  check(result.executed == campaign.cell_count(), "every cell executed");
  return static_cast<double>(campaign.cell_count()) / dt;
}

struct DuelOutcome {
  Summary baseline;
  Summary reuse;
};

DuelOutcome duel(const char* name, const char* slug, exec::Backend& backend,
                 std::size_t workers, std::size_t replications, std::size_t reps) {
  const exec::Campaign campaign = make_campaign(replications);
  std::vector<double> baseline_s, reuse_s;
  baseline_s.reserve(reps);
  reuse_s.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    set_pooling(false);
    baseline_s.push_back(time_campaign(backend, campaign, workers, /*reuse=*/false));
    set_pooling(true);
    reuse_s.push_back(time_campaign(backend, campaign, workers, /*reuse=*/true));
  }
  if (g_reporter != nullptr) {
    const std::string base = std::string(slug) + "." + std::to_string(workers) + "w";
    g_reporter->add_metric(base + ".baseline", "rep/s", baseline_s,
                           obs::Improve::kHigher);
    g_reporter->add_metric(base + ".reuse", "rep/s", reuse_s, obs::Improve::kHigher);
  }
  const DuelOutcome outcome{summarize(baseline_s), summarize(reuse_s)};
  const double speedup = outcome.reuse.median / outcome.baseline.median;
  std::printf(
      "  %-28s %4zu w  baseline %9.0f [%9.0f, %9.0f] rep/s   reuse %9.0f "
      "[%9.0f, %9.0f] rep/s   speedup %.2fx\n",
      name, workers, outcome.baseline.median, outcome.baseline.lo, outcome.baseline.hi,
      outcome.reuse.median, outcome.reuse.lo, outcome.reuse.hi, speedup);
  return outcome;
}

// -------------------------------------------------- determinism checks

std::string samples_csv(const exec::CampaignResult& result) {
  std::ostringstream os;
  result.samples_dataset().write_csv(os);
  return os.str();
}

std::string run_csv(exec::Backend& backend, const exec::Campaign& campaign,
                    std::size_t workers, bool reuse) {
  exec::CampaignRunnerOptions options;
  options.workers = workers;
  options.use_cache = false;
  options.reuse_contexts = reuse;
  exec::CampaignRunner runner(backend, campaign, options);
  return samples_csv(runner.run());
}

void determinism_checks(exec::Backend& backend, const char* label) {
  const exec::Campaign campaign = make_campaign(g_smoke ? 2 : 4);

  set_pooling(false);
  const std::string unpooled = run_csv(backend, campaign, 1, /*reuse=*/false);
  set_pooling(true);
  check(!unpooled.empty(), "baseline CSV is non-empty");

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    const std::string pooled = run_csv(backend, campaign, workers, /*reuse=*/true);
    char what[128];
    std::snprintf(what, sizeof what,
                  "%s CSV bytes equal: pooled+reuse @%zu workers vs unpooled baseline",
                  label, workers);
    check(pooled == unpooled, what);
  }
  std::printf("  %-12s CSVs byte-equal across {1,2,4,8} workers and vs unpooled\n",
              label);
}

// --------------------------------------------------- allocation audits

void audit_runner_counters(exec::Backend& backend, const char* label) {
  set_pooling(true);
  exec::CampaignSpec spec;
  spec.name = "audit";
  spec.replications = 6;
  exec::Campaign campaign{std::move(spec)};
  exec::CampaignRunnerOptions options;
  options.workers = 1;  // in-thread: replications execute in rep order
  options.use_cache = false;
  exec::CampaignRunner runner(backend, campaign, options);
  const exec::CampaignResult result = runner.run();
  std::uint64_t tail_frames = 0, tail_spills = 0;
  for (std::size_t rep = 1; rep < result.cells.size(); ++rep) {
    tail_frames += result.cells[rep].result.coro_frame_heap_allocs;
    tail_spills += result.cells[rep].result.callback_heap_spills;
  }
  char what[128];
  std::snprintf(what, sizeof what,
                "%s: zero coro-frame heap allocs after replication 1", label);
  check(tail_frames == 0, what);
  std::snprintf(what, sizeof what, "%s: zero callback heap spills after replication 1",
                label);
  check(tail_spills == 0, what);
  if (g_reporter != nullptr) {
    g_reporter->add_counter(std::string(label) + ".tail_coro_frame_heap_allocs",
                            tail_frames);
    g_reporter->add_counter(std::string(label) + ".tail_callback_heap_spills",
                            tail_spills);
  }
  std::printf("  %-12s audit: frames=%llu spills=%llu after rep 1 (rep 0: %llu frames)\n",
              label, static_cast<unsigned long long>(tail_frames),
              static_cast<unsigned long long>(tail_spills),
              static_cast<unsigned long long>(
                  result.cells[0].result.coro_frame_heap_allocs));
}

void audit_global_allocator() {
  set_pooling(true);
  // Payload-free replication: ping-pong messages carry no payload
  // vector, so a warmed replication must never enter the allocator.
  // (Reduce-family kernels still allocate one small payload per wire
  // message -- inherent to the data-carrying protocol, reported in the
  // audit fields, and out of scope for the strict zero here.)
  simmpi::PingPongBench bench(sim::make_dora(), 8, 4);
  for (std::uint64_t rep = 0; rep < 3; ++rep) (void)bench.run(24, rep);  // warm

  std::uint64_t allocs = 0;
  for (std::uint64_t rep = 3; rep < 8; ++rep) {
    const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
    (void)bench.run(24, rep);
    allocs += g_alloc_calls.load(std::memory_order_relaxed) - before;
  }
  check(allocs == 0, "zero allocator calls across 5 warmed ping-pong replications");
  std::printf("  global allocator calls across 5 warmed replications: %llu\n",
              static_cast<unsigned long long>(allocs));
  if (g_reporter != nullptr) {
    g_reporter->add_counter("global_alloc_calls_warmed_pingpong", allocs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
  }
  obs::BenchReporter reporter("exec_throughput");
  reporter.set_context("mode", g_smoke ? "smoke" : "full");
  if (!json_dir.empty()) g_reporter = &reporter;
  std::printf("bench_exec_throughput (%s, %u hardware thread(s))\n",
              g_smoke ? "smoke" : "full", std::thread::hardware_concurrency());
#if !SCIBENCH_POOLING
  std::printf("  note: built with SCIBENCH_POOLING=OFF; pooling stays off in every "
              "configuration\n");
#endif

  exec::SimBackend pingpong(pingpong_options());
  exec::SimBackend reduce(reduce_options());

  std::printf("\n[1] campaign throughput (replications/second)\n");
  // 128-cell campaigns per timed run: long enough to amortize runner
  // setup, short enough that the unpooled baseline's ~6k allocations
  // per run don't fragment the heap under the very contexts being
  // duelled (fresh worlds allocated into a churned heap measurably lose
  // locality -- an argument for the allocation-free path, but one that
  // belongs in RESULTS prose, not silently inside the timing).
  const std::size_t pp_replications = g_smoke ? 8 : 64;
  const std::size_t rd_replications = g_smoke ? 8 : 64;
  const std::size_t reps = g_smoke ? 3 : 25;
  const DuelOutcome pp1 =
      duel("pingpong 8B x8", "pingpong_8B", pingpong, 1, pp_replications, reps);
  const DuelOutcome pp4 =
      duel("pingpong 8B x8", "pingpong_8B", pingpong, 4, pp_replications, reps);
  const DuelOutcome rd1 =
      duel("reduce p4 x3", "reduce_p4", reduce, 1, rd_replications, reps);
  const DuelOutcome rd4 =
      duel("reduce p4 x3", "reduce_p4", reduce, 4, rd_replications, reps);

  std::printf("\n[2] determinism\n");
  determinism_checks(pingpong, "pingpong");
  determinism_checks(reduce, "reduce");

  std::printf("\n[3] allocation audit\n");
#if SCIBENCH_POOLING
  audit_runner_counters(pingpong, "pingpong");
  audit_global_allocator();
#else
  std::printf("  skipped (SCIBENCH_POOLING=OFF build)\n");
#endif

  if (!g_smoke) {
    // Acceptance: >= 2x median throughput with non-overlapping 95% CIs
    // on the setup-dominated campaign (ping-pong: its cells are mostly
    // world setup, the workload the reuse layers exist for).
    check(pp1.reuse.median >= 2.0 * pp1.baseline.median,
          "pingpong @1 worker: >= 2x median throughput");
    check(pp1.reuse.lo > pp1.baseline.hi,
          "pingpong @1 worker: 95% CIs do not overlap");
    // Reduce cells are simulation-dominated (the collective itself is
    // the bulk of a cell, identical in both configurations), so the
    // honest expectation is a faster median, not 2x.
    check(rd1.reuse.median > rd1.baseline.median, "reduce @1 worker: reuse faster");
    // The 4-worker duels time-slice on small hosts (Rule 4: report the
    // environment, don't gate on what it can't show); only hold them to
    // "not slower" when real parallelism exists.
    if (std::thread::hardware_concurrency() >= 4) {
      check(pp4.reuse.median > pp4.baseline.median,
            "pingpong @4 workers: reuse not slower");
      check(rd4.reuse.median > rd4.baseline.median,
            "reduce @4 workers: reuse not slower");
    } else {
      std::printf("  (4-worker gates skipped: %u hardware thread(s))\n",
                  std::thread::hardware_concurrency());
    }
  }

  set_pooling(SCIBENCH_POOLING != 0);
  if (g_reporter != nullptr) {
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::printf("FAILED: could not write BENCH json into %s\n", json_dir.c_str());
      ++g_failures;
    } else {
      std::printf("\nwrote %s\n", path.c_str());
    }
  }
  if (g_failures == 0) {
    std::printf("\nall checks passed\n");
    return 0;
  }
  std::printf("\n%d check(s) FAILED\n", g_failures);
  return 1;
}
