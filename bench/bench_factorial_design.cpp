// Factorial experimental design in action (Section 4: "We recommend
// factorial design to compare the influence of multiple factors").
//
// A 2^3 design over the simulated latency experiment:
//   A  system        dora (low)    vs pilatus (high)
//   B  message size  64 B (low)    vs 64 KiB (high, above the eager limit)
//   C  allocation    packed (low)  vs scattered (high)
// Response: median half-round-trip latency (us), r = 4 replicated
// measurement series per cell. The analysis quantifies main effects,
// interactions, and their statistical significance.
#include <cstdio>
#include <vector>

#include "sim/machine.hpp"
#include "sim/task.hpp"
#include "simmpi/comm.hpp"
#include "stats/descriptive.hpp"
#include "stats/factorial.hpp"

using namespace sci;

namespace {

double median_latency_us(const std::string& system, std::size_t bytes,
                         sim::AllocationPolicy policy, std::uint64_t seed) {
  const auto machine = sim::make_machine(system);
  simmpi::World world(machine, 2, seed, policy);
  std::vector<double> samples;
  constexpr std::size_t kN = 300;
  world.launch_on(0, [&](simmpi::Comm& c) -> sim::Task<void> {
    for (std::size_t i = 0; i < kN + 16; ++i) {
      const double t0 = c.wtime();
      co_await c.send(1, 1, bytes);
      (void)co_await c.recv(1, 2);
      if (i >= 16) samples.push_back((c.wtime() - t0) / 2.0 * 1e6);
    }
  });
  world.launch_on(1, [&, bytes](simmpi::Comm& c) -> sim::Task<void> {
    for (std::size_t i = 0; i < kN + 16; ++i) {
      (void)co_await c.recv(0, 1);
      co_await c.send(0, 2, bytes);
    }
  });
  world.run();
  return stats::median(samples);
}

}  // namespace

int main() {
  std::printf("=== 2^3 factorial design: what drives ping-pong latency? ===\n");
  std::printf("factors: A=system (dora/pilatus), B=bytes (64/65536),\n");
  std::printf("         C=allocation (packed/scattered); r=4 replicates\n\n");

  std::vector<stats::FactorialRun> runs;
  for (const auto& lv : stats::full_factorial_levels(3)) {
    const std::string system = lv[0] ? "pilatus" : "dora";
    const std::size_t bytes = lv[1] ? 65536 : 64;
    const auto policy =
        lv[2] ? sim::AllocationPolicy::kScattered : sim::AllocationPolicy::kPacked;
    std::vector<double> responses;
    for (std::uint64_t rep = 0; rep < 4; ++rep) {
      responses.push_back(median_latency_us(system, bytes, policy, 1000 + rep));
    }
    runs.push_back({lv, responses});
  }

  const auto fit = stats::analyze_factorial({"system", "bytes", "allocation"}, runs);
  std::fputs(fit.to_string().c_str(), stdout);

  std::printf("\nreading the table: B (message size) dominates -- 64 KiB pays the\n");
  std::printf("rendezvous handshake and the byte-transfer time; the AB interaction\n");
  std::printf("captures the systems' different large-message bandwidth. Factorial\n");
  std::printf("design quantifies all of this from %zu runs instead of a full sweep.\n",
              runs.size() * 4);

  std::printf("\nmodel check (predict vs measured, fresh seeds):\n");
  for (const auto& lv : stats::full_factorial_levels(3)) {
    const std::string system = lv[0] ? "pilatus" : "dora";
    const std::size_t bytes = lv[1] ? 65536 : 64;
    const auto policy =
        lv[2] ? sim::AllocationPolicy::kScattered : sim::AllocationPolicy::kPacked;
    const double measured = median_latency_us(system, bytes, policy, 9999);
    std::printf("  %-8s %6zu B %-9s  predicted %7.2f us  measured %7.2f us\n",
                system.c_str(), bytes, lv[2] ? "scattered" : "packed",
                fit.predict(lv), measured);
  }
  return 0;
}
