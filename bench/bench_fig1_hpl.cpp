// Reproduces Figure 1: distribution of completion times for 50 HPL runs
// on 64 nodes (N = 314k) of the simulated Piz Daint, with the exact
// annotation set the paper shows: min, max, median, arithmetic mean,
// 95% quantile, and the 99% CI of the median -- each also expressed as
// the Tflop/s rate the paper prints on the labels.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/plots.hpp"
#include "hpl/sim_hpl.hpp"
#include "obs/bench_report.hpp"
#include "sim/machine.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main(int argc, char** argv) {
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
  }
  const auto machine = sim::make_daint();
  hpl::SimHplConfig config;  // N = 314k, 64 nodes, fresh allocation per run
  const auto runs = hpl::simulate_hpl_series(machine, config, 50, 2015);

  std::vector<double> t;
  t.reserve(runs.size());
  for (const auto& r : runs) t.push_back(r.completion_s);
  const double flops = hpl::hpl_flops(config.n);
  const auto rate_tflops = [&](double seconds) { return flops / seconds / 1e12; };

  std::printf("=== Figure 1: 50 HPL runs, 64 nodes of daint-sim, N=314k ===\n");
  std::printf("theoretical peak: 94.50 Tflop/s\n\n");
  std::printf("%-22s %12s %14s   paper\n", "statistic", "time [s]", "rate [Tflop/s]");

  const double min_t = stats::min_value(t);
  const double max_t = stats::max_value(t);
  const double med = stats::median(t);
  const double mean = stats::arithmetic_mean(t);
  const double q95 = stats::quantile(t, 0.95);
  std::printf("%-22s %12.1f %14.2f   77.38 (Max rate)\n", "min time", min_t,
              rate_tflops(min_t));
  std::printf("%-22s %12.1f %14.2f   72.79 (95%% quantile)\n",
              "5% quantile time", stats::quantile(t, 0.05),
              rate_tflops(stats::quantile(t, 0.05)));
  std::printf("%-22s %12.1f %14.2f   69.92 (arith. mean)\n", "mean time", mean,
              rate_tflops(mean));
  std::printf("%-22s %12.1f %14.2f   65.23 (median)\n", "median time", med,
              rate_tflops(med));
  std::printf("%-22s %12.1f %14.2f   61.23 (Min rate)\n", "max time", max_t,
              rate_tflops(max_t));
  std::printf("%-22s %12.1f %14.2f\n", "95% quantile time", q95, rate_tflops(q95));

  const auto ci = stats::median_confidence_interval(t, 0.99);
  std::printf("\n99%% CI (median): [%.1f, %.1f] s  = [%.2f, %.2f] Tflop/s\n", ci.lower,
              ci.upper, rate_tflops(ci.upper), rate_tflops(ci.lower));
  std::printf("spread: slowest run is %.1f%% slower than the fastest "
              "(paper: \"variation is up to 20%%\")\n\n",
              100.0 * (max_t - min_t) / min_t);

  core::PlotOptions opts;
  opts.title = "completion-time density, 50 HPL runs";
  opts.x_label = "completion time (s)";
  std::fputs(core::render_density(t, opts).c_str(), stdout);

  std::printf("\nper-run detail (first 10): time[s] Tflop/s comm[s] energy[MJ] Gflop/W\n");
  for (std::size_t i = 0; i < 10; ++i) {
    std::printf("  run %2zu: %7.1f  %6.2f  %5.1f  %6.2f  %5.2f\n", i,
                runs[i].completion_s, runs[i].gflops / 1000.0, runs[i].comm_s,
                runs[i].energy_j / 1e6, runs[i].gflops_per_watt());
  }
  // Rule 3 in the energy dimension: summarize Joules (a cost) with the
  // arithmetic mean, and flop/W via totals, never by averaging rates.
  double total_j = 0.0;
  for (const auto& r : runs) total_j += r.energy_j;
  std::printf("\nenergy: mean %.2f MJ per run; aggregate efficiency %.2f Gflop/W\n",
              total_j / static_cast<double>(runs.size()) / 1e6,
              flops * static_cast<double>(runs.size()) / total_j / 1e9);

  if (!json_dir.empty()) {
    obs::BenchReporter reporter("fig1_hpl");
    reporter.add_metric("hpl_completion_s", "s", t);
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::fprintf(stderr, "could not write BENCH json into %s\n", json_dir.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
