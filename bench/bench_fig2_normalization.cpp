// Reproduces Figure 2: normalization of 1M ping-pong samples (64 B, on
// the simulated Piz Dora). Four variants -- (a) original, (b) log-
// normalized, (c) block means k=100, (d) block means k=1000 -- each with
// its Shapiro-Wilk verdict and Q-Q straightness, plus Q-Q panels.
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"
#include "stats/normalization.hpp"

using namespace sci;

namespace {

void report_variant(const char* name, const std::vector<double>& xs) {
  // Shapiro-Wilk caps at 5000; thin evenly as the library recommends.
  std::vector<double> test_data;
  if (xs.size() > 5000) {
    const std::size_t stride = xs.size() / 5000 + 1;
    for (std::size_t i = 0; i < xs.size(); i += stride) test_data.push_back(xs[i]);
  } else {
    test_data = xs;
  }
  const auto sw = stats::shapiro_wilk(test_data);
  const double rqq = stats::qq_correlation(test_data);
  std::printf("%-18s n=%8zu  SW W=%.4f p=%.4f  %-12s r(QQ)=%.4f\n", name, xs.size(),
              sw.statistic, sw.p_value, sw.reject(0.05) ? "NOT normal" : "normal-ish",
              rqq);
}

}  // namespace

int main() {
  const auto machine = sim::make_dora();
  std::printf("=== Figure 2: normalization of 1M ping-pong samples (dora-sim) ===\n");
  const auto samples = simmpi::pingpong_latency(machine, 1'000'000, 64, 1234);

  std::vector<double> us;
  us.reserve(samples.size());
  for (double s : samples) us.push_back(s * 1e6);

  const auto logged = stats::log_transform(us);
  const auto k100 = stats::block_means(us, 100);
  const auto k1000 = stats::block_means(us, 1000);

  std::printf("\n%-18s %10s  %-28s\n", "variant", "samples", "normality diagnostics");
  report_variant("(a) original", us);
  report_variant("(b) log", logged);
  report_variant("(c) norm k=100", k100);
  report_variant("(d) norm k=1000", k1000);

  std::printf("\npaper's qualitative result: raw data is right-skewed/multi-modal;\n");
  std::printf("log helps but block averaging (CLT) approaches normality as k grows.\n\n");

  core::PlotOptions d;
  d.title = "(a) original latency density";
  d.x_label = "latency (us)";
  std::fputs(core::render_density(us, d).c_str(), stdout);
  std::printf("\n");

  core::PlotOptions q;
  q.height = 10;
  q.title = "(a) Q-Q original";
  std::fputs(core::render_qq(us, q).c_str(), stdout);
  std::printf("\n");
  q.title = "(c) Q-Q block means k=100";
  std::fputs(core::render_qq(k100, q).c_str(), stdout);
  std::printf("\n");
  q.title = "(d) Q-Q block means k=1000";
  std::fputs(core::render_qq(k1000, q).c_str(), stdout);

  const std::vector<std::size_t> candidates = {10, 100, 1000};
  const std::size_t k = stats::find_normalizing_block_size(us, candidates);
  if (k > 0) {
    std::printf("\nsmallest normalizing block size among {10,100,1000}: k=%zu\n", k);
  } else {
    std::printf("\nno candidate block size normalized the data; "
                "use nonparametric statistics (the paper's recommendation)\n");
  }
  return 0;
}
