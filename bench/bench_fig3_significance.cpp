// Reproduces Figure 3: significance of 64 B latency results on two
// systems (simulated Piz Dora vs Pilatus). Prints min/max, arithmetic
// mean with 99% CI, median with 99% CI, density plots, and the
// Kruskal-Wallis verdict that the medians differ significantly even
// though the distributions overlap heavily.
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/exec_policy.hpp"
#include "stats/normality.hpp"

using namespace sci;

namespace {

std::vector<double> to_us(const std::vector<double>& xs) {
  std::vector<double> us;
  us.reserve(xs.size());
  for (double x : xs) us.push_back(x * 1e6);
  return us;
}

void report_system(const char* name, const std::vector<double>& us,
                   const stats::QuantileSummary& med) {
  const auto mean_ci = stats::mean_confidence_interval(us, 0.99);
  std::printf("%s:\n", name);
  std::printf("  min: %.2f us  max: %.2f us\n", stats::min_value(us), stats::max_value(us));
  std::printf("  arithmetic mean: %.3f us, 99%% CI(mean) [%.3f, %.3f] (normality NOT "
              "verified -> CI questionable, Rule 6)\n",
              stats::arithmetic_mean(us), mean_ci.lower, mean_ci.upper);
  std::printf("  median: %.3f us, 99%% CI(median) [%.3f, %.3f] (rank-based, sound)\n",
              med.value, med.ci.lower, med.ci.upper);
}

}  // namespace

int main() {
  std::printf("=== Figure 3: significance of latency results on two systems ===\n");
  std::printf("1M 64 B ping-pong samples per system\n\n");
  const auto dora = to_us(simmpi::pingpong_latency(sim::make_dora(), 1'000'000, 64, 99));
  const auto pilatus =
      to_us(simmpi::pingpong_latency(sim::make_pilatus(), 1'000'000, 64, 99));

  // Median + rank CI via the grouped engine entry point; the default
  // ExecPolicy{} keeps the bytes of the scalar median/CI pair while
  // letting multi-core runs raise threads in one place.
  const std::vector<std::vector<double>> systems = {dora, pilatus};
  const auto med = stats::grouped_quantile_summary(systems, 0.5, 0.99, stats::ExecPolicy{});

  report_system("Piz Dora (sim)   [paper: min 1.57, max 7.2, median ~1.75]", dora, med[0]);
  std::printf("\n");
  report_system("Pilatus (sim)    [paper: min 1.48, max 11.59, median ~1.85]", pilatus,
                med[1]);

  const auto kw = stats::kruskal_wallis(systems);
  std::printf("\nKruskal-Wallis: H=%.1f, p=%.3g -> medians differ %s at 95%% confidence\n",
              kw.statistic, kw.p_value,
              kw.reject(0.05) ? "SIGNIFICANTLY" : "not significantly");
  std::printf("(paper: significantly different medians even though many of the 1M\n");
  std::printf(" measurements overlap)\n\n");

  const double mean_diff =
      stats::arithmetic_mean(pilatus) - stats::arithmetic_mean(dora);
  std::printf("difference of means (pilatus - dora): %.3f us (paper: 0.108 us)\n\n",
              mean_diff);

  core::PlotOptions opts;
  opts.title = "Piz Dora (sim) latency density";
  opts.x_label = "time (us)";
  std::fputs(core::render_density(dora, opts).c_str(), stdout);
  std::printf("\n");
  opts.title = "Pilatus (sim) latency density";
  std::fputs(core::render_density(pilatus, opts).c_str(), stdout);
  return 0;
}
