// Reproduces Figure 4: quantile regression of 64 B latency comparing
// Pilatus against Piz Dora (the intercept/base system). For quantiles
// 0.1..0.9 it prints the Dora intercept and the Pilatus difference with
// bootstrap CIs, exposing the crossover the mean comparison hides: low
// percentiles are slower on Dora, high percentiles faster.
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile_regression.hpp"

using namespace sci;

int main() {
  std::printf("=== Figure 4: quantile regression, Pilatus vs Piz Dora (base) ===\n");
  constexpr std::size_t kSamples = 100'000;
  const auto dora = simmpi::pingpong_latency(sim::make_dora(), kSamples, 64, 4);
  const auto pilatus = simmpi::pingpong_latency(sim::make_pilatus(), kSamples, 64, 4);

  // Build the QR design on an even subsample: the dense two-phase
  // simplex is O(n^2) per pivot with ~n pivots, so ~500 points keeps the
  // whole sweep in seconds. The full series is used for the mean line.
  std::vector<double> y;
  std::vector<std::vector<double>> x;
  constexpr std::size_t kStride = kSamples / 250;
  for (std::size_t i = 0; i < kSamples; i += kStride) {
    y.push_back(dora[i] * 1e6);
    x.push_back({0.0});
    y.push_back(pilatus[i] * 1e6);
    x.push_back({1.0});
  }

  const std::vector<double> taus = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  const auto fits = stats::quantile_regression_sweep(y, x, taus);

  std::printf("\n%5s %18s %24s\n", "tau", "Dora (intercept)", "Pilatus - Dora [us]");
  std::vector<double> tau_axis, diff_axis, intercept_axis;
  for (const auto& fit : fits) {
    if (!fit.converged) {
      std::printf("%5.1f  (LP did not converge)\n", fit.tau);
      continue;
    }
    std::printf("%5.1f %15.3f us %21.3f\n", fit.tau, fit.coefficients[0],
                fit.coefficients[1]);
    tau_axis.push_back(fit.tau);
    intercept_axis.push_back(fit.coefficients[0]);
    diff_axis.push_back(fit.coefficients[1]);
  }

  // Mean difference line (the single number the QR plot is compared to).
  double mean_dora = 0.0, mean_pilatus = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    mean_dora += dora[i];
    mean_pilatus += pilatus[i];
  }
  const double mean_diff = (mean_pilatus - mean_dora) / kSamples * 1e6;
  std::printf("\ndifference of the means: %.3f us (paper: 0.108 us)\n", mean_diff);

  // Bootstrap CI at the extremes for the difference coefficient,
  // through the engine path: ExecPolicy{} ({1, 1}) keeps the historical
  // bytes, and multi-core runs raise threads/lanes in one place.
  for (double tau : {0.1, 0.9}) {
    const auto ci = stats::quantile_regression_bootstrap_ci(y, x, tau, 30, 0.95, 7,
                                                            stats::ExecPolicy{});
    std::printf("tau=%.1f: difference 95%% bootstrap CI [%.3f, %.3f] us\n", tau,
                ci.lower[1], ci.upper[1]);
  }

  std::printf("\npaper's observation: low percentiles significantly slower on Piz Dora\n");
  std::printf("(difference < 0) while high percentiles are faster (difference > 0);\n");
  std::printf("for bad-case latency-critical use Pilatus would win despite the means.\n\n");

  core::XYSeries diff{"Pilatus - Dora", 'o', tau_axis, diff_axis};
  core::XYSeries zero{"zero line", '-', {0.1, 0.5, 0.9}, {0.0, 0.0, 0.0}};
  core::PlotOptions opts;
  opts.title = "QR difference by quantile (us)";
  opts.x_label = "quantile";
  opts.height = 10;
  std::fputs(
      core::render_xy(std::vector<core::XYSeries>{diff, zero}, opts).c_str(),
      stdout);
  return 0;
}
