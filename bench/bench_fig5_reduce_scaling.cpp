// Reproduces Figure 5: 1,000 MPI_Reduce runs for each process count
// 2..64 on the simulated Piz Daint, summarized as the max across ranks
// (worst-case completion, Rule 10), split into the powers-of-two series
// and the others -- the powers of two are visibly faster.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/plots.hpp"
#include "obs/bench_report.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main(int argc, char** argv) {
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
  }
  obs::BenchReporter reporter("fig5_reduce_scaling");
  std::printf("=== Figure 5: MPI_Reduce completion time vs process count ===\n");
  std::printf("1,000 runs per count on daint-sim; summary: median of "
              "max-across-ranks, window-synchronized starts (Rule 10)\n\n");
  const auto machine = sim::make_daint();

  // The paper plots p = 2..64; simulate a representative sweep.
  const std::vector<int> counts = {2,  3,  4,  6,  8,  12, 16, 20, 24,
                                   28, 31, 32, 33, 40, 48, 56, 63, 64};
  constexpr std::size_t kIterations = 1000;

  core::XYSeries pow2{"powers of two", 'O', {}, {}};
  core::XYSeries others{"others", '*', {}, {}};

  std::printf("%5s %12s %22s %10s\n", "p", "median [us]", "99% CI(median) [us]", "class");
  for (int p : counts) {
    const auto bench = simmpi::reduce_bench(machine, p, kIterations, 500 + p);
    const auto maxes = bench.max_across_ranks();
    std::vector<double> us;
    us.reserve(maxes.size());
    for (double m : maxes) us.push_back(m * 1e6);
    const double med = stats::median(us);
    const auto ci = stats::median_confidence_interval(us, 0.99);
    const bool is_pow2 = (p & (p - 1)) == 0;
    std::printf("%5d %12.2f      [%6.2f, %6.2f] %10s\n", p, med, ci.lower, ci.upper,
                is_pow2 ? "2^k" : "other");
    (is_pow2 ? pow2 : others).x.push_back(p);
    (is_pow2 ? pow2 : others).y.push_back(med);
    // Only the powers of two feed the history: the "others" exist to
    // show the penalty, not to gate on.
    if (!json_dir.empty() && is_pow2) {
      reporter.add_metric("reduce_p" + std::to_string(p) + "_us", "us", us);
    }
  }

  std::printf("\npaper's observation: implementations perform better with 2^k\n");
  std::printf("processes; reporting only powers of two would hide the penalty.\n\n");

  core::PlotOptions opts;
  opts.title = "median reduce completion (us) vs processes";
  opts.x_label = "number of processes";
  opts.height = 12;
  std::fputs(core::render_xy(std::vector<core::XYSeries>{pow2, others}, opts).c_str(),
             stdout);
  if (!json_dir.empty()) {
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::fprintf(stderr, "could not write BENCH json into %s\n", json_dir.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
