// Reproduces Figure 6: variation across 64 processes in MPI_Reduce --
// 1,000 runs on the simulated Piz Daint, per-rank box statistics with
// 1.5 IQR whiskers, and the ANOVA across ranks the paper recommends
// before choosing a summary (Rule 10).
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main() {
  std::printf("=== Figure 6: variation across 64 processes in MPI_Reduce ===\n");
  std::printf("1,000 window-synchronized reductions on daint-sim\n\n");
  constexpr int kRanks = 64;
  const auto bench = simmpi::reduce_bench(sim::make_daint(), kRanks, 1000, 66);

  std::vector<std::vector<double>> groups;
  groups.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    std::vector<double> us;
    for (double v : bench.rank_series(r)) us.push_back(v * 1e6);
    groups.push_back(std::move(us));
  }

  std::printf("per-rank completion time [us] (every 8th rank shown):\n");
  std::printf("%5s %8s %8s %8s %8s %8s %9s\n", "rank", "whisk-", "q1", "median", "q3",
              "whisk+", "outliers");
  for (int r = 0; r < kRanks; r += 8) {
    const auto b = stats::box_stats(groups[static_cast<std::size_t>(r)]);
    std::printf("%5d %8.2f %8.2f %8.2f %8.2f %8.2f %6zu\n", r, b.whisker_low, b.q1,
                b.median, b.q3, b.whisker_high, b.outliers_low + b.outliers_high);
  }

  const auto anova = stats::one_way_anova(groups);
  std::printf("\nANOVA across ranks: F=%.1f (dof %0.f/%0.f), p=%.3g\n", anova.f_statistic,
              anova.dof_between, anova.dof_within, anova.p_value);
  std::printf("=> timings of different processes differ %s (paper: \"a significant\n",
              anova.reject(0.05) ? "SIGNIFICANTLY" : "not significantly");
  std::printf("   difference for some processes\"); a single cross-rank summary\n");
  std::printf("   needs justification -- report max or per-rank data instead.\n\n");

  // Box plot of a representative subset of ranks (terminal width).
  std::vector<core::NamedSeries> series;
  for (int r : {0, 1, 2, 4, 8, 16, 32, 63}) {
    series.push_back({"rank " + std::to_string(r), groups[static_cast<std::size_t>(r)]});
  }
  core::PlotOptions opts;
  opts.title = "per-rank reduce completion (us), whiskers = 1.5 IQR";
  opts.x_label = "completion time (us)";
  std::fputs(core::render_box(series, opts).c_str(), stdout);
  return 0;
}
