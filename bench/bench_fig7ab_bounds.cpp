// Reproduces Figure 7(a,b): strong scaling of the Pi-digits example
// against the three bound models of Section 5.1 -- ideal linear, serial
// overheads (Amdahl, b = 0.01), and parallel overheads.
//
// The paper's parallel-overheads model is an *empirical* piecewise fit
// for its machine: f(p<=8)=10 ns, f(8<p<=16)=0.1 ms log2 p,
// f(p>16)=0.17 ms log2 p ("the three pieces can be explained by Piz
// Daint's architecture"). We follow the same methodology on our
// simulated Piz Daint: fit c_i log2 p per segment to the measured
// residual over the Amdahl bound, then show that the resulting bound
// explains nearly all observed scaling -- the figure's headline point.
// Speedups follow Rule 1: base case and its absolute runtime stated.
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/bounds.hpp"
#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main() {
  std::printf("=== Figure 7(a,b): time and speedup bounds, Pi on daint-sim ===\n");
  const double base_s = 20e-3;         // paper: base case takes 20 ms
  const double serial_fraction = 0.01; // paper: 0.2 ms serial init -> b = 0.01
  std::printf("base case: parallel code on ONE process, %.0f ms absolute (Rule 1)\n\n",
              base_s * 1e3);

  const auto machine = sim::make_daint();
  const std::vector<int> counts = {1, 2, 4, 8, 12, 16, 20, 24, 28, 32};
  constexpr std::size_t kReps = 10;  // paper: repeated 10x, CI within 5% of mean

  // --- measure ------------------------------------------------------------
  std::vector<double> medians;
  for (int p : counts) {
    const auto times = simmpi::pi_scaling_run(machine, p, base_s, serial_fraction,
                                              kReps, 700 + p);
    medians.push_back(stats::median(times));
  }

  // --- fit the piecewise parallel-overheads model (paper methodology) -----
  const core::ScalingBounds amdahl_only(base_s, serial_fraction);
  auto fit_segment = [&](int lo, int hi) {
    double num = 0.0, den = 0.0;  // least squares of r(p) = c * log2 p
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const int p = counts[i];
      if (p <= lo || p > hi || p == 1) continue;
      const double log2p = std::log2(static_cast<double>(p));
      const double resid = medians[i] - amdahl_only.time_amdahl(p);
      num += resid * log2p;
      den += log2p * log2p;
    }
    return den > 0.0 ? std::max(0.0, num / den) : 0.0;
  };
  const double c1 = fit_segment(1, 8);
  const double c2 = fit_segment(8, 16);
  const double c3 = fit_segment(16, 1 << 30);
  auto fitted_overhead = [c1, c2, c3](int p) {
    const double log2p = std::log2(static_cast<double>(p));
    if (p <= 8) return c1 * log2p;
    if (p <= 16) return c2 * log2p;
    return c3 * log2p;
  };
  std::printf("fitted parallel-overheads model (us * log2 p per segment):\n");
  std::printf("  f(p<=8)    = %.1f us * log2 p   (paper machine: 10 ns flat)\n", c1 * 1e6);
  std::printf("  f(8<p<=16) = %.1f us * log2 p   (paper machine: 100 us * log2 p)\n",
              c2 * 1e6);
  std::printf("  f(p>16)    = %.1f us * log2 p   (paper machine: 170 us * log2 p)\n\n",
              c3 * 1e6);

  const core::ScalingBounds bounds(base_s, serial_fraction, fitted_overhead);

  // --- table + plots -------------------------------------------------------
  core::XYSeries measured_t{"measured", 'o', {}, {}};
  core::XYSeries ideal_t{"ideal", '.', {}, {}};
  core::XYSeries amdahl_t{"amdahl", '-', {}, {}};
  core::XYSeries overhead_t{"overheads", '=', {}, {}};
  core::XYSeries measured_s{"measured", 'o', {}, {}};
  core::XYSeries ideal_s{"ideal", '.', {}, {}};
  core::XYSeries amdahl_s{"amdahl", '-', {}, {}};
  core::XYSeries overhead_s{"overheads", '=', {}, {}};

  core::SpeedupReport speedup;
  speedup.base_case = core::BaseCase::kSingleParallelProcess;
  speedup.base_unit = "s";

  std::printf("%4s %12s %11s %11s %11s %9s %9s\n", "p", "measured[ms]", "ovhd-bnd",
              "amdahl-bnd", "ideal-bnd", "speedup", "expl.");
  const double measured_base = medians.front();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const int p = counts[i];
    const double med = medians[i];
    const double sp = measured_base / med;
    // "explained": fraction of the measured time accounted for by the
    // overhead-extended bound (1.0 = the bound explains everything).
    const double explained = bounds.time_with_overheads(p) / med;
    std::printf("%4d %12.3f %11.3f %11.3f %11.3f %9.2f %8.0f%%\n", p, med * 1e3,
                bounds.time_with_overheads(p) * 1e3, bounds.time_amdahl(p) * 1e3,
                bounds.time_ideal(p) * 1e3, sp, 100.0 * explained);
    measured_t.x.push_back(p);
    measured_t.y.push_back(med * 1e3);
    ideal_t.x.push_back(p);
    ideal_t.y.push_back(bounds.time_ideal(p) * 1e3);
    amdahl_t.x.push_back(p);
    amdahl_t.y.push_back(bounds.time_amdahl(p) * 1e3);
    overhead_t.x.push_back(p);
    overhead_t.y.push_back(bounds.time_with_overheads(p) * 1e3);
    measured_s.x.push_back(p);
    measured_s.y.push_back(sp);
    ideal_s.x.push_back(p);
    ideal_s.y.push_back(bounds.speedup_ideal(p));
    amdahl_s.x.push_back(p);
    amdahl_s.y.push_back(bounds.speedup_amdahl(p));
    overhead_s.x.push_back(p);
    overhead_s.y.push_back(bounds.speedup_with_overheads(p));
    speedup.processes.push_back(p);
    speedup.speedups.push_back(sp);
  }
  speedup.base_absolute = measured_base;

  std::printf("\npaper's observation: the parallel-overheads bound explains nearly\n");
  std::printf("all the scaling observed and provides the highest insight (Rule 11).\n\n");

  core::PlotOptions opts;
  opts.title = "(a) completion time (ms) vs processes";
  opts.x_label = "processes";
  opts.height = 12;
  std::fputs(core::render_xy(std::vector<core::XYSeries>{measured_t, ideal_t, amdahl_t,
                                                         overhead_t},
                             opts, /*log_y=*/true)
                 .c_str(),
             stdout);
  std::printf("\n");
  opts.title = "(b) speedup vs processes";
  std::fputs(core::render_xy(std::vector<core::XYSeries>{measured_s, ideal_s, amdahl_s,
                                                         overhead_s},
                             opts)
                 .c_str(),
             stdout);
  std::printf("\n%s", speedup.to_string().c_str());
  return 0;
}
