// Reproduces Figure 7(c): box plot, violin plot, and combined view of
// 10^6 64 B ping-pong latencies on the simulated Piz Dora, with the
// full annotation set: quartiles, 1.5 IQR whiskers, mean, median, and
// the 95% CI of the median.
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main() {
  std::printf("=== Figure 7(c): box and violin plots, 1M ping-pong on dora-sim ===\n");
  const auto samples = simmpi::pingpong_latency(sim::make_dora(), 1'000'000, 64, 7);
  std::vector<double> us;
  us.reserve(samples.size());
  for (double s : samples) us.push_back(s * 1e6);

  const auto b = stats::box_stats(us);
  const auto med_ci = stats::median_confidence_interval(us, 0.95);
  std::printf("\nannotations (us):\n");
  std::printf("  1st quartile  %.3f\n", b.q1);
  std::printf("  median        %.3f   95%% CI(median) [%.4f, %.4f]\n", b.median,
              med_ci.lower, med_ci.upper);
  std::printf("  mean          %.3f\n", b.mean);
  std::printf("  4th quartile  %.3f\n", b.q3);
  std::printf("  lower 1.5 IQR %.3f   higher 1.5 IQR %.3f\n", b.whisker_low,
              b.whisker_high);
  std::printf("  outliers beyond whiskers: %zu low, %zu high (of %zu)\n\n",
              b.outliers_low, b.outliers_high, b.n);

  std::vector<core::NamedSeries> series = {{"latency", us}};
  core::PlotOptions opts;
  opts.title = "box plot";
  opts.x_label = "latency (us)";
  std::fputs(core::render_box(series, opts).c_str(), stdout);
  std::printf("\n");
  opts.title = "violin plot (combined: quartile markers inside density)";
  std::fputs(core::render_violin(series, opts).c_str(), stdout);
  return 0;
}
