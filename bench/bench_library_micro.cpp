// google-benchmark microbenchmarks of the library itself: statistics
// kernels, the discrete-event engine, simulated collectives, and the
// real LU kernel. These characterize the measurement infrastructure's
// own costs -- the library must be cheap enough not to perturb what it
// measures (Section 4.2.1).
#include <benchmark/benchmark.h>

#include <vector>

#include "hpl/lu.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sim/machine.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"

namespace {

std::vector<double> lognormal_series(std::size_t n) {
  sci::rng::Xoshiro256 gen(42);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(sci::rng::lognormal(gen, 0.0, 1.0));
  return v;
}

void BM_OnlineMoments(benchmark::State& state) {
  const auto data = lognormal_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sci::stats::OnlineMoments om;
    for (double x : data) om.add(x);
    benchmark::DoNotOptimize(om.variance());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineMoments)->Range(1 << 10, 1 << 18);

void BM_MedianCi(benchmark::State& state) {
  const auto data = lognormal_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sci::stats::median_confidence_interval(data, 0.95));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MedianCi)->Range(1 << 10, 1 << 18);

void BM_ShapiroWilk(benchmark::State& state) {
  const auto data = lognormal_series(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sci::stats::shapiro_wilk(data));
  }
}
BENCHMARK(BM_ShapiroWilk)->Arg(100)->Arg(1000)->Arg(5000);

void BM_EnginePingPong(benchmark::State& state) {
  // Events per second of the discrete-event substrate.
  const auto machine = sci::sim::make_noiseless(4);
  for (auto _ : state) {
    sci::simmpi::World world(machine, 2, 1);
    constexpr int kIters = 1000;
    world.launch_on(0, [](sci::simmpi::Comm& c) -> sci::sim::Task<void> {
      for (int i = 0; i < kIters; ++i) {
        co_await c.send(1, 0, 64);
        (void)co_await c.recv(1, 1);
      }
    });
    world.launch_on(1, [](sci::simmpi::Comm& c) -> sci::sim::Task<void> {
      for (int i = 0; i < kIters; ++i) {
        (void)co_await c.recv(0, 0);
        co_await c.send(0, 1, 64);
      }
    });
    benchmark::DoNotOptimize(world.run());
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // messages
}
BENCHMARK(BM_EnginePingPong);

void BM_SimulatedAllreduce(benchmark::State& state) {
  const auto machine = sci::sim::make_daint();
  const int ranks = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sci::simmpi::World world(machine, ranks, ++seed);
    world.launch([](sci::simmpi::Comm& c) -> sci::sim::Task<void> {
      (void)co_await sci::simmpi::allreduce(c, 1.0);
    });
    benchmark::DoNotOptimize(world.run());
  }
}
BENCHMARK(BM_SimulatedAllreduce)->Arg(8)->Arg(64);

void BM_LuFactorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sci::hpl::Matrix a(n, n);
    std::vector<double> b;
    sci::hpl::fill_linear_system(a, b, 7);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sci::hpl::lu_factorize(a, 64));
  }
  state.counters["flop/s"] = benchmark::Counter(
      sci::hpl::lu_flop_count(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LuFactorize)->Arg(128)->Arg(256);

void BM_Xoshiro(benchmark::State& state) {
  sci::rng::Xoshiro256 gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_TraceUnattachedBranch(benchmark::State& state) {
  // The enabled-but-unattached cost of an instrumentation site: one
  // thread-local load and a not-taken branch (the disabled-path overhead
  // the tracing layer promises stays below timer resolution). Under
  // SCIBENCH_TRACING=OFF the macro vanishes and this measures an empty
  // loop.
  sci::obs::detach();
  for (auto _ : state) {
    SCI_TRACE_COMPLETE(0, "site", "bench", 0.0, 1.0, {{"k", 1}});
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceUnattachedBranch);

void BM_TraceAttachedAppend(benchmark::State& state) {
  // The attached cost: an in-memory vector append per event.
  sci::obs::TraceSink sink;
  sci::obs::ScopedAttach attach(sink);
  for (auto _ : state) {
    SCI_TRACE_COMPLETE(0, "site", "bench", 0.0, 1.0, {{"k", 1}});
    if (sink.size() > (1u << 20)) sink.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceAttachedAppend);

void BM_SimulatedAllreduceTraced(benchmark::State& state) {
  // Same workload as BM_SimulatedAllreduce with a sink attached: the
  // delta is the full tracing overhead of a simulated collective.
  const auto machine = sci::sim::make_daint();
  const int ranks = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sci::obs::TraceSink sink;
    sci::obs::ScopedAttach attach(sink);
    sci::simmpi::World world(machine, ranks, ++seed);
    world.launch([](sci::simmpi::Comm& c) -> sci::sim::Task<void> {
      (void)co_await sci::simmpi::allreduce(c, 1.0);
    });
    benchmark::DoNotOptimize(world.run());
    benchmark::DoNotOptimize(sink.size());
  }
}
BENCHMARK(BM_SimulatedAllreduceTraced)->Arg(8)->Arg(64);

}  // namespace
