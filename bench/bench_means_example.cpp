// Reproduces the worked example of Section 3.1.1 (Rules 3 & 4): an HPL
// benchmark needing 100 Gflop measured three times at (10, 100, 40) s,
// with a 10 Gflop/s peak -- showing which summaries mislead and which
// are correct.
#include <cstdio>
#include <vector>

#include "stats/summarize.hpp"

using namespace sci;

int main() {
  const std::vector<double> times = {10.0, 100.0, 40.0};
  const double total_flop = 100.0;  // Gflop
  const double peak = 10.0;         // Gflop/s

  const auto s = stats::hpl_example_summary(times, total_flop, peak);

  std::printf("=== Section 3.1.1 worked example: summarizing HPL runs ===\n");
  std::printf("runs: 100 Gflop in (10, 100, 40) s, peak 10 Gflop/s\n\n");
  std::printf("%-42s %8s   paper\n", "summary", "value");
  std::printf("%-42s %7.1fs   50s\n", "arithmetic mean of times (correct, Rule 3)",
              s.arithmetic_mean_time);
  std::printf("%-42s %7.1f    2 Gflop/s\n", "rate from mean time (correct)",
              s.rate_from_mean_time);
  std::printf("%-42s %7.1f    4.5 Gflop/s\n", "arithmetic mean of rates (WRONG)",
              s.arithmetic_mean_of_rates);
  std::printf("%-42s %7.1f    2 Gflop/s\n", "harmonic mean of rates (correct, Rule 3)",
              s.harmonic_mean_of_rates);
  std::printf("%-42s %7.2f    0.29 (-> misleading 2.9 Gflop/s)\n",
              "geometric mean of peak ratios (WRONG)", s.geometric_mean_of_ratios);

  std::printf("\nRule-typed summaries:\n");
  const auto cost = stats::summarize(stats::Cost{times, "s"});
  std::printf("  Cost{times}  -> %s = %.1f s\n", cost.method, cost.value);
  std::vector<double> rates;
  for (double t : times) rates.push_back(total_flop / t);
  const auto rate = stats::summarize(stats::Rate{rates, "Gflop/s"});
  std::printf("  Rate{rates}  -> %s = %.1f Gflop/s\n", rate.method, rate.value);
  std::vector<double> ratios;
  for (double r : rates) ratios.push_back(r / peak);
  const auto ratio = stats::summarize(stats::Ratio{ratios});
  std::printf("  Ratio{rel}   -> %s = %.2f\n", ratio.method, ratio.value);
  std::printf("  advisory: %s\n", ratio.advisory.c_str());
  return 0;
}
