// Noise propagation at scale: replays a BSP stencil skeleton under the
// machine's noise model and measures the slowdown relative to the
// noiseless execution, as a function of process count. This reproduces
// the qualitative result of Hoefler, Schneider & Lumsdaine (SC'10) --
// cited by the paper as [26] for why "noise can cause significant
// degradation of program execution": bulk-synchronous codes absorb the
// *maximum* per-step perturbation across ranks, so identical per-node
// noise hurts more at larger scale.
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "sim/machine.hpp"
#include "simmpi/replay.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main() {
  std::printf("=== Noise propagation in a BSP stencil (paper ref [26]) ===\n");
  constexpr int kSteps = 25;
  constexpr double kWorkS = 1e-3;       // 1 ms compute per step
  constexpr std::size_t kHalo = 4096;   // halo exchange size

  std::printf("skeleton: %d steps of (1 ms compute; ring halo exchange %zu B;\n",
              kSteps, kHalo);
  std::printf("allreduce), replayed on daint-sim vs a noiseless clone\n\n");

  std::printf("%6s %14s %16s %16s\n", "ranks", "noiseless [ms]", "daint slowdown",
              "bgq slowdown");
  core::XYSeries series{"daint", 'o', {}, {}};
  core::XYSeries series_bgq{"bgq", 'q', {}, {}};
  for (int ranks : {2, 4, 8, 16, 32, 64}) {
    const auto schedule = simmpi::make_stencil_skeleton(ranks, kSteps, kWorkS, kHalo);
    const double base =
        simmpi::replay(schedule, sim::make_noiseless(64), 1).completion_s();
    // Median over several noisy replays (fresh allocation + noise each).
    auto slowdown = [&](const sim::Machine& m) {
      std::vector<double> noisy;
      for (std::uint64_t seed = 0; seed < 9; ++seed) {
        noisy.push_back(simmpi::replay(schedule, m, seed).completion_s());
      }
      return stats::median(noisy) / base;
    };
    const double daint_slow = slowdown(sim::make_daint());
    const double bgq_slow = slowdown(sim::make_bgq());
    std::printf("%6d %14.2f %15.3fx %15.4fx\n", ranks, base * 1e3, daint_slow,
                bgq_slow);
    series.x.push_back(ranks);
    series.y.push_back(daint_slow);
    series_bgq.x.push_back(ranks);
    series_bgq.y.push_back(bgq_slow);
  }

  std::printf("\nthe slowdown grows with scale even though per-node noise is\n");
  std::printf("identical: each collective step absorbs the slowest rank's detours\n");
  std::printf("(max over p draws grows with p). Reporting single-node noise\n");
  std::printf("figures therefore systematically understates impact at scale.\n");
  std::printf("bgq-sim quantifies the 'Blue Gene is noise-free' assumption the\n");
  std::printf("paper warns about: quiet, but measurably not free.\n\n");

  core::PlotOptions opts;
  opts.title = "noisy/noiseless completion ratio vs ranks";
  opts.x_label = "ranks";
  opts.height = 10;
  std::fputs(
      core::render_xy(std::vector<core::XYSeries>{series, series_bgq}, opts).c_str(),
      stdout);
  return 0;
}
