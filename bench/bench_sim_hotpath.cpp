// Hot-path acceptance benchmark for the zero-allocation event engine
// and the selection-based bootstrap kernels, dogfooding the library's
// own methodology (Rules 5/7: median + 95% nonparametric CI, never a
// bare mean of wall-clock times).
//
// Part 1 pits sim::Engine (InlineCallback + chunked event arena +
// 4-ary key heap) against a faithful replica of the previous
// implementation (std::function + std::priority_queue, including its
// per-event trace check and queue high-water tracking) across three
// workload regimes: a thin self-rescheduling tick (pure dispatch
// overhead), a fat tick whose capture is message-sized (the capture
// class std::function always heap-allocates), and a deep churn with
// ~16k concurrent event chains (sift-dominated). Repetitions of the
// two engines are interleaved so drift hits both equally. Part 2 does
// the same for bootstrap_bca_ci of the median at n=1000 / B=10000,
// asserting the fast interval equals the callback-path interval bit
// for bit. Part 3 counts actual allocator calls (global operator new
// override) across a warmed steady-state dispatch loop and requires
// exactly zero, along with a zero delta on the
// engine.callback_heap_allocs obs counter.
//
// `--smoke` shrinks sizes for CI: invariants (bit-equality, zero
// allocations, identical event counts) are still asserted; the speedup
// targets are only evaluated in the full run and recorded in
// bench/RESULTS_sim_hotpath.md.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "sim/engine.hpp"
#include "stats/bootstrap.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every allocator call in the process goes through
// here, so "zero allocations" is an observed fact, not a claim. The
// override costs one relaxed atomic increment per call and applies to
// both engines equally; only the legacy engine allocates per event.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace sci;

namespace {

// ---------------------------------------------------------------------------
// The previous engine, replicated faithfully from before the arena
// rewrite: type-erased std::function callbacks (heap-allocated once the
// capture outgrows the library's tiny SBO), a std::priority_queue of
// whole events, and the same per-event trace check, high-water
// tracking, and once-per-run observability flush the real engine had.
// ---------------------------------------------------------------------------

class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  void schedule_at(double time, Callback fn) {
    if (time < now_) throw std::logic_error("LegacyEngine::schedule_at: time in the past");
    queue_.push(Event{time, next_seq_++, std::move(fn)});
    if (queue_.size() > queue_hwm_) queue_hwm_ = queue_.size();
  }
  void schedule_after(double delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  std::size_t run() {
    std::size_t processed = 0;
    const double run_start = now_;
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      SCI_TRACE_COUNTER(obs::kEngineTrack, "queue_depth", now_,
                        static_cast<double>(queue_.size()));
      ev.fn();
      ++processed;
    }
    dispatched_ += processed;
    if (processed != 0) {
      static obs::Counter& events = obs::counter(obs::keys::kEngineEvents);
      static obs::Counter& hwm = obs::counter(obs::keys::kEngineQueueHwm);
      events.add(processed);
      hwm.set_max(queue_hwm_);
      SCI_TRACE_COMPLETE(obs::kEngineTrack, "run", "engine", run_start, now_ - run_start,
                         {{"events", static_cast<double>(processed)}});
      SCI_TRACE_UNUSED(run_start);
    }
    return processed;
  }

  [[nodiscard]] double now() const noexcept { return now_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t queue_hwm_ = 0;
  std::uint64_t dispatched_ = 0;
};

// ---------------------------------------------------------------------------
// Workloads. Each returns the number of events dispatched.
// ---------------------------------------------------------------------------

/// Pure dispatch overhead: one self-rescheduling event, trivial capture.
template <typename EngineT>
struct ThinTick {
  EngineT& eng;
  std::size_t remaining;
  double acc = 0.0;

  std::size_t run() {
    eng.schedule_after(1e-6, [this] { tick(); });
    return eng.run();
  }
  void tick() {
    acc += 1.0;
    if (remaining-- > 0) eng.schedule_after(1e-6, [this] { tick(); });
  }
};

/// Message-shaped payload (48 bytes): with the bookkeeping pointers the
/// capture lands at 72 bytes -- exactly the capture size class simmpi's
/// delivery callbacks live in. std::function heap-allocates it every
/// event; InlineCallback (80-byte buffer) never does.
struct WirePayload {
  std::uint64_t seq = 0;
  double vals[5] = {};
};

/// Dispatch with a by-value message payload travelling on every event.
template <typename EngineT>
struct FatTick {
  EngineT* eng;
  std::size_t remaining;
  double* acc;
  WirePayload p;

  std::size_t run() {
    FatTick self = *this;
    eng->schedule_after(1e-6, [self]() mutable { self.step(); });
    return eng->run();
  }
  void step() {
    *acc += p.vals[0];
    if (remaining-- > 0) {
      FatTick next = *this;
      ++next.p.seq;
      eng->schedule_after(1e-6, [next]() mutable { next.step(); });
    }
  }
};

/// `chains` concurrent self-rescheduling chains at different cadences:
/// the pending set stays ~`chains` deep, so heap sifts dominate.
template <typename EngineT>
class Churn {
 public:
  Churn(std::size_t chains, std::size_t hops) : acc_(chains, 0.0), hops_(hops) {}

  std::size_t run(EngineT& eng) {
    for (std::size_t c = 0; c < acc_.size(); ++c) {
      WirePayload p;
      p.vals[0] = 1.0;
      hop(eng, c, hops_, p);
    }
    return eng.run();
  }

  [[nodiscard]] double checksum() const {
    double s = 0.0;
    for (double v : acc_) s += v;
    return s;
  }

 private:
  void hop(EngineT& eng, std::size_t chain, std::size_t remaining, WirePayload p) {
    const double dt = 1e-6 * static_cast<double>((chain % 7) + 1);
    eng.schedule_at(eng.now() + dt, [this, &eng, chain, remaining, p] {
      acc_[chain] += p.vals[0];
      if (remaining > 0) {
        WirePayload next = p;
        ++next.seq;
        hop(eng, chain, remaining - 1, next);
      }
    });
  }

  std::vector<double> acc_;
  std::size_t hops_;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Summary {
  double median = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Median + 95% nonparametric CI (order-statistic ranks) when n permits.
Summary summarize(const std::vector<double>& samples) {
  Summary s;
  const auto sorted = stats::sorted_copy(samples);
  s.median = stats::quantile_sorted(sorted, 0.5);
  if (sorted.size() > 5) {
    const auto ci = stats::quantile_confidence_interval_sorted(sorted, 0.5, 0.95);
    s.lo = ci.lower;
    s.hi = ci.upper;
  } else {
    s.lo = sorted.front();
    s.hi = sorted.back();
  }
  return s;
}

int g_failures = 0;
obs::BenchReporter* g_reporter = nullptr;  ///< set when --json DIR is given

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what);
    ++g_failures;
  }
}

// ---------------------------------------------------------------------------
// Part 1: events/sec, legacy vs arena engine, three regimes.
// ---------------------------------------------------------------------------

void report_pair(const char* workload, const char* slug,
                 const std::vector<double>& legacy_eps,
                 const std::vector<double>& arena_eps) {
  if (g_reporter != nullptr) {
    g_reporter->add_metric(std::string(slug) + ".legacy", "ev/s", legacy_eps,
                           obs::Improve::kHigher);
    g_reporter->add_metric(std::string(slug) + ".arena", "ev/s", arena_eps,
                           obs::Improve::kHigher);
  }
  const Summary legacy = summarize(legacy_eps);
  const Summary arena = summarize(arena_eps);
  std::printf("  %-28s legacy %6.2f Mev/s [%6.2f, %6.2f]   arena %6.2f Mev/s [%6.2f, %6.2f]"
              "   speedup %.2fx\n",
              workload, legacy.median / 1e6, legacy.lo / 1e6, legacy.hi / 1e6,
              arena.median / 1e6, arena.lo / 1e6, arena.hi / 1e6,
              arena.median / legacy.median);
}

/// Interleaves `reps` timed runs of a workload on each engine.
template <typename RunLegacy, typename RunArena>
void duel(const char* name, const char* slug, std::size_t reps,
          std::size_t expected_events, RunLegacy run_legacy, RunArena run_arena) {
  std::vector<double> legacy_eps, arena_eps;
  for (std::size_t r = 0; r < reps; ++r) {
    {
      const double t0 = now_seconds();
      const std::size_t processed = run_legacy();
      const double dt = now_seconds() - t0;
      check(processed == expected_events, "legacy engine processed every event");
      legacy_eps.push_back(static_cast<double>(processed) / dt);
    }
    {
      const double t0 = now_seconds();
      const std::size_t processed = run_arena();
      const double dt = now_seconds() - t0;
      check(processed == expected_events, "arena engine processed every event");
      arena_eps.push_back(static_cast<double>(processed) / dt);
    }
  }
  report_pair(name, slug, legacy_eps, arena_eps);
}

void bench_engine(bool smoke) {
  const std::size_t reps = smoke ? 3 : 9;
  std::printf("\n== engine micro-bench: median events/sec over %zu interleaved reps"
              " [95%% CI] ==\n", reps);

  const std::size_t ticks = smoke ? 20000 : 2000000;
  duel("thin tick (pure dispatch)", "thin_tick", reps, ticks + 1,
       [&] { LegacyEngine e; ThinTick<LegacyEngine> t{e, ticks}; return t.run(); },
       [&] { sim::Engine e; ThinTick<sim::Engine> t{e, ticks}; return t.run(); });

  duel("fat tick (72B capture)", "fat_tick", reps, ticks + 1,
       [&] {
         LegacyEngine e;
         double acc = 0.0;
         FatTick<LegacyEngine> t{&e, ticks, &acc, {}};
         return t.run();
       },
       [&] {
         sim::Engine e;
         double acc = 0.0;
         FatTick<sim::Engine> t{&e, ticks, &acc, {}};
         return t.run();
       });

  const std::size_t chains = smoke ? 256 : 16384;
  const std::size_t hops = smoke ? 7 : 11;
  double checksum_legacy = 0.0, checksum_arena = 0.0;
  duel("deep churn (16k chains)", "deep_churn", reps, chains * (hops + 1),
       [&] {
         LegacyEngine e;
         Churn<LegacyEngine> c(chains, hops);
         const std::size_t n = c.run(e);
         checksum_legacy = c.checksum();
         return n;
       },
       [&] {
         sim::Engine e;
         Churn<sim::Engine> c(chains, hops);
         const std::size_t n = c.run(e);
         checksum_arena = c.checksum();
         return n;
       });
  check(checksum_legacy == checksum_arena, "identical churn results across engines");
  std::printf("  (speedup target >= 3x on pure dispatch%s)\n",
              smoke ? "; smoke: not enforced" : "");
}

// ---------------------------------------------------------------------------
// Part 2: BCa bootstrap of the median, callback path vs selection path.
// ---------------------------------------------------------------------------

void bench_bootstrap(bool smoke) {
  const std::size_t n = smoke ? 200 : 1000;
  const std::size_t replicates = smoke ? 500 : 10000;
  const std::size_t reps = smoke ? 3 : 7;

  std::printf("\n== bootstrap_bca_ci(median): n=%zu, B=%zu, %zu reps ==\n", n, replicates,
              reps);

  rng::Xoshiro256 gen(0x5eed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng::lognormal(gen, 0.0, 0.5));

  const stats::Statistic generic_median = [](std::span<const double> s) {
    return stats::median(s);
  };
  const auto fast_median = stats::ResampleStat::median();

  std::vector<double> generic_s, fast_s;
  for (std::size_t r = 0; r < reps; ++r) {
    const std::uint64_t seed = 100 + r;
    double t0 = now_seconds();
    const auto slow_ci = stats::bootstrap_bca_ci(xs, generic_median, replicates, 0.95, seed);
    generic_s.push_back(now_seconds() - t0);

    t0 = now_seconds();
    const auto fast_ci = stats::bootstrap_bca_ci(xs, fast_median, replicates, 0.95, seed);
    fast_s.push_back(now_seconds() - t0);

    check(slow_ci.lower == fast_ci.lower && slow_ci.upper == fast_ci.upper,
          "fast BCa interval bit-identical to callback path");
  }

  auto to_ms = [](std::vector<double>& v) {
    for (double& x : v) x *= 1e3;
  };
  to_ms(generic_s);
  to_ms(fast_s);
  if (g_reporter != nullptr) {
    g_reporter->add_metric("bca_median.generic", "ms", generic_s);
    g_reporter->add_metric("bca_median.fast", "ms", fast_s);
  }
  const Summary generic = summarize(generic_s);
  const Summary fast = summarize(fast_s);
  std::printf("  generic (Statistic)    median %8.1f ms   95%% CI [%8.1f, %8.1f]\n",
              generic.median, generic.lo, generic.hi);
  std::printf("  fast (ResampleStat)    median %8.1f ms   95%% CI [%8.1f, %8.1f]\n",
              fast.median, fast.lo, fast.hi);
  std::printf("  speedup (median/median): %.2fx  (target >= 2x)%s\n",
              generic.median / fast.median, smoke ? "  [smoke: not enforced]" : "");
}

// ---------------------------------------------------------------------------
// Part 3: zero allocations in the warmed steady-state dispatch loop.
// ---------------------------------------------------------------------------

void bench_allocations(bool smoke) {
  const std::size_t chains = 32;
  const std::size_t hops = smoke ? 64 : 1024;

  std::printf("\n== steady-state allocation audit ==\n");

  sim::Engine eng;
  obs::Counter& spills = obs::counter(obs::keys::kEngineCallbackHeapAllocs);

  // Warmup batch: grows the arena chunks and the heap vector to their
  // high-water capacity and touches every lazy registry slot.
  {
    Churn<sim::Engine> warm(chains, hops);
    (void)warm.run(eng);
  }

  // Measured batch: same shape, warm pools. Every schedule reuses a
  // freed arena slot; every callback fits InlineCallback's buffer.
  Churn<sim::Engine> churn(chains, hops);
  const std::uint64_t spills_before = spills.value();
  const std::uint64_t allocs_before = g_alloc_calls.load(std::memory_order_relaxed);
  const std::size_t processed = churn.run(eng);
  const std::uint64_t allocs = g_alloc_calls.load(std::memory_order_relaxed) - allocs_before;
  const std::uint64_t spilled = spills.value() - spills_before;

  std::printf("  events dispatched: %zu\n", processed);
  std::printf("  operator new calls during steady state: %llu (target 0)\n",
              static_cast<unsigned long long>(allocs));
  std::printf("  engine.callback_heap_allocs delta: %llu (target 0)\n",
              static_cast<unsigned long long>(spilled));
  check(processed == chains * (hops + 1), "steady-state batch processed every event");
  check(allocs == 0, "zero allocator calls in steady-state dispatch");
  check(spilled == 0, "zero InlineCallback heap spills in steady state");
  if (g_reporter != nullptr) {
    g_reporter->add_counter("steady_state_alloc_calls", allocs);
    g_reporter->add_counter("steady_state_callback_heap_spills", spilled);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
  }
  obs::BenchReporter reporter("sim_hotpath");
  reporter.set_context("mode", smoke ? "smoke" : "full");
  if (!json_dir.empty()) g_reporter = &reporter;

  std::printf("sim hot-path benchmark (%s mode)\n", smoke ? "smoke" : "full");
  bench_engine(smoke);
  bench_bootstrap(smoke);
  bench_allocations(smoke);

  if (g_reporter != nullptr) {
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::printf("FAILED: could not write BENCH json into %s\n", json_dir.c_str());
      ++g_failures;
    } else {
      std::printf("\nwrote %s\n", path.c_str());
    }
  }
  if (g_failures != 0) {
    std::printf("\n%d invariant check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall invariants held (bit-equality, event counts, zero-allocation)\n");
  return 0;
}
