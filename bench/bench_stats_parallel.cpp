// Acceptance benchmark for the vectorized bootstrap stack (multi-lane
// xoshiro streams + branchless selection + thread-sharded lanes),
// dogfooding the library's methodology: medians with 95% nonparametric
// CIs, interleaved duels so drift hits every configuration equally.
//
// Part 1 times a fig7ab-style CI computation -- a batch of latency
// series, each needing a 1000-replicate bootstrap percentile CI -- in
// three configurations:
//   baseline     the legacy single-stream path (ExecPolicy{1,1},
//                draw-for-draw identical to the pre-engine code);
//   vectorized   one thread, 8 RNG lanes: batch index fills and 4-wide
//                accumulation waves, no parallelism;
//   parallel     hardware_concurrency threads x 8 lanes.
// The metric is bootstrap CIs per second. Two statistics are duelled
// because they stress different kernels: the mean (generation- and
// accumulation-bound -- where the in-core waves win single-threaded)
// and the median (selection-bound -- where lanes exist to be sharded
// across threads, and the single-thread delta is honestly ~1x).
//
// Part 2 pins what the speedup must not buy: distributions byte-equal
// across {1,2,4,8} threads at fixed lanes, and lanes=1 byte-equal to
// the legacy path.
//
// Part 3 audits the alloc-free steady state: a warmed engine's
// distribution() makes exactly zero calls into the global allocator.
//
// `--smoke` shrinks sizes for CI; determinism and allocation invariants
// are still asserted, timing gates only run in full mode (and the >=4x
// multi-core gate only arms when the host actually has >= 4 hardware
// threads -- Rule 4: report the environment, don't gate on what it
// cannot show).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/bootstrap.hpp"
#include "stats/bootstrap_engine.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram_select.hpp"
#include "stats/simd_dispatch.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: every allocator call in the process goes through
// here, so "zero allocations" is an observed fact, not a claim.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace sci;

namespace {

bool g_smoke = false;
int g_failures = 0;
obs::BenchReporter* g_reporter = nullptr;  ///< set when --json DIR is given

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what);
    ++g_failures;
  }
}

struct Summary {
  double median = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Median + 95% nonparametric CI (order-statistic ranks) when n permits.
Summary summarize(const std::vector<double>& samples) {
  Summary s;
  const auto sorted = stats::sorted_copy(samples);
  s.median = stats::quantile_sorted(sorted, 0.5);
  if (sorted.size() > 5) {
    const auto ci = stats::quantile_confidence_interval_sorted(sorted, 0.5, 0.95);
    s.lo = ci.lower;
    s.hi = ci.upper;
  } else {
    s.lo = sorted.front();
    s.hi = sorted.back();
  }
  return s;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The workload: right-skewed latency-like series, as in the fig7ab
/// bound studies.
std::vector<std::vector<double>> make_series(std::size_t count, std::size_t n) {
  std::vector<std::vector<double>> series(count);
  rng::Xoshiro256 gen(0xf16ab);
  for (auto& s : series) {
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) s.push_back(rng::lognormal(gen, 3.0, 0.5));
  }
  return series;
}

// ------------------------------------------------------------ the duel

struct Workload {
  std::vector<std::vector<double>> series;
  std::size_t replicates = 0;
};

/// Times one pass of "bootstrap-CI every series" through a warm
/// engine; returns CIs per second.
double time_pass(stats::BootstrapEngine& engine, const Workload& w,
                 const stats::ResampleStat& stat) {
  const double t0 = now_s();
  double sink = 0.0;
  for (std::size_t i = 0; i < w.series.size(); ++i) {
    const auto ci =
        engine.percentile_ci(w.series[i], stat, w.replicates, 0.95, 0xb00f + i);
    sink += ci.lower + ci.upper;
  }
  const double dt = now_s() - t0;
  check(sink != 0.0, "CI pass produced nonzero bounds");
  return static_cast<double>(w.series.size()) / dt;
}

struct DuelOutcome {
  Summary baseline;
  Summary vectorized;
  Summary parallel;
  std::size_t parallel_threads = 1;
};

DuelOutcome duel(const char* name, const char* slug, const stats::ResampleStat& stat,
                 const Workload& w, std::size_t reps) {
  const std::size_t hc = std::thread::hardware_concurrency();
  DuelOutcome outcome;
  outcome.parallel_threads = hc > 1 ? hc : 1;

  stats::BootstrapEngine baseline(stats::ExecPolicy{1, 1});
  stats::BootstrapEngine vectorized(stats::ExecPolicy{1, 8});
  stats::BootstrapEngine parallel(stats::ExecPolicy{outcome.parallel_threads, 8});

  std::vector<double> baseline_s, vectorized_s, parallel_s;
  // Warm-up pass per engine: size the scratch, fault the code.
  (void)time_pass(baseline, w, stat);
  (void)time_pass(vectorized, w, stat);
  (void)time_pass(parallel, w, stat);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    baseline_s.push_back(time_pass(baseline, w, stat));
    vectorized_s.push_back(time_pass(vectorized, w, stat));
    parallel_s.push_back(time_pass(parallel, w, stat));
  }
  if (g_reporter != nullptr) {
    const std::string base = slug;
    g_reporter->add_metric(base + ".baseline", "ci/s", baseline_s,
                           obs::Improve::kHigher);
    g_reporter->add_metric(base + ".vectorized", "ci/s", vectorized_s,
                           obs::Improve::kHigher);
    g_reporter->add_metric(base + ".parallel", "ci/s", parallel_s,
                           obs::Improve::kHigher);
  }
  outcome.baseline = summarize(baseline_s);
  outcome.vectorized = summarize(vectorized_s);
  outcome.parallel = summarize(parallel_s);
  std::printf("  %s\n", name);
  std::printf("    %-24s %8.1f [%8.1f, %8.1f] ci/s\n", "baseline {1t, 1 lane}",
              outcome.baseline.median, outcome.baseline.lo, outcome.baseline.hi);
  std::printf("    %-24s %8.1f [%8.1f, %8.1f] ci/s   %.2fx\n", "vectorized {1t, 8 lanes}",
              outcome.vectorized.median, outcome.vectorized.lo, outcome.vectorized.hi,
              outcome.vectorized.median / outcome.baseline.median);
  std::printf("    %-18s %2zut  %8.1f [%8.1f, %8.1f] ci/s   %.2fx\n",
              "parallel {8 lanes}", outcome.parallel_threads, outcome.parallel.median,
              outcome.parallel.lo, outcome.parallel.hi,
              outcome.parallel.median / outcome.baseline.median);
  return outcome;
}

// ------------------------------------- small-n duel: PR 8 vs histogram

struct SmallnOutcome {
  Summary partition;
  Summary histogram;
};

/// Interleaved duel on the small-n resample regime: the same vectorized
/// engine configuration {1t, 8 lanes} with the histogram path disabled
/// (crossover 0 == the PR 8 median kernel: partition selection) vs
/// always-on. The crossover is re-set around every pass, so both
/// configurations see identical drift.
SmallnOutcome smalln_median_duel(const Workload& w, std::size_t reps) {
  const stats::ResampleStat stat = stats::ResampleStat::median();
  const std::size_t saved = stats::histogram_select_crossover();
  constexpr std::size_t kAlways = static_cast<std::size_t>(-1);

  stats::BootstrapEngine partition_engine(stats::ExecPolicy{1, 8});
  stats::BootstrapEngine histogram_engine(stats::ExecPolicy{1, 8});
  stats::set_histogram_select_crossover(0);
  (void)time_pass(partition_engine, w, stat);
  stats::set_histogram_select_crossover(kAlways);
  (void)time_pass(histogram_engine, w, stat);

  std::vector<double> partition_s, histogram_s;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    stats::set_histogram_select_crossover(0);
    partition_s.push_back(time_pass(partition_engine, w, stat));
    stats::set_histogram_select_crossover(kAlways);
    histogram_s.push_back(time_pass(histogram_engine, w, stat));
  }
  stats::set_histogram_select_crossover(saved);

  if (g_reporter != nullptr) {
    g_reporter->add_metric("median_ci_smalln.partition", "ci/s", partition_s,
                           obs::Improve::kHigher);
    g_reporter->add_metric("median_ci_smalln.histogram", "ci/s", histogram_s,
                           obs::Improve::kHigher);
  }
  SmallnOutcome outcome;
  outcome.partition = summarize(partition_s);
  outcome.histogram = summarize(histogram_s);
  std::printf("  median CI, n=%zu, {1t, 8 lanes}, isa=%s\n", w.series.front().size(),
              to_string(stats::simd::active_isa()));
  std::printf("    %-24s %8.1f [%8.1f, %8.1f] ci/s\n", "partition (PR 8 kernel)",
              outcome.partition.median, outcome.partition.lo, outcome.partition.hi);
  std::printf("    %-24s %8.1f [%8.1f, %8.1f] ci/s   %.2fx\n", "histogram select",
              outcome.histogram.median, outcome.histogram.lo, outcome.histogram.hi,
              outcome.histogram.median / outcome.partition.median);
  return outcome;
}

// --------------------------------------------- BCa jackknife scaling

double time_bca_pass(stats::BootstrapEngine& engine, const Workload& w,
                     const stats::ResampleStat& stat) {
  const double t0 = now_s();
  double sink = 0.0;
  for (std::size_t i = 0; i < w.series.size(); ++i) {
    const auto ci = engine.bca_ci(w.series[i], stat, w.replicates, 0.95, 0xb00f + i);
    sink += ci.lower + ci.upper;
  }
  const double dt = now_s() - t0;
  check(sink != 0.0, "BCa pass produced nonzero bounds");
  return static_cast<double>(w.series.size()) / dt;
}

struct BcaOutcome {
  Summary serial;
  Summary parallel;
  std::size_t parallel_threads = 1;
};

/// BCa CI wall-clock: serial {1t} vs {hc t}. The mean's O(n^2)
/// jackknife is the dominant serial term this PR sharded across the
/// team, so the thread column is the one to watch.
BcaOutcome bca_duel(const Workload& w, std::size_t reps) {
  const std::size_t hc = std::thread::hardware_concurrency();
  BcaOutcome outcome;
  outcome.parallel_threads = hc > 1 ? hc : 1;
  const stats::ResampleStat stat = stats::ResampleStat::mean();

  stats::BootstrapEngine serial(stats::ExecPolicy{1, 8});
  stats::BootstrapEngine parallel(stats::ExecPolicy{outcome.parallel_threads, 8});
  (void)time_bca_pass(serial, w, stat);
  (void)time_bca_pass(parallel, w, stat);
  std::vector<double> serial_s, parallel_s;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    serial_s.push_back(time_bca_pass(serial, w, stat));
    parallel_s.push_back(time_bca_pass(parallel, w, stat));
  }
  if (g_reporter != nullptr) {
    g_reporter->add_metric("bca_mean_ci.serial", "ci/s", serial_s, obs::Improve::kHigher);
    g_reporter->add_metric("bca_mean_ci.parallel", "ci/s", parallel_s,
                           obs::Improve::kHigher);
  }
  outcome.serial = summarize(serial_s);
  outcome.parallel = summarize(parallel_s);
  std::printf("  BCa mean CI (jackknife n=%zu per series)\n", w.series.front().size());
  std::printf("    %-24s %8.1f [%8.1f, %8.1f] ci/s\n", "serial {1t, 8 lanes}",
              outcome.serial.median, outcome.serial.lo, outcome.serial.hi);
  std::printf("    %-18s %2zut  %8.1f [%8.1f, %8.1f] ci/s   %.2fx\n",
              "parallel {8 lanes}", outcome.parallel_threads, outcome.parallel.median,
              outcome.parallel.lo, outcome.parallel.hi,
              outcome.parallel.median / outcome.serial.median);
  return outcome;
}

// ------------------------------------------------- crossover sweep

/// Measures the histogram/partition crossover: per sample size n, the
/// median-CI replicate throughput of each kernel, interleaved. This is
/// how the kDefaultCrossover in histogram_select.cpp was chosen (table
/// in DESIGN.md); rerun with --crossover on new hardware.
void crossover_sweep(std::size_t reps) {
  const stats::ResampleStat stat = stats::ResampleStat::median();
  const std::size_t saved = stats::histogram_select_crossover();
  constexpr std::size_t kAlways = static_cast<std::size_t>(-1);
  std::printf("  isa=%s; replicates/s per kernel (median of %zu interleaved reps)\n",
              to_string(stats::simd::active_isa()), reps);
  std::printf("    %8s %14s %14s %8s\n", "n", "partition", "histogram", "ratio");
  for (const std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
    Workload w;
    w.series = make_series(4, n);
    // Keep the per-cell draw count roughly constant so each pass stays
    // around a few milliseconds at every n.
    w.replicates = std::max<std::size_t>(200'000 / n, 50);
    stats::BootstrapEngine partition_engine(stats::ExecPolicy{1, 8});
    stats::BootstrapEngine histogram_engine(stats::ExecPolicy{1, 8});
    stats::set_histogram_select_crossover(0);
    (void)time_pass(partition_engine, w, stat);
    stats::set_histogram_select_crossover(kAlways);
    (void)time_pass(histogram_engine, w, stat);
    std::vector<double> partition_s, histogram_s;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      stats::set_histogram_select_crossover(0);
      partition_s.push_back(time_pass(partition_engine, w, stat));
      stats::set_histogram_select_crossover(kAlways);
      histogram_s.push_back(time_pass(histogram_engine, w, stat));
    }
    const double part = summarize(partition_s).median * static_cast<double>(w.replicates);
    const double hist = summarize(histogram_s).median * static_cast<double>(w.replicates);
    std::printf("    %8zu %14.0f %14.0f %7.2fx\n", n, part, hist, hist / part);
  }
  stats::set_histogram_select_crossover(saved);
}

// -------------------------------------------------- determinism checks

void determinism_checks(const Workload& w) {
  const stats::ResampleStat stat = stats::ResampleStat::median();
  const auto& xs = w.series.front();

  // Thread count never changes the answer at fixed lanes.
  std::vector<double> want;
  stats::BootstrapEngine reference(stats::ExecPolicy{1, 8});
  reference.distribution(xs, stat, w.replicates, 0xb00f, want);
  for (std::size_t threads : {2u, 4u, 8u}) {
    stats::BootstrapEngine engine(stats::ExecPolicy{threads, 8});
    std::vector<double> got;
    engine.distribution(xs, stat, w.replicates, 0xb00f, got);
    char what[96];
    std::snprintf(what, sizeof what,
                  "distribution byte-equal: %zu threads vs 1 thread (8 lanes)", threads);
    check(got == want, what);
  }

  // lanes = 1 reproduces the legacy single-stream path exactly.
  const auto legacy = stats::bootstrap_distribution(xs, stat, w.replicates, 0xb00f);
  stats::BootstrapEngine single(stats::ExecPolicy{4, 1});
  std::vector<double> got;
  single.distribution(xs, stat, w.replicates, 0xb00f, got);
  check(got == legacy, "distribution byte-equal: engine {4t, 1 lane} vs legacy path");

  // ISA never changes bytes: {scalar, SIMD} x {1,4,8} threads must all
  // produce one distribution and one BCa interval. On hosts without
  // AVX2 both tables are scalar and the check is trivially green --
  // which is itself the fallback contract.
  std::vector<double> isa_want;
  stats::Interval bca_want{0.0, 0.0, 0.0};
  bool first = true;
  const char* auto_label = "scalar";
  for (const bool force_scalar : {true, false}) {
    if (force_scalar) {
      stats::simd::force_isa(stats::simd::Isa::kScalar);
    } else {
      stats::simd::reset_isa();
      auto_label = to_string(stats::simd::active_isa());
    }
    for (const std::size_t threads : {1u, 4u, 8u}) {
      stats::BootstrapEngine engine(stats::ExecPolicy{threads, 8});
      std::vector<double> dist;
      engine.distribution(xs, stat, w.replicates, 0xb00f, dist);
      const auto bca = engine.bca_ci(xs, stat, w.replicates, 0.95, 0xb00f);
      if (first) {
        isa_want = std::move(dist);
        bca_want = bca;
        first = false;
        continue;
      }
      char what[96];
      std::snprintf(what, sizeof what, "distribution byte-equal: isa=%s, %zu threads",
                    to_string(stats::simd::active_isa()), threads);
      check(dist == isa_want, what);
      std::snprintf(what, sizeof what, "BCa interval byte-equal: isa=%s, %zu threads",
                    to_string(stats::simd::active_isa()), threads);
      check(bca.lower == bca_want.lower && bca.upper == bca_want.upper, what);
    }
  }
  stats::simd::reset_isa();
  std::printf(
      "  distributions byte-equal across {1,2,4,8} threads; lanes=1 == legacy path\n");
  std::printf(
      "  distribution + BCa byte-equal across {scalar, %s} x {1,4,8} threads\n",
      auto_label);
}

// --------------------------------------------------- allocation audit

void audit_global_allocator(const Workload& w) {
  const stats::ResampleStat stat = stats::ResampleStat::median();
  const auto& xs = w.series.front();
  stats::BootstrapEngine engine(stats::ExecPolicy{1, 8});
  std::vector<double> out;
  engine.distribution(xs, stat, w.replicates, 1, out);  // warm: size the scratch

  std::uint64_t allocs = 0;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
    engine.distribution(xs, stat, w.replicates, 1 + rep, out);
    allocs += g_alloc_calls.load(std::memory_order_relaxed) - before;
  }
  check(allocs == 0, "zero allocator calls across 5 warmed distribution() invocations");
  std::printf("  global allocator calls across 5 warmed invocations: %llu\n",
              static_cast<unsigned long long>(allocs));
  if (g_reporter != nullptr) {
    g_reporter->add_counter("global_alloc_calls_warmed_distribution", allocs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_dir;
  bool crossover_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
    if (std::strcmp(argv[i], "--crossover") == 0) crossover_only = true;
  }
  if (crossover_only) {
    std::printf("bench_stats_parallel --crossover\n");
    crossover_sweep(g_smoke ? 3 : 15);
    if (g_failures == 0) return 0;
    std::printf("\n%d check(s) FAILED\n", g_failures);
    return 1;
  }
  obs::BenchReporter reporter("stats_parallel");
  reporter.set_context("mode", g_smoke ? "smoke" : "full");
  if (!json_dir.empty()) g_reporter = &reporter;
  const unsigned hc = std::thread::hardware_concurrency();
  std::printf("bench_stats_parallel (%s, %u hardware thread(s))\n",
              g_smoke ? "smoke" : "full", hc);

  Workload w;
  w.series = make_series(g_smoke ? 4 : 16, g_smoke ? 80 : 1000);
  w.replicates = g_smoke ? 200 : 1000;
  const std::size_t reps = g_smoke ? 3 : 25;
  std::printf("  workload: %zu series x n=%zu, %zu bootstrap replicates each\n",
              w.series.size(), w.series.front().size(), w.replicates);

  std::printf("\n[1] bootstrap CI throughput\n");
  const DuelOutcome mean_ci =
      duel("mean CI (generation/accumulation-bound)", "mean_ci",
           stats::ResampleStat::mean(), w, reps);
  const DuelOutcome median_ci =
      duel("median CI (selection-bound)", "median_ci", stats::ResampleStat::median(), w,
           reps);

  std::printf("\n[2] small-n median duel: partition (PR 8) vs histogram select\n");
  Workload smalln;
  smalln.series = make_series(g_smoke ? 8 : 32, 64);
  smalln.replicates = w.replicates;
  std::printf("  workload: %zu series x n=%zu, %zu bootstrap replicates each\n",
              smalln.series.size(), smalln.series.front().size(), smalln.replicates);
  const SmallnOutcome hist = smalln_median_duel(smalln, reps);

  std::printf("\n[3] BCa CI thread scaling\n");
  const BcaOutcome bca = bca_duel(w, reps);

  std::printf("\n[4] determinism\n");
  determinism_checks(w);

  std::printf("\n[5] allocation audit\n");
  audit_global_allocator(w);

  if (!g_smoke) {
    std::printf("\n[6] crossover sweep (informational)\n");
    crossover_sweep(5);
  }

  if (!g_smoke) {
    // Single-thread acceptance, on the statistic whose kernels the
    // in-core waves actually accelerate: the mean path's 4-wide fills
    // and Kahan rows must pay for themselves with disjoint CIs. (The
    // median path is selection-bound; its single-thread delta is
    // reported above but only gated as "no regression".)
    check(mean_ci.vectorized.lo > mean_ci.baseline.hi,
          "mean CI, vectorized {1t, 8 lanes}: faster than baseline, 95% CIs disjoint");
    check(median_ci.vectorized.median >= 0.9 * median_ci.baseline.median,
          "median CI, vectorized {1t, 8 lanes}: no single-thread regression");
    // Multi-core acceptance: the end-to-end >= 4x target needs enough
    // cores to show it (threads shard 8 lanes, so >= 8 hardware threads
    // leaves headroom; at 4-7 the honest bar is hc/2). A 1-CPU runner
    // records the single-thread account instead -- see
    // bench/RESULTS_stats_parallel.md.
    if (hc >= 4) {
      const double required = hc >= 8 ? 4.0 : static_cast<double>(hc) / 2.0;
      char what[96];
      std::snprintf(what, sizeof what,
                    "median CI, parallel {%ut, 8 lanes}: >= %.1fx baseline median", hc,
                    required);
      check(median_ci.parallel.median >= required * median_ci.baseline.median, what);
      check(median_ci.parallel.lo > median_ci.baseline.hi,
            "median CI, parallel: 95% CIs disjoint from baseline");
    } else {
      std::printf("  (multi-core gates skipped: %u hardware thread(s))\n", hc);
    }
    // Small-n acceptance: the counting-sort kernel must beat the PR 8
    // partition kernel on the same single thread -- no hardware gate,
    // this is pure per-core work.
    check(hist.histogram.median >= 1.5 * hist.partition.median,
          "small-n median CI: histogram select >= 1.5x partition kernel");
    check(hist.histogram.lo > hist.partition.hi,
          "small-n median CI: 95% CIs disjoint from partition kernel");
    // BCa scaling is a thread story; arm it only where threads exist.
    // (Serial-vs-serial there is a wash by construction: the jackknife
    // kernels are byte-for-byte the PR 8 loops, just range-sharded.)
    if (hc >= 4) {
      check(bca.parallel.median >= 2.0 * bca.serial.median,
            "BCa mean CI, parallel: >= 2x serial median");
      check(bca.parallel.lo > bca.serial.hi,
            "BCa mean CI, parallel: 95% CIs disjoint from serial");
    } else {
      std::printf("  (BCa multi-core gates skipped: %u hardware thread(s))\n", hc);
    }
  }

  if (g_reporter != nullptr) {
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::printf("FAILED: could not write BENCH json into %s\n", json_dir.c_str());
      ++g_failures;
    } else {
      std::printf("\nwrote %s\n", path.c_str());
    }
  }
  if (g_failures == 0) {
    std::printf("\nall checks passed\n");
    return 0;
  }
  std::printf("\n%d check(s) FAILED\n", g_failures);
  return 1;
}
