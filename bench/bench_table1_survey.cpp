// Reproduces Table 1: the literature survey of 120 papers across three
// conferences and four years -- per-class documentation fractions, the
// per-cell box statistics of design scores, the data-analysis rows, and
// the (absence of a) median trend.
#include <cstdio>

#include "survey/survey.hpp"

using namespace sci;

int main() {
  std::printf("=== Table 1: summary of the literature survey ===\n");
  std::printf("(per-paper matrix synthesized to match all published marginals;\n");
  std::printf(" see DESIGN.md -- totals below are exact reproductions)\n\n");

  std::printf("%-34s %8s   paper\n", "Experimental design class", "found");
  for (std::size_t c = 0; c < survey::kDesignClasses; ++c) {
    const auto cls = static_cast<survey::DesignClass>(c);
    std::printf("%-34s  (%2zu/%zu)  (%2zu/95)\n", survey::to_string(cls),
                survey::count_design(cls), survey::kApplicablePapers,
                survey::design_totals()[c]);
  }
  std::printf("\n%-34s %8s   paper\n", "Data analysis class", "found");
  for (std::size_t c = 0; c < survey::kAnalysisClasses; ++c) {
    const auto cls = static_cast<survey::AnalysisClass>(c);
    std::printf("%-34s  (%2zu/%zu)  (%2zu/95)\n", survey::to_string(cls),
                survey::count_analysis(cls), survey::kApplicablePapers,
                survey::analysis_totals()[c]);
  }

  std::printf("\nPer conference-year design-score box stats (0-9 scale):\n");
  std::printf("conf year   min   q1  med   q3  max    n\n");
  for (std::size_t conf = 0; conf < survey::kConferences; ++conf) {
    for (int year : survey::kYears) {
      const auto b = survey::cell_score_stats(conf, year);
      std::printf("   %c %d  %4.1f %4.1f %4.1f %4.1f %4.1f  %3zu\n",
                  static_cast<char>('A' + conf), year, b.min, b.q1, b.median, b.q3,
                  b.max, b.n);
    }
  }

  std::printf("\nMedian design score by year + Mann-Kendall trend test:\n");
  for (std::size_t conf = 0; conf < survey::kConferences; ++conf) {
    const auto medians = survey::conference_median_by_year(conf);
    const auto trend = survey::mann_kendall(medians);
    std::printf("  Conf%c medians:", static_cast<char>('A' + conf));
    for (double m : medians) std::printf(" %.1f", m);
    std::printf("   S=%+.0f p=%.2f %s\n", trend.s_statistic, trend.p_value,
                trend.p_value > 0.05 ? "(no significant trend -- matches paper)"
                                     : "(SIGNIFICANT -- deviates from paper)");
  }

  const auto f = survey::text_findings();
  std::printf("\nText findings (Section 2-3):\n");
  std::printf("  papers reporting speedups:            %zu\n", f.papers_reporting_speedup);
  std::printf("  ... without absolute base case:       %zu (%.0f%%)\n",
              f.speedups_without_base,
              100.0 * f.speedups_without_base / f.papers_reporting_speedup);
  std::printf("  papers summarizing results:           %zu\n", f.summarizing_papers);
  std::printf("  ... specifying the averaging method:  %zu\n",
              f.summaries_specifying_method);
  std::printf("  harmonic mean used correctly:         %zu\n", f.harmonic_mean_users);
  std::printf("  geometric mean (without good reason): %zu\n", f.geometric_mean_users);
  std::printf("  papers mentioning variance:           %zu\n", f.variance_mentions);
  std::printf("  papers reporting confidence intervals:%zu\n", f.ci_reporting_papers);
  std::printf("  papers with fully unambiguous units:  %zu\n", f.unambiguous_unit_papers);
  return 0;
}
