// LibSciBench self-characterisation (Section 6): report the resolution
// and overhead of every available timer on this host, and demonstrate
// the interval admission checks of Section 4.2.1 (timer overhead < 5%
// of the interval; precision 10x finer than the interval).
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/bench_report.hpp"
#include "timer/calibration.hpp"
#include "timer/timer.hpp"

using namespace sci;

namespace {

obs::BenchReporter* g_reporter = nullptr;  ///< set when --json DIR is given

void report(const timer::Clock& clock) {
  const auto cal = timer::calibrate(clock, 20000);
  if (g_reporter != nullptr) {
    const double resolution[] = {cal.resolution_ns};
    const double overhead[] = {cal.overhead_ns};
    g_reporter->add_metric(cal.clock_name + ".resolution_ns", "ns", resolution);
    g_reporter->add_metric(cal.clock_name + ".overhead_ns", "ns", overhead);
  }
  std::printf("timer '%s': resolution %.1f ns, per-call overhead %.1f ns "
              "(%zu samples)\n",
              cal.clock_name.c_str(), cal.resolution_ns, cal.overhead_ns, cal.samples);
  for (double interval_ns : {100.0, 1e3, 1e4, 1e6}) {
    const auto check = timer::check_interval(cal, interval_ns);
    std::printf("  interval %8.0f ns: overhead %s, precision %s%s%s\n", interval_ns,
                check.overhead_ok ? "ok" : "VIOLATED",
                check.precision_ok ? "ok" : "VIOLATED",
                check.message.empty() ? "" : " -- ", check.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_dir = argv[++i];
  }
  obs::BenchReporter reporter("timer_calibration");
  if (!json_dir.empty()) g_reporter = &reporter;
  std::printf("=== Timer self-characterisation (LibSciBench Section 6) ===\n");
  const timer::SteadyClock steady;
  report(steady);
  const timer::TscClock tsc;
  std::printf("\n");
  report(tsc);
#if defined(__x86_64__)
  std::printf("\ntsc period: %.4f ns/tick (calibrated against the steady clock)\n",
              tsc.ns_per_tick());
#endif
  std::printf("\nguideline (Section 4.2.1): ensure timer overhead is <5%% of the\n");
  std::printf("measured interval and resolution is 10x finer; measure multiple\n");
  std::printf("events per interval otherwise (at the cost of per-event CIs).\n");
  if (g_reporter != nullptr) {
    const std::string path = reporter.write_json(json_dir);
    if (path.empty()) {
      std::fprintf(stderr, "could not write BENCH json into %s\n", json_dir.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
