file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_refinement.dir/bench_adaptive_refinement.cpp.o"
  "CMakeFiles/bench_adaptive_refinement.dir/bench_adaptive_refinement.cpp.o.d"
  "bench_adaptive_refinement"
  "bench_adaptive_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
