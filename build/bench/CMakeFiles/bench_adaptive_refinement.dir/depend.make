# Empty dependencies file for bench_adaptive_refinement.
# This may be replaced when dependencies are built.
