file(REMOVE_RECURSE
  "CMakeFiles/bench_allreduce_crossover.dir/bench_allreduce_crossover.cpp.o"
  "CMakeFiles/bench_allreduce_crossover.dir/bench_allreduce_crossover.cpp.o.d"
  "bench_allreduce_crossover"
  "bench_allreduce_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allreduce_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
