# Empty dependencies file for bench_allreduce_crossover.
# This may be replaced when dependencies are built.
