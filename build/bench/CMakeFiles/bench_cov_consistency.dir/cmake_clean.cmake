file(REMOVE_RECURSE
  "CMakeFiles/bench_cov_consistency.dir/bench_cov_consistency.cpp.o"
  "CMakeFiles/bench_cov_consistency.dir/bench_cov_consistency.cpp.o.d"
  "bench_cov_consistency"
  "bench_cov_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cov_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
