# Empty dependencies file for bench_cov_consistency.
# This may be replaced when dependencies are built.
