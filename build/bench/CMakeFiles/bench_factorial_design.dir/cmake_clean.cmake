file(REMOVE_RECURSE
  "CMakeFiles/bench_factorial_design.dir/bench_factorial_design.cpp.o"
  "CMakeFiles/bench_factorial_design.dir/bench_factorial_design.cpp.o.d"
  "bench_factorial_design"
  "bench_factorial_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_factorial_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
