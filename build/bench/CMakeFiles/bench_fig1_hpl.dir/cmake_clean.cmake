file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hpl.dir/bench_fig1_hpl.cpp.o"
  "CMakeFiles/bench_fig1_hpl.dir/bench_fig1_hpl.cpp.o.d"
  "bench_fig1_hpl"
  "bench_fig1_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
