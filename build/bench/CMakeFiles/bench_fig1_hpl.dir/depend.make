# Empty dependencies file for bench_fig1_hpl.
# This may be replaced when dependencies are built.
