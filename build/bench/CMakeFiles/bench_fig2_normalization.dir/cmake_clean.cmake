file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_normalization.dir/bench_fig2_normalization.cpp.o"
  "CMakeFiles/bench_fig2_normalization.dir/bench_fig2_normalization.cpp.o.d"
  "bench_fig2_normalization"
  "bench_fig2_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
