# Empty dependencies file for bench_fig2_normalization.
# This may be replaced when dependencies are built.
