file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_significance.dir/bench_fig3_significance.cpp.o"
  "CMakeFiles/bench_fig3_significance.dir/bench_fig3_significance.cpp.o.d"
  "bench_fig3_significance"
  "bench_fig3_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
