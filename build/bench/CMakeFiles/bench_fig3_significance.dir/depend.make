# Empty dependencies file for bench_fig3_significance.
# This may be replaced when dependencies are built.
