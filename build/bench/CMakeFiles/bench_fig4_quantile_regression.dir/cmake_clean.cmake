file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_quantile_regression.dir/bench_fig4_quantile_regression.cpp.o"
  "CMakeFiles/bench_fig4_quantile_regression.dir/bench_fig4_quantile_regression.cpp.o.d"
  "bench_fig4_quantile_regression"
  "bench_fig4_quantile_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_quantile_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
