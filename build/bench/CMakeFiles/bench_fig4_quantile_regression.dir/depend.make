# Empty dependencies file for bench_fig4_quantile_regression.
# This may be replaced when dependencies are built.
