file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7ab_bounds.dir/bench_fig7ab_bounds.cpp.o"
  "CMakeFiles/bench_fig7ab_bounds.dir/bench_fig7ab_bounds.cpp.o.d"
  "bench_fig7ab_bounds"
  "bench_fig7ab_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7ab_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
