# Empty compiler generated dependencies file for bench_fig7ab_bounds.
# This may be replaced when dependencies are built.
