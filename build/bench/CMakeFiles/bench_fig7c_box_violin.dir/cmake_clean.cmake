file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7c_box_violin.dir/bench_fig7c_box_violin.cpp.o"
  "CMakeFiles/bench_fig7c_box_violin.dir/bench_fig7c_box_violin.cpp.o.d"
  "bench_fig7c_box_violin"
  "bench_fig7c_box_violin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7c_box_violin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
