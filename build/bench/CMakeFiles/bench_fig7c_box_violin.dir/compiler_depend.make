# Empty compiler generated dependencies file for bench_fig7c_box_violin.
# This may be replaced when dependencies are built.
