file(REMOVE_RECURSE
  "CMakeFiles/bench_library_micro.dir/bench_library_micro.cpp.o"
  "CMakeFiles/bench_library_micro.dir/bench_library_micro.cpp.o.d"
  "bench_library_micro"
  "bench_library_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_library_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
