# Empty compiler generated dependencies file for bench_library_micro.
# This may be replaced when dependencies are built.
