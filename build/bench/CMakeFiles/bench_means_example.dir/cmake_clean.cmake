file(REMOVE_RECURSE
  "CMakeFiles/bench_means_example.dir/bench_means_example.cpp.o"
  "CMakeFiles/bench_means_example.dir/bench_means_example.cpp.o.d"
  "bench_means_example"
  "bench_means_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_means_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
