# Empty dependencies file for bench_means_example.
# This may be replaced when dependencies are built.
