
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_noise_propagation.cpp" "bench/CMakeFiles/bench_noise_propagation.dir/bench_noise_propagation.cpp.o" "gcc" "bench/CMakeFiles/bench_noise_propagation.dir/bench_noise_propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sci_core.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/sci_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/sci_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/hpl/CMakeFiles/sci_hpl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/sci_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sci_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
