file(REMOVE_RECURSE
  "CMakeFiles/bench_noise_propagation.dir/bench_noise_propagation.cpp.o"
  "CMakeFiles/bench_noise_propagation.dir/bench_noise_propagation.cpp.o.d"
  "bench_noise_propagation"
  "bench_noise_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
