file(REMOVE_RECURSE
  "CMakeFiles/bench_timer_calibration.dir/bench_timer_calibration.cpp.o"
  "CMakeFiles/bench_timer_calibration.dir/bench_timer_calibration.cpp.o.d"
  "bench_timer_calibration"
  "bench_timer_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timer_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
