# Empty dependencies file for bench_timer_calibration.
# This may be replaced when dependencies are built.
