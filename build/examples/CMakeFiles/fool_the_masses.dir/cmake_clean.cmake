file(REMOVE_RECURSE
  "CMakeFiles/fool_the_masses.dir/fool_the_masses.cpp.o"
  "CMakeFiles/fool_the_masses.dir/fool_the_masses.cpp.o.d"
  "fool_the_masses"
  "fool_the_masses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fool_the_masses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
