# Empty compiler generated dependencies file for fool_the_masses.
# This may be replaced when dependencies are built.
