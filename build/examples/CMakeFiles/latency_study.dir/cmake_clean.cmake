file(REMOVE_RECURSE
  "CMakeFiles/latency_study.dir/latency_study.cpp.o"
  "CMakeFiles/latency_study.dir/latency_study.cpp.o.d"
  "latency_study"
  "latency_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
