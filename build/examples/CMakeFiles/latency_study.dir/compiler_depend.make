# Empty compiler generated dependencies file for latency_study.
# This may be replaced when dependencies are built.
