file(REMOVE_RECURSE
  "CMakeFiles/rules_audit.dir/rules_audit.cpp.o"
  "CMakeFiles/rules_audit.dir/rules_audit.cpp.o.d"
  "rules_audit"
  "rules_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
