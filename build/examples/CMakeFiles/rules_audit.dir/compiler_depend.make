# Empty compiler generated dependencies file for rules_audit.
# This may be replaced when dependencies are built.
