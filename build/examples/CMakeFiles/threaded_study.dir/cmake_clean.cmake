file(REMOVE_RECURSE
  "CMakeFiles/threaded_study.dir/threaded_study.cpp.o"
  "CMakeFiles/threaded_study.dir/threaded_study.cpp.o.d"
  "threaded_study"
  "threaded_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
