# Empty compiler generated dependencies file for threaded_study.
# This may be replaced when dependencies are built.
