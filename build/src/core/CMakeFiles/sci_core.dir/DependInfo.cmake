
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/sci_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/sci_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/sci_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/sci_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/measurement.cpp" "src/core/CMakeFiles/sci_core.dir/measurement.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/measurement.cpp.o.d"
  "/root/repo/src/core/plots.cpp" "src/core/CMakeFiles/sci_core.dir/plots.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/plots.cpp.o.d"
  "/root/repo/src/core/refinement.cpp" "src/core/CMakeFiles/sci_core.dir/refinement.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/refinement.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/sci_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/sci_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/sci_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/sci_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/sci_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
