file(REMOVE_RECURSE
  "CMakeFiles/sci_core.dir/adaptive.cpp.o"
  "CMakeFiles/sci_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/sci_core.dir/bounds.cpp.o"
  "CMakeFiles/sci_core.dir/bounds.cpp.o.d"
  "CMakeFiles/sci_core.dir/dataset.cpp.o"
  "CMakeFiles/sci_core.dir/dataset.cpp.o.d"
  "CMakeFiles/sci_core.dir/experiment.cpp.o"
  "CMakeFiles/sci_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sci_core.dir/measurement.cpp.o"
  "CMakeFiles/sci_core.dir/measurement.cpp.o.d"
  "CMakeFiles/sci_core.dir/plots.cpp.o"
  "CMakeFiles/sci_core.dir/plots.cpp.o.d"
  "CMakeFiles/sci_core.dir/refinement.cpp.o"
  "CMakeFiles/sci_core.dir/refinement.cpp.o.d"
  "CMakeFiles/sci_core.dir/registry.cpp.o"
  "CMakeFiles/sci_core.dir/registry.cpp.o.d"
  "CMakeFiles/sci_core.dir/report.cpp.o"
  "CMakeFiles/sci_core.dir/report.cpp.o.d"
  "libsci_core.a"
  "libsci_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
