file(REMOVE_RECURSE
  "libsci_core.a"
)
