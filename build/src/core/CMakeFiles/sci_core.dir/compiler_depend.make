# Empty compiler generated dependencies file for sci_core.
# This may be replaced when dependencies are built.
