
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpl/lu.cpp" "src/hpl/CMakeFiles/sci_hpl.dir/lu.cpp.o" "gcc" "src/hpl/CMakeFiles/sci_hpl.dir/lu.cpp.o.d"
  "/root/repo/src/hpl/sim_hpl.cpp" "src/hpl/CMakeFiles/sci_hpl.dir/sim_hpl.cpp.o" "gcc" "src/hpl/CMakeFiles/sci_hpl.dir/sim_hpl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
