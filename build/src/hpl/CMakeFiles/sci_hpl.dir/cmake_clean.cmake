file(REMOVE_RECURSE
  "CMakeFiles/sci_hpl.dir/lu.cpp.o"
  "CMakeFiles/sci_hpl.dir/lu.cpp.o.d"
  "CMakeFiles/sci_hpl.dir/sim_hpl.cpp.o"
  "CMakeFiles/sci_hpl.dir/sim_hpl.cpp.o.d"
  "libsci_hpl.a"
  "libsci_hpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_hpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
