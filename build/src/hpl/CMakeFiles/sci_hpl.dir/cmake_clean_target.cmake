file(REMOVE_RECURSE
  "libsci_hpl.a"
)
