# Empty compiler generated dependencies file for sci_hpl.
# This may be replaced when dependencies are built.
