file(REMOVE_RECURSE
  "CMakeFiles/sci_lp.dir/simplex.cpp.o"
  "CMakeFiles/sci_lp.dir/simplex.cpp.o.d"
  "libsci_lp.a"
  "libsci_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
