file(REMOVE_RECURSE
  "libsci_lp.a"
)
