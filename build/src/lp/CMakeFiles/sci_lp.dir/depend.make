# Empty dependencies file for sci_lp.
# This may be replaced when dependencies are built.
