file(REMOVE_RECURSE
  "CMakeFiles/sci_rng.dir/distributions.cpp.o"
  "CMakeFiles/sci_rng.dir/distributions.cpp.o.d"
  "CMakeFiles/sci_rng.dir/xoshiro.cpp.o"
  "CMakeFiles/sci_rng.dir/xoshiro.cpp.o.d"
  "libsci_rng.a"
  "libsci_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
