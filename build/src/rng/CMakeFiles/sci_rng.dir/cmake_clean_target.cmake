file(REMOVE_RECURSE
  "libsci_rng.a"
)
