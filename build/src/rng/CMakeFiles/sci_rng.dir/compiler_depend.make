# Empty compiler generated dependencies file for sci_rng.
# This may be replaced when dependencies are built.
