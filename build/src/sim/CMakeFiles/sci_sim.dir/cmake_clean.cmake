file(REMOVE_RECURSE
  "CMakeFiles/sci_sim.dir/engine.cpp.o"
  "CMakeFiles/sci_sim.dir/engine.cpp.o.d"
  "CMakeFiles/sci_sim.dir/machine.cpp.o"
  "CMakeFiles/sci_sim.dir/machine.cpp.o.d"
  "CMakeFiles/sci_sim.dir/network.cpp.o"
  "CMakeFiles/sci_sim.dir/network.cpp.o.d"
  "CMakeFiles/sci_sim.dir/noise.cpp.o"
  "CMakeFiles/sci_sim.dir/noise.cpp.o.d"
  "CMakeFiles/sci_sim.dir/topology.cpp.o"
  "CMakeFiles/sci_sim.dir/topology.cpp.o.d"
  "libsci_sim.a"
  "libsci_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
