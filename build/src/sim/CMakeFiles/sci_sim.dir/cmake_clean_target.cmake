file(REMOVE_RECURSE
  "libsci_sim.a"
)
