# Empty compiler generated dependencies file for sci_sim.
# This may be replaced when dependencies are built.
