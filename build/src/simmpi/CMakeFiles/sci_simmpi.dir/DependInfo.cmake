
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/benchmarks.cpp" "src/simmpi/CMakeFiles/sci_simmpi.dir/benchmarks.cpp.o" "gcc" "src/simmpi/CMakeFiles/sci_simmpi.dir/benchmarks.cpp.o.d"
  "/root/repo/src/simmpi/clock.cpp" "src/simmpi/CMakeFiles/sci_simmpi.dir/clock.cpp.o" "gcc" "src/simmpi/CMakeFiles/sci_simmpi.dir/clock.cpp.o.d"
  "/root/repo/src/simmpi/collectives.cpp" "src/simmpi/CMakeFiles/sci_simmpi.dir/collectives.cpp.o" "gcc" "src/simmpi/CMakeFiles/sci_simmpi.dir/collectives.cpp.o.d"
  "/root/repo/src/simmpi/comm.cpp" "src/simmpi/CMakeFiles/sci_simmpi.dir/comm.cpp.o" "gcc" "src/simmpi/CMakeFiles/sci_simmpi.dir/comm.cpp.o.d"
  "/root/repo/src/simmpi/replay.cpp" "src/simmpi/CMakeFiles/sci_simmpi.dir/replay.cpp.o" "gcc" "src/simmpi/CMakeFiles/sci_simmpi.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
