src/simmpi/CMakeFiles/sci_simmpi.dir/clock.cpp.o: \
 /root/repo/src/simmpi/clock.cpp /usr/include/stdc-predef.h \
 /root/repo/src/simmpi/clock.hpp
