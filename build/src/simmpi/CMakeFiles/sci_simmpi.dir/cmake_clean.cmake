file(REMOVE_RECURSE
  "CMakeFiles/sci_simmpi.dir/benchmarks.cpp.o"
  "CMakeFiles/sci_simmpi.dir/benchmarks.cpp.o.d"
  "CMakeFiles/sci_simmpi.dir/clock.cpp.o"
  "CMakeFiles/sci_simmpi.dir/clock.cpp.o.d"
  "CMakeFiles/sci_simmpi.dir/collectives.cpp.o"
  "CMakeFiles/sci_simmpi.dir/collectives.cpp.o.d"
  "CMakeFiles/sci_simmpi.dir/comm.cpp.o"
  "CMakeFiles/sci_simmpi.dir/comm.cpp.o.d"
  "CMakeFiles/sci_simmpi.dir/replay.cpp.o"
  "CMakeFiles/sci_simmpi.dir/replay.cpp.o.d"
  "libsci_simmpi.a"
  "libsci_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
