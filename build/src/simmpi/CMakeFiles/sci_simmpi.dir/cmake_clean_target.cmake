file(REMOVE_RECURSE
  "libsci_simmpi.a"
)
