# Empty compiler generated dependencies file for sci_simmpi.
# This may be replaced when dependencies are built.
