
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/sci_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/compare.cpp" "src/stats/CMakeFiles/sci_stats.dir/compare.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/compare.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/sci_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/sci_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/sci_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/factorial.cpp" "src/stats/CMakeFiles/sci_stats.dir/factorial.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/factorial.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/sci_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/independence.cpp" "src/stats/CMakeFiles/sci_stats.dir/independence.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/independence.cpp.o.d"
  "/root/repo/src/stats/normality.cpp" "src/stats/CMakeFiles/sci_stats.dir/normality.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/normality.cpp.o.d"
  "/root/repo/src/stats/normalization.cpp" "src/stats/CMakeFiles/sci_stats.dir/normalization.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/normalization.cpp.o.d"
  "/root/repo/src/stats/outliers.cpp" "src/stats/CMakeFiles/sci_stats.dir/outliers.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/outliers.cpp.o.d"
  "/root/repo/src/stats/quantile_regression.cpp" "src/stats/CMakeFiles/sci_stats.dir/quantile_regression.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/quantile_regression.cpp.o.d"
  "/root/repo/src/stats/ranktests.cpp" "src/stats/CMakeFiles/sci_stats.dir/ranktests.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/ranktests.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/sci_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/sci_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/special_functions.cpp.o.d"
  "/root/repo/src/stats/summarize.cpp" "src/stats/CMakeFiles/sci_stats.dir/summarize.cpp.o" "gcc" "src/stats/CMakeFiles/sci_stats.dir/summarize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
