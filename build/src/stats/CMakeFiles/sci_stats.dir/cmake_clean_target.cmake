file(REMOVE_RECURSE
  "libsci_stats.a"
)
