# Empty dependencies file for sci_stats.
# This may be replaced when dependencies are built.
