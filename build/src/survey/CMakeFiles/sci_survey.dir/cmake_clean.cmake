file(REMOVE_RECURSE
  "CMakeFiles/sci_survey.dir/survey.cpp.o"
  "CMakeFiles/sci_survey.dir/survey.cpp.o.d"
  "libsci_survey.a"
  "libsci_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
