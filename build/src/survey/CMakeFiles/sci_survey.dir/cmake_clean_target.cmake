file(REMOVE_RECURSE
  "libsci_survey.a"
)
