# Empty dependencies file for sci_survey.
# This may be replaced when dependencies are built.
