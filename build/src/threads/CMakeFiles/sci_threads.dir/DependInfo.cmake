
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threads/barrier.cpp" "src/threads/CMakeFiles/sci_threads.dir/barrier.cpp.o" "gcc" "src/threads/CMakeFiles/sci_threads.dir/barrier.cpp.o.d"
  "/root/repo/src/threads/measure.cpp" "src/threads/CMakeFiles/sci_threads.dir/measure.cpp.o" "gcc" "src/threads/CMakeFiles/sci_threads.dir/measure.cpp.o.d"
  "/root/repo/src/threads/team.cpp" "src/threads/CMakeFiles/sci_threads.dir/team.cpp.o" "gcc" "src/threads/CMakeFiles/sci_threads.dir/team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timer/CMakeFiles/sci_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sci_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
