file(REMOVE_RECURSE
  "CMakeFiles/sci_threads.dir/barrier.cpp.o"
  "CMakeFiles/sci_threads.dir/barrier.cpp.o.d"
  "CMakeFiles/sci_threads.dir/measure.cpp.o"
  "CMakeFiles/sci_threads.dir/measure.cpp.o.d"
  "CMakeFiles/sci_threads.dir/team.cpp.o"
  "CMakeFiles/sci_threads.dir/team.cpp.o.d"
  "libsci_threads.a"
  "libsci_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
