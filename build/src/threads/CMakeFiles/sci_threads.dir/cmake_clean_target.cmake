file(REMOVE_RECURSE
  "libsci_threads.a"
)
