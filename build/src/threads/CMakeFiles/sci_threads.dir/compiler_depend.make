# Empty compiler generated dependencies file for sci_threads.
# This may be replaced when dependencies are built.
