
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timer/calibration.cpp" "src/timer/CMakeFiles/sci_timer.dir/calibration.cpp.o" "gcc" "src/timer/CMakeFiles/sci_timer.dir/calibration.cpp.o.d"
  "/root/repo/src/timer/counters.cpp" "src/timer/CMakeFiles/sci_timer.dir/counters.cpp.o" "gcc" "src/timer/CMakeFiles/sci_timer.dir/counters.cpp.o.d"
  "/root/repo/src/timer/timer.cpp" "src/timer/CMakeFiles/sci_timer.dir/timer.cpp.o" "gcc" "src/timer/CMakeFiles/sci_timer.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/sci_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
