file(REMOVE_RECURSE
  "CMakeFiles/sci_timer.dir/calibration.cpp.o"
  "CMakeFiles/sci_timer.dir/calibration.cpp.o.d"
  "CMakeFiles/sci_timer.dir/counters.cpp.o"
  "CMakeFiles/sci_timer.dir/counters.cpp.o.d"
  "CMakeFiles/sci_timer.dir/timer.cpp.o"
  "CMakeFiles/sci_timer.dir/timer.cpp.o.d"
  "libsci_timer.a"
  "libsci_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
