file(REMOVE_RECURSE
  "libsci_timer.a"
)
