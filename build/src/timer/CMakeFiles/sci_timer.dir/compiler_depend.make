# Empty compiler generated dependencies file for sci_timer.
# This may be replaced when dependencies are built.
