
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_adaptive.cpp" "tests/CMakeFiles/test_core.dir/test_core_adaptive.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_adaptive.cpp.o.d"
  "/root/repo/tests/test_core_bounds.cpp" "tests/CMakeFiles/test_core.dir/test_core_bounds.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_bounds.cpp.o.d"
  "/root/repo/tests/test_core_dataset.cpp" "tests/CMakeFiles/test_core.dir/test_core_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_dataset.cpp.o.d"
  "/root/repo/tests/test_core_experiment.cpp" "tests/CMakeFiles/test_core.dir/test_core_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_experiment.cpp.o.d"
  "/root/repo/tests/test_core_measurement.cpp" "tests/CMakeFiles/test_core.dir/test_core_measurement.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_measurement.cpp.o.d"
  "/root/repo/tests/test_core_plots.cpp" "tests/CMakeFiles/test_core.dir/test_core_plots.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_plots.cpp.o.d"
  "/root/repo/tests/test_core_refinement.cpp" "tests/CMakeFiles/test_core.dir/test_core_refinement.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_refinement.cpp.o.d"
  "/root/repo/tests/test_core_report.cpp" "tests/CMakeFiles/test_core.dir/test_core_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_report.cpp.o.d"
  "/root/repo/tests/test_registry.cpp" "tests/CMakeFiles/test_core.dir/test_registry.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sci_core.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/sci_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/sci_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/hpl/CMakeFiles/sci_hpl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/sci_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/sci_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sci_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
