file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_core_adaptive.cpp.o"
  "CMakeFiles/test_core.dir/test_core_adaptive.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_bounds.cpp.o"
  "CMakeFiles/test_core.dir/test_core_bounds.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_dataset.cpp.o"
  "CMakeFiles/test_core.dir/test_core_dataset.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_experiment.cpp.o"
  "CMakeFiles/test_core.dir/test_core_experiment.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_measurement.cpp.o"
  "CMakeFiles/test_core.dir/test_core_measurement.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_plots.cpp.o"
  "CMakeFiles/test_core.dir/test_core_plots.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_refinement.cpp.o"
  "CMakeFiles/test_core.dir/test_core_refinement.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core_report.cpp.o"
  "CMakeFiles/test_core.dir/test_core_report.cpp.o.d"
  "CMakeFiles/test_core.dir/test_registry.cpp.o"
  "CMakeFiles/test_core.dir/test_registry.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
