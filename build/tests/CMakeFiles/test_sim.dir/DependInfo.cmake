
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allreduce_v.cpp" "tests/CMakeFiles/test_sim.dir/test_allreduce_v.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_allreduce_v.cpp.o.d"
  "/root/repo/tests/test_benchmarks_sim.cpp" "tests/CMakeFiles/test_sim.dir/test_benchmarks_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_benchmarks_sim.cpp.o.d"
  "/root/repo/tests/test_collective_algebra.cpp" "tests/CMakeFiles/test_sim.dir/test_collective_algebra.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_collective_algebra.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "tests/CMakeFiles/test_sim.dir/test_collectives.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/test_collectives_extended.cpp" "tests/CMakeFiles/test_sim.dir/test_collectives_extended.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_collectives_extended.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/test_sim.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/test_sim.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_engine_task.cpp" "tests/CMakeFiles/test_sim.dir/test_engine_task.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_engine_task.cpp.o.d"
  "/root/repo/tests/test_noise.cpp" "tests/CMakeFiles/test_sim.dir/test_noise.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_noise.cpp.o.d"
  "/root/repo/tests/test_nonblocking.cpp" "tests/CMakeFiles/test_sim.dir/test_nonblocking.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_nonblocking.cpp.o.d"
  "/root/repo/tests/test_replay.cpp" "tests/CMakeFiles/test_sim.dir/test_replay.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_replay.cpp.o.d"
  "/root/repo/tests/test_topology_network.cpp" "tests/CMakeFiles/test_sim.dir/test_topology_network.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_topology_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sci_core.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/sci_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/sci_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/hpl/CMakeFiles/sci_hpl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/sci_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/sci_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sci_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
