file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_allreduce_v.cpp.o"
  "CMakeFiles/test_sim.dir/test_allreduce_v.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_benchmarks_sim.cpp.o"
  "CMakeFiles/test_sim.dir/test_benchmarks_sim.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_collective_algebra.cpp.o"
  "CMakeFiles/test_sim.dir/test_collective_algebra.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_collectives.cpp.o"
  "CMakeFiles/test_sim.dir/test_collectives.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_collectives_extended.cpp.o"
  "CMakeFiles/test_sim.dir/test_collectives_extended.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_comm.cpp.o"
  "CMakeFiles/test_sim.dir/test_comm.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_energy.cpp.o"
  "CMakeFiles/test_sim.dir/test_energy.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_engine_task.cpp.o"
  "CMakeFiles/test_sim.dir/test_engine_task.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_noise.cpp.o"
  "CMakeFiles/test_sim.dir/test_noise.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_nonblocking.cpp.o"
  "CMakeFiles/test_sim.dir/test_nonblocking.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_replay.cpp.o"
  "CMakeFiles/test_sim.dir/test_replay.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_topology_network.cpp.o"
  "CMakeFiles/test_sim.dir/test_topology_network.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
