
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bootstrap.cpp" "tests/CMakeFiles/test_stats.dir/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_bootstrap.cpp.o.d"
  "/root/repo/tests/test_compare.cpp" "tests/CMakeFiles/test_stats.dir/test_compare.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_compare.cpp.o.d"
  "/root/repo/tests/test_confidence.cpp" "tests/CMakeFiles/test_stats.dir/test_confidence.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_confidence.cpp.o.d"
  "/root/repo/tests/test_descriptive.cpp" "tests/CMakeFiles/test_stats.dir/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_descriptive.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/test_stats.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_factorial.cpp" "tests/CMakeFiles/test_stats.dir/test_factorial.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_factorial.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/test_stats.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_independence.cpp" "tests/CMakeFiles/test_stats.dir/test_independence.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_independence.cpp.o.d"
  "/root/repo/tests/test_normality.cpp" "tests/CMakeFiles/test_stats.dir/test_normality.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_normality.cpp.o.d"
  "/root/repo/tests/test_outliers_normalization.cpp" "tests/CMakeFiles/test_stats.dir/test_outliers_normalization.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_outliers_normalization.cpp.o.d"
  "/root/repo/tests/test_quantile_regression.cpp" "tests/CMakeFiles/test_stats.dir/test_quantile_regression.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_quantile_regression.cpp.o.d"
  "/root/repo/tests/test_ranktests.cpp" "tests/CMakeFiles/test_stats.dir/test_ranktests.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_ranktests.cpp.o.d"
  "/root/repo/tests/test_regression.cpp" "tests/CMakeFiles/test_stats.dir/test_regression.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_regression.cpp.o.d"
  "/root/repo/tests/test_special_functions.cpp" "tests/CMakeFiles/test_stats.dir/test_special_functions.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_special_functions.cpp.o.d"
  "/root/repo/tests/test_stats_crosschecks.cpp" "tests/CMakeFiles/test_stats.dir/test_stats_crosschecks.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_stats_crosschecks.cpp.o.d"
  "/root/repo/tests/test_summarize.cpp" "tests/CMakeFiles/test_stats.dir/test_summarize.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_summarize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sci_core.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/sci_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/sci_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/hpl/CMakeFiles/sci_hpl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sci_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/sci_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/sci_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sci_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/sci_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/sci_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
