# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_timer[1]_include.cmake")
include("/root/repo/build/tests/test_threads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_hpl[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_survey[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
