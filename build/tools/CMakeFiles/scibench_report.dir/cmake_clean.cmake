file(REMOVE_RECURSE
  "CMakeFiles/scibench_report.dir/scibench_report.cpp.o"
  "CMakeFiles/scibench_report.dir/scibench_report.cpp.o.d"
  "scibench_report"
  "scibench_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scibench_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
