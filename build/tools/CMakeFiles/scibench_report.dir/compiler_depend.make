# Empty compiler generated dependencies file for scibench_report.
# This may be replaced when dependencies are built.
