// "Twelve ways to fool the masses" -- the paper's title answers Bailey's
// classic 1991 list of misleading reporting patterns. This example
// manufactures several of those patterns from honest simulated data and
// shows, side by side, the number a fooler would print and what the
// scibench rules force you to print instead.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/outliers.hpp"
#include "stats/summarize.hpp"

using namespace sci;

int main() {
  std::printf("=== How to fool the masses (and how the rules stop you) ===\n\n");

  // The honest data: the same reduce benchmark on two configurations.
  const auto machine = sim::make_daint();
  const auto ours = simmpi::reduce_bench(machine, 32, 300, 1).max_across_ranks();
  const auto theirs = simmpi::reduce_bench(machine, 32, 300, 2).max_across_ranks();
  auto us = [](const std::vector<double>& v) {
    std::vector<double> out;
    for (double x : v) out.push_back(x * 1e6);
    return out;
  };
  const auto ours_us = us(ours);
  const auto theirs_us = us(theirs);

  // --- Fool #1: quote your best run against their typical run ----------
  const double fool1 =
      stats::median(theirs_us) / stats::min_value(ours_us);
  std::printf("fool #1 (best-vs-typical): \"we are %.2fx faster\"\n", fool1);
  const auto ci_ours = stats::median_confidence_interval(ours_us, 0.95);
  const auto ci_theirs = stats::median_confidence_interval(theirs_us, 0.95);
  std::printf("  honest (Rule 5/7): medians %.2f vs %.2f us; 95%% CIs "
              "[%.2f, %.2f] vs [%.2f, %.2f] %s\n\n",
              stats::median(ours_us), stats::median(theirs_us), ci_ours.lower,
              ci_ours.upper, ci_theirs.lower, ci_theirs.upper,
              ci_ours.overlaps(ci_theirs) ? "OVERLAP: no claimable difference"
                                          : "(distinct)");

  // --- Fool #2: average the rates --------------------------------------
  // Identical work per run; slow runs hide inside the arithmetic mean.
  std::vector<double> rates;
  for (double t : ours) rates.push_back(1000.0 / t);  // "ops/s"
  std::printf("fool #2 (mean of rates): \"%.0f ops/s on average\"\n",
              stats::arithmetic_mean(rates));
  const auto rate = stats::summarize(stats::Rate{rates, "ops/s"});
  std::printf("  honest (Rule 3): %s = %.0f ops/s\n\n", rate.method, rate.value);

  // --- Fool #3: report speedup without the base case -------------------
  const auto t1 = simmpi::pi_scaling_run(machine, 1, 200e-3, 0.05, 3, 3);
  const auto t32 = simmpi::pi_scaling_run(machine, 32, 200e-3, 0.05, 3, 3);
  const double speedup = stats::median(t1) / stats::median(t32);
  std::printf("fool #3 (naked speedup): \"%.1fx speedup on 32 processes!\"\n", speedup);
  std::printf("  honest (Rule 1): base case = parallel code on one process,\n");
  std::printf("  %.0f ms absolute; Amdahl (b=0.05) caps speedup at %.1fx, so\n",
              stats::median(t1) * 1e3, 1.0 / 0.05);
  std::printf("  %.1fx is %.0f%% of the achievable maximum, not of 32.\n\n", speedup,
              100.0 * speedup / (1.0 / (0.05 + 0.95 / 32.0)));

  // --- Fool #4: drop the slow measurements ------------------------------
  auto trimmed = ours_us;
  std::sort(trimmed.begin(), trimmed.end());
  trimmed.resize(trimmed.size() * 9 / 10);  // silently discard the top 10%
  std::printf("fool #4 (silent trimming): mean %.2f us after dropping the "
              "\"outliers\"\n", stats::arithmetic_mean(trimmed));
  const auto removed = stats::remove_outliers_tukey(ours_us);
  std::printf("  honest (Sec. 3.1.3): Tukey fences remove %zu of %zu points "
              "(reported!), mean %.2f us; better: median %.2f us needs no "
              "removal at all\n\n",
              removed.removed(), ours_us.size(),
              stats::arithmetic_mean(removed.kept), stats::median(ours_us));

  // --- Fool #5: powers of two only -------------------------------------
  const auto p32 = simmpi::reduce_bench(machine, 32, 200, 5).max_across_ranks();
  const auto p33 = simmpi::reduce_bench(machine, 33, 200, 5).max_across_ranks();
  std::printf("fool #5 (cherry-picked levels): \"reduce takes %.1f us at p=32\"\n",
              stats::median(us(p32)));
  std::printf("  honest (Rule 2/9): at p=33 it takes %.1f us (+%.0f%%); report\n",
              stats::median(us(p33)),
              100.0 * (stats::median(p33) / stats::median(p32) - 1.0));
  std::printf("  non-power-of-two levels or state why only 2^k was measured.\n\n");

  std::printf("every one of these is caught by a rule in the twelve-rule audit\n");
  std::printf("(see examples/rules_audit and core/report.hpp).\n");
  return 0;
}
