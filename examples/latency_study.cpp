// A complete two-system latency study on the simulated clusters: the
// workflow a paper comparing interconnects should follow -- now phrased
// as a sci::exec campaign, so the factorial design (Rule 9) is the
// executable artifact instead of prose around hand-rolled loops.
//
//   declare   system x message_bytes grid + fixed environment
//   measure   CampaignRunner shards the grid across workers; every cell
//             is pingpong_latency on a fresh simulated machine
//   analyze   normality diagnosis, median + CIs, Kruskal-Wallis,
//             effect size, quantile regression for tail behaviour
//   persist   CSV datasets with embedded experiment documentation
//   report    rule-audited text report with plots
#include <cstdio>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/plots.hpp"
#include "core/report.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile_regression.hpp"

using namespace sci;

int main() {
  constexpr std::size_t kSamples = 50'000;
  const std::vector<std::string> systems = {"dora", "pilatus"};
  const std::vector<std::string> sizes = {"64", "4096"};

  // The factorial design, declared once: it drives execution AND the
  // Rule 9 documentation in every report/CSV produced below.
  exec::CampaignSpec spec;
  spec.name = "latency_study";
  spec.description = "two-system ping-pong latency comparison";
  spec.base.set("system.dora", "simulated Cray XC40, Aries dragonfly (see sim/machine.cpp)")
      .set("system.pilatus", "simulated InfiniBand FDR fat tree")
      .set("samples", std::to_string(kSamples) + " per configuration, 16 warmup")
      .set("placement", "two ranks on distinct nodes, scattered allocation");
  spec.base.synchronization_method = "none (two-sided pingpong, rank-0 clock)";
  spec.base.summary_across_processes = "rank-0 half round-trip";
  spec.factors.push_back({"system", systems});
  spec.factors.push_back({"message_bytes", sizes});
  // Reproduce the historical study: every cell ran with seed 2024.
  spec.seed_override = [](const exec::Config&, std::size_t) { return 2024ULL; };

  exec::SimBackendOptions bopts;
  bopts.kernel = exec::SimKernel::kPingPong;
  bopts.samples = kSamples;
  bopts.scale = 1e6;  // report microseconds
  bopts.unit = "us";
  exec::SimBackend backend(bopts);

  // Progress telemetry: a stderr heartbeat while the grid executes and a
  // machine-readable snapshot on completion (the campaign-smoke CI job
  // asserts this file exists and parses).
  exec::StderrHeartbeat heartbeat;
  exec::CampaignRunnerOptions ropts;
  ropts.progress = &heartbeat;
  ropts.heartbeat_period_s = 2.0;
  ropts.metrics_path = "latency_study_metrics.json";

  exec::CampaignRunner runner(backend, exec::Campaign(spec), ropts);
  const exec::CampaignResult run = runner.run();

  const core::Experiment e = run.experiment;
  core::Dataset ds(e, {"system", "bytes", "median_us", "q99_us", "kw_p"});
  core::ReportBuilder report(e);
  report.declare_units_convention();

  // Grid order is system-major; index cells as (system, size).
  const auto cell = [&](std::size_t sys, std::size_t size) -> const std::vector<double>& {
    return run.series(sys * sizes.size() + size);
  };

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const std::size_t bytes = static_cast<std::size_t>(std::stoul(sizes[s]));
    const auto& dora = cell(0, s);
    const auto& pilatus = cell(1, s);

    const std::string tag = sizes[s] + "B";
    report.add_series({"dora_" + tag, "us", dora});
    report.add_series({"pilatus_" + tag, "us", pilatus});

    const std::vector<std::vector<double>> groups = {dora, pilatus};
    const auto kw = stats::kruskal_wallis(groups);
    const double effect = stats::effect_size_cohens_d(dora, pilatus);
    report.add_comparison("dora_" + tag, "pilatus_" + tag, "Kruskal-Wallis", kw.p_value,
                          effect);

    const auto net = sim::make_dora().make_network();
    report.add_bound("dora_" + tag, "LogGP ideal one-way latency (us)",
                     net.ideal_transfer_time(0, 60, bytes) * 1e6);

    ds.add_row({0.0, static_cast<double>(bytes), stats::median(dora),
                stats::quantile(dora, 0.99), kw.p_value});
    ds.add_row({1.0, static_cast<double>(bytes), stats::median(pilatus),
                stats::quantile(pilatus, 0.99), kw.p_value});

    if (bytes == 64) {
      report.add_plot(core::render_box(
          std::vector<core::NamedSeries>{{"dora 64B", dora}, {"pilatus 64B", pilatus}},
          {.width = 64, .title = "64 B latency", .x_label = "us"}));
    }
  }

  // Tail behaviour via quantile regression on a thinned 64 B design
  // (~500 points: the dense simplex is O(n^2) per pivot). Same seeds as
  // the historical run: a dedicated 8000-sample campaign cell pair.
  const auto thin_us = [](const sim::Machine& machine) {
    const auto series = simmpi::pingpong_latency(machine, 8000, 64, 2024);
    std::vector<double> us;
    us.reserve(series.size());
    for (double v : series) us.push_back(v * 1e6);
    return us;
  };
  const auto dora64 = thin_us(sim::make_machine("dora"));
  const auto pil64 = thin_us(sim::make_machine("pilatus"));
  std::vector<double> y;
  std::vector<std::vector<double>> x;
  for (std::size_t i = 0; i < dora64.size(); i += 32) {
    y.push_back(dora64[i]);
    x.push_back({0.0});
    y.push_back(pil64[i]);
    x.push_back({1.0});
  }
  std::printf("tail analysis (quantile regression, pilatus - dora):\n");
  for (double tau : {0.1, 0.5, 0.9, 0.98}) {
    const auto fit = stats::quantile_regression(y, x, tau);
    if (fit.converged) {
      std::printf("  tau=%.2f  difference=%+.3f us\n", tau, fit.coefficients[1]);
    }
  }
  std::printf("\n");

  std::fputs(report.render().c_str(), stdout);
  std::fputs(core::ReportBuilder::render_audit(report.audit()).c_str(), stdout);

  const std::string csv = "latency_study.csv";
  ds.save_csv(csv);
  std::printf("\nsummary dataset written to %s (R: read.csv(f, comment.char='#'))\n",
              csv.c_str());
  // Full per-sample export in campaign layout; scibench_report regroups
  // it per grid cell (exec::load_measurements).
  run.samples_dataset().save_csv("latency_study_samples.csv");
  std::printf("per-sample campaign dataset written to latency_study_samples.csv\n");
  std::printf("campaign metrics snapshot written to latency_study_metrics.json\n");
  return 0;
}
