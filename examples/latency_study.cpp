// A complete two-system latency study on the simulated clusters: the
// workflow a paper comparing interconnects should follow -- now phrased
// as a sci::exec campaign, so the factorial design (Rule 9) is the
// executable artifact instead of prose around hand-rolled loops.
//
//   declare   system x message_bytes grid + fixed environment
//   measure   CampaignRunner shards the grid across workers; every cell
//             is pingpong_latency on a fresh simulated machine
//   analyze   normality diagnosis, median + CIs, Kruskal-Wallis,
//             effect size, quantile regression for tail behaviour
//   persist   CSV datasets with embedded experiment documentation
//   report    rule-audited text report with plots
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/plots.hpp"
#include "core/report.hpp"
#include "exec/interrupt.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile_regression.hpp"

using namespace sci;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stopping fixed|ci:WIDTH[@pNN]]\n"
               "  fixed (default): one 50k-sample replication per cell, the\n"
               "      historical fixed-seed study\n"
               "  ci:WIDTH: sequential stopping -- smaller replications are\n"
               "      added round by round until the median's 95%% rank CI\n"
               "      half-width falls below WIDTH (relative), per cell\n"
               "  ci:WIDTH@pNN: same, but converge the NN-th percentile\n"
               "      instead of the median (e.g. ci:0.1@p99 for tail\n"
               "      latency); NN in (0, 100)\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --stopping ci:W swaps the fixed single-replication design for the
  // round-structured sequential campaign: many small replications per
  // cell, each cell stopping as soon as its CI is tight enough.
  double ci_target = 0.0;
  double stop_quantile = 0.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stopping" && i + 1 < argc) {
      std::string value = argv[++i];
      if (value.rfind("ci:", 0) == 0) {
        // ci:WIDTH@pNN converges the NN-th percentile instead of the
        // median -- the tail-latency study design (Rule 8: report
        // percentiles when the tail is the claim).
        const std::size_t at = value.find("@p");
        if (at != std::string::npos) {
          const double pct = std::atof(value.c_str() + at + 2);
          if (!(pct > 0.0 && pct < 100.0)) return usage(argv[0]);
          stop_quantile = pct / 100.0;
          value.resize(at);
        }
        ci_target = std::atof(value.c_str() + 3);
        if (!(ci_target > 0.0)) return usage(argv[0]);
      } else if (value != "fixed") {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  const bool sequential = ci_target > 0.0;

  // Sequential mode measures in smaller units so the stopping rule has
  // replications to decide over; fixed mode keeps the historical 50k.
  const std::size_t kSamples = sequential ? 2'000 : 50'000;
  const std::vector<std::string> systems = {"dora", "pilatus"};
  const std::vector<std::string> sizes = {"64", "4096"};

  // The factorial design, declared once: it drives execution AND the
  // Rule 9 documentation in every report/CSV produced below.
  exec::CampaignSpec spec;
  spec.name = "latency_study";
  spec.description = "two-system ping-pong latency comparison";
  spec.base.set("system.dora", "simulated Cray XC40, Aries dragonfly (see sim/machine.cpp)")
      .set("system.pilatus", "simulated InfiniBand FDR fat tree")
      .set("samples", std::to_string(kSamples) + " per configuration, 16 warmup")
      .set("placement", "two ranks on distinct nodes, scattered allocation");
  spec.base.synchronization_method = "none (two-sided pingpong, rank-0 clock)";
  spec.base.summary_across_processes = "rank-0 half round-trip";
  spec.factors.push_back({"system", systems});
  spec.factors.push_back({"message_bytes", sizes});
  if (sequential) {
    // Replications must be independent for the pooled rank CI to mean
    // anything, so the per-(cell, rep) derived seeds stay in force here;
    // the fixed-seed override below is a fixed-mode-only artifact.
    spec.stopping = exec::StoppingPolicy::sequential_ci(ci_target, 4, 48);
    // Tail-percentile convergence (ci:WIDTH@pNN). The stopping rule's
    // rank CI machinery is quantile-generic; only the target changes.
    spec.stopping.quantile = stop_quantile;
  } else {
    // Reproduce the historical study: every cell ran with seed 2024.
    spec.seed_override = [](const exec::Config&, std::size_t) { return 2024ULL; };
  }

  exec::SimBackendOptions bopts;
  bopts.kernel = exec::SimKernel::kPingPong;
  bopts.samples = kSamples;
  bopts.scale = 1e6;  // report microseconds
  bopts.unit = "us";
  exec::SimBackend backend(bopts);

  // ^C / SIGTERM drains the grid instead of tearing the process down
  // mid-write; the metrics snapshot below still lands atomically.
  exec::install_interrupt_handlers();

  // Progress telemetry: a stderr heartbeat while the grid executes and a
  // machine-readable snapshot on completion (the campaign-smoke CI job
  // asserts this file exists and parses).
  exec::StderrHeartbeat heartbeat;
  exec::CampaignRunnerOptions ropts;
  ropts.progress = &heartbeat;
  ropts.heartbeat_period_s = 2.0;
  ropts.interrupt = exec::interrupt_flag();
  // Sequential runs write under their own stem so a fixed run's outputs
  // in the same directory survive a side-by-side comparison.
  const std::string stem = sequential ? "latency_study_seq" : "latency_study";
  ropts.metrics_path = stem + "_metrics.json";

  exec::CampaignRunner runner(backend, exec::Campaign(spec), ropts);
  const exec::CampaignResult run = runner.run();

  if (run.interrupted > 0) {
    // Partial grid: the analysis below would index missing cells.
    // Metrics already describe how far the run got; exit with the
    // shared resume convention instead.
    std::fprintf(stderr, "interrupted: %zu cell(s) not executed; rerun to complete\n",
                 run.interrupted);
    return exec::kInterruptedExitCode;
  }

  if (sequential) {
    // Per-cell stop decisions: the sequential analogue of "samples per
    // configuration" in the fixed design's environment block.
    std::printf("measurement control: %s (%zu round%s)\n",
                spec.stopping.describe().c_str(), run.rounds,
                run.rounds == 1 ? "" : "s");
    for (std::size_t c = 0; c < run.stopping.size(); ++c) {
      const auto& info = run.stopping[c];
      if (info.converged && info.reps < spec.stopping.max_reps) {
        std::printf("  config %zu: stopped early at %zu/%zu reps, CI +-%.1f%%\n", c,
                    info.reps, spec.stopping.max_reps,
                    info.rel_ci_half_width * 100.0);
      } else {
        std::printf("  config %zu: %s at %zu reps, CI +-%.1f%%\n", c,
                    info.stop_reason.c_str(), info.reps,
                    info.rel_ci_half_width * 100.0);
      }
    }
    std::printf("\n");
  }

  const core::Experiment e = run.experiment;
  core::Dataset ds(e, {"system", "bytes", "median_us", "q99_us", "kw_p"});
  core::ReportBuilder report(e);
  report.declare_units_convention();

  // Grid order is system-major; index cells as (system, size). Merging
  // pools all replications of a config -- identical to the single series
  // in the fixed one-rep design, the whole point under sequential
  // stopping.
  const auto cell = [&](std::size_t sys, std::size_t size) {
    return run.merged_series(sys * sizes.size() + size);
  };

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const std::size_t bytes = static_cast<std::size_t>(std::stoul(sizes[s]));
    const auto& dora = cell(0, s);
    const auto& pilatus = cell(1, s);

    const std::string tag = sizes[s] + "B";
    report.add_series({"dora_" + tag, "us", dora});
    report.add_series({"pilatus_" + tag, "us", pilatus});

    const std::vector<std::vector<double>> groups = {dora, pilatus};
    const auto kw = stats::kruskal_wallis(groups);
    const double effect = stats::effect_size_cohens_d(dora, pilatus);
    report.add_comparison("dora_" + tag, "pilatus_" + tag, "Kruskal-Wallis", kw.p_value,
                          effect);

    const auto net = sim::make_dora().make_network();
    report.add_bound("dora_" + tag, "LogGP ideal one-way latency (us)",
                     net.ideal_transfer_time(0, 60, bytes) * 1e6);

    // One sort per series feeds both rank statistics (PR 3 convention;
    // median() + quantile() would each re-sort the 50k-sample cell).
    const auto dora_sorted = stats::sorted_copy(dora);
    const auto pilatus_sorted = stats::sorted_copy(pilatus);
    ds.add_row({0.0, static_cast<double>(bytes), stats::quantile_sorted(dora_sorted, 0.5),
                stats::quantile_sorted(dora_sorted, 0.99), kw.p_value});
    ds.add_row({1.0, static_cast<double>(bytes),
                stats::quantile_sorted(pilatus_sorted, 0.5),
                stats::quantile_sorted(pilatus_sorted, 0.99), kw.p_value});

    if (bytes == 64) {
      report.add_plot(core::render_box(
          std::vector<core::NamedSeries>{{"dora 64B", dora}, {"pilatus 64B", pilatus}},
          {.width = 64, .title = "64 B latency", .x_label = "us"}));
    }
  }

  // Tail behaviour via quantile regression on a thinned 64 B design
  // (~500 points: the dense simplex is O(n^2) per pivot). Same seeds as
  // the historical run: a dedicated 8000-sample campaign cell pair.
  const auto thin_us = [](const sim::Machine& machine) {
    const auto series = simmpi::pingpong_latency(machine, 8000, 64, 2024);
    std::vector<double> us;
    us.reserve(series.size());
    for (double v : series) us.push_back(v * 1e6);
    return us;
  };
  const auto dora64 = thin_us(sim::make_machine("dora"));
  const auto pil64 = thin_us(sim::make_machine("pilatus"));
  std::vector<double> y;
  std::vector<std::vector<double>> x;
  for (std::size_t i = 0; i < dora64.size(); i += 32) {
    y.push_back(dora64[i]);
    x.push_back({0.0});
    y.push_back(pil64[i]);
    x.push_back({1.0});
  }
  std::printf("tail analysis (quantile regression, pilatus - dora):\n");
  for (double tau : {0.1, 0.5, 0.9, 0.98}) {
    const auto fit = stats::quantile_regression(y, x, tau);
    if (fit.converged) {
      std::printf("  tau=%.2f  difference=%+.3f us\n", tau, fit.coefficients[1]);
    }
  }
  std::printf("\n");

  std::fputs(report.render().c_str(), stdout);
  std::fputs(core::ReportBuilder::render_audit(report.audit()).c_str(), stdout);

  const std::string csv = stem + ".csv";
  ds.save_csv(csv);
  std::printf("\nsummary dataset written to %s (R: read.csv(f, comment.char='#'))\n",
              csv.c_str());
  // Full per-sample export in campaign layout; scibench_report regroups
  // it per grid cell (exec::load_measurements).
  run.samples_dataset().save_csv(stem + "_samples.csv");
  std::printf("per-sample campaign dataset written to %s_samples.csv\n", stem.c_str());
  std::printf("campaign metrics snapshot written to %s_metrics.json\n", stem.c_str());
  return 0;
}
