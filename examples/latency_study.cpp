// A complete two-system latency study on the simulated clusters: the
// workflow a paper comparing interconnects should follow.
//
//   measure   64 B / 4 KiB ping-pong on dora-sim and pilatus-sim
//   analyze   normality diagnosis, median + CIs, Kruskal-Wallis,
//             effect size, quantile regression for tail behaviour
//   persist   CSV datasets with embedded experiment documentation
//   report    rule-audited text report with plots
#include <cstdio>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/plots.hpp"
#include "core/report.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"
#include "stats/quantile_regression.hpp"

using namespace sci;

namespace {

std::vector<double> measure_us(const std::string& machine, std::size_t bytes,
                               std::size_t samples) {
  const auto series =
      simmpi::pingpong_latency(sim::make_machine(machine), samples, bytes, 2024);
  std::vector<double> us;
  us.reserve(series.size());
  for (double s : series) us.push_back(s * 1e6);
  return us;
}

}  // namespace

int main() {
  constexpr std::size_t kSamples = 50'000;
  const std::vector<std::size_t> sizes = {64, 4096};

  core::Experiment e;
  e.name = "latency_study";
  e.description = "two-system ping-pong latency comparison";
  e.set("system.dora", "simulated Cray XC40, Aries dragonfly (see sim/machine.cpp)")
      .set("system.pilatus", "simulated InfiniBand FDR fat tree")
      .set("samples", std::to_string(kSamples) + " per configuration, 16 warmup")
      .set("placement", "two ranks on distinct nodes, scattered allocation");
  e.add_factor("system", {"dora", "pilatus"});
  e.add_factor("message_bytes", {"64", "4096"});
  e.synchronization_method = "none (two-sided pingpong, rank-0 clock)";
  e.summary_across_processes = "rank-0 half round-trip";

  core::Dataset ds(e, {"system", "bytes", "median_us", "q99_us", "kw_p"});
  core::ReportBuilder report(e);
  report.declare_units_convention();

  for (std::size_t bytes : sizes) {
    const auto dora = measure_us("dora", bytes, kSamples);
    const auto pilatus = measure_us("pilatus", bytes, kSamples);

    const std::string tag = std::to_string(bytes) + "B";
    report.add_series({"dora_" + tag, "us", dora});
    report.add_series({"pilatus_" + tag, "us", pilatus});

    const std::vector<std::vector<double>> groups = {dora, pilatus};
    const auto kw = stats::kruskal_wallis(groups);
    const double effect = stats::effect_size_cohens_d(dora, pilatus);
    report.add_comparison("dora_" + tag, "pilatus_" + tag, "Kruskal-Wallis", kw.p_value,
                          effect);

    const auto net = sim::make_dora().make_network();
    report.add_bound("dora_" + tag, "LogGP ideal one-way latency (us)",
                     net.ideal_transfer_time(0, 60, bytes) * 1e6);

    ds.add_row({0.0, static_cast<double>(bytes), stats::median(dora),
                stats::quantile(dora, 0.99), kw.p_value});
    ds.add_row({1.0, static_cast<double>(bytes), stats::median(pilatus),
                stats::quantile(pilatus, 0.99), kw.p_value});

    if (bytes == 64) {
      report.add_plot(core::render_box(
          std::vector<core::NamedSeries>{{"dora 64B", dora}, {"pilatus 64B", pilatus}},
          {.width = 64, .title = "64 B latency", .x_label = "us"}));
    }
  }

  // Tail behaviour via quantile regression on a thinned 64 B design
  // (~500 points: the dense simplex is O(n^2) per pivot).
  const auto dora64 = measure_us("dora", 64, 8000);
  const auto pil64 = measure_us("pilatus", 64, 8000);
  std::vector<double> y;
  std::vector<std::vector<double>> x;
  for (std::size_t i = 0; i < dora64.size(); i += 32) {
    y.push_back(dora64[i]);
    x.push_back({0.0});
    y.push_back(pil64[i]);
    x.push_back({1.0});
  }
  std::printf("tail analysis (quantile regression, pilatus - dora):\n");
  for (double tau : {0.1, 0.5, 0.9, 0.98}) {
    const auto fit = stats::quantile_regression(y, x, tau);
    if (fit.converged) {
      std::printf("  tau=%.2f  difference=%+.3f us\n", tau, fit.coefficients[1]);
    }
  }
  std::printf("\n");

  std::fputs(report.render().c_str(), stdout);
  std::fputs(core::ReportBuilder::render_audit(report.audit()).c_str(), stdout);

  const std::string csv = "latency_study.csv";
  ds.save_csv(csv);
  std::printf("\nsummary dataset written to %s (R: read.csv(f, comment.char='#'))\n",
              csv.c_str());
  return 0;
}
