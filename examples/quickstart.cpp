// Quickstart: statistically sound measurement of a real kernel on the
// host machine in ~60 lines.
//
//   1. calibrate a timer and verify it suits the interval (Sec. 4.2.1);
//   2. measure a real LU factorization adaptively until the 95% CI of
//      the median is within 5% (Sec. 4.2.2);
//   3. summarize per the rules (deterministic? normal? CIs) and print
//      an interpretable report (Rules 5, 6, 9, 12).
#include <cstdio>
#include <vector>

#include "core/adaptive.hpp"
#include "core/experiment.hpp"
#include "core/plots.hpp"
#include "core/report.hpp"
#include "hpl/lu.hpp"
#include "timer/calibration.hpp"
#include "timer/timer.hpp"

using namespace sci;

int main() {
  // --- 1. timer selection and self-check --------------------------------
  const timer::TscClock clock;
  const auto cal = timer::calibrate(clock);
  std::printf("timer '%s': resolution %.1f ns, overhead %.1f ns\n",
              cal.clock_name.c_str(), cal.resolution_ns, cal.overhead_ns);

  // --- 2. the measured kernel: LU factorization of a 96x96 system -------
  constexpr std::size_t kN = 96;
  const auto measure_once = [&] {
    hpl::Matrix a(kN, kN);
    std::vector<double> b;
    hpl::fill_linear_system(a, b, 42);  // same input every run (fixed factor)
    const timer::Stopwatch sw(clock);
    const auto lu = hpl::lu_factorize(a, 32);
    const double ns = sw.elapsed_ns();
    (void)lu;
    return ns;
  };

  const auto check = timer::check_interval(cal, measure_once());
  if (!check.message.empty()) std::printf("timer check: %s\n", check.message.c_str());

  core::AdaptiveOptions opts;
  opts.relative_error = 0.05;  // stop when the CI is within +-5% of the median
  opts.confidence = 0.95;
  opts.warmup = 3;             // drop cold-cache iterations (Sec. 4.1.2)
  opts.max_samples = 2000;
  const auto result = core::measure_adaptive(measure_once, opts);
  std::printf("adaptive sampling: %zu samples, %s (warmup discarded: %zu)\n",
              result.samples.size(), result.stop_reason.c_str(),
              result.warmup_discarded);

  // --- 3. rule-conforming report ----------------------------------------
  core::Experiment e;
  e.name = "quickstart_lu";
  e.description = "blocked LU factorization, n=96, block=32";
  e.set("kernel", "right-looking LU, partial pivoting")
      .set("timer", std::string(clock.name()))
      .set("adaptive", "95% CI(median) within 5%");
  e.add_factor("n", {"96"});

  core::ReportBuilder report(e);
  report.add_series({"lu_time", "ns", result.samples});
  report.declare_units_convention();
  // Rule 11: a simple lower bound on runtime -- the LU flop count at an
  // optimistic 32 flop/cycle (AVX-512 FMA width) using the calibrated
  // TSC period as the cycle time.
  if (clock.ns_per_tick() > 0.0) {
    report.add_bound("lu_time", "2n^3/3 flop at 32 flop/cycle (ns)",
                     hpl::lu_flop_count(kN) / 32.0 * clock.ns_per_tick());
  }
  report.add_plot(core::render_density(
      result.samples, {.width = 64, .height = 8, .title = "LU runtime density",
                       .x_label = "ns"}));
  std::fputs(report.render().c_str(), stdout);
  std::fputs(core::ReportBuilder::render_audit(report.audit()).c_str(), stdout);
  return 0;
}
