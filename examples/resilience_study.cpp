// A fault-tolerant campaign with crash-safe checkpoint/resume: the
// workflow for measurement runs that are too long (or too flaky) to
// assume a clean single-shot execution.
//
//   declare   system x message_bytes grid, with fault-injected machine
//             variants ("dora" vs "dora+chaos") as a first-class factor
//   measure   CampaignRunner with a journal: every finished cell is
//             appended to an on-disk log; killing the process and
//             rerunning with the same --journal resumes exactly where
//             it stopped and exports byte-identical CSVs
//   contain   backend failures are retried (deterministic attempt
//             seeds) and surviving failures are accounted per cell in
//             the CSV header, not fatal
//
// Exit codes: 0 = campaign complete, 3 = interrupted by --budget (the
// CI smoke job uses --budget as a deterministic stand-in for `kill`).
//
//   resilience_study [--journal PATH] [--csv PATH] [--workers N]
//                    [--budget K] [--faults] [--metrics PATH]
//                    [--heartbeat SECONDS] [--stopping fixed|ci:WIDTH]
//
// --stopping ci:W replaces the fixed 3 replications per cell with
// sequential stopping (min 3, max 24 reps, median CI half-width target
// W); journaled resume works identically -- stop decisions are recorded
// in the journal and re-verified on replay.
//
// --metrics writes the runner's final ProgressSnapshot (completed,
// failed, retried, journal hits, per-worker throughput) as canonical
// JSON -- also on interruption, so an operator can see how far a killed
// campaign got. --heartbeat prints one progress line to stderr every
// SECONDS while running.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/interrupt.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"

using namespace sci;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--journal PATH] [--csv PATH] [--workers N] [--budget K] "
               "[--faults] [--metrics PATH] [--heartbeat SECONDS] "
               "[--stopping fixed|ci:WIDTH]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string csv_path;
  std::string metrics_path;
  double heartbeat_s = 0.0;
  std::size_t workers = 2;
  std::size_t budget = 0;
  bool faults = false;
  double ci_target = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--journal") {
      journal_path = value();
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--workers") {
      workers = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--budget") {
      budget = static_cast<std::size_t>(std::strtoull(value(), nullptr, 10));
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--heartbeat") {
      heartbeat_s = std::strtod(value(), nullptr);
    } else if (arg == "--stopping") {
      const std::string policy = value();
      if (policy.rfind("ci:", 0) == 0) {
        ci_target = std::strtod(policy.c_str() + 3, nullptr);
        if (!(ci_target > 0.0)) return usage(argv[0]);
      } else if (policy != "fixed") {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  exec::CampaignSpec spec;
  spec.name = "resilience_study";
  spec.description = "fault-injected latency campaign with journaled resume";
  spec.base.set("placement", "two ranks on distinct nodes, scattered allocation")
      .set("fault.model", faults ? "dora+chaos: 2% drop w/ 50us retransmit, "
                                   "15% link degrade x3, 10% straggler x4"
                                 : "none");
  spec.base.synchronization_method = "none (two-sided pingpong, rank-0 clock)";
  spec.factors.push_back(
      {"system", faults ? std::vector<std::string>{"dora", "dora+chaos"}
                        : std::vector<std::string>{"dora"}});
  spec.factors.push_back({"message_bytes", {"64", "1024", "16384"}});
  spec.replications = 3;
  spec.seed = 7;
  if (ci_target > 0.0) {
    spec.stopping = exec::StoppingPolicy::sequential_ci(ci_target, 3, 24);
  }

  exec::SimBackendOptions bopts;
  bopts.kernel = exec::SimKernel::kPingPong;
  bopts.samples = 2000;
  bopts.warmup = 16;
  bopts.scale = 1e6;
  bopts.unit = "us";
  exec::SimBackend backend(bopts);

  // ^C / SIGTERM drains the campaign cooperatively: finished cells are
  // already journaled, the metrics snapshot still lands, and the exit-3
  // resume convention below covers signals exactly like --budget.
  exec::install_interrupt_handlers();

  exec::StderrHeartbeat heartbeat;
  exec::CampaignRunnerOptions ropts;
  ropts.workers = workers;
  ropts.journal_path = journal_path;
  ropts.cell_budget = budget;
  ropts.max_attempts = 2;
  ropts.metrics_path = metrics_path;
  ropts.interrupt = exec::interrupt_flag();
  if (heartbeat_s > 0.0) {
    ropts.progress = &heartbeat;
    ropts.heartbeat_period_s = heartbeat_s;
  }
  exec::CampaignRunner runner(backend, exec::Campaign(spec), ropts);
  const exec::CampaignResult result = runner.run();

  std::printf("cells=%zu executed=%zu journal_hits=%zu cache_hits=%zu failed=%zu "
              "interrupted=%zu retries=%zu\n",
              result.cells.size(), result.executed, result.journal_hits,
              result.cache_hits, result.failed, result.interrupted, result.retries);
  if (result.sequential) {
    std::size_t converged = 0;
    for (const auto& info : result.stopping) converged += info.converged ? 1 : 0;
    std::printf("stopping: %zu/%zu configs converged over %zu rounds\n", converged,
                result.stopping.size(), result.rounds);
    for (std::size_t c = 0; c < result.stopping.size(); ++c) {
      const auto& info = result.stopping[c];
      std::printf("  config %zu: %zu reps (%s)\n", c, info.reps,
                  info.stop_reason.c_str());
    }
  }

  if (!csv_path.empty()) {
    result.samples_dataset().save_csv(csv_path);
    std::printf("samples -> %s\n", csv_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::printf("metrics -> %s\n", metrics_path.c_str());
  }
  if (result.interrupted > 0) {
    std::printf("interrupted: rerun with the same --journal to resume\n");
    return exec::kInterruptedExitCode;
  }
  return result.failed > 0 ? 2 : 0;
}
