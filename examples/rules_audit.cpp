// Demonstrates the twelve-rule audit as a review tool: the same
// measurement reported two ways -- the sloppy way the paper's survey
// found to be the norm, and the rule-conforming way -- with the audit
// verdicts side by side. Program committees could run exactly this
// checklist (Section 1: "Editorial boards and program committees may
// use this as a basis for developing guidelines for reviewers").
#include <cstdio>
#include <vector>

#include "core/plots.hpp"
#include "core/report.hpp"
#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main() {
  const auto dora = simmpi::pingpong_latency(sim::make_dora(), 20000, 64, 5);
  const auto pilatus = simmpi::pingpong_latency(sim::make_pilatus(), 20000, 64, 5);
  std::vector<double> dora_us, pilatus_us;
  for (double s : dora) dora_us.push_back(s * 1e6);
  for (double s : pilatus) pilatus_us.push_back(s * 1e6);

  // ---- the sloppy report ------------------------------------------------
  std::printf("################ sloppy report ################\n");
  std::printf("\"our system is %.2fx faster\"  (no base case, no spread, no setup)\n\n",
              stats::arithmetic_mean(pilatus_us) / stats::arithmetic_mean(dora_us));

  core::Experiment sloppy_exp;
  sloppy_exp.name = "sloppy";
  sloppy_exp.uses_subset = true;  // only the flattering configuration, no reason
  core::ReportBuilder sloppy(sloppy_exp);
  sloppy.add_series({"latency", "us", dora_us});
  core::SpeedupReport bad_speedup;
  bad_speedup.base_case = core::BaseCase::kSingleParallelProcess;
  bad_speedup.base_absolute = 0.0;  // Rule 1 violation: no absolute base
  bad_speedup.processes = {2};
  bad_speedup.speedups = {1.1};
  sloppy.add_speedup(bad_speedup);

  const auto sloppy_audit = sloppy.audit();
  std::fputs(core::ReportBuilder::render_audit(sloppy_audit).c_str(), stdout);
  int sloppy_score = 0, sloppy_applicable = 0;
  for (const auto& c : sloppy_audit) {
    if (c.applicable) {
      ++sloppy_applicable;
      sloppy_score += c.satisfied;
    }
  }
  std::printf("score: %d/%d applicable rules satisfied\n\n", sloppy_score,
              sloppy_applicable);

  // ---- the rule-conforming report ----------------------------------------
  std::printf("################ rule-conforming report ################\n");
  core::Experiment good_exp;
  good_exp.name = "interpretable_comparison";
  good_exp.description = "64 B ping-pong, dora-sim vs pilatus-sim";
  good_exp.set("hardware", "simulated XC40 dragonfly vs FDR fat tree")
      .set("software", "scibench 1.0, seeds documented in source")
      .set("config", "20000 samples, 16 warmup, scattered allocation");
  good_exp.add_factor("system", {"dora", "pilatus"});
  good_exp.synchronization_method = "none (two-sided pingpong)";
  good_exp.summary_across_processes = "rank-0 half round-trip";

  core::ReportBuilder good(good_exp);
  good.add_series({"dora", "us", dora_us});
  good.add_series({"pilatus", "us", pilatus_us});
  good.declare_units_convention();
  const std::vector<std::vector<double>> groups = {dora_us, pilatus_us};
  const auto kw = stats::kruskal_wallis(groups);
  good.add_comparison("dora", "pilatus", "Kruskal-Wallis", kw.p_value,
                      stats::effect_size_cohens_d(dora_us, pilatus_us));
  good.add_bound("dora", "LogGP ideal (us)",
                 sim::make_dora().make_network().ideal_transfer_time(0, 60, 64) * 1e6);
  good.add_plot(core::render_box(
      std::vector<core::NamedSeries>{{"dora", dora_us}, {"pilatus", pilatus_us}},
      {.width = 60, .title = "latency (us)", .x_label = ""}));
  core::SpeedupReport good_speedup = bad_speedup;
  good_speedup.base_absolute = stats::median(dora_us);
  good_speedup.base_unit = "us median latency";
  good.add_speedup(good_speedup);

  const auto good_audit = good.audit();
  std::fputs(core::ReportBuilder::render_audit(good_audit).c_str(), stdout);
  int good_score = 0, good_applicable = 0;
  for (const auto& c : good_audit) {
    if (c.applicable) {
      ++good_applicable;
      good_score += c.satisfied;
    }
  }
  std::printf("score: %d/%d applicable rules satisfied\n", good_score, good_applicable);
  return 0;
}
