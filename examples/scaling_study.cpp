// A strong-scaling study done right: measured medians with CIs at every
// process count, Rule 1-conforming speedups, and the three bound models
// of Section 5.1 to put the measurements into perspective. The process
// counts are a sci::exec campaign factor: the grid drives both the
// execution and the Rule 9 documentation.
#include <cstdio>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/dataset.hpp"
#include "core/plots.hpp"
#include "core/report.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

using namespace sci;

int main() {
  const double base_s = 50e-3;
  const double serial_fraction = 0.02;
  const std::vector<int> counts = {1, 2, 4, 8, 16, 32, 64};
  constexpr std::size_t kReps = 20;

  exec::CampaignSpec spec;
  spec.name = "scaling_study";
  spec.description = "strong scaling of a compute+reduce kernel on daint-sim";
  spec.base.set("machine", "simulated Cray XC30 (dragonfly, LogGP + noise models)")
      .set("kernel", "embarrassingly parallel work + final binomial reduce")
      .set("repetitions", std::to_string(kReps) + " per process count");
  spec.base.scaling = core::ScalingMode::kStrong;
  spec.base.synchronization_method = "job start (single launch per repetition)";
  spec.base.summary_across_processes = "max (completion of the slowest rank)";
  {
    std::vector<std::string> levels;
    for (int p : counts) levels.push_back(std::to_string(p));
    spec.factors.push_back({"processes", std::move(levels)});
  }
  // Reproduce the historical study's hand-picked per-count seeds.
  spec.seed_override = [](const exec::Config& c, std::size_t) {
    return 900ULL + static_cast<std::uint64_t>(c.level_int("processes"));
  };

  exec::SimBackendOptions bopts;
  bopts.kernel = exec::SimKernel::kPiScaling;
  bopts.machine = "daint";
  bopts.base_seconds = base_s;
  bopts.serial_fraction = serial_fraction;
  bopts.repetitions = kReps;
  exec::SimBackend backend(bopts);

  exec::CampaignRunner runner(backend, exec::Campaign(spec));
  const exec::CampaignResult run = runner.run();

  const core::Experiment e = run.experiment;
  const core::ScalingBounds bounds(base_s, serial_fraction,
                                   core::daint_reduction_overhead);
  core::Dataset ds(e, {"p", "median_s", "ci_lo", "ci_hi", "speedup", "amdahl_bound"});

  core::SpeedupReport speedup;
  speedup.base_case = core::BaseCase::kSingleParallelProcess;
  speedup.base_unit = "s";

  std::printf("%4s %12s %24s %9s %12s\n", "p", "median [ms]", "95% CI [ms]", "speedup",
              "amdahl-max");
  double base_measured = base_s;
  core::XYSeries measured{"measured", 'o', {}, {}};
  core::XYSeries amdahl{"amdahl bound", '-', {}, {}};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const int p = counts[i];
    const auto& times = run.series(i);
    const double med = stats::median(times);
    const auto ci = stats::median_confidence_interval(times, 0.95);
    if (p == 1) base_measured = med;
    const double sp = base_measured / med;
    std::printf("%4d %12.3f      [%8.3f, %8.3f] %9.2f %12.2f\n", p, med * 1e3,
                ci.lower * 1e3, ci.upper * 1e3, sp, bounds.speedup_amdahl(p));
    ds.add_row({static_cast<double>(p), med, ci.lower, ci.upper, sp,
                bounds.speedup_amdahl(p)});
    speedup.processes.push_back(p);
    speedup.speedups.push_back(sp);
    measured.x.push_back(p);
    measured.y.push_back(sp);
    amdahl.x.push_back(p);
    amdahl.y.push_back(bounds.speedup_amdahl(p));
  }
  speedup.base_absolute = base_measured;

  core::ReportBuilder report(e);
  report.declare_units_convention();
  report.add_speedup(speedup);
  report.add_bound("speedup", "ideal linear", static_cast<double>(counts.back()));
  report.add_bound("speedup", "Amdahl limit (1/b)", 1.0 / serial_fraction);
  core::PlotOptions opts;
  opts.title = "speedup vs processes";
  opts.x_label = "processes";
  opts.height = 12;
  report.add_plot(
      core::render_xy(std::vector<core::XYSeries>{measured, amdahl}, opts));
  std::printf("\n%s", report.render().c_str());
  std::fputs(core::ReportBuilder::render_audit(report.audit()).c_str(), stdout);

  ds.save_csv("scaling_study.csv");
  std::printf("\ndataset written to scaling_study.csv\n");
  return 0;
}
