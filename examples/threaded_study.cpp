// Shared-memory measurement study: a STREAM-triad kernel on a real
// thread team with the window-based start synchronization the paper's
// library provides for OpenMP (Section 6). Demonstrates Rule 10 for
// threads (ANOVA across threads before summarizing), Rule 11 (roofline
// bound from measured copy bandwidth), and the usual Rule 5/6 summary
// machinery -- all on genuine host measurements, not the simulator.
//
// The max-across-threads series is produced through exec::
// ThreadedBackend (a one-cell campaign); the per-thread ANOVA runs on a
// direct threads::measure_threaded call since it needs the raw
// per-thread matrix.
#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "exec/runner.hpp"
#include "exec/threaded_backend.hpp"
#include "stats/compare.hpp"
#include "stats/descriptive.hpp"
#include "threads/measure.hpp"
#include "timer/timer.hpp"

using namespace sci;

int main() {
  constexpr std::size_t kN = 1 << 20;  // 8 MiB per array: out of L2
  constexpr std::size_t kThreads = 2;

  // One triad working set per thread: a[i] = b[i] + s * c[i].
  std::vector<std::vector<double>> a(kThreads, std::vector<double>(kN, 1.0));
  std::vector<std::vector<double>> b(kThreads, std::vector<double>(kN, 2.0));
  std::vector<std::vector<double>> c(kThreads, std::vector<double>(kN, 3.0));

  const auto kernel = [&](std::size_t id) {
    auto& ai = a[id];
    const auto& bi = b[id];
    const auto& ci = c[id];
    for (std::size_t i = 0; i < kN; ++i) ai[i] = bi[i] + 3.0 * ci[i];
  };

  threads::ThreadedMeasurementOptions opts;
  opts.threads = kThreads;
  opts.iterations = 40;
  opts.warmup = 5;
  opts.window_s = 1e-3;

  // Rule 10 for threads: are the per-thread timings one population?
  const auto m = threads::measure_threaded(kernel, opts);
  std::vector<std::vector<double>> groups;
  for (std::size_t t = 0; t < kThreads; ++t) groups.push_back(m.thread_series(t));
  const auto anova = stats::one_way_anova(groups);
  std::printf("ANOVA across threads: F=%.2f p=%.3f -> %s\n", anova.f_statistic,
              anova.p_value,
              anova.reject(0.05)
                  ? "threads differ; report per-thread data or the max"
                  : "threads are one population; a single summary is fine");
  std::printf("window-sync start skew: median %.1f us\n\n",
              stats::median(m.start_skew_ns) / 1e3);

  // The reported series: one campaign cell through ThreadedBackend
  // (workers = 1 -- the backend spawns its own team; sharding cells
  // across workers would time contending teams, violating Rule 4).
  exec::ThreadedBackendOptions bopts;
  bopts.kernel = kernel;
  bopts.measure = opts;
  exec::ThreadedBackend backend(bopts);

  exec::CampaignSpec spec;
  spec.name = "threaded_triad";
  spec.description = "STREAM triad on a spin-barrier thread team";
  spec.base.set("kernel", "a[i] = b[i] + 3 c[i], n = 2^20 doubles/thread")
      .set("sync", "spin barrier + delay window (1 ms)");
  spec.base.parallel_measurement = true;
  spec.base.synchronization_method = "delay window over shared clock";
  spec.base.summary_across_processes = "max across threads";
  spec.factors.push_back({"threads", {std::to_string(kThreads)}});

  exec::CampaignRunnerOptions ropts;
  ropts.workers = 1;
  exec::CampaignRunner runner(backend, exec::Campaign(spec), ropts);
  const exec::CampaignResult run = runner.run();
  const auto& maxima = run.series(0);

  // Achieved triad bandwidth from the max-across-threads summary.
  const double med_ns = stats::median(maxima);
  const double bytes_moved = 3.0 * sizeof(double) * static_cast<double>(kN);
  const double gbps = bytes_moved * kThreads / med_ns;  // bytes/ns = GB/s
  std::printf("triad: median %.2f ms per sweep -> ~%.1f GB/s aggregate\n\n",
              med_ns / 1e6, gbps);

  core::ReportBuilder report(run.experiment);
  report.add_series({"triad_sweep", "ns", maxima});
  report.declare_units_convention();
  // Rule 11: the triad cannot beat 2 flop per 24 bytes at memory speed;
  // parameterize the roof with the bandwidth we just measured (Sec. 5.1
  // suggests microbenchmark-calibrated peaks when vendor numbers are far
  // from reality).
  report.add_bound("triad_sweep", "bytes / measured-bandwidth lower bound (ns)",
                   bytes_moved * kThreads / gbps);
  std::fputs(report.render().c_str(), stdout);
  std::fputs(core::ReportBuilder::render_audit(report.audit()).c_str(), stdout);
  return 0;
}
