#include "ci/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sci::ci {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.1f%%", fraction * 100.0);
  return buf;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Inline SVG polyline of the series medians, scaled to fit; the
/// change-point (if any) gets a vertical marker, the last point a dot.
std::string sparkline_svg(const MetricSeries& series, const Finding& finding) {
  const std::vector<double> ys = series.medians();
  const int w = 240, h = 48, pad = 4;
  std::string svg = "<svg width=\"" + std::to_string(w) + "\" height=\"" +
                    std::to_string(h) + "\" viewBox=\"0 0 " + std::to_string(w) + " " +
                    std::to_string(h) + "\">";
  if (ys.size() >= 2) {
    double lo = ys[0], hi = ys[0];
    for (double y : ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    auto px = [&](std::size_t i) {
      return pad + static_cast<double>(i) * (w - 2 * pad) /
                       static_cast<double>(ys.size() - 1);
    };
    auto py = [&](double y) { return h - pad - (y - lo) * (h - 2 * pad) / span; };

    if (finding.changepoint) {
      char line[160];
      std::snprintf(line, sizeof line,
                    "<line x1=\"%.1f\" y1=\"0\" x2=\"%.1f\" y2=\"%d\" "
                    "stroke=\"#d33\" stroke-dasharray=\"3,2\"/>",
                    px(finding.changepoint_index), px(finding.changepoint_index), h);
      svg += line;
    }
    svg += "<polyline fill=\"none\" stroke=\"#36c\" stroke-width=\"1.5\" points=\"";
    for (std::size_t i = 0; i < ys.size(); ++i) {
      char pt[48];
      std::snprintf(pt, sizeof pt, "%.1f,%.1f ", px(i), py(ys[i]));
      svg += pt;
    }
    svg += "\"/>";
    const char* dot_color =
        finding.verdict == Verdict::kRegression ? "#d33" : "#36c";
    char dot[120];
    std::snprintf(dot, sizeof dot, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"%s\"/>",
                  px(ys.size() - 1), py(ys.back()), dot_color);
    svg += dot;
  }
  svg += "</svg>";
  return svg;
}

}  // namespace

std::string render_markdown_dashboard(const std::vector<Finding>& findings,
                                      const std::vector<MetricSeries>& series) {
  std::string out;
  out += "# Performance history\n\n";
  if (findings.empty()) {
    out += "No recorded metrics.\n";
    return out;
  }
  out += "| bench | metric | verdict | latest | baseline | change | points | flags |\n";
  out += "|---|---|---|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::string flags;
    if (f.ci_disjoint) flags += "ci-disjoint ";
    if (f.changepoint) flags += "step ";
    if (f.tail_step) flags += "tail-step ";
    if (f.trend) flags += "trend ";
    if (f.baseline_ci_degenerate) flags += "degenerate-baseline-ci ";
    if (flags.empty()) flags = "-";
    out += "| " + f.bench + " | " + f.metric + " | " + to_string(f.verdict) + " | " +
           fmt(f.latest_median) + " " + f.unit + " | " + fmt(f.baseline_median) + " " +
           f.unit + " | " + fmt_pct(f.change_fraction) + " | " +
           std::to_string(f.points) + " | " + flags + " |\n";
    (void)series;
  }
  bool any_notes = false;
  for (const Finding& f : findings) {
    if (f.verdict == Verdict::kStable) continue;
    if (!any_notes) {
      out += "\n## Notes\n\n";
      any_notes = true;
    }
    out += "- **" + f.bench + " / " + f.metric + "** (" + to_string(f.verdict) +
           "): " + f.note;
    if (f.changepoint) {
      out += " [step at point " + std::to_string(f.changepoint_index) + ", shift " +
             fmt_pct(f.changepoint_shift) + ", p=" + fmt(f.changepoint_p) + "]";
    }
    if (f.tail_step) {
      out += " [tail step over last " + std::to_string(f.tail_k) + ", shift " +
             fmt_pct(f.tail_shift) + ", p=" + fmt(f.tail_p) + "]";
    }
    out += "\n";
  }
  return out;
}

std::string render_html_dashboard(const std::vector<Finding>& findings,
                                  const std::vector<MetricSeries>& series) {
  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">";
  out += "<title>scibench performance history</title><style>";
  out += "body{font-family:sans-serif;margin:2em;}table{border-collapse:collapse;}";
  out += "td,th{border:1px solid #ccc;padding:4px 8px;text-align:left;}";
  out += "tr.regression{background:#fee;}tr.improvement{background:#efe;}";
  out += ".note{color:#555;font-size:0.85em;}";
  out += "</style></head><body>\n<h1>scibench performance history</h1>\n";
  if (findings.empty()) {
    out += "<p>No recorded metrics.</p>\n</body></html>\n";
    return out;
  }
  out += "<table>\n<tr><th>bench</th><th>metric</th><th>verdict</th><th>latest</th>"
         "<th>baseline</th><th>change</th><th>history</th></tr>\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const char* row_class = f.verdict == Verdict::kRegression  ? " class=\"regression\""
                            : f.verdict == Verdict::kImprovement ? " class=\"improvement\""
                                                                 : "";
    out += "<tr";
    out += row_class;
    out += "><td>" + html_escape(f.bench) + "</td><td>" + html_escape(f.metric) +
           "</td><td>" + to_string(f.verdict) + "</td><td>" + fmt(f.latest_median) + " " +
           html_escape(f.unit) + "</td><td>" + fmt(f.baseline_median) + " " +
           html_escape(f.unit) + "</td><td>" + fmt_pct(f.change_fraction) + "</td><td>";
    if (i < series.size()) out += sparkline_svg(series[i], f);
    out += "<div class=\"note\">" + html_escape(f.note) + "</div></td></tr>\n";
  }
  out += "</table>\n</body></html>\n";
  return out;
}

}  // namespace sci::ci
