// Dashboard rendering for the performance-history gate: a markdown
// table for PR logs and a self-contained HTML page (inline SVG
// sparklines, no external assets) for artifact browsing.
#pragma once

#include <string>
#include <vector>

#include "ci/detect.hpp"
#include "ci/history.hpp"

namespace sci::ci {

/// Markdown report: one table row per metric series (verdict, latest,
/// baseline, change, change-point/trend flags) followed by a notes
/// list for anything that is not stable. `findings` and `series` must
/// be index-aligned (both produced from the same HistoryStore).
[[nodiscard]] std::string render_markdown_dashboard(const std::vector<Finding>& findings,
                                                    const std::vector<MetricSeries>& series);

/// Self-contained HTML page with an inline SVG sparkline per series
/// (medians over append order, change-point marked when detected).
[[nodiscard]] std::string render_html_dashboard(const std::vector<Finding>& findings,
                                                const std::vector<MetricSeries>& series);

}  // namespace sci::ci
