#include "ci/detect.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <span>

#include "stats/compare.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/parallel.hpp"
#include "stats/quantile_regression.hpp"

namespace sci::ci {

namespace {

/// Rank CI over a *sorted* window of medians: the nonparametric interval
/// when n permits, the observed range otherwise (same fallback the bench
/// harnesses use for tiny n).
stats::Interval interval_over_sorted(std::span<const double> sorted) {
  if (sorted.size() > 5) {
    return stats::quantile_confidence_interval_sorted(sorted, 0.5, 0.95);
  }
  return stats::Interval{sorted.front(), sorted.back(), 0.95};
}

/// Is `change` (signed relative) in the bad direction for this metric?
bool is_worse(double change, obs::Improve improve) noexcept {
  return improve == obs::Improve::kLower ? change > 0.0 : change < 0.0;
}

double relative_change(double value, double base) noexcept {
  const double denom = std::fabs(base);
  if (denom == 0.0) return value == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return (value - base) / denom;
}

}  // namespace

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kInsufficientHistory: return "insufficient-history";
    case Verdict::kStable: return "stable";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kRegression: return "REGRESSION";
  }
  return "?";
}

Finding analyze_series(const MetricSeries& series, const DetectionOptions& options) {
  Finding finding;
  finding.bench = series.bench;
  finding.metric = series.metric;
  finding.unit = series.unit;
  finding.improve = series.improve;
  finding.points = series.points.size();

  const std::vector<double> medians = series.medians();
  const std::size_t n = medians.size();
  if (n > 0) finding.latest_median = medians.back();
  if (n < std::max<std::size_t>(options.min_points, 2)) {
    finding.note = "only " + std::to_string(n) + " point(s) recorded; need " +
                   std::to_string(options.min_points);
    return finding;
  }

  // ---- CI-overlap gate: latest point vs the baseline window. -------
  const std::size_t window = std::min<std::size_t>(options.baseline_window, n - 1);
  const std::span<const double> baseline(medians.data() + (n - 1 - window), window);
  // One sort feeds the baseline median, the rank CI, and the extremes
  // (PR 3 convention: sort once, then quantile_sorted).
  const auto sorted_baseline = stats::sorted_copy(baseline);
  finding.baseline_median = stats::quantile_sorted(sorted_baseline, 0.5);
  finding.change_fraction = relative_change(finding.latest_median, finding.baseline_median);

  const stats::Interval baseline_ci = interval_over_sorted(sorted_baseline);
  // Detect the blind spot, not just its tiny-n cause: rank CIs over few
  // points clamp to the extremes even when n > 5 lets the formula run.
  // A constant window (min == max) is a zero-width interval, not a wide
  // one, so it does not qualify.
  const double baseline_min = sorted_baseline.front();
  const double baseline_max = sorted_baseline.back();
  finding.baseline_ci_degenerate = baseline_min < baseline_max &&
                                   baseline_ci.lower <= baseline_min &&
                                   baseline_ci.upper >= baseline_max;
  const HistoryPoint& latest = series.points.back();
  // A tiny-n latest point carries a min/max or degenerate CI; never let
  // a NaN bound read as "disjoint".
  stats::Interval latest_ci{latest.metric.ci_lo, latest.metric.ci_hi, 0.95};
  if (!std::isfinite(latest_ci.lower) || !std::isfinite(latest_ci.upper)) {
    latest_ci = {latest.metric.median, latest.metric.median, 0.95};
  }
  finding.ci_disjoint = !latest_ci.overlaps(baseline_ci);

  const bool meaningful = std::fabs(finding.change_fraction) >= options.min_effect;
  finding.verdict = Verdict::kStable;
  if (finding.ci_disjoint && meaningful) {
    finding.verdict = is_worse(finding.change_fraction, finding.improve)
                          ? Verdict::kRegression
                          : Verdict::kImprovement;
  }

  // ---- Change-point scan (Kruskal-Wallis over every split). --------
  if (n >= 4) {
    // Splits are independent KW tests, so shard them across the
    // policy's workers into preassigned slots; the argmin below stays
    // serial with strict '<' (first split wins ties), making the scan
    // byte-identical to the sequential loop at any thread count.
    const std::size_t candidates = n - 3;  // k = 2 .. n-2
    std::vector<double> split_p(candidates);
    stats::policy_partition(
        options.policy, candidates, [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t c = lo; c < hi; ++c) {
            const std::size_t k = c + 2;
            const std::vector<std::vector<double>> groups = {
                {medians.begin(), medians.begin() + static_cast<std::ptrdiff_t>(k)},
                {medians.begin() + static_cast<std::ptrdiff_t>(k), medians.end()}};
            split_p[c] = stats::kruskal_wallis(groups).p_value;
          }
        });
    double best_p = 1.0;
    std::size_t best_split = 0;
    for (std::size_t c = 0; c < candidates; ++c) {
      if (split_p[c] < best_p) {
        best_p = split_p[c];
        best_split = c + 2;
      }
    }
    // best_split == 0 means no split beat p = 1.0 (a perfectly constant
    // series): there is no candidate step, and the empty prefix below
    // would otherwise throw.
    if (best_split > 0) {
      // Bonferroni across the scanned splits: the scan asks `candidates`
      // questions, so a single raw p of alpha would fire spuriously on
      // flat noise roughly once per alpha*candidates series.
      finding.changepoint_p = std::min(1.0, best_p * static_cast<double>(candidates));
      const std::span<const double> pre(medians.data(), best_split);
      const std::span<const double> post(medians.data() + best_split, n - best_split);
      finding.changepoint_shift =
          relative_change(stats::median(post), stats::median(pre));
      finding.changepoint = finding.changepoint_p < options.alpha &&
                            std::fabs(finding.changepoint_shift) >= options.min_effect;
      finding.changepoint_index = finding.changepoint ? best_split : 0;
      // A step whose new regime is worse and still current is a
      // regression even when the windowed baseline has already been
      // contaminated by post-step points.
      if (finding.changepoint && is_worse(finding.changepoint_shift, finding.improve) &&
          finding.verdict != Verdict::kRegression) {
        finding.verdict = Verdict::kRegression;
      }
    }
  }

  // ---- Tail step: exact rank separation over the last k points. ----
  // Closes the late-step blind spot (ROADMAP item 5): a step at n-2
  // leaves the KW scan a 2-point suffix whose best possible p dies
  // under Bonferroni, while the CI gate's baseline window has already
  // absorbed the stepped points (a degenerate [min, max] baseline CI
  // contains them outright). Under H0 -- the m baseline and k tail
  // medians exchangeable -- the chance that every tail point lies
  // strictly beyond every baseline point in the worse direction is
  // exactly 1 / C(m+k, k). Strict inequality keeps ties conservative.
  {
    const bool lower_is_better = finding.improve == obs::Improve::kLower;
    // k = 2 needs n >= 6 (m >= 4) to be testable, k = 3 needs n >= 7;
    // the correction spans the tests actually run.
    std::size_t tests = 0;
    for (std::size_t k = 2; k <= 3; ++k) tests += (n >= k + 4) ? 1 : 0;
    for (std::size_t k = 2; k <= 3 && n >= k + 4; ++k) {
      const std::size_t m = std::min<std::size_t>(options.baseline_window, n - k);
      const std::span<const double> tail(medians.data() + (n - k), k);
      const std::span<const double> base(medians.data() + (n - k - m), m);
      const auto tail_minmax = std::minmax_element(tail.begin(), tail.end());
      const auto base_minmax = std::minmax_element(base.begin(), base.end());
      const bool separated = lower_is_better
                                 ? *tail_minmax.first > *base_minmax.second
                                 : *tail_minmax.second < *base_minmax.first;
      if (!separated) continue;
      // C(m+k, k) = prod_{i=1..k} (m+i)/i; k <= 3 keeps this exact.
      double comb = 1.0;
      for (std::size_t i = 1; i <= k; ++i) {
        comb *= static_cast<double>(m + i) / static_cast<double>(i);
      }
      const double p = std::min(1.0, static_cast<double>(tests) / comb);
      if (p >= finding.tail_p) continue;
      finding.tail_p = p;
      finding.tail_k = k;
      finding.tail_shift =
          relative_change(stats::median(tail), stats::median(base));
    }
    finding.tail_step = finding.tail_k > 0 && finding.tail_p < options.alpha &&
                        std::fabs(finding.tail_shift) >= options.min_effect;
    if (!finding.tail_step) finding.tail_k = 0;
    // Separation is in the worse direction by construction, so a firing
    // tail test is always a regression.
    if (finding.tail_step) finding.verdict = Verdict::kRegression;
  }

  // ---- Trend (dashboard-only): tau=0.5 regression on (seq, median). -
  if (n >= 6) {
    std::vector<double> y(medians.begin(), medians.end());
    std::vector<std::vector<double>> design;
    design.reserve(n);
    for (std::size_t i = 0; i < n; ++i) design.push_back({static_cast<double>(i)});
    const auto fit = stats::quantile_regression(y, design, 0.5);
    if (fit.converged && fit.coefficients.size() >= 2) {
      finding.trend_slope = fit.coefficients[1];
      const auto ci = stats::quantile_regression_bootstrap_ci(
          y, design, 0.5, 200, 0.95, 0x5c1b3,
          stats::ExecPolicy{1, options.policy.effective_lanes()});
      const bool slope_significant =
          ci.lower.size() >= 2 && ci.upper.size() >= 2 &&
          (ci.lower[1] > 0.0 || ci.upper[1] < 0.0);
      const double drift = relative_change(
          finding.trend_slope * static_cast<double>(n - 1) + medians.front(),
          medians.front());
      finding.trend = slope_significant && std::fabs(drift) >= options.min_effect;
    }
  }

  // ---- One-sentence summary. ---------------------------------------
  char tail_note[64] = "";
  if (finding.tail_step) {
    std::snprintf(tail_note, sizeof tail_note,
                  ", step in last %zu point%s (p=%.3g)", finding.tail_k,
                  finding.tail_k == 1 ? "" : "s", finding.tail_p);
  }
  char note[256];
  std::snprintf(note, sizeof note, "latest %.6g vs baseline %.6g %s (%+.1f%%)%s%s%s%s",
                finding.latest_median, finding.baseline_median, finding.unit.c_str(),
                finding.change_fraction * 100.0,
                finding.changepoint ? ", step change in regime" : "", tail_note,
                finding.trend ? ", sustained trend" : "",
                finding.baseline_ci_degenerate ? ", baseline CI degenerate [min, max]"
                                               : "");
  finding.note = note;
  return finding;
}

std::vector<Finding> analyze_all(const std::vector<MetricSeries>& series,
                                 const DetectionOptions& options) {
  // Series are independent; shard them across the policy's workers.
  // Output slots are preassigned, so findings order -- and every byte in
  // them -- is the same at any thread count.
  //
  // Nested fan-out guard: once series are sharded, each per-series
  // change-point scan must run serially -- re-entering the pooled team
  // from inside one of its own workers would deadlock. With a single
  // series (or one thread) the outer partition runs inline, and the
  // scan keeps the split-level parallelism instead.
  std::vector<Finding> findings(series.size());
  const std::size_t outer =
      std::min<std::size_t>(options.policy.effective_threads(), series.size());
  DetectionOptions inner = options;
  if (outer > 1) inner.policy.threads = 1;
  stats::policy_partition(options.policy, series.size(),
                          [&](std::size_t, std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                              findings[i] = analyze_series(series[i], inner);
                          });
  return findings;
}

bool any_regression(const std::vector<Finding>& findings) noexcept {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.verdict == Verdict::kRegression;
  });
}

}  // namespace sci::ci
