// Regression, change-point, and trend detection over metric history --
// the paper's own statistics turned on the repo's own trajectory.
//
// Three independent detectors run per MetricSeries (all on the sequence
// of recorded medians; no raw samples are needed):
//
//   CI overlap (the gate)   The latest point's 95% nonparametric CI
//       against a rank CI built over the baseline window's medians.
//       Disjoint intervals + a worse median + at least min_effect
//       relative change => regression (Section 3.2 of the paper: CI
//       non-overlap at level 1-alpha implies significance; Rule 8's
//       "do not hide noise" is why a bare median delta is never
//       enough).
//
//   Change point (Kruskal-Wallis)   Every split of the series into
//       prefix/suffix of >= 2 points is tested with the rank one-way
//       ANOVA (stats/compare.hpp); the smallest Bonferroni-corrected
//       p-value marks the step. A step whose new regime contains the
//       latest point and is worse also raises the regression verdict --
//       this is what catches a slowdown that crept in a few commits ago
//       and has already contaminated the naive baseline window.
//
//   Trend (quantile regression)   The tau = 0.5 line median ~ seq
//       (stats/quantile_regression.hpp) with a bootstrap CI on the
//       slope; a slope whose CI excludes zero and whose drift over the
//       window exceeds min_effect is reported (dashboard only -- slow
//       drifts gate poorly, they alarm once per commit forever).
//
//   Tail step (exact rank separation)   A step in the last 2-3 points
//       of a batch-ingested history used to hide from BOTH gating
//       detectors: the KW scan's Bonferroni correction swamps the
//       p-value a 2-point suffix can reach, and the CI gate's baseline
//       window has already swallowed the stepped points (worse, a
//       degenerate [min, max] baseline CI makes "intervals overlap"
//       vacuous). The fourth detector closes the hole with a
//       distribution-free exact test: under H0 (the m baseline and k
//       tail medians exchangeable) the probability that ALL k tail
//       points lie strictly beyond ALL m baseline points in the worse
//       direction is 1 / C(m+k, k). k = 2 and 3 are tested (Bonferroni
//       x2); with the default 8-point window that is p = 2/45 ~ 0.044
//       for k = 2 -- significant at alpha = 0.05 where the KW scan is
//       not. One-sided by construction: a tail step in the better
//       direction never fires (improvements are the CI gate's job once
//       the window catches up).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ci/history.hpp"
#include "stats/exec_policy.hpp"

namespace sci::ci {

struct DetectionOptions {
  double alpha = 0.05;       ///< significance for change-point and trend
  double min_effect = 0.05;  ///< relative change below which nothing flags
  std::size_t baseline_window = 8;  ///< prior points forming the gate baseline
  std::size_t min_points = 4;  ///< shorter series: verdict = insufficient history
  /// analyze_all() shards series across policy.threads workers; with a
  /// single series the threads shard the Kruskal-Wallis change-point
  /// scan's splits instead (never both at once -- the outer fan-out
  /// pins the inner scan serial). Output order and bytes are
  /// independent of the count either way. policy.lanes feeds the trend
  /// detector's bootstrap refits (lanes != 1 changes its RNG stream
  /// deterministically). The default {1, 1} is byte-identical to the
  /// historical serial path.
  stats::ExecPolicy policy;
};

enum class Verdict {
  kInsufficientHistory,  ///< not enough points to say anything
  kStable,
  kImprovement,  ///< CI-disjoint change in the good direction
  kRegression,   ///< CI-disjoint slowdown, or a worse new regime
};
[[nodiscard]] const char* to_string(Verdict verdict) noexcept;

struct Finding {
  std::string bench;
  std::string metric;
  std::string unit;
  obs::Improve improve = obs::Improve::kLower;
  std::size_t points = 0;

  Verdict verdict = Verdict::kInsufficientHistory;

  // CI-overlap gate inputs (latest vs baseline window).
  double latest_median = 0.0;
  double baseline_median = 0.0;
  /// (latest - baseline) / |baseline|; sign is raw, improve gives the
  /// good direction.
  double change_fraction = 0.0;
  bool ci_disjoint = false;
  /// True when the baseline window's rank CI degenerated to the observed
  /// [min, max] -- either n <= 5 forced the range fallback outright, or
  /// the rank formula's clamped indices landed on the extremes. A
  /// degenerate baseline is the widest interval the data can express, so
  /// "CIs overlap" carries little evidence of stability: the gate is
  /// effectively blind until the window accumulates more points.
  bool baseline_ci_degenerate = false;

  // Change-point scan.
  bool changepoint = false;
  std::size_t changepoint_index = 0;  ///< first point of the new regime
  double changepoint_p = 1.0;         ///< Bonferroni-corrected
  /// Relative level shift of the new regime vs the old one.
  double changepoint_shift = 0.0;

  // Trend fit.
  bool trend = false;
  double trend_slope = 0.0;  ///< metric units per recorded point

  // Tail-window rank separation (the late-step blind spot).
  bool tail_step = false;
  std::size_t tail_k = 0;  ///< tail points forming the worse regime
  double tail_p = 1.0;     ///< Bonferroni-corrected exact p
  /// Relative level shift of the tail vs the pre-tail baseline.
  double tail_shift = 0.0;

  std::string note;  ///< one human-readable sentence
};

[[nodiscard]] Finding analyze_series(const MetricSeries& series,
                                     const DetectionOptions& options = {});
[[nodiscard]] std::vector<Finding> analyze_all(const std::vector<MetricSeries>& series,
                                               const DetectionOptions& options = {});
[[nodiscard]] bool any_regression(const std::vector<Finding>& findings) noexcept;

}  // namespace sci::ci
