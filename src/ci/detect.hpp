// Regression, change-point, and trend detection over metric history --
// the paper's own statistics turned on the repo's own trajectory.
//
// Three independent detectors run per MetricSeries (all on the sequence
// of recorded medians; no raw samples are needed):
//
//   CI overlap (the gate)   The latest point's 95% nonparametric CI
//       against a rank CI built over the baseline window's medians.
//       Disjoint intervals + a worse median + at least min_effect
//       relative change => regression (Section 3.2 of the paper: CI
//       non-overlap at level 1-alpha implies significance; Rule 8's
//       "do not hide noise" is why a bare median delta is never
//       enough).
//
//   Change point (Kruskal-Wallis)   Every split of the series into
//       prefix/suffix of >= 2 points is tested with the rank one-way
//       ANOVA (stats/compare.hpp); the smallest Bonferroni-corrected
//       p-value marks the step. A step whose new regime contains the
//       latest point and is worse also raises the regression verdict --
//       this is what catches a slowdown that crept in a few commits ago
//       and has already contaminated the naive baseline window.
//
//   Trend (quantile regression)   The tau = 0.5 line median ~ seq
//       (stats/quantile_regression.hpp) with a bootstrap CI on the
//       slope; a slope whose CI excludes zero and whose drift over the
//       window exceeds min_effect is reported (dashboard only -- slow
//       drifts gate poorly, they alarm once per commit forever).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ci/history.hpp"
#include "stats/exec_policy.hpp"

namespace sci::ci {

struct DetectionOptions {
  double alpha = 0.05;       ///< significance for change-point and trend
  double min_effect = 0.05;  ///< relative change below which nothing flags
  std::size_t baseline_window = 8;  ///< prior points forming the gate baseline
  std::size_t min_points = 4;  ///< shorter series: verdict = insufficient history
  /// analyze_all() shards series across policy.threads workers; with a
  /// single series the threads shard the Kruskal-Wallis change-point
  /// scan's splits instead (never both at once -- the outer fan-out
  /// pins the inner scan serial). Output order and bytes are
  /// independent of the count either way. policy.lanes feeds the trend
  /// detector's bootstrap refits (lanes != 1 changes its RNG stream
  /// deterministically). The default {1, 1} is byte-identical to the
  /// historical serial path.
  stats::ExecPolicy policy;
};

enum class Verdict {
  kInsufficientHistory,  ///< not enough points to say anything
  kStable,
  kImprovement,  ///< CI-disjoint change in the good direction
  kRegression,   ///< CI-disjoint slowdown, or a worse new regime
};
[[nodiscard]] const char* to_string(Verdict verdict) noexcept;

struct Finding {
  std::string bench;
  std::string metric;
  std::string unit;
  obs::Improve improve = obs::Improve::kLower;
  std::size_t points = 0;

  Verdict verdict = Verdict::kInsufficientHistory;

  // CI-overlap gate inputs (latest vs baseline window).
  double latest_median = 0.0;
  double baseline_median = 0.0;
  /// (latest - baseline) / |baseline|; sign is raw, improve gives the
  /// good direction.
  double change_fraction = 0.0;
  bool ci_disjoint = false;
  /// True when the baseline window's rank CI degenerated to the observed
  /// [min, max] -- either n <= 5 forced the range fallback outright, or
  /// the rank formula's clamped indices landed on the extremes. A
  /// degenerate baseline is the widest interval the data can express, so
  /// "CIs overlap" carries little evidence of stability: the gate is
  /// effectively blind until the window accumulates more points.
  bool baseline_ci_degenerate = false;

  // Change-point scan.
  bool changepoint = false;
  std::size_t changepoint_index = 0;  ///< first point of the new regime
  double changepoint_p = 1.0;         ///< Bonferroni-corrected
  /// Relative level shift of the new regime vs the old one.
  double changepoint_shift = 0.0;

  // Trend fit.
  bool trend = false;
  double trend_slope = 0.0;  ///< metric units per recorded point

  std::string note;  ///< one human-readable sentence
};

[[nodiscard]] Finding analyze_series(const MetricSeries& series,
                                     const DetectionOptions& options = {});
[[nodiscard]] std::vector<Finding> analyze_all(const std::vector<MetricSeries>& series,
                                               const DetectionOptions& options = {});
[[nodiscard]] bool any_regression(const std::vector<Finding>& findings) noexcept;

}  // namespace sci::ci
