#include "ci/history.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace sci::ci {

namespace json = sci::obs::json;

std::vector<double> MetricSeries::medians() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.metric.median);
  return out;
}

std::string history_line(const HistoryPoint& point) {
  std::string out;
  out.reserve(192);
  out += "{\"seq\": " + json::dump_size(point.seq);
  out += ", \"sha\": ";
  json::append_quoted(out, point.git_sha);
  out += ", \"bench\": ";
  json::append_quoted(out, point.bench);
  out += ", \"name\": ";
  json::append_quoted(out, point.metric.name);
  out += ", \"unit\": ";
  json::append_quoted(out, point.metric.unit);
  out += ", \"improve\": ";
  json::append_quoted(out, obs::to_string(point.metric.improve));
  out += ", \"n\": " + json::dump_size(point.metric.n);
  out += ", \"median\": " + json::dump_number(point.metric.median);
  out += ", \"ci_lo\": " + json::dump_number(point.metric.ci_lo);
  out += ", \"ci_hi\": " + json::dump_number(point.metric.ci_hi);
  out += "}";
  return out;
}

HistoryPoint parse_history_line(std::string_view line) {
  const json::Value root = json::parse(line);
  HistoryPoint point;
  point.seq = root.at("seq").as_size();
  point.git_sha = root.at("sha").as_string();
  point.bench = root.at("bench").as_string();
  point.metric.name = root.at("name").as_string();
  point.metric.unit = root.at("unit").as_string();
  point.metric.improve = obs::improve_from_string(root.at("improve").as_string());
  point.metric.n = root.at("n").as_size();
  point.metric.median = root.at("median").as_number();
  point.metric.ci_lo = root.at("ci_lo").as_number();
  point.metric.ci_hi = root.at("ci_hi").as_number();
  return point;
}

HistoryStore::HistoryStore(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // empty store
  std::string line;
  while (std::getline(in, line)) {
    // getline sets eofbit exactly when the final line had no trailing
    // newline -- i.e. a crash tore the last append mid-line. Heal it on
    // the next append so new records never glue onto the scar.
    if (in.eof()) heal_newline_ = true;
    if (line.empty()) continue;
    try {
      HistoryPoint point = parse_history_line(line);
      point.seq = points_.size();  // load order is the truth, not the stored seq
      points_.push_back(std::move(point));
    } catch (const std::exception&) {
      // Same policy as the campaign journal: an unparseable line is a
      // scar (torn append), skipped on replay and left in place --
      // valid records keep appending after it. Counted so tools can
      // warn instead of silently thinning history.
      ++skipped_lines_;
    }
  }
}

bool HistoryStore::contains(const std::string& sha, const std::string& bench,
                            const std::string& metric) const noexcept {
  for (const auto& p : points_) {
    if (p.git_sha == sha && p.bench == bench && p.metric.name == metric) return true;
  }
  return false;
}

std::size_t HistoryStore::ingest(const obs::BenchReport& report) {
  std::vector<HistoryPoint> fresh;
  for (const auto& metric : report.metrics) {
    if (contains(report.git_sha, report.bench, metric.name)) continue;
    HistoryPoint point;
    point.seq = points_.size() + fresh.size();
    point.git_sha = report.git_sha;
    point.bench = report.bench;
    point.metric = metric;
    fresh.push_back(std::move(point));
  }
  if (fresh.empty()) return 0;

  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("cannot append to " + path_);
  if (heal_newline_) out.put('\n');
  for (const auto& point : fresh) out << history_line(point) << '\n';
  out.flush();
  if (!out) throw std::runtime_error("write failed on " + path_);
  heal_newline_ = false;

  const std::size_t appended = fresh.size();
  for (auto& point : fresh) points_.push_back(std::move(point));
  return appended;
}

std::vector<MetricSeries> HistoryStore::series() const {
  std::vector<MetricSeries> out;
  for (const auto& point : points_) {
    MetricSeries* target = nullptr;
    for (auto& s : out) {
      if (s.bench == point.bench && s.metric == point.metric.name) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      MetricSeries s;
      s.bench = point.bench;
      s.metric = point.metric.name;
      s.unit = point.metric.unit;
      s.improve = point.metric.improve;
      out.push_back(std::move(s));
      target = &out.back();
    }
    target->points.push_back(point);
  }
  return out;
}

}  // namespace sci::ci
