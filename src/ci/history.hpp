// Append-only performance history for the repo's own benchmarks
// (ROADMAP item 5, grounded in the Continuous-benchmarking paper:
// persist every run, compare against the stored trajectory).
//
// The store is a JSONL file: one canonical-JSON line per recorded
// metric point, strictly appended, never rewritten. Ingesting a
// BENCH_*.json report (obs/bench_report.hpp) appends one point per
// metric; re-ingesting the same (git_sha, bench, metric) triple is a
// no-op, so a retried CI job cannot double-count its run. Like the
// campaign journal, loading tolerates a torn final line (a crash while
// appending) by skipping it and healing the newline on the next append;
// corruption anywhere else is an error, not silently dropped data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"

namespace sci::ci {

/// One recorded metric measurement: the metric summary plus where it
/// came from and its position in append order.
struct HistoryPoint {
  std::size_t seq = 0;  ///< append index within the store (dense, 0-based)
  std::string git_sha;
  std::string bench;
  obs::BenchMetric metric;
};

/// All points of one (bench, metric) pair in append order -- the unit
/// of trend/change-point analysis.
struct MetricSeries {
  std::string bench;
  std::string metric;
  std::string unit;
  obs::Improve improve = obs::Improve::kLower;
  std::vector<HistoryPoint> points;

  /// The medians in append order (the detection statistics run on these).
  [[nodiscard]] std::vector<double> medians() const;
};

class HistoryStore {
 public:
  /// Opens (and loads) the store at `path`; a missing file is an empty
  /// store. Unparseable lines (torn appends) are skipped and counted in
  /// skipped_lines(); on-disk seq values are advisory -- load order
  /// assigns the authoritative sequence.
  explicit HistoryStore(std::string path);

  /// Appends one point per metric in `report`; points whose
  /// (git_sha, bench, metric) triple is already stored are skipped.
  /// Returns the number of points actually appended. Throws on I/O
  /// failure.
  std::size_t ingest(const obs::BenchReport& report);

  [[nodiscard]] const std::vector<HistoryPoint>& points() const noexcept {
    return points_;
  }
  /// Points grouped into per-metric series, in first-appearance order.
  [[nodiscard]] std::vector<MetricSeries> series() const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Lines dropped as torn/corrupt during load (0 for a healthy store).
  [[nodiscard]] std::size_t skipped_lines() const noexcept { return skipped_lines_; }

 private:
  [[nodiscard]] bool contains(const std::string& sha, const std::string& bench,
                              const std::string& metric) const noexcept;

  std::string path_;
  std::vector<HistoryPoint> points_;
  std::size_t skipped_lines_ = 0;
  bool heal_newline_ = false;  ///< existing file ends without '\n'
};

/// Serialization of one point as a single canonical JSON line (no
/// trailing newline); exposed for tests.
[[nodiscard]] std::string history_line(const HistoryPoint& point);
[[nodiscard]] HistoryPoint parse_history_line(std::string_view line);

}  // namespace sci::ci
