#include "core/adaptive.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

namespace sci::core {
namespace {

bool mean_ci_converged(std::span<const double> xs, double relative_error,
                       double confidence) {
  if (xs.size() < 2) return false;
  const auto ci = stats::mean_confidence_interval(xs, confidence);
  const double mean = stats::arithmetic_mean(xs);
  if (mean == 0.0) return ci.width() == 0.0;
  return ci.lower >= mean - std::fabs(mean) * relative_error &&
         ci.upper <= mean + std::fabs(mean) * relative_error;
}

}  // namespace

AdaptiveResult measure_adaptive(const std::function<double()>& measure,
                                const AdaptiveOptions& options) {
  if (!measure) throw std::invalid_argument("measure_adaptive: null measurement function");
  if (options.relative_error <= 0.0)
    throw std::domain_error("measure_adaptive: relative_error > 0");
  if (options.max_samples < options.min_samples)
    throw std::invalid_argument("measure_adaptive: max_samples >= min_samples");

  AdaptiveResult result;
  result.warmup_discarded = options.warmup;
  for (std::size_t i = 0; i < options.warmup; ++i) (void)measure();

  result.samples.reserve(options.min_samples);
  const std::size_t cadence = std::max<std::size_t>(options.check_every, 1);
  while (result.samples.size() < options.max_samples) {
    result.samples.push_back(measure());
    const std::size_t n = result.samples.size();
    if (n < options.min_samples || n % cadence != 0) continue;

    const bool ok =
        options.use_mean
            ? mean_ci_converged(result.samples, options.relative_error, options.confidence)
            : stats::quantile_ci_converged(result.samples, options.quantile,
                                           options.relative_error, options.confidence);
    if (ok) {
      result.converged = true;
      result.stop_reason = "converged";
      return result;
    }
  }
  result.stop_reason = "max_samples";
  return result;
}

}  // namespace sci::core
