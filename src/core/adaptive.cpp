#include "core/adaptive.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/online.hpp"

namespace sci::core {
namespace {

bool mean_ci_converged(std::span<const double> xs, double relative_error,
                       double confidence) {
  if (xs.size() < 2) return false;
  const auto ci = stats::mean_confidence_interval(xs, confidence);
  const double mean = stats::arithmetic_mean(xs);
  if (mean == 0.0) return ci.width() == 0.0;
  return ci.lower >= mean - std::fabs(mean) * relative_error &&
         ci.upper <= mean + std::fabs(mean) * relative_error;
}

}  // namespace

AdaptiveResult measure_adaptive(const std::function<double()>& measure,
                                const AdaptiveOptions& options) {
  if (!measure) throw std::invalid_argument("measure_adaptive: null measurement function");
  if (options.relative_error <= 0.0)
    throw std::domain_error("measure_adaptive: relative_error > 0");
  if (options.max_samples < options.min_samples)
    throw std::invalid_argument("measure_adaptive: max_samples >= min_samples");

  static obs::Counter& samples_ctr = obs::counter(obs::keys::kHarnessSamples);
  static obs::Counter& overhead_ctr = obs::counter(obs::keys::kHarnessOverheadNs);
  static obs::Counter& ci_ctr = obs::counter(obs::keys::kCiRecomputes);

  SCI_TRACE_HOST_SPAN(adaptive_span, "measure_adaptive", "harness");

  AdaptiveResult result;
  result.warmup_discarded = options.warmup;
  for (std::size_t i = 0; i < options.warmup; ++i) (void)measure();

  result.samples.reserve(options.min_samples);
  const std::size_t cadence = std::max<std::size_t>(options.check_every, 1);
  // Incremental accumulator for the nonparametric stop: each CI check
  // merges only the samples added since the last check instead of
  // re-sorting the whole series. The sorted data it evaluates is
  // identical to what quantile_ci_converged would build, so the stop
  // decision (and therefore every published number) is unchanged.
  stats::OnlineSeries acc;
  while (result.samples.size() < options.max_samples) {
#if SCIBENCH_TRACING
    const double sample_t0 = obs::host_now_s();
#endif
    const double value = measure();
    result.samples.push_back(value);
    if (!options.use_mean) acc.add(value);
    samples_ctr.add(1);
    const std::size_t n = result.samples.size();
    SCI_TRACE_COMPLETE(obs::kHarnessTrack, "sample", "harness", sample_t0,
                       obs::host_now_s() - sample_t0, {{"n", n}});
    if (n < options.min_samples || n % cadence != 0) continue;

    // Everything from here to loop bottom is harness time the
    // measurement itself never sees -- tally it so reports can show the
    // collection mechanism stayed cheap (Section 6 / Rule 9).
    const double check_t0 = obs::host_now_s();
    const bool ok =
        options.use_mean
            ? mean_ci_converged(result.samples, options.relative_error, options.confidence)
            : acc.quantile_converged(options.quantile, options.relative_error,
                                     options.confidence);
    const double check_t1 = obs::host_now_s();
    ci_ctr.add(1);
    overhead_ctr.add(static_cast<std::uint64_t>((check_t1 - check_t0) * 1e9));
    SCI_TRACE_INSTANT(obs::kHarnessTrack, "ci_check", "harness", check_t1,
                      {{"n", n}, {"converged", ok ? 1 : 0}});
    if (ok) {
      result.converged = true;
      result.stop_reason = "converged";
      return result;
    }
  }
  result.stop_reason = "max_samples";
  return result;
}

}  // namespace sci::core
