// Adaptive sampling (Section 4.2.2 "Number of Measurements"): keep
// measuring until the confidence interval of the chosen statistic is
// within a requested fraction of its center, bounded by a sample budget.
// Implements both the parametric plan (recompute the required n from
// the running mean/stddev) and the nonparametric sequential stop
// (recompute the rank CI every `check_every` samples).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace sci::core {

struct AdaptiveOptions {
  double confidence = 0.95;
  double relative_error = 0.05;  ///< CI must lie within +-e of the center
  std::size_t min_samples = 10;  ///< nonparametric CIs need n > 5
  std::size_t max_samples = 10000;
  std::size_t warmup = 1;        ///< discarded leading measurements (Sec. 4.1.2)
  std::size_t check_every = 5;   ///< k: CI recomputation cadence
  /// Target statistic: 0.5 = median (default, robust); any quantile in
  /// (0,1) works. Set `use_mean` instead for mean-based stopping.
  double quantile = 0.5;
  bool use_mean = false;
};

struct AdaptiveResult {
  std::vector<double> samples;   ///< post-warmup measurements
  bool converged = false;        ///< CI criterion met within the budget
  std::size_t warmup_discarded = 0;
  std::string stop_reason;       ///< "converged" | "max_samples"
};

/// Repeatedly invokes `measure` (one measurement per call) until the CI
/// criterion is met or `max_samples` is reached.
[[nodiscard]] AdaptiveResult measure_adaptive(const std::function<double()>& measure,
                                              const AdaptiveOptions& options = {});

}  // namespace sci::core
