#include "core/bounds.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sci::core {

ScalingBounds::ScalingBounds(double base_seconds, double serial_fraction,
                             std::function<double(int)> parallel_overhead)
    : base_s_(base_seconds),
      serial_fraction_(serial_fraction),
      overhead_(std::move(parallel_overhead)) {
  if (base_seconds <= 0.0) throw std::domain_error("ScalingBounds: base_seconds > 0");
  if (serial_fraction < 0.0 || serial_fraction > 1.0)
    throw std::domain_error("ScalingBounds: serial_fraction in [0,1]");
}

double ScalingBounds::time_ideal(int p) const {
  if (p < 1) throw std::domain_error("ScalingBounds: p >= 1");
  return base_s_ / static_cast<double>(p);
}

double ScalingBounds::time_amdahl(int p) const {
  if (p < 1) throw std::domain_error("ScalingBounds: p >= 1");
  return base_s_ * (serial_fraction_ + (1.0 - serial_fraction_) / static_cast<double>(p));
}

double ScalingBounds::time_with_overheads(int p) const {
  return time_amdahl(p) + (overhead_ ? overhead_(p) : 0.0);
}

double ScalingBounds::speedup_ideal(int p) const { return base_s_ / time_ideal(p); }
double ScalingBounds::speedup_amdahl(int p) const { return base_s_ / time_amdahl(p); }
double ScalingBounds::speedup_with_overheads(int p) const {
  return base_s_ / time_with_overheads(p);
}

double daint_reduction_overhead(int p) {
  if (p < 1) throw std::domain_error("daint_reduction_overhead: p >= 1");
  if (p <= 8) return 10e-9;
  if (p <= 16) return 0.1e-3 * std::log2(static_cast<double>(p));
  return 0.17e-3 * std::log2(static_cast<double>(p));
}

MachineModel::MachineModel(std::vector<Feature> features) : features_(std::move(features)) {
  if (features_.empty()) throw std::invalid_argument("MachineModel: at least one feature");
  for (const auto& f : features_) {
    if (f.peak <= 0.0) throw std::domain_error("MachineModel: peaks must be positive");
  }
}

std::vector<double> MachineModel::fraction_of_peak(
    const std::vector<double>& achieved) const {
  if (achieved.size() != features_.size())
    throw std::invalid_argument("MachineModel: feature arity mismatch");
  std::vector<double> out(achieved.size());
  for (std::size_t i = 0; i < achieved.size(); ++i) out[i] = achieved[i] / features_[i].peak;
  return out;
}

std::size_t MachineModel::bottleneck(const std::vector<double>& achieved) const {
  const auto fractions = fraction_of_peak(achieved);
  std::size_t best = 0;
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    if (fractions[i] > fractions[best]) best = i;
  }
  return best;
}

bool MachineModel::near_peak(const std::vector<double>& achieved, double tolerance) const {
  const auto fractions = fraction_of_peak(achieved);
  return fractions[bottleneck(achieved)] >= 1.0 - tolerance;
}

double roofline_attainable(double peak_flops, double peak_bw, double intensity) {
  if (peak_flops <= 0.0 || peak_bw <= 0.0 || intensity <= 0.0)
    throw std::domain_error("roofline_attainable: positive arguments required");
  return std::min(peak_flops, peak_bw * intensity);
}

const char* to_string(BaseCase b) noexcept {
  switch (b) {
    case BaseCase::kBestSerial: return "best serial implementation";
    case BaseCase::kSingleParallelProcess: return "parallel code on one process";
  }
  return "unknown";
}

std::string SpeedupReport::to_string() const {
  std::ostringstream os;
  os << "speedup vs " << core::to_string(base_case) << " (base: " << base_absolute << ' '
     << base_unit << ")\n";
  for (std::size_t i = 0; i < processes.size() && i < speedups.size(); ++i) {
    os << "  p=" << processes[i] << "  S=" << speedups[i] << '\n';
  }
  return os.str();
}

}  // namespace sci::core
