// Simple bounds modeling (Section 5.1, Rule 11): put measurements into
// perspective against analytic upper bounds.
//
//  - Scaling bounds: ideal linear speedup, Amdahl (serial fraction),
//    and parallel-overhead bounds with a user-supplied overhead f(p) --
//    exactly the three lines of the paper's Figure 7.
//  - Machine capability model Gamma = (p_1..p_k): dimensionless
//    percent-of-peak vectors, bottleneck identification, and the
//    roofline special case (k = 2: flops and memory bandwidth).
//  - SpeedupReport enforcing Rule 1 (base case kind + absolute base
//    performance must be stated).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace sci::core {

/// Upper bounds on speedup / lower bounds on time for p processes.
class ScalingBounds {
 public:
  /// `base_seconds`: measured one-process execution time.
  /// `serial_fraction`: Amdahl's b in [0, 1].
  /// `parallel_overhead(p)`: extra seconds at p processes (e.g. the
  /// piecewise log model of Figure 7); may be null for none.
  ScalingBounds(double base_seconds, double serial_fraction,
                std::function<double(int)> parallel_overhead = nullptr);

  /// Lower bound on execution time at p processes, per model.
  [[nodiscard]] double time_ideal(int p) const;
  [[nodiscard]] double time_amdahl(int p) const;
  [[nodiscard]] double time_with_overheads(int p) const;

  /// Matching speedup upper bounds (base_seconds / time bound).
  [[nodiscard]] double speedup_ideal(int p) const;
  [[nodiscard]] double speedup_amdahl(int p) const;
  [[nodiscard]] double speedup_with_overheads(int p) const;

 private:
  double base_s_;
  double serial_fraction_;
  std::function<double(int)> overhead_;
};

/// The paper's empirical reduction-overhead model for Piz Daint
/// (Figure 7): f(p<=8) = 10 ns, f(8<p<=16) = 0.1 ms * log2 p,
/// f(p>16) = 0.17 ms * log2 p.
[[nodiscard]] double daint_reduction_overhead(int p);

/// One machine feature: a named peak rate (Section 5.1's p_i).
struct Feature {
  std::string name;   ///< e.g. "flops", "membw"
  double peak = 0.0;  ///< achievable upper bound in the feature's unit
};

/// Machine capability vector Gamma and application requirement vectors.
class MachineModel {
 public:
  explicit MachineModel(std::vector<Feature> features);

  /// Dimensionless performance vector P = (r_i / p_i); `achieved` must
  /// match the feature count and order.
  [[nodiscard]] std::vector<double> fraction_of_peak(
      const std::vector<double>& achieved) const;

  /// Index of the feature with the highest utilization -- the likely
  /// bottleneck (Section 5.1).
  [[nodiscard]] std::size_t bottleneck(const std::vector<double>& achieved) const;

  /// Optimality argument support: true when the bottleneck feature runs
  /// within `tolerance` of its peak (condition (1) of Section 5.1).
  [[nodiscard]] bool near_peak(const std::vector<double>& achieved,
                               double tolerance = 0.1) const;

  [[nodiscard]] const std::vector<Feature>& features() const noexcept { return features_; }

 private:
  std::vector<Feature> features_;
};

/// Roofline model (k = 2 special case): attainable flop/s at a given
/// arithmetic intensity (flop per byte).
[[nodiscard]] double roofline_attainable(double peak_flops, double peak_bw,
                                         double intensity);

/// Rule 1: speedup may only be reported with its base case spelled out.
enum class BaseCase { kBestSerial, kSingleParallelProcess };
[[nodiscard]] const char* to_string(BaseCase b) noexcept;

struct SpeedupReport {
  BaseCase base_case;
  double base_absolute;      ///< absolute base performance (required!)
  std::string base_unit;     ///< e.g. "s" or "flop/s"
  std::vector<int> processes;
  std::vector<double> speedups;

  /// Renders "speedup S at p processes vs <base case> (base: X unit)".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace sci::core
