#include "core/dataset.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sci::core {

Dataset::Dataset(Experiment experiment, std::vector<std::string> columns)
    : experiment_(std::move(experiment)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Dataset: at least one column");
  for (const auto& c : columns_) {
    // A separator or newline inside a column name would silently shift
    // every subsequent column on re-import; refuse it up front.
    if (c.find_first_of(",\n\r") != std::string::npos) {
      throw std::invalid_argument("Dataset: column name '" + c +
                                  "' contains a comma or newline");
    }
  }
  base_columns_ = columns_.size();
}

void Dataset::add_row(const std::vector<double>& row) {
  if (row.size() != columns_.size())
    throw std::invalid_argument("Dataset::add_row: arity mismatch");
  data_.push_back(row);
}

void Dataset::enable_provenance() {
  if (provenance_) return;
  if (!data_.empty())
    throw std::logic_error("Dataset::enable_provenance: call before the first row");
  const auto& extra = obs::provenance_columns();
  columns_.insert(columns_.end(), extra.begin(), extra.end());
  provenance_ = true;
}

void Dataset::add_row(const std::vector<double>& row, const obs::SampleProvenance& prov) {
  if (!provenance_)
    throw std::logic_error("Dataset::add_row(prov): enable_provenance() first");
  if (row.size() != base_columns_)
    throw std::invalid_argument("Dataset::add_row: arity mismatch");
  std::vector<double> full = row;
  const auto cells = obs::provenance_row(prov);
  full.insert(full.end(), cells.begin(), cells.end());
  data_.push_back(std::move(full));
}

std::vector<double> Dataset::column(const std::string& name) const {
  std::size_t idx = columns_.size();
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) {
      idx = i;
      break;
    }
  }
  if (idx == columns_.size())
    throw std::out_of_range("Dataset::column: no column '" + name + "'");
  std::vector<double> out;
  out.reserve(data_.size());
  for (const auto& row : data_) out.push_back(row[idx]);
  return out;
}

void Dataset::write_csv(std::ostream& os) const {
  std::istringstream header(experiment_.to_header());
  std::string line;
  while (std::getline(header, line)) os << "# " << line << '\n';

  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << columns_[i] << (i + 1 < columns_.size() ? "," : "\n");
  }
  os << std::setprecision(17);
  for (const auto& row : data_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
  }
}

void Dataset::save_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Dataset::save_csv: cannot open " + path);
  write_csv(os);
  os.flush();
  // A full disk or revoked permission surfaces here, not as a silently
  // truncated data file.
  if (!os) throw std::runtime_error("Dataset::save_csv: write failed for " + path);
}

namespace {

/// Strict numeric cell parse; accepts what write_csv emits (decimal
/// doubles, inf, nan). Positions are 1-based for error messages.
double parse_cell(const std::string& cell, const std::string& path, std::size_t lineno,
                  std::size_t column) {
  double value = 0.0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  // Tolerate surrounding spaces (hand-edited files) but nothing else.
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  while (end > begin && (end[-1] == ' ' || end[-1] == '\t' || end[-1] == '\r')) --end;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || begin == end) {
    throw std::runtime_error("Dataset::load_csv: " + path + ":" +
                             std::to_string(lineno) + ": column " +
                             std::to_string(column) + ": malformed numeric cell '" +
                             cell + "'");
  }
  return value;
}

}  // namespace

Dataset Dataset::load_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("Dataset::load_csv: cannot open " + path);

  Experiment exp;
  std::string line;
  std::size_t lineno = 0;
  std::vector<std::string> cols;
  // Header comments are provenance for humans/R; keep the raw text in
  // the description so round-trips do not silently drop it.
  std::string header_text;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.front() == '#') {
      header_text += line.substr(line.size() > 1 && line[1] == ' ' ? 2 : 1) + "\n";
      continue;
    }
    // First non-comment line: column names.
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      if (!cell.empty() && cell.back() == '\r') cell.pop_back();
      cols.push_back(cell);
    }
    break;
  }
  exp.name = "loaded:" + path;
  exp.description = header_text;

  Dataset ds(std::move(exp), std::move(cols));
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ls(line);
    std::string cell;
    std::vector<double> row;
    while (std::getline(ls, cell, ',')) {
      row.push_back(parse_cell(cell, path, lineno, row.size() + 1));
    }
    if (row.size() != ds.columns().size()) {
      throw std::runtime_error("Dataset::load_csv: " + path + ":" +
                               std::to_string(lineno) + ": expected " +
                               std::to_string(ds.columns().size()) + " cells, got " +
                               std::to_string(row.size()));
    }
    ds.add_row(row);
  }
  return ds;
}

}  // namespace sci::core
