// Tabular dataset with documented provenance.
//
// LibSciBench's "low-overhead data collection mechanism produces
// datasets that can be read directly with established statistical tools
// such as GNU R" -- this is that layer: append rows during measurement,
// write an R/pandas-readable CSV whose '#' header embeds the full
// Experiment description (Rule 9), so a data file never gets separated
// from its setup documentation.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/provenance.hpp"

namespace sci::core {

class Dataset {
 public:
  Dataset(Experiment experiment, std::vector<std::string> columns);

  /// Appends one observation; size must match the column count.
  void add_row(const std::vector<double>& row);

  /// Widens the schema with obs::provenance_columns() (trace id +
  /// counter deltas). Call before the first row; rows added afterwards
  /// must use the provenance overload of add_row.
  void enable_provenance();
  [[nodiscard]] bool provenance_enabled() const noexcept { return provenance_; }

  /// Appends one observation plus its provenance cells. `row` carries
  /// only the measurement columns; the provenance columns are filled
  /// from `prov`.
  void add_row(const std::vector<double>& row, const obs::SampleProvenance& prov);

  [[nodiscard]] std::size_t rows() const noexcept { return data_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept { return columns_; }
  [[nodiscard]] const Experiment& experiment() const noexcept { return experiment_; }
  [[nodiscard]] const std::vector<double>& row(std::size_t i) const { return data_.at(i); }

  /// One column as a series.
  [[nodiscard]] std::vector<double> column(const std::string& name) const;

  /// CSV with '#'-prefixed experiment header. R: read.csv(f, comment.char="#").
  void write_csv(std::ostream& os) const;
  void save_csv(const std::string& path) const;

  /// Parses a CSV produced by write_csv (header comments are skipped).
  [[nodiscard]] static Dataset load_csv(const std::string& path);

 private:
  Experiment experiment_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> data_;
  bool provenance_ = false;
  std::size_t base_columns_ = 0;  ///< column count before provenance widening
};

}  // namespace sci::core
