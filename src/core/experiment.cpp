#include "core/experiment.hpp"

#include <sstream>

namespace sci::core {

const char* to_string(ScalingMode m) noexcept {
  switch (m) {
    case ScalingMode::kNotApplicable: return "n/a";
    case ScalingMode::kStrong: return "strong";
    case ScalingMode::kWeak: return "weak";
  }
  return "unknown";
}

std::string escape_header_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_header_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    switch (text[++i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case '\\': out += '\\'; break;
      default:
        out += '\\';
        out += text[i];
    }
  }
  return out;
}

std::string Experiment::to_header() const {
  std::ostringstream os;
  os << "experiment: " << escape_header_text(name) << '\n';
  if (!description.empty())
    os << "description: " << escape_header_text(description) << '\n';
  for (const auto& [key, value] : environment) {
    os << "env." << escape_header_text(key) << ": " << escape_header_text(value) << '\n';
  }
  for (const auto& factor : factors) {
    os << "factor." << escape_header_text(factor.name) << ":";
    for (const auto& level : factor.levels) os << ' ' << escape_header_text(level);
    os << '\n';
  }
  if (scaling != ScalingMode::kNotApplicable) {
    os << "scaling: " << to_string(scaling);
    if (scaling == ScalingMode::kWeak && !weak_scaling_function.empty()) {
      os << " (" << escape_header_text(weak_scaling_function) << ")";
    }
    os << '\n';
  }
  if (uses_subset) {
    os << "subset: "
       << (subset_reason.empty() ? "(no reason given!)" : escape_header_text(subset_reason))
       << '\n';
  }
  if (!synchronization_method.empty())
    os << "sync: " << escape_header_text(synchronization_method) << '\n';
  if (!summary_across_processes.empty())
    os << "process-summary: " << escape_header_text(summary_across_processes) << '\n';
  return os.str();
}

std::vector<std::string> Experiment::audit() const {
  std::vector<std::string> issues;
  if (name.empty()) issues.push_back("experiment has no name");
  if (environment.empty()) {
    issues.push_back(
        "Rule 9: no environment documented (hardware, software, configuration)");
  }
  for (const auto& factor : factors) {
    if (factor.levels.empty())
      issues.push_back("Rule 9: factor '" + factor.name + "' lists no levels");
  }
  if (uses_subset && subset_reason.empty()) {
    issues.push_back(
        "Rule 2: experiment uses a subset of benchmarks/resources without a reason");
  }
  if (scaling == ScalingMode::kWeak && weak_scaling_function.empty()) {
    issues.push_back("Section 4.2: weak scaling requires the scaling function");
  }
  return issues;
}

}  // namespace sci::core
