#include "core/experiment.hpp"

#include <sstream>

namespace sci::core {

const char* to_string(ScalingMode m) noexcept {
  switch (m) {
    case ScalingMode::kNotApplicable: return "n/a";
    case ScalingMode::kStrong: return "strong";
    case ScalingMode::kWeak: return "weak";
  }
  return "unknown";
}

std::string Experiment::to_header() const {
  std::ostringstream os;
  os << "experiment: " << name << '\n';
  if (!description.empty()) os << "description: " << description << '\n';
  for (const auto& [key, value] : environment) os << "env." << key << ": " << value << '\n';
  for (const auto& factor : factors) {
    os << "factor." << factor.name << ":";
    for (const auto& level : factor.levels) os << ' ' << level;
    os << '\n';
  }
  if (scaling != ScalingMode::kNotApplicable) {
    os << "scaling: " << to_string(scaling);
    if (scaling == ScalingMode::kWeak && !weak_scaling_function.empty()) {
      os << " (" << weak_scaling_function << ")";
    }
    os << '\n';
  }
  if (uses_subset) {
    os << "subset: " << (subset_reason.empty() ? "(no reason given!)" : subset_reason) << '\n';
  }
  if (!synchronization_method.empty()) os << "sync: " << synchronization_method << '\n';
  if (!summary_across_processes.empty())
    os << "process-summary: " << summary_across_processes << '\n';
  return os.str();
}

std::vector<std::string> Experiment::audit() const {
  std::vector<std::string> issues;
  if (name.empty()) issues.push_back("experiment has no name");
  if (environment.empty()) {
    issues.push_back(
        "Rule 9: no environment documented (hardware, software, configuration)");
  }
  for (const auto& factor : factors) {
    if (factor.levels.empty())
      issues.push_back("Rule 9: factor '" + factor.name + "' lists no levels");
  }
  if (uses_subset && subset_reason.empty()) {
    issues.push_back(
        "Rule 2: experiment uses a subset of benchmarks/resources without a reason");
  }
  if (scaling == ScalingMode::kWeak && weak_scaling_function.empty()) {
    issues.push_back("Section 4.2: weak scaling requires the scaling function");
  }
  return issues;
}

}  // namespace sci::core
