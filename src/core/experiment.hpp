// Experiment description (Rule 9: "Document all varying factors and
// their levels as well as the complete experimental setup").
//
// An Experiment is the unit of documentation: it names the factors that
// vary, the levels of each, and the fixed environment. Every dataset
// and report carries its Experiment, and the CSV exporter writes it into
// the file header so data files are interpretable on their own.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sci::core {

/// A varying factor and the levels at which it is measured
/// (Section 4.2: "researchers need to determine the levels of each
/// factor", e.g. process counts for a scalability study).
struct Factor {
  std::string name;                 ///< e.g. "processes"
  std::vector<std::string> levels;  ///< e.g. {"2", "4", "8", ...}
};

/// Scaling regime of the experiment; papers "should always indicate if
/// experiments are using strong or weak scaling" (Section 4.2).
enum class ScalingMode { kNotApplicable, kStrong, kWeak };
[[nodiscard]] const char* to_string(ScalingMode m) noexcept;

/// Escapes text for one logical line of an experiment header: backslash
/// -> "\\", newline -> "\n", carriage return -> "\r" (literal two-char
/// sequences). Values that once silently corrupted CSV headers -- an
/// environment value with an embedded newline spills into a line the
/// parser reads as its own header entry -- now round-trip.
[[nodiscard]] std::string escape_header_text(const std::string& text);
/// Inverse of escape_header_text.
[[nodiscard]] std::string unescape_header_text(const std::string& text);

struct Experiment {
  std::string name;
  std::string description;

  /// Fixed environment: hardware, software versions, compiler flags,
  /// allocation policy... (the nine documentation classes of Table 1).
  std::map<std::string, std::string> environment;

  std::vector<Factor> factors;

  ScalingMode scaling = ScalingMode::kNotApplicable;
  /// For weak scaling: how the input grows with processes (Section 4.2).
  std::string weak_scaling_function;

  /// Rule 2: when only a subset of a benchmark/application/machine is
  /// used, the reason must be stated; reports flag subsets without one.
  std::string subset_reason;
  bool uses_subset = false;

  /// Rule 10 bookkeeping for parallel time measurements. The audit only
  /// applies Rule 10 when `parallel_measurement` is set (setting either
  /// method string implies it).
  bool parallel_measurement = false;
  std::string synchronization_method;  ///< e.g. "window", "barrier", "none"
  std::string summary_across_processes;  ///< e.g. "max", "median"

  Experiment& set(const std::string& key, const std::string& value) {
    environment[key] = value;
    return *this;
  }
  Experiment& add_factor(std::string factor_name, std::vector<std::string> levels) {
    factors.push_back({std::move(factor_name), std::move(levels)});
    return *this;
  }

  /// Multi-line human-readable header, used verbatim in reports and as
  /// '#'-prefixed comments in CSV exports. Names, descriptions, and
  /// environment/factor text are escaped with escape_header_text so
  /// embedded newlines cannot forge extra header lines and the header
  /// round-trips losslessly.
  [[nodiscard]] std::string to_header() const;

  /// Issues found by the documentation audit (missing factor levels,
  /// undeclared subset reason, missing sync method, ...). Empty = clean.
  [[nodiscard]] std::vector<std::string> audit() const;
};

}  // namespace sci::core
