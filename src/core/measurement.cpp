#include "core/measurement.hpp"

#include "stats/independence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace sci::core {

MeasurementSummary summarize_series(std::span<const double> xs,
                                    const SummaryOptions& options) {
  if (xs.empty()) throw std::invalid_argument("summarize_series: empty series");
  SCI_TRACE_HOST_SPAN(span, "summarize_series", "harness");

  MeasurementSummary s;
  s.n = xs.size();
  const auto sorted = stats::sorted_copy(xs);
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = stats::arithmetic_mean(xs);
  s.median = stats::quantile_sorted(sorted, 0.5);
  s.q1 = stats::quantile_sorted(sorted, 0.25);
  s.q3 = stats::quantile_sorted(sorted, 0.75);
  s.p95 = stats::quantile_sorted(sorted, 0.95);
  s.p99 = stats::quantile_sorted(sorted, 0.99);
  s.stddev = stats::sample_stddev(xs);
  s.cov = (s.mean != 0.0) ? s.stddev / s.mean : 0.0;

  // Rule 5: report whether the measurement is deterministic.
  const double tol = options.deterministic_rtol * std::fabs(s.median);
  s.deterministic = (s.max - s.min) <= tol;
  if (s.deterministic) {
    s.representative = s.median;
    s.representative_kind = "deterministic value";
    return s;
  }

  // Rule 6: diagnostic normality check, never assumed. Shapiro-Wilk is
  // capped at n = 5000; thin evenly beyond that (the paper notes the
  // test itself misleads at large n).
  if (s.n >= 3) {
    std::vector<double> test_data;
    if (s.n > 5000) {
      test_data.reserve(5000);
      const std::size_t stride = s.n / 5000 + 1;
      for (std::size_t i = 0; i < s.n; i += stride) test_data.push_back(xs[i]);
    } else {
      test_data.assign(xs.begin(), xs.end());
    }
    // A constant subsample can slip through the deterministic check.
    if (test_data.front() != test_data.back() ||
        *std::max_element(test_data.begin(), test_data.end()) !=
            *std::min_element(test_data.begin(), test_data.end())) {
      s.normality = stats::shapiro_wilk(test_data);
      s.normal_plausible = !s.normality->reject(options.normality_alpha);
    }
  }

  // Independence diagnostic on the leading samples in measurement order
  // (order matters for autocorrelation; do not sort or thin by stride).
  if (s.n >= 30) {
    const std::size_t m = std::min<std::size_t>(s.n, 5000);
    s.iid_check = stats::ljung_box(xs.first(m), 10);
    s.effective_n = stats::effective_sample_size(xs.first(m));
    // Scale up proportionally when we only inspected a prefix.
    s.effective_n *= static_cast<double>(s.n) / static_cast<double>(m);
    s.iid_plausible = !s.iid_check->reject(options.normality_alpha);
  } else {
    s.effective_n = static_cast<double>(s.n);
  }

  if (s.normal_plausible && s.n >= 2) {
    s.mean_ci = stats::mean_confidence_interval(xs, options.confidence);
  }
  if (s.n > 5) {
    // `sorted` already exists from the quantile block above; the
    // unsorted entry point would re-sort the whole series.
    s.median_ci =
        stats::quantile_confidence_interval_sorted(sorted, 0.5, options.confidence);
  }

  // Right-skewed nondeterministic data: lead with the median (robust);
  // plausibly normal data: the mean is meaningful and more familiar.
  if (s.normal_plausible) {
    s.representative = s.mean;
    s.representative_kind = "mean";
  } else {
    s.representative = s.median;
    s.representative_kind = "median";
  }
  return s;
}

}  // namespace sci::core
