// Measurement series and their rule-conforming summaries.
//
// summarize_series() is the heart of the library's data analysis: it
// applies Rules 5-6 mechanically --
//   1. detect deterministic series (no variation -> algebraic summary);
//   2. diagnostic normality check (Shapiro-Wilk on <= 5000 samples,
//      never assumed from sample count alone);
//   3. parametric CI of the mean only when normality is plausible;
//      rank-based CI of the median always (distribution-free);
//   4. everything needed for Rule 12 plots (quartiles, whiskers, KDE
//      inputs are all derivable from the raw series, which is kept).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"

namespace sci::core {

struct SummaryOptions {
  double confidence = 0.95;
  double normality_alpha = 0.05;
  /// Equality tolerance for the deterministic check, relative to |median|.
  double deterministic_rtol = 0.0;
};

struct MeasurementSummary {
  std::size_t n = 0;
  bool deterministic = false;

  double mean = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  double cov = 0.0;  ///< coefficient of variation (0 when mean == 0)
  double q1 = 0.0;
  double q3 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  /// Shapiro-Wilk on the (possibly thinned) series; absent when n < 3 or
  /// the series is deterministic.
  std::optional<stats::TestResult> normality;
  bool normal_plausible = false;

  /// Independence diagnostic (Ljung-Box on the first <= 5000 samples in
  /// measurement order) and the resulting effective sample size; CIs are
  /// overconfident when effective_n << n (Section 3.1: both CI flavors
  /// require iid samples).
  std::optional<stats::TestResult> iid_check;
  double effective_n = 0.0;
  bool iid_plausible = true;

  /// t-based CI of the mean; only meaningful when normal_plausible.
  std::optional<stats::Interval> mean_ci;
  /// Rank-based CI of the median (needs n > 5); distribution-free.
  std::optional<stats::Interval> median_ci;

  /// The value a report should lead with, and why.
  double representative = 0.0;
  std::string representative_kind;  ///< "deterministic value"|"median"|"mean"
};

/// Applies the Rule 5/6 decision procedure described above.
[[nodiscard]] MeasurementSummary summarize_series(std::span<const double> xs,
                                                  const SummaryOptions& options = {});

/// A named series with unit, the raw-data currency of the library.
struct Series {
  std::string name;
  std::string unit;  ///< Rule "report units unambiguously": "s", "flop/s", "B"...
  std::vector<double> values;
};

}  // namespace sci::core
