#include "core/plots.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/histogram.hpp"
#include "stats/normality.hpp"

namespace sci::core {
namespace {

std::string format_number(double v) {
  std::ostringstream os;
  os << std::setprecision(4) << std::defaultfloat << v;
  return os.str();
}

struct Canvas {
  std::size_t width;
  std::size_t height;
  std::vector<std::string> rows;

  Canvas(std::size_t w, std::size_t h) : width(w), height(h), rows(h, std::string(w, ' ')) {}

  void put(std::size_t col, std::size_t row, char glyph) {
    if (row < height && col < width) rows[row][col] = glyph;
  }

  [[nodiscard]] std::string str() const {
    std::string out;
    for (const auto& r : rows) {
      out += '|';
      out += r;
      out += "|\n";
    }
    return out;
  }
};

std::string axis_line(double lo, double hi, std::size_t width, const std::string& label) {
  std::ostringstream os;
  const std::string left = format_number(lo);
  const std::string right = format_number(hi);
  os << '+' << std::string(width, '-') << "+\n";
  os << ' ' << left;
  const std::size_t used = left.size() + right.size();
  if (width > used) os << std::string(width - used, ' ');
  os << right;
  if (!label.empty()) os << "  [" << label << ']';
  os << '\n';
  return os.str();
}

std::string title_line(const std::string& title, std::size_t width) {
  if (title.empty()) return {};
  std::string out = "  " + title;
  if (out.size() < width) out += std::string(width - out.size(), ' ');
  return out + "\n";
}

}  // namespace

std::string render_density(std::span<const double> xs, const PlotOptions& options) {
  if (xs.empty()) throw std::invalid_argument("render_density: empty series");
  const auto curve = stats::kernel_density(xs, options.width);
  const double peak = *std::max_element(curve.density.begin(), curve.density.end());
  Canvas canvas(options.width, options.height);
  for (std::size_t c = 0; c < options.width && c < curve.density.size(); ++c) {
    const double frac = (peak > 0.0) ? curve.density[c] / peak : 0.0;
    const auto bar = static_cast<std::size_t>(std::round(frac * static_cast<double>(options.height - 1)));
    for (std::size_t b = 0; b <= bar; ++b) {
      canvas.put(c, options.height - 1 - b, b == bar ? '*' : ':');
    }
  }
  // Median / mean markers on a separate annotation row.
  const double lo = curve.x.front();
  const double hi = curve.x.back();
  const double med = stats::median(xs);
  const double mean = stats::arithmetic_mean(xs);
  auto col_of = [&](double v) {
    return static_cast<std::size_t>(std::clamp(
        (v - lo) / (hi - lo) * static_cast<double>(options.width - 1), 0.0,
        static_cast<double>(options.width - 1)));
  };
  std::string marks(options.width, ' ');
  marks[col_of(med)] = 'M';    // median
  marks[col_of(mean)] = 'A';   // arithmetic mean
  std::ostringstream os;
  os << title_line(options.title, options.width);
  os << canvas.str();
  os << '|' << marks << "|  M=median(" << format_number(med) << ") A=mean("
     << format_number(mean) << ")\n";
  os << axis_line(lo, hi, options.width, options.x_label);
  return os.str();
}

std::string render_box(std::span<const NamedSeries> series, const PlotOptions& options) {
  if (series.empty()) throw std::invalid_argument("render_box: no series");
  // Axis spans the whisker range, not the outliers: a single extreme
  // observation would otherwise squeeze every box into a sliver.
  std::vector<stats::BoxStats> boxes;
  std::size_t name_width = 0;
  for (const auto& s : series) {
    boxes.push_back(stats::box_stats(s.values));
    name_width = std::max(name_width, s.name.size());
  }
  double lo = boxes.front().whisker_low;
  double hi = boxes.front().whisker_high;
  for (const auto& b : boxes) {
    lo = std::min(lo, b.whisker_low);
    hi = std::max(hi, b.whisker_high);
  }
  if (hi == lo) hi = lo + 1.0;

  auto col_of = [&](double v) {
    return static_cast<std::size_t>(std::clamp(
        (v - lo) / (hi - lo) * static_cast<double>(options.width - 1), 0.0,
        static_cast<double>(options.width - 1)));
  };

  std::ostringstream os;
  os << title_line(options.title, options.width + name_width + 3);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& b = boxes[i];
    std::string row(options.width, ' ');
    for (std::size_t c = col_of(b.whisker_low); c <= col_of(b.q1); ++c) row[c] = '-';
    for (std::size_t c = col_of(b.q1); c <= col_of(b.q3); ++c) row[c] = '=';
    for (std::size_t c = col_of(b.q3); c <= col_of(b.whisker_high); ++c) row[c] = '-';
    row[col_of(b.whisker_low)] = '|';
    row[col_of(b.whisker_high)] = '|';
    row[col_of(b.q1)] = '[';
    row[col_of(b.q3)] = ']';
    row[col_of(b.median)] = 'M';
    std::string name = series[i].name;
    name.resize(name_width, ' ');
    os << ' ' << name << " |" << row << "|\n";
  }
  os << std::string(name_width + 2, ' ')
     << axis_line(lo, hi, options.width, options.x_label);
  os << "  [=]=IQR  M=median  |--|=1.5 IQR whiskers (outliers beyond axis omitted)\n";
  return os.str();
}

std::string render_violin(std::span<const NamedSeries> series, const PlotOptions& options) {
  if (series.empty()) throw std::invalid_argument("render_violin: no series");
  double lo = series.front().values.front();
  double hi = lo;
  for (const auto& s : series) {
    lo = std::min(lo, stats::min_value(s.values));
    hi = std::max(hi, stats::max_value(s.values));
  }
  if (hi == lo) hi = lo + 1.0;

  std::ostringstream os;
  os << title_line(options.title, options.width);
  // Glyph ramp for half-width of the violin at each x position.
  static constexpr char kRamp[] = {'.', ':', '+', '#'};
  for (const auto& s : series) {
    const auto curve = stats::kernel_density(s.values, options.width);
    const double peak = *std::max_element(curve.density.begin(), curve.density.end());
    const double c_lo = curve.x.front();
    const double c_hi = curve.x.back();
    std::string row(options.width, ' ');
    for (std::size_t c = 0; c < options.width && c < curve.density.size(); ++c) {
      const double frac = (peak > 0.0) ? curve.density[c] / peak : 0.0;
      if (frac > 0.02) {
        row[c] = kRamp[std::min<std::size_t>(static_cast<std::size_t>(frac * 4.0), 3)];
      }
    }
    const auto b = stats::box_stats(s.values);
    auto col_of = [&](double v) {
      return static_cast<std::size_t>(std::clamp(
          (v - c_lo) / (c_hi - c_lo) * static_cast<double>(options.width - 1), 0.0,
          static_cast<double>(options.width - 1)));
    };
    row[col_of(b.q1)] = '[';
    row[col_of(b.q3)] = ']';
    row[col_of(b.median)] = 'M';
    os << ' ' << s.name << "\n |" << row << "|\n";
    os << ' ' << axis_line(c_lo, c_hi, options.width, options.x_label);
  }
  os << "  density ramp . : + #   [ ]=quartiles  M=median\n";
  return os.str();
}

std::string render_qq(std::span<const double> xs, const PlotOptions& options) {
  const auto points = stats::qq_normal(xs, options.width * 2);
  double x_lo = points.front().theoretical, x_hi = points.back().theoretical;
  double y_lo = points.front().sample, y_hi = points.back().sample;
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;

  Canvas canvas(options.width, options.height);
  for (const auto& pt : points) {
    const auto c = static_cast<std::size_t>((pt.theoretical - x_lo) / (x_hi - x_lo) *
                                            static_cast<double>(options.width - 1));
    const auto r = static_cast<std::size_t>((pt.sample - y_lo) / (y_hi - y_lo) *
                                            static_cast<double>(options.height - 1));
    canvas.put(c, options.height - 1 - r, 'o');
  }
  // Reference diagonal through the quartile pair (as R's qqline).
  std::ostringstream os;
  os << title_line(options.title, options.width);
  os << canvas.str();
  os << axis_line(x_lo, x_hi, options.width, "theoretical quantiles (std normal)");
  os << "  straight diagonal of o's => plausibly normal; r(QQ)="
     << format_number(stats::qq_correlation(xs)) << '\n';
  return os.str();
}

std::string render_xy(std::span<const XYSeries> series, const PlotOptions& options,
                      bool log_y) {
  if (series.empty()) throw std::invalid_argument("render_xy: no series");
  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
  bool first = true;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double y = log_y ? std::log10(s.y[i]) : s.y[i];
      if (first) {
        x_lo = x_hi = s.x[i];
        y_lo = y_hi = y;
        first = false;
      } else {
        x_lo = std::min(x_lo, s.x[i]);
        x_hi = std::max(x_hi, s.x[i]);
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
    }
  }
  if (first) throw std::invalid_argument("render_xy: all series empty");
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;

  Canvas canvas(options.width, options.height);
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      const double y = log_y ? std::log10(s.y[i]) : s.y[i];
      const auto c = static_cast<std::size_t>((s.x[i] - x_lo) / (x_hi - x_lo) *
                                              static_cast<double>(options.width - 1));
      const auto r = static_cast<std::size_t>((y - y_lo) / (y_hi - y_lo) *
                                              static_cast<double>(options.height - 1));
      canvas.put(c, options.height - 1 - r, s.glyph);
    }
  }
  std::ostringstream os;
  os << title_line(options.title, options.width);
  os << canvas.str();
  os << axis_line(x_lo, x_hi, options.width, options.x_label);
  os << "  y-range: [" << format_number(log_y ? std::pow(10, y_lo) : y_lo) << ", "
     << format_number(log_y ? std::pow(10, y_hi) : y_hi) << ']'
     << (log_y ? " (log scale)" : "") << "  legend:";
  for (const auto& s : series) os << "  " << s.glyph << '=' << s.name;
  os << '\n';
  return os.str();
}

}  // namespace sci::core
