// Terminal plot renderers (Rule 12: "Plot as much information as needed
// to interpret the experimental results"). These are the text-mode
// equivalents of the paper's figures: density curves (Figs. 1-3), box
// and violin plots (Figs. 6, 7c), Q-Q panels (Fig. 2), and annotated
// line charts with bound curves (Figs. 5, 7a/b). Bench binaries print
// them so results are interpretable straight from a terminal; the same
// raw data is exported as CSV for journal-grade graphics.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"

namespace sci::core {

struct PlotOptions {
  std::size_t width = 72;   ///< interior columns
  std::size_t height = 12;  ///< interior rows (where applicable)
  std::string title;
  std::string x_label;
};

/// Kernel-density curve of a sample, annotated with median/mean markers.
[[nodiscard]] std::string render_density(std::span<const double> xs,
                                         const PlotOptions& options = {});

/// Horizontal box plot with 1.5 IQR whiskers; one row per named series.
struct NamedSeries {
  std::string name;
  std::vector<double> values;
};
[[nodiscard]] std::string render_box(std::span<const NamedSeries> series,
                                     const PlotOptions& options = {});

/// Violin (mirrored density) plus inner quartile box, one per series.
[[nodiscard]] std::string render_violin(std::span<const NamedSeries> series,
                                        const PlotOptions& options = {});

/// Normal Q-Q panel; a straight diagonal indicates normality.
[[nodiscard]] std::string render_qq(std::span<const double> xs,
                                    const PlotOptions& options = {});

/// Multi-series scatter/line chart on shared axes; series are drawn in
/// order with distinct glyphs. X positions need not be uniform.
struct XYSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};
[[nodiscard]] std::string render_xy(std::span<const XYSeries> series,
                                    const PlotOptions& options = {},
                                    bool log_y = false);

}  // namespace sci::core
