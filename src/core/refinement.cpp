#include "core/refinement.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

namespace sci::core {
namespace {

void resummarize(RefinedLevel& lvl, double confidence) {
  // Runs after every refinement batch; one sort serves both the median
  // and the rank-based CI.
  const auto sorted = stats::sorted_copy(lvl.samples);
  lvl.median = stats::quantile_sorted(sorted, 0.5);
  if (sorted.size() > 5) {
    lvl.ci = stats::quantile_confidence_interval_sorted(sorted, 0.5, confidence);
  } else {
    lvl.ci = {lvl.median, lvl.median, confidence};
  }
}

/// Relative CI width; the refinement priority.
double uncertainty(const RefinedLevel& lvl) {
  if (lvl.median == 0.0) return lvl.ci.width();
  return lvl.ci.width() / std::fabs(lvl.median);
}

}  // namespace

std::vector<RefinedLevel> measure_adaptive_levels(
    const std::function<double(double)>& measure, std::vector<double> levels,
    const RefinementOptions& options) {
  if (!measure) throw std::invalid_argument("measure_adaptive_levels: null function");
  if (levels.size() < 2)
    throw std::invalid_argument("measure_adaptive_levels: need >= 2 levels");
  if (!std::is_sorted(levels.begin(), levels.end()))
    throw std::invalid_argument("measure_adaptive_levels: levels must be sorted");
  if (options.initial_samples * levels.size() > options.total_budget)
    throw std::invalid_argument("measure_adaptive_levels: budget below initial sampling");

  std::vector<RefinedLevel> out;
  out.reserve(levels.size());
  std::size_t spent = 0;
  for (double level : levels) {
    RefinedLevel lvl;
    lvl.level = level;
    for (std::size_t i = 0; i < options.initial_samples; ++i) {
      lvl.samples.push_back(measure(level));
      ++spent;
    }
    resummarize(lvl, options.confidence);
    out.push_back(std::move(lvl));
  }

  while (spent + options.batch <= options.total_budget) {
    // Shape-driven: insert a midpoint where interpolation fails worst.
    std::size_t insert_after = out.size();
    double worst_gap = options.interpolation_tolerance;
    if (options.insert_midpoints && out.size() < options.max_levels) {
      for (std::size_t i = 0; i + 2 < out.size(); ++i) {
        // Predict the middle level from its neighbors.
        const auto& a = out[i];
        const auto& b = out[i + 1];
        const auto& c = out[i + 2];
        if (c.level == a.level) continue;
        const double t = (b.level - a.level) / (c.level - a.level);
        const double predicted = a.median + t * (c.median - a.median);
        const double gap =
            (b.median != 0.0) ? std::fabs(predicted - b.median) / std::fabs(b.median) : 0.0;
        // Candidate midpoints flank the poorly-predicted level.
        if (gap > worst_gap && b.level - a.level > 1.0) {
          worst_gap = gap;
          insert_after = i;
        }
      }
    }
    if (insert_after < out.size()) {
      RefinedLevel mid;
      mid.level = std::floor((out[insert_after].level + out[insert_after + 1].level) / 2.0);
      mid.inserted = true;
      for (std::size_t i = 0; i < options.batch && spent < options.total_budget; ++i) {
        mid.samples.push_back(measure(mid.level));
        ++spent;
      }
      resummarize(mid, options.confidence);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(insert_after) + 1,
                 std::move(mid));
      continue;
    }

    // Uncertainty-driven: refine the level with the widest relative CI.
    auto widest = std::max_element(out.begin(), out.end(),
                                   [](const RefinedLevel& a, const RefinedLevel& b) {
                                     return uncertainty(a) < uncertainty(b);
                                   });
    if (uncertainty(*widest) == 0.0) break;  // everything is exact
    for (std::size_t i = 0; i < options.batch && spent < options.total_budget; ++i) {
      widest->samples.push_back(measure(widest->level));
      ++spent;
    }
    resummarize(*widest, options.confidence);
  }
  return out;
}

}  // namespace sci::core
