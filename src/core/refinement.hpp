// Adaptive level refinement (Section 4.2 "Adaptive Level Refinement":
// "one could use adaptive refinement to measure levels where the
// uncertainty is highest, similar to active learning. SKaMPI uses this
// approach assuming parameters are linear.")
//
// Given a measurable f(level) and an initial set of levels (message
// sizes, process counts, ...), the refiner spends a fixed measurement
// budget where it is most informative:
//   - sampling the level whose nonparametric CI is widest relative to
//     its center (uncertainty-driven), and
//   - inserting midpoints where linear interpolation between neighboring
//     levels mispredicts the measured value the most (SKaMPI-style
//     shape-driven refinement).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "stats/confidence.hpp"

namespace sci::core {

struct RefinementOptions {
  std::size_t initial_samples = 10;   ///< per level before refinement starts
  std::size_t batch = 5;              ///< samples added per refinement step
  std::size_t total_budget = 500;     ///< total measurement invocations
  double confidence = 0.95;
  /// Insert a midpoint level when linear interpolation of the medians of
  /// its neighbors misses the measured median by more than this fraction.
  bool insert_midpoints = true;
  double interpolation_tolerance = 0.1;
  std::size_t max_levels = 64;
};

struct RefinedLevel {
  double level = 0.0;
  std::vector<double> samples;
  double median = 0.0;
  stats::Interval ci;           ///< CI of the median
  bool inserted = false;        ///< added by midpoint refinement
};

/// Measures `measure(level)` adaptively. `levels` must be sorted
/// ascending with at least two entries. Results are sorted by level.
[[nodiscard]] std::vector<RefinedLevel> measure_adaptive_levels(
    const std::function<double(double)>& measure, std::vector<double> levels,
    const RefinementOptions& options = {});

}  // namespace sci::core
