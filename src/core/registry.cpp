#include "core/registry.hpp"

#include <ostream>
#include <stdexcept>

#include "core/dataset.hpp"
#include "core/report.hpp"

namespace sci::core {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(RegisteredBenchmark benchmark) {
  if (benchmark.name.empty()) throw std::invalid_argument("Registry: empty name");
  if (!benchmark.measure) throw std::invalid_argument("Registry: null measurement");
  for (const auto& b : benchmarks_) {
    if (b.name == benchmark.name) {
      throw std::invalid_argument("Registry: duplicate benchmark '" + benchmark.name +
                                  "'");
    }
  }
  if (benchmark.experiment.name.empty()) benchmark.experiment.name = benchmark.name;
  benchmarks_.push_back(std::move(benchmark));
}

void Registry::add(std::string name, std::function<double()> measure) {
  RegisteredBenchmark b;
  b.name = std::move(name);
  b.measure = std::move(measure);
  add(std::move(b));
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(benchmarks_.size());
  for (const auto& b : benchmarks_) out.push_back(b.name);
  return out;
}

std::size_t Registry::run_all(std::ostream& os, const RunnerOptions& options) {
  std::size_t executed = 0;
  for (auto& b : benchmarks_) {
    if (!options.filter.empty() && b.name.find(options.filter) == std::string::npos) {
      continue;
    }
    const auto result = measure_adaptive(b.measure, b.sampling);

    ReportBuilder report(b.experiment);
    report.add_series({b.name, b.unit, result.samples});
    os << report.render();
    os << "sampling: " << result.samples.size() << " samples, " << result.stop_reason
       << " (warmup " << result.warmup_discarded << ")\n";
    os << ReportBuilder::render_audit(report.audit()) << '\n';

    if (options.write_csv) {
      Dataset ds(b.experiment, {b.name + "_" + b.unit});
      for (double v : result.samples) ds.add_row({v});
      ds.save_csv(options.csv_directory + "/" + b.name + ".csv");
    }
    ++executed;
  }
  return executed;
}

}  // namespace sci::core
