// Benchmark registry and runner: the "building block for a new
// benchmark suite" role of LibSciBench (Section 6). Applications
// register named measurements (statically via the SCIBENCH macro or
// dynamically); the runner executes each with warmup + adaptive
// sampling, prints a rule-conforming report, and can export the raw
// samples as documented CSV.
//
//   static sci::core::Registration reg_sort{"std_sort", [] {
//     ... return elapsed_ns; }};
//   // or: SCIBENCH(std_sort) { ... return elapsed_ns; }
//
//   int main() { return sci::core::Registry::instance().run_all(std::cout); }
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/experiment.hpp"

namespace sci::core {

struct RegisteredBenchmark {
  std::string name;
  std::function<double()> measure;  ///< one measurement per call, any unit
  std::string unit = "ns";
  Experiment experiment;            ///< optional extra documentation
  AdaptiveOptions sampling;         ///< per-benchmark sampling policy
};

struct RunnerOptions {
  std::string filter;        ///< substring filter on names; empty = all
  bool write_csv = false;    ///< dump <name>.csv into csv_directory
  /// Created (with parents) when missing; export failures throw instead
  /// of silently dropping data.
  std::string csv_directory = ".";
  /// Campaign worker threads (run_all executes through sci::exec).
  /// Default 1: host measurements sharing cores perturb each other
  /// (Rule 4); raise it only when idle cores are available.
  std::size_t workers = 1;
};

class Registry {
 public:
  /// The process-wide registry used by static registrations.
  static Registry& instance();

  /// Registers a benchmark; names must be unique.
  void add(RegisteredBenchmark benchmark);

  /// Convenience: name + measurement with default options.
  void add(std::string name, std::function<double()> measure);

  [[nodiscard]] std::size_t size() const noexcept { return benchmarks_.size(); }
  [[nodiscard]] std::vector<std::string> names() const;

  /// Runs every (filtered) benchmark; renders one report per benchmark
  /// to `os`. Returns the number executed.
  std::size_t run_all(std::ostream& os, const RunnerOptions& options = {});

  /// Removes all registrations (tests).
  void clear() noexcept { benchmarks_.clear(); }

 private:
  std::vector<RegisteredBenchmark> benchmarks_;
};

/// Static registration helper.
struct Registration {
  Registration(std::string name, std::function<double()> measure) {
    Registry::instance().add(std::move(name), std::move(measure));
  }
  Registration(RegisteredBenchmark benchmark) {
    Registry::instance().add(std::move(benchmark));
  }
};

/// SCIBENCH(name) { ...body returning double...  }
#define SCIBENCH(name)                                              \
  static double scibench_fn_##name();                               \
  static ::sci::core::Registration scibench_reg_##name{#name,       \
                                                       &scibench_fn_##name}; \
  static double scibench_fn_##name()

}  // namespace sci::core
