#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sci::core {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(5) << std::defaultfloat << v;
  return os.str();
}

}  // namespace

ReportBuilder::ReportBuilder(Experiment experiment) : experiment_(std::move(experiment)) {}

ReportBuilder& ReportBuilder::add_series(const Series& series) {
  series_.push_back({series, summarize_series(series.values)});
  return *this;
}

ReportBuilder& ReportBuilder::add_speedup(const SpeedupReport& speedup) {
  speedups_.push_back(speedup);
  return *this;
}

ReportBuilder& ReportBuilder::declare_units_convention() {
  units_declared_ = true;
  return *this;
}

ReportBuilder& ReportBuilder::add_bound(const std::string& series_name,
                                        const std::string& model, double bound_value) {
  bounds_.push_back({series_name, model, bound_value});
  return *this;
}

ReportBuilder& ReportBuilder::add_plot(std::string plot_text) {
  plots_.push_back(std::move(plot_text));
  return *this;
}

ReportBuilder& ReportBuilder::add_comparison(const std::string& a, const std::string& b,
                                             const std::string& method, double p_value,
                                             double effect_size) {
  comparisons_.push_back({a, b, method, p_value, effect_size});
  return *this;
}

ReportBuilder& ReportBuilder::set_counter_summary(obs::CounterSnapshot counters) {
  counters_ = std::move(counters);
  // Callers assemble the snapshot from several sources (CSV provenance
  // sums, then live registry counters); sort so the rendered footer is
  // deterministic regardless of assembly order.
  std::sort(counters_.begin(), counters_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return *this;
}

std::string ReportBuilder::render() const {
  std::ostringstream os;
  os << "==== " << experiment_.name << " ====\n";
  os << experiment_.to_header() << '\n';
  if (units_declared_) {
    os << "units: flop (count), flop/s (rate), B (bytes), b (bits); "
          "binary prefixes use IEC (KiB, MiB)\n\n";
  }
  for (const auto& [series, summary] : series_) {
    os << "series " << series.name << " [" << series.unit << "], n=" << summary.n << '\n';
    if (summary.deterministic) {
      os << "  deterministic: " << fmt(summary.representative) << ' ' << series.unit << '\n';
      continue;
    }
    os << "  median=" << fmt(summary.median);
    if (summary.median_ci) {
      os << "  CI" << static_cast<int>(summary.median_ci->confidence * 100) << "%(median)=["
         << fmt(summary.median_ci->lower) << ", " << fmt(summary.median_ci->upper) << ']';
    }
    os << '\n';
    os << "  mean=" << fmt(summary.mean);
    if (summary.mean_ci) {
      os << "  CI" << static_cast<int>(summary.mean_ci->confidence * 100) << "%(mean)=["
         << fmt(summary.mean_ci->lower) << ", " << fmt(summary.mean_ci->upper) << ']';
    } else {
      os << "  (no parametric CI: normality not plausible)";
    }
    os << '\n';
    os << "  min=" << fmt(summary.min) << "  q1=" << fmt(summary.q1)
       << "  q3=" << fmt(summary.q3) << "  p95=" << fmt(summary.p95)
       << "  p99=" << fmt(summary.p99) << "  max=" << fmt(summary.max) << '\n';
    os << "  CoV=" << fmt(summary.cov);
    if (summary.normality) {
      os << "  Shapiro-Wilk W=" << fmt(summary.normality->statistic)
         << " p=" << fmt(summary.normality->p_value)
         << (summary.normal_plausible ? " (normal plausible)" : " (not normal)");
    }
    os << '\n';
    if (summary.iid_check) {
      os << "  iid: Ljung-Box Q=" << fmt(summary.iid_check->statistic)
         << " p=" << fmt(summary.iid_check->p_value) << ", effective n ~ "
         << fmt(summary.effective_n);
      if (!summary.iid_plausible) {
        os << "  WARNING: samples are autocorrelated; CIs are too narrow";
      }
      os << '\n';
    }
    os << "  representative: " << summary.representative_kind << " = "
       << fmt(summary.representative) << ' ' << series.unit << "\n\n";
  }
  for (const auto& speedup : speedups_) os << speedup.to_string() << '\n';
  for (const auto& bound : bounds_) {
    os << "bound[" << bound.series_name << "] " << bound.model << " <= " << fmt(bound.value)
       << '\n';
  }
  for (const auto& cmp : comparisons_) {
    os << "compare " << cmp.a << " vs " << cmp.b << " (" << cmp.method
       << "): p=" << fmt(cmp.p_value) << ", effect size=" << fmt(cmp.effect) << '\n';
  }
  for (const auto& plot : plots_) os << '\n' << plot;
  if (!counters_.empty()) {
    os << "\nprovenance counters (how these numbers were produced):\n";
    for (const auto& [name, value] : counters_) {
      os << "  " << name << " = " << value << '\n';
    }
  }
  return os.str();
}

std::string ReportBuilder::render_markdown() const {
  std::ostringstream os;
  os << "## " << experiment_.name << "\n\n";
  if (!experiment_.description.empty()) os << experiment_.description << "\n\n";

  if (!experiment_.environment.empty() || !experiment_.factors.empty()) {
    os << "### Setup (Rule 9)\n\n";
    for (const auto& [key, value] : experiment_.environment) {
      os << "- **" << key << "**: " << value << '\n';
    }
    for (const auto& factor : experiment_.factors) {
      os << "- factor **" << factor.name << "**:";
      for (const auto& level : factor.levels) os << " `" << level << "`";
      os << '\n';
    }
    if (!experiment_.synchronization_method.empty()) {
      os << "- sync: " << experiment_.synchronization_method
         << "; cross-process summary: " << experiment_.summary_across_processes << '\n';
    }
    os << '\n';
  }

  if (!series_.empty()) {
    os << "### Measurements\n\n";
    os << "| series | n | median | 95% CI (median) | mean | p99 | CoV | normal? | iid? |\n";
    os << "|---|---|---|---|---|---|---|---|---|\n";
    for (const auto& [series, summary] : series_) {
      os << "| " << series.name << " [" << series.unit << "] | " << summary.n << " | ";
      if (summary.deterministic) {
        os << fmt(summary.representative) << " | deterministic | - | - | 0 | - | - |\n";
        continue;
      }
      os << fmt(summary.median) << " | ";
      if (summary.median_ci) {
        os << '[' << fmt(summary.median_ci->lower) << ", " << fmt(summary.median_ci->upper)
           << "] | ";
      } else {
        os << "n/a | ";
      }
      os << fmt(summary.mean) << " | " << fmt(summary.p99) << " | " << fmt(summary.cov)
         << " | " << (summary.normal_plausible ? "plausible" : "**no**") << " | "
         << (summary.iid_plausible ? "plausible" : "**autocorrelated**") << " |\n";
    }
    os << '\n';
  }

  for (const auto& speedup : speedups_) {
    os << "### Speedup (Rule 1)\n\n```\n" << speedup.to_string() << "```\n\n";
  }
  if (!bounds_.empty()) {
    os << "### Bounds (Rule 11)\n\n";
    for (const auto& bound : bounds_) {
      os << "- `" << bound.series_name << "` <= " << fmt(bound.value) << " (" << bound.model
         << ")\n";
    }
    os << '\n';
  }
  if (!comparisons_.empty()) {
    os << "### Comparisons (Rule 7)\n\n";
    for (const auto& cmp : comparisons_) {
      os << "- " << cmp.a << " vs " << cmp.b << ": " << cmp.method
         << " p = " << fmt(cmp.p_value) << ", effect size " << fmt(cmp.effect) << '\n';
    }
    os << '\n';
  }
  if (!plots_.empty()) {
    os << "### Plots (Rule 12)\n\n";
    for (const auto& plot : plots_) os << "```\n" << plot << "```\n\n";
  }

  os << "### Twelve-rule audit\n\n";
  for (const auto& check : audit()) {
    os << "- [" << (check.satisfied || !check.applicable ? 'x' : ' ') << "] Rule "
       << check.rule << ": " << check.name;
    if (!check.applicable) os << " *(n/a)*";
    if (!check.note.empty()) os << " -- " << check.note;
    os << '\n';
  }
  if (!counters_.empty()) {
    os << "\n### Provenance counters (Rule 9)\n\n";
    os << "| counter | value |\n|---|---|\n";
    for (const auto& [name, value] : counters_) {
      os << "| `" << name << "` | " << value << " |\n";
    }
  }
  return os.str();
}

std::vector<RuleCheck> ReportBuilder::audit() const {
  std::vector<RuleCheck> checks;

  // Rule 1: speedups carry base case + absolute base performance.
  {
    RuleCheck c{1, "speedup base case documented", true, !speedups_.empty(), ""};
    for (const auto& s : speedups_) {
      if (s.base_absolute <= 0.0 || s.base_unit.empty()) {
        c.satisfied = false;
        c.note = "speedup without absolute base performance";
      }
    }
    if (speedups_.empty()) c.note = "no speedups reported";
    checks.push_back(c);
  }
  // Rule 2: subsets must carry a reason.
  checks.push_back({2, "subset reasons stated",
                    !experiment_.uses_subset || !experiment_.subset_reason.empty(),
                    experiment_.uses_subset,
                    experiment_.uses_subset ? "" : "no subset declared"});
  // Rules 3/4 are enforced by the type system (stats::summarize on
  // Cost/Rate/Ratio); a report cannot hold a wrong-mean summary.
  checks.push_back({3, "correct mean for costs/rates (type-enforced)", true, true,
                    "see stats/summarize.hpp"});
  checks.push_back({4, "ratios not averaged (type-enforced)", true, true,
                    "see stats/summarize.hpp"});
  // Rule 5: nondeterministic series carry CIs.
  {
    RuleCheck c{5, "CIs reported for nondeterministic data", true, false, ""};
    for (const auto& [series, summary] : series_) {
      if (!summary.deterministic) {
        c.applicable = true;
        if (!summary.median_ci && !summary.mean_ci) {
          c.satisfied = false;
          c.note = "series '" + series.name + "' lacks a CI (n too small?)";
        }
      }
    }
    checks.push_back(c);
  }
  // Rule 6: normality diagnosed, not assumed.
  {
    RuleCheck c{6, "normality diagnostically checked", true, false, ""};
    for (const auto& [series, summary] : series_) {
      if (!summary.deterministic) {
        c.applicable = true;
        if (summary.mean_ci && !summary.normality) {
          c.satisfied = false;
          c.note = "parametric CI without normality diagnostic";
        }
      }
    }
    checks.push_back(c);
  }
  // Rule 7: comparisons use statistical tests.
  checks.push_back({7, "comparisons statistically sound", !comparisons_.empty(),
                    series_.size() >= 2,
                    comparisons_.empty() ? "no statistical comparison attached" : ""});
  // Rule 8: percentiles beyond central tendency are reported.
  checks.push_back({8, "tail percentiles reported", !series_.empty(), !series_.empty(),
                    "p95/p99 included in summaries"});
  // Rule 9: setup documented.
  {
    const auto issues = experiment_.audit();
    RuleCheck c{9, "experimental setup documented", issues.empty(), true, ""};
    if (!issues.empty()) c.note = issues.front();
    checks.push_back(c);
  }
  // Rule 10: parallel measurement/sync/summarization methods recorded;
  // only applicable to parallel measurements.
  {
    const bool parallel = experiment_.parallel_measurement ||
                          !experiment_.synchronization_method.empty() ||
                          !experiment_.summary_across_processes.empty();
    checks.push_back({10, "parallel timing methods documented",
                      !experiment_.synchronization_method.empty() &&
                          !experiment_.summary_across_processes.empty(),
                      parallel, parallel ? "" : "serial measurement"});
  }
  // Rule 11: bounds attached.
  checks.push_back({11, "upper performance bounds shown", !bounds_.empty(), true,
                    bounds_.empty() ? "no bound models attached" : ""});
  // Rule 12: plots attached.
  checks.push_back({12, "results plotted", !plots_.empty(), true,
                    plots_.empty() ? "no plots attached" : ""});
  return checks;
}

std::string ReportBuilder::render_audit(const std::vector<RuleCheck>& checks) {
  std::ostringstream os;
  os << "Twelve-rule audit:\n";
  for (const auto& c : checks) {
    os << "  [" << (!c.applicable ? '-' : (c.satisfied ? 'x' : ' ')) << "] Rule "
       << std::setw(2) << c.rule << ": " << c.name;
    if (!c.note.empty()) os << "  (" << c.note << ')';
    os << '\n';
  }
  return os.str();
}

}  // namespace sci::core
