// Report generation and the twelve-rule audit.
//
// ReportBuilder assembles an interpretable experiment report: the
// documented setup (Rule 9), per-series rule-conforming summaries with
// CIs (Rules 5-8), speedup statements with their base case (Rule 1),
// bound-model context (Rule 11), and plots (Rule 12). The audit()
// method scores the report against the paper's twelve rules, giving
// authors/reviewers the checklist the paper proposes program committees
// adopt.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "core/measurement.hpp"
#include "obs/counters.hpp"

namespace sci::core {

struct RuleCheck {
  int rule = 0;             ///< 1..12
  std::string name;
  bool satisfied = false;
  bool applicable = true;
  std::string note;
};

class ReportBuilder {
 public:
  explicit ReportBuilder(Experiment experiment);

  /// Adds a raw measurement series; it is summarized per Rules 5-6.
  ReportBuilder& add_series(const Series& series);

  /// Rule 1-conforming speedup statement.
  ReportBuilder& add_speedup(const SpeedupReport& speedup);

  /// Declares the units convention used (flop, flop/s, B, b; IEC
  /// binary prefixes) -- the "report units unambiguously" practice.
  ReportBuilder& declare_units_convention();

  /// Rule 11: attach an upper-bound context line for a series.
  ReportBuilder& add_bound(const std::string& series_name, const std::string& model,
                           double bound_value);

  /// Rule 12: attach a pre-rendered plot (from core/plots.hpp).
  ReportBuilder& add_plot(std::string plot_text);

  /// Rule 7: record a statistical comparison of two series by name
  /// (computed by the caller with stats::compare tools).
  ReportBuilder& add_comparison(const std::string& a, const std::string& b,
                                const std::string& method, double p_value,
                                double effect_size);

  /// Rule 9 footer: embed the obs counter registry snapshot (messages,
  /// bytes, noise draws, harness overhead, ...) taken after the run, so
  /// the report records how its numbers were produced.
  ReportBuilder& set_counter_summary(obs::CounterSnapshot counters);

  /// Full text report.
  [[nodiscard]] std::string render() const;

  /// The same report as GitHub-flavored Markdown (summary tables, rule
  /// checklist as task list, plots in code fences) -- paste-ready for
  /// READMEs, issues, and paper supplements.
  [[nodiscard]] std::string render_markdown() const;

  /// The twelve-rule checklist for this report.
  [[nodiscard]] std::vector<RuleCheck> audit() const;

  /// Render the checklist as text ([x] / [ ] / [-] not applicable).
  [[nodiscard]] static std::string render_audit(const std::vector<RuleCheck>& checks);

 private:
  struct SummarizedSeries {
    Series series;
    MeasurementSummary summary;
  };
  struct Comparison {
    std::string a, b, method;
    double p_value, effect;
  };
  struct Bound {
    std::string series_name, model;
    double value;
  };

  Experiment experiment_;
  std::vector<SummarizedSeries> series_;
  std::vector<SpeedupReport> speedups_;
  std::vector<Comparison> comparisons_;
  std::vector<Bound> bounds_;
  std::vector<std::string> plots_;
  obs::CounterSnapshot counters_;
  bool units_declared_ = false;
};

}  // namespace sci::core
