// sci::exec measurement backends.
//
// The paper's Rule 9 says an experiment is its factorial design: the
// factors, their levels, and the fixed environment. sci::exec makes
// that design executable. A Config is one cell of the factorial grid
// (one level chosen per factor); a Backend knows how to produce one
// measurement -- one replication of one cell -- from a (config, seed)
// pair. Everything above (grid enumeration, seeding, sharding across
// workers, caching, CSV export) is backend-agnostic and lives in
// campaign.hpp / runner.hpp.
//
// Determinism contract: a backend whose measurement substrate is
// simulated (SimBackend) must be a pure function of (config, seed) --
// re-running a cell regenerates exactly the published series. Host
// backends measure real time and are exempt, but must still be safe to
// call from multiple worker threads at once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rng/xoshiro.hpp"

namespace sci::exec {

/// One cell of the factorial grid: a level chosen for every factor.
struct Config {
  /// Position in the campaign's row-major grid enumeration (first
  /// factor slowest-varying). Stable across runs and worker counts.
  std::size_t index = 0;
  /// (factor name, chosen level) in factor declaration order.
  std::vector<std::pair<std::string, std::string>> levels;
  /// Per-factor index of the chosen level, aligned with `levels`.
  std::vector<std::size_t> level_indices;

  /// Level of `factor`, or nullptr when the campaign has no such factor.
  [[nodiscard]] const std::string* find_level(const std::string& factor) const noexcept;
  /// Level of `factor`; throws std::out_of_range when absent.
  [[nodiscard]] const std::string& level(const std::string& factor) const;
  /// Numeric level (strict parse; throws std::invalid_argument on junk).
  [[nodiscard]] double level_double(const std::string& factor) const;
  [[nodiscard]] long long level_int(const std::string& factor) const;

  /// "system=dora message_bytes=64" -- for labels and error messages.
  [[nodiscard]] std::string to_string() const;

  /// Order-sensitive hash of the factor/level assignment mixed with
  /// `salt` (splitmix64 over every byte). The runner's result cache key
  /// is hash(levels) mixed with the cell seed and the backend name.
  [[nodiscard]] std::uint64_t hash(std::uint64_t salt = 0) const noexcept;
};

/// One backend invocation's output: the raw sample series of a single
/// replication, never pre-summarized (Rule 5: keep the spread).
struct CellResult {
  std::vector<double> samples;
  std::string unit = "ns";
  /// Why sampling stopped: "converged" | "max_samples" | "fixed".
  std::string stop_reason = "fixed";
  std::size_t warmup_discarded = 0;
  /// Filled by the runner: true when served from the result cache.
  bool from_cache = false;
  /// Hot-path allocation audit, filled by the runner per replication
  /// (thread-local deltas around the backend call, so concurrent
  /// workers never pollute each other's numbers). In steady state both
  /// are zero from the second replication of a shape onward; excluded
  /// from CSV exports, so they never affect byte-determinism.
  std::uint64_t coro_frame_heap_allocs = 0;  ///< sim::FramePool misses
  std::uint64_t callback_heap_spills = 0;    ///< InlineCallback SBO spills
  /// Non-empty when the backend threw; `samples` is then empty.
  std::string error;
  /// Backend calls this cell consumed (1 on first-try success; up to
  /// CampaignRunnerOptions::max_attempts when retries engaged). Zero
  /// for cells never executed (cache/journal hits keep the recorded
  /// value; interrupted cells report 0).
  std::size_t attempts = 0;
};

/// Per-worker reusable state for a Backend: the runner creates one
/// context per worker thread and feeds it that worker's cells
/// sequentially, so a context may keep simulation worlds, sample
/// buffers, and RNG state warm across replications. Contexts must obey
/// the same determinism contract as Backend::run -- run() here must be
/// byte-identical to the backend's stateless run() for every
/// (config, seed) -- and need not be thread-safe (one worker each).
class BackendContext {
 public:
  virtual ~BackendContext() = default;

  /// Produces the samples of one (config, seed) cell replication.
  [[nodiscard]] virtual CellResult run(const Config& config, std::uint64_t seed) = 0;
};

/// A measurement substrate. One call = one replication of one grid
/// cell. Implementations must tolerate concurrent run() calls from the
/// CampaignRunner's workers.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier; part of the result-cache key.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces the samples of one (config, seed) cell replication.
  [[nodiscard]] virtual CellResult run(const Config& config, std::uint64_t seed) = 0;

  /// Creates per-worker reusable state (see BackendContext). Returning
  /// nullptr (the default) tells the runner to call run() directly;
  /// backends with expensive per-call setup override this.
  [[nodiscard]] virtual std::unique_ptr<BackendContext> make_context() { return nullptr; }

  /// One-line description for Rule 9 documentation (defaults to name()).
  [[nodiscard]] virtual std::string describe() const { return name(); }
};

/// The campaign seeding scheme: the seed of replication `rep` of grid
/// cell `config_index` is derived from the campaign seed by three
/// chained splitmix64 steps,
///   s0 = splitmix64(campaign_seed)
///   s1 = splitmix64(s0 ^ config_index)
///   seed = splitmix64(s1 ^ rep)
/// so cells are statistically independent, reproducible from the three
/// integers alone, and independent of execution order / worker count.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                               std::uint64_t config_index,
                                               std::uint64_t rep) noexcept {
  std::uint64_t state = campaign_seed;
  state = rng::splitmix64_next(state) ^ config_index;
  state = rng::splitmix64_next(state) ^ rep;
  return rng::splitmix64_next(state);
}

}  // namespace sci::exec
