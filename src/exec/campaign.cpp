#include "exec/campaign.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace sci::exec {

namespace {

/// Shortest %g-style text for policy parameters (stable across
/// platforms for the plain values policies use).
std::string compact_double(double v) {
  char buffer[64];
  const int len = std::snprintf(buffer, sizeof buffer, "%g", v);
  return std::string(buffer, static_cast<std::size_t>(len > 0 ? len : 0));
}

}  // namespace

std::string StoppingPolicy::describe() const {
  if (!sequential()) {
    return max_reps == 0 ? std::string("fixed")
                         : "fixed n=" + std::to_string(max_reps);
  }
  std::string out = "sequential quantile=" + compact_double(quantile);
  out += " target=" + compact_double(target_rel_ci_half_width);
  out += " confidence=" + compact_double(confidence);
  out += " min_reps=" + std::to_string(min_reps);
  out += " max_reps=" + std::to_string(max_reps);
  out += " quantum=" + std::to_string(round_quantum);
  out += " ess_floor=" + compact_double(ess_floor);
  out += " max_lag=" + std::to_string(max_lag);
  return out;
}

const std::string* Config::find_level(const std::string& factor) const noexcept {
  for (const auto& [name, value] : levels) {
    if (name == factor) return &value;
  }
  return nullptr;
}

const std::string& Config::level(const std::string& factor) const {
  if (const std::string* v = find_level(factor)) return *v;
  throw std::out_of_range("Config::level: no factor '" + factor + "' in " + to_string());
}

double Config::level_double(const std::string& factor) const {
  const std::string& text = level(factor);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("Config::level_double: factor '" + factor +
                                "' level '" + text + "' is not numeric");
  }
  return value;
}

long long Config::level_int(const std::string& factor) const {
  const std::string& text = level(factor);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("Config::level_int: factor '" + factor + "' level '" +
                                text + "' is not an integer");
  }
  return value;
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [name, value] : levels) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += value;
  }
  return out.empty() ? std::string("(no factors)") : out;
}

std::uint64_t Config::hash(std::uint64_t salt) const noexcept {
  // splitmix64 absorb: mix each byte-run of every name/value plus
  // separators, so "a"+"bc" and "ab"+"c" hash differently.
  std::uint64_t state = salt ^ 0x9e3779b97f4a7c15ULL;
  const auto absorb = [&state](const std::string& s) {
    state = rng::splitmix64_next(state) ^ s.size();
    for (unsigned char c : s) state = rng::splitmix64_next(state) ^ c;
  };
  for (const auto& [name, value] : levels) {
    absorb(name);
    absorb(value);
  }
  return rng::splitmix64_next(state);
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  if (spec_.name.empty()) throw std::invalid_argument("Campaign: empty name");
  const StoppingPolicy& stop = spec_.stopping;
  if (stop.sequential()) {
    if (stop.min_reps == 0)
      throw std::invalid_argument("Campaign: sequential stopping needs min_reps >= 1");
    if (stop.max_reps < stop.min_reps)
      throw std::invalid_argument("Campaign: sequential stopping needs max_reps >= min_reps");
    if (!(stop.target_rel_ci_half_width > 0.0))
      throw std::invalid_argument("Campaign: sequential stopping needs target > 0");
    if (!(stop.quantile > 0.0 && stop.quantile < 1.0))
      throw std::invalid_argument("Campaign: sequential stopping needs quantile in (0,1)");
    if (!(stop.confidence > 0.0 && stop.confidence < 1.0))
      throw std::invalid_argument("Campaign: sequential stopping needs confidence in (0,1)");
    if (stop.round_quantum == 0)
      throw std::invalid_argument("Campaign: sequential stopping needs round_quantum >= 1");
    if (stop.max_lag == 0)
      throw std::invalid_argument("Campaign: sequential stopping needs max_lag >= 1");
  } else if (stop.max_reps != 0) {
    // fixed(n): the policy is the single source of truth; keep the
    // legacy replications field in sync so seeds, fingerprints, and
    // Rule 9 metadata are identical to a spec that set replications=n.
    spec_.replications = stop.max_reps;
  }
  if (spec_.replications == 0)
    throw std::invalid_argument("Campaign: replications must be >= 1");
  if (!spec_.base.factors.empty()) {
    throw std::invalid_argument(
        "Campaign: declare factors in CampaignSpec::factors, not in the base "
        "Experiment (the grid is the single source of truth)");
  }
  config_count_ = 1;
  for (std::size_t i = 0; i < spec_.factors.size(); ++i) {
    const auto& f = spec_.factors[i];
    if (f.name.empty()) throw std::invalid_argument("Campaign: unnamed factor");
    if (f.levels.empty())
      throw std::invalid_argument("Campaign: factor '" + f.name + "' has no levels");
    for (std::size_t j = 0; j < i; ++j) {
      if (spec_.factors[j].name == f.name)
        throw std::invalid_argument("Campaign: duplicate factor '" + f.name + "'");
    }
    config_count_ *= f.levels.size();
  }
}

Config Campaign::config(std::size_t index) const {
  if (index >= config_count_)
    throw std::out_of_range("Campaign::config: index " + std::to_string(index) +
                            " >= " + std::to_string(config_count_));
  Config c;
  c.index = index;
  c.levels.reserve(spec_.factors.size());
  c.level_indices.resize(spec_.factors.size());
  // Row-major decode, first factor slowest-varying.
  std::size_t remainder = index;
  for (std::size_t f = spec_.factors.size(); f-- > 0;) {
    const auto& factor = spec_.factors[f];
    c.level_indices[f] = remainder % factor.levels.size();
    remainder /= factor.levels.size();
  }
  for (std::size_t f = 0; f < spec_.factors.size(); ++f) {
    c.levels.emplace_back(spec_.factors[f].name,
                          spec_.factors[f].levels[c.level_indices[f]]);
  }
  return c;
}

std::vector<Config> Campaign::configs() const {
  std::vector<Config> out;
  out.reserve(config_count_);
  for (std::size_t i = 0; i < config_count_; ++i) out.push_back(config(i));
  return out;
}

std::uint64_t Campaign::seed_for(const Config& config, std::size_t rep) const {
  if (spec_.seed_override) return spec_.seed_override(config, rep);
  return derive_seed(spec_.seed, config.index, rep);
}

core::Experiment Campaign::experiment(const Backend* backend) const {
  core::Experiment e = spec_.base;
  if (e.name.empty()) e.name = spec_.name;
  if (e.description.empty()) e.description = spec_.description;
  e.factors = spec_.factors;
  if (spec_.stopping.sequential()) {
    // Per-config rep counts are decided at run time; the stopping
    // policy (not a flat count) is the Rule 9 documentation here.
    e.set("campaign.replications", "adaptive");
    e.set("campaign.stopping", spec_.stopping.describe());
  } else {
    e.set("campaign.replications", std::to_string(spec_.replications));
  }
  e.set("campaign.seed", std::to_string(spec_.seed));
  e.set("campaign.seed_derivation",
        spec_.seed_override
            ? "caller-provided override(config, rep)"
            : "splitmix64 chain over (campaign_seed, config_index, rep)");
  if (backend != nullptr) e.set("campaign.backend", backend->describe());
  return e;
}

}  // namespace sci::exec
