// Campaign: the executable factorial design (Rule 9 made runnable).
//
// A CampaignSpec declares the factors and their levels, the number of
// replications per cell, the campaign seed, and the fixed-environment
// documentation. Campaign compiles the spec into
//   - the enumerated grid of Configs (row-major, first factor slowest),
//   - per-cell seeds via exec::derive_seed (or a caller override for
//     reproducing historical runs), and
//   - a core::Experiment whose factor list IS the executed grid, so the
//     Rule 9 metadata in reports and CSV headers can no longer drift
//     from what actually ran.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "exec/backend.hpp"

namespace sci::exec {

struct CampaignSpec {
  std::string name;
  std::string description;

  /// Fixed-environment documentation (environment map, scaling mode,
  /// synchronization method, subset declaration...). Its factor list
  /// must be empty -- factors below are the single source of truth.
  core::Experiment base;

  /// The varying factors and their levels; the grid is their cross
  /// product. Factor names must be unique and each needs >= 1 level.
  std::vector<core::Factor> factors;

  /// Replications per grid cell (paper Sec. 4.2.2: one measurement is
  /// not a result). Each replication gets its own derived seed.
  std::size_t replications = 1;

  /// Campaign seed; cell seeds derive from it (see exec::derive_seed).
  std::uint64_t seed = 0x5c1b3ac4d2e9f107ULL;

  /// Optional seed override, e.g. to reproduce a historical study that
  /// hand-picked seeds. When set it replaces derive_seed entirely; the
  /// mapping is recorded as opaque in the compiled Experiment.
  std::function<std::uint64_t(const Config&, std::size_t rep)> seed_override;
};

class Campaign {
 public:
  /// Validates and freezes the spec; throws std::invalid_argument on an
  /// empty name, duplicate/empty factors, zero replications, or a base
  /// Experiment that already declares factors.
  explicit Campaign(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }

  /// Number of grid cells (product of level counts; 1 when no factors).
  [[nodiscard]] std::size_t config_count() const noexcept { return config_count_; }
  /// config_count() * replications.
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return config_count_ * spec_.replications;
  }

  /// Decodes grid position `index` (row-major) into a Config.
  [[nodiscard]] Config config(std::size_t index) const;
  [[nodiscard]] std::vector<Config> configs() const;

  /// The seed replication `rep` of `config` runs with.
  [[nodiscard]] std::uint64_t seed_for(const Config& config, std::size_t rep) const;

  /// Compiles the executed design into Rule 9 documentation: base
  /// experiment + the factor grid + campaign.{seed, replications,
  /// seed_derivation, backend} environment entries.
  [[nodiscard]] core::Experiment experiment(const Backend* backend = nullptr) const;

 private:
  CampaignSpec spec_;
  std::size_t config_count_ = 1;
};

}  // namespace sci::exec
