// Campaign: the executable factorial design (Rule 9 made runnable).
//
// A CampaignSpec declares the factors and their levels, the number of
// replications per cell, the campaign seed, and the fixed-environment
// documentation. Campaign compiles the spec into
//   - the enumerated grid of Configs (row-major, first factor slowest),
//   - per-cell seeds via exec::derive_seed (or a caller override for
//     reproducing historical runs), and
//   - a core::Experiment whose factor list IS the executed grid, so the
//     Rule 9 metadata in reports and CSV headers can no longer drift
//     from what actually ran.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "exec/backend.hpp"

namespace sci::exec {

/// Measurement-control policy for a campaign (Rules 9/10 made
/// adaptive). Two modes:
///
///   kFixed       every config runs exactly `replications` cells --
///                today's behavior, byte-for-byte. `fixed(n)` also
///                pins the replication count in one place.
///   kSequential  the runner executes in rounds: each config starts
///                with `min_reps` replications, then after every round
///                the pooled samples of each live config are tested
///                against the rank-CI convergence criterion (relative
///                CI half-width of `quantile` <= target at
///                `confidence`, plus an effective-sample-size floor).
///                Converged configs retire early; their freed budget is
///                reallocated to the widest-CI configs by deterministic
///                rank. `max_reps` caps any single config.
///
/// All sequential decisions are functions of the pooled sample values
/// in (config, rep) order -- never of timing, worker count, or round
/// scheduling -- so sequential campaigns stay byte-deterministic at any
/// worker count and across kill/resume.
struct StoppingPolicy {
  enum class Mode { kFixed, kSequential };

  Mode mode = Mode::kFixed;

  /// Replications every config runs before the first convergence check
  /// (sequential mode; must be >= 1). Unused in fixed mode.
  std::size_t min_reps = 0;

  /// Fixed mode: 0 = defer to CampaignSpec::replications, nonzero
  /// overrides it. Sequential mode: hard cap per config (>= min_reps).
  std::size_t max_reps = 0;

  /// Stop once the rank CI of `quantile` lies within
  /// +-target_rel_ci_half_width of the quantile itself.
  double target_rel_ci_half_width = 0.05;
  double confidence = 0.95;
  double quantile = 0.5;

  /// Pooled effective-sample-size floor (autocorrelation-corrected);
  /// 0 disables the check. Default-constructed policies (and fixed())
  /// leave it at 0; sequential_ci() arms it with kDefaultEssFloor so
  /// an autocorrelated series cannot satisfy the CI criterion on what
  /// is effectively a handful of independent observations. Set it back
  /// to 0 after the factory call to opt out explicitly.
  double ess_floor = 0.0;

  /// Default floor applied by sequential_ci(): a config must carry at
  /// least this many effectively independent samples (n / integrated
  /// autocorrelation time, stats::OnlineSeries::effective_sample_size)
  /// before its rank CI is allowed to stop it. 32 keeps the rank-CI
  /// normal approximation honest while staying far below the pooled
  /// sample counts of even the smallest sequential campaigns shipped
  /// here, so iid-noise studies stop on the same round as before.
  static constexpr double kDefaultEssFloor = 32.0;

  /// Replications granted to each live config per round after the
  /// first; retired configs' quanta are reallocated to the live ones.
  std::size_t round_quantum = 1;

  /// Autocorrelation window for the ESS estimate.
  std::size_t max_lag = 32;

  [[nodiscard]] static StoppingPolicy fixed(std::size_t n = 0) {
    StoppingPolicy p;
    p.mode = Mode::kFixed;
    p.min_reps = n;
    p.max_reps = n;
    return p;
  }

  [[nodiscard]] static StoppingPolicy sequential_ci(double target_rel_ci_half_width,
                                                    std::size_t min_reps = 4,
                                                    std::size_t max_reps = 64) {
    StoppingPolicy p;
    p.mode = Mode::kSequential;
    p.min_reps = min_reps;
    p.max_reps = max_reps;
    p.target_rel_ci_half_width = target_rel_ci_half_width;
    p.ess_floor = kDefaultEssFloor;
    return p;
  }

  [[nodiscard]] bool sequential() const noexcept { return mode == Mode::kSequential; }

  /// One-line description recorded in the compiled Experiment
  /// (sequential mode only) and mixed into the journal fingerprint.
  [[nodiscard]] std::string describe() const;
};

struct CampaignSpec {
  std::string name;
  std::string description;

  /// Fixed-environment documentation (environment map, scaling mode,
  /// synchronization method, subset declaration...). Its factor list
  /// must be empty -- factors below are the single source of truth.
  core::Experiment base;

  /// The varying factors and their levels; the grid is their cross
  /// product. Factor names must be unique and each needs >= 1 level.
  std::vector<core::Factor> factors;

  /// Replications per grid cell (paper Sec. 4.2.2: one measurement is
  /// not a result). Each replication gets its own derived seed. In
  /// sequential stopping mode this is ignored (the policy's min/max
  /// bounds govern); in fixed mode StoppingPolicy::fixed(n) with n != 0
  /// overrides it.
  std::size_t replications = 1;

  /// Measurement-control policy; defaults to fixed replications
  /// (today's behavior, byte-for-byte).
  StoppingPolicy stopping;

  /// Campaign seed; cell seeds derive from it (see exec::derive_seed).
  std::uint64_t seed = 0x5c1b3ac4d2e9f107ULL;

  /// Optional seed override, e.g. to reproduce a historical study that
  /// hand-picked seeds. When set it replaces derive_seed entirely; the
  /// mapping is recorded as opaque in the compiled Experiment.
  std::function<std::uint64_t(const Config&, std::size_t rep)> seed_override;
};

class Campaign {
 public:
  /// Validates and freezes the spec; throws std::invalid_argument on an
  /// empty name, duplicate/empty factors, zero replications, or a base
  /// Experiment that already declares factors.
  explicit Campaign(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }

  /// Number of grid cells (product of level counts; 1 when no factors).
  [[nodiscard]] std::size_t config_count() const noexcept { return config_count_; }
  /// Fixed mode: config_count() * replications, the exact cell total.
  /// Sequential mode: config_count() * max_reps, an upper bound (the
  /// actual count is decided round by round).
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return config_count_ * (spec_.stopping.sequential() ? spec_.stopping.max_reps
                                                        : spec_.replications);
  }

  /// Decodes grid position `index` (row-major) into a Config.
  [[nodiscard]] Config config(std::size_t index) const;
  [[nodiscard]] std::vector<Config> configs() const;

  /// The seed replication `rep` of `config` runs with.
  [[nodiscard]] std::uint64_t seed_for(const Config& config, std::size_t rep) const;

  /// Compiles the executed design into Rule 9 documentation: base
  /// experiment + the factor grid + campaign.{seed, replications,
  /// seed_derivation, backend} environment entries.
  [[nodiscard]] core::Experiment experiment(const Backend* backend = nullptr) const;

 private:
  CampaignSpec spec_;
  std::size_t config_count_ = 1;
};

}  // namespace sci::exec
