#include "exec/host_backend.hpp"

#include <stdexcept>

namespace sci::exec {

HostBackend::HostBackend(std::vector<HostBenchmark> benchmarks)
    : benchmarks_(std::move(benchmarks)) {
  if (benchmarks_.empty())
    throw std::invalid_argument("HostBackend: no benchmarks");
  for (const auto& b : benchmarks_) {
    if (b.name.empty()) throw std::invalid_argument("HostBackend: unnamed benchmark");
    if (!b.measure) {
      throw std::invalid_argument("HostBackend: benchmark '" + b.name +
                                  "' has no measurement function");
    }
  }
}

std::string HostBackend::describe() const {
  return "host clock + adaptive sampling (" + std::to_string(benchmarks_.size()) +
         " registered benchmarks)";
}

std::vector<std::string> HostBackend::benchmark_names() const {
  std::vector<std::string> out;
  out.reserve(benchmarks_.size());
  for (const auto& b : benchmarks_) out.push_back(b.name);
  return out;
}

CellResult HostBackend::run(const Config& config, std::uint64_t /*seed*/) {
  const std::string& which = config.level(kBenchmarkFactor);
  for (const auto& b : benchmarks_) {
    if (b.name != which) continue;
    const auto adaptive = core::measure_adaptive(b.measure, b.sampling);
    CellResult result;
    result.samples = adaptive.samples;
    result.unit = b.unit;
    result.stop_reason = adaptive.stop_reason;
    result.warmup_discarded = adaptive.warmup_discarded;
    return result;
  }
  throw std::out_of_range("HostBackend: no benchmark named '" + which + "'");
}

}  // namespace sci::exec
