// HostBackend: real host-clock measurements behind the Backend
// interface. Wraps the Registry-style (name, lambda, sampling policy)
// triple and runs core::measure_adaptive per cell, so the adaptive
// CI-driven stopping machinery of Section 4.2.2 keeps doing the
// sampling. The campaign factor "benchmark" selects which registered
// measurement a cell runs.
//
// Host clocks are not seedable: the `seed` argument is ignored and the
// byte-determinism contract of CampaignRunner applies only to simulated
// backends. Host cells are still safe to shard across workers, but
// measuring CPU-bound kernels on more workers than idle cores perturbs
// the measurement itself (Rule 4) -- prefer workers = 1 for those.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "exec/backend.hpp"

namespace sci::exec {

struct HostBenchmark {
  std::string name;
  std::function<double()> measure;  ///< one measurement per call, any unit
  std::string unit = "ns";
  core::AdaptiveOptions sampling;
};

class HostBackend : public Backend {
 public:
  /// The factor whose level names the benchmark to run.
  static constexpr const char* kBenchmarkFactor = "benchmark";

  explicit HostBackend(std::vector<HostBenchmark> benchmarks);

  [[nodiscard]] std::string name() const override { return "host"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] CellResult run(const Config& config, std::uint64_t seed) override;

  /// The "benchmark" factor levels, in registration order.
  [[nodiscard]] std::vector<std::string> benchmark_names() const;

 private:
  std::vector<HostBenchmark> benchmarks_;
};

}  // namespace sci::exec
