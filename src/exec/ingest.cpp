#include "exec/ingest.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>
#include <utility>

namespace sci::exec {

namespace {

bool has_column(const std::vector<std::string>& cols, const std::string& name) {
  return std::find(cols.begin(), cols.end(), name) != cols.end();
}

std::size_t column_index(const std::vector<std::string>& cols, const std::string& name) {
  return static_cast<std::size_t>(
      std::find(cols.begin(), cols.end(), name) - cols.begin());
}

/// Value of "env.<key>: <value>" in the preserved raw header text, or
/// empty. Values round-trip through escape_header_text on export.
std::string header_env(const std::string& header_text, const std::string& key) {
  const std::string needle = "env." + key + ": ";
  std::size_t pos = 0;
  while (pos < header_text.size()) {
    std::size_t eol = header_text.find('\n', pos);
    if (eol == std::string::npos) eol = header_text.size();
    if (header_text.compare(pos, needle.size(), needle) == 0) {
      return core::unescape_header_text(
          header_text.substr(pos + needle.size(), eol - pos - needle.size()));
    }
    pos = eol + 1;
  }
  return {};
}

std::size_t header_env_count(const std::string& header_text, const std::string& key) {
  const std::string value = header_env(header_text, key);
  if (value.empty()) return 0;
  // Hand-edited junk degrades to 0 rather than aborting the report.
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0' ? static_cast<std::size_t>(n) : 0;
}

}  // namespace

Ingested load_measurements(const std::string& path) {
  Ingested out{core::Dataset::load_csv(path), false, {}, 0, 0, {}, {}, 0, {}};
  const std::string& header = out.dataset.experiment().description;
  out.failed = header_env_count(header, "campaign.failed");
  out.interrupted = header_env_count(header, "campaign.interrupted");
  out.failed_cells = header_env(header, "campaign.failed_cells");
  out.stopping = header_env(header, "campaign.stopping");
  out.rounds = header_env_count(header, "campaign.rounds");
  // "6,4,12,..." -- per-config rep counts of a sequential campaign.
  // Hand-edited junk degrades to an empty list, like the counts above.
  const std::string counts = header_env(header, "campaign.rep_counts");
  std::size_t pos = 0;
  while (pos < counts.size()) {
    std::size_t comma = counts.find(',', pos);
    if (comma == std::string::npos) comma = counts.size();
    char* end = nullptr;
    const std::string token = counts.substr(pos, comma - pos);
    const unsigned long long n = std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end == nullptr || *end != '\0') {
      out.rep_counts.clear();
      break;
    }
    out.rep_counts.push_back(static_cast<std::size_t>(n));
    pos = comma + 1;
  }
  const auto& cols = out.dataset.columns();
  out.campaign = has_column(cols, "config") && has_column(cols, "rep") &&
                 has_column(cols, "value") && has_column(cols, "sample");
  if (!out.campaign) return out;

  const std::size_t config_col = column_index(cols, "config");
  const std::size_t rep_col = column_index(cols, "rep");
  const std::size_t value_col = column_index(cols, "value");
  std::vector<std::size_t> factor_cols;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].rfind("f_", 0) == 0) factor_cols.push_back(i);
  }

  // Regroup long-form rows per (config, rep). Rows are in export order,
  // but a map keeps ingestion robust to externally sorted files.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> index;
  for (std::size_t r = 0; r < out.dataset.rows(); ++r) {
    const auto& row = out.dataset.row(r);
    const auto key = std::make_pair(static_cast<std::size_t>(row[config_col]),
                                    static_cast<std::size_t>(row[rep_col]));
    auto it = index.find(key);
    if (it == index.end()) {
      IngestedSeries series;
      series.config = key.first;
      series.rep = key.second;
      std::string label =
          "config " + std::to_string(key.first) + " rep " + std::to_string(key.second);
      if (!factor_cols.empty()) {
        label += " (";
        for (std::size_t f = 0; f < factor_cols.size(); ++f) {
          if (f) label += ' ';
          char buf[32];
          std::snprintf(buf, sizeof buf, "%g", row[factor_cols[f]]);
          label += cols[factor_cols[f]] + "=" + buf;
        }
        label += ')';
      }
      series.label = std::move(label);
      it = index.emplace(key, out.cells.size()).first;
      out.cells.push_back(std::move(series));
    }
    out.cells[it->second].values.push_back(row[value_col]);
  }
  // Cells were appended in first-appearance order; normalize to
  // (config, rep) order to match CampaignResult::cells.
  std::sort(out.cells.begin(), out.cells.end(),
            [](const IngestedSeries& a, const IngestedSeries& b) {
              return std::tie(a.config, a.rep) < std::tie(b.config, b.rep);
            });
  return out;
}

std::vector<ConfigSummary> summarize_configs(const Ingested& ingested, double p,
                                             double confidence,
                                             const stats::ExecPolicy& policy) {
  // Pool each config's replications; per-config rep counts vary under
  // sequential stopping, so the grouping comes from the rows themselves.
  std::map<std::size_t, std::pair<std::size_t, std::vector<double>>> configs;
  for (const auto& cell : ingested.cells) {
    auto& [reps, values] = configs[cell.config];
    ++reps;
    values.insert(values.end(), cell.values.begin(), cell.values.end());
  }

  std::vector<ConfigSummary> out;
  std::vector<std::vector<double>> groups;
  out.reserve(configs.size());
  groups.reserve(configs.size());
  for (auto& [config, group] : configs) {
    ConfigSummary cs;
    cs.config = config;
    cs.reps = group.first;
    out.push_back(cs);
    groups.push_back(std::move(group.second));
  }
  const auto summaries = stats::grouped_quantile_summary(groups, p, confidence, policy);
  for (std::size_t i = 0; i < out.size(); ++i) out[i].summary = summaries[i];
  return out;
}

}  // namespace sci::exec
