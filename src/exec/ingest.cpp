#include "exec/ingest.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

namespace sci::exec {

namespace {

bool has_column(const std::vector<std::string>& cols, const std::string& name) {
  return std::find(cols.begin(), cols.end(), name) != cols.end();
}

std::size_t column_index(const std::vector<std::string>& cols, const std::string& name) {
  return static_cast<std::size_t>(
      std::find(cols.begin(), cols.end(), name) - cols.begin());
}

}  // namespace

Ingested load_measurements(const std::string& path) {
  Ingested out{core::Dataset::load_csv(path), false, {}};
  const auto& cols = out.dataset.columns();
  out.campaign = has_column(cols, "config") && has_column(cols, "rep") &&
                 has_column(cols, "value") && has_column(cols, "sample");
  if (!out.campaign) return out;

  const std::size_t config_col = column_index(cols, "config");
  const std::size_t rep_col = column_index(cols, "rep");
  const std::size_t value_col = column_index(cols, "value");
  std::vector<std::size_t> factor_cols;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].rfind("f_", 0) == 0) factor_cols.push_back(i);
  }

  // Regroup long-form rows per (config, rep). Rows are in export order,
  // but a map keeps ingestion robust to externally sorted files.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> index;
  for (std::size_t r = 0; r < out.dataset.rows(); ++r) {
    const auto& row = out.dataset.row(r);
    const auto key = std::make_pair(static_cast<std::size_t>(row[config_col]),
                                    static_cast<std::size_t>(row[rep_col]));
    auto it = index.find(key);
    if (it == index.end()) {
      IngestedSeries series;
      series.config = key.first;
      series.rep = key.second;
      std::string label =
          "config " + std::to_string(key.first) + " rep " + std::to_string(key.second);
      if (!factor_cols.empty()) {
        label += " (";
        for (std::size_t f = 0; f < factor_cols.size(); ++f) {
          if (f) label += ' ';
          char buf[32];
          std::snprintf(buf, sizeof buf, "%g", row[factor_cols[f]]);
          label += cols[factor_cols[f]] + "=" + buf;
        }
        label += ')';
      }
      series.label = std::move(label);
      it = index.emplace(key, out.cells.size()).first;
      out.cells.push_back(std::move(series));
    }
    out.cells[it->second].values.push_back(row[value_col]);
  }
  // Cells were appended in first-appearance order; normalize to
  // (config, rep) order to match CampaignResult::cells.
  std::sort(out.cells.begin(), out.cells.end(),
            [](const IngestedSeries& a, const IngestedSeries& b) {
              return std::tie(a.config, a.rep) < std::tie(b.config, b.rep);
            });
  return out;
}

}  // namespace sci::exec
