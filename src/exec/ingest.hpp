// exec::ingest -- bring external measurement CSVs back into the exec
// world. tools/scibench_report feeds on this: it loads any Dataset CSV
// (with the hardened, position-reporting parser in core::Dataset), and
// when the file is a campaign export (samples_dataset layout: config /
// rep / f_* / sample / value columns) it regroups the long-form rows
// into one series per grid cell so the report shows the factorial
// structure instead of one undifferentiated column.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "stats/confidence.hpp"

namespace sci::exec {

struct IngestedSeries {
  std::size_t config = 0;
  std::size_t rep = 0;
  /// "config 3 rep 0 (f_system=1 f_message_bytes=2)" -- level indices;
  /// the dataset's experiment header documents the index -> level map.
  std::string label;
  std::vector<double> values;
};

struct Ingested {
  core::Dataset dataset;
  /// True when the CSV follows the campaign samples_dataset layout.
  bool campaign = false;
  /// Per-cell series in (config, rep) order; empty unless `campaign`.
  std::vector<IngestedSeries> cells;
  /// Failed/interrupted-cell accounting recovered from the embedded
  /// experiment header (env.campaign.failed / env.campaign.failed_cells
  /// / env.campaign.interrupted). Zero/empty for clean campaigns, so a
  /// partially-failed export explains its missing cells instead of
  /// looking like a thinner grid.
  std::size_t failed = 0;
  std::size_t interrupted = 0;
  std::string failed_cells;
  /// Sequential-stopping metadata recovered from the header
  /// (env.campaign.stopping / rounds / rep_counts); empty/zero for
  /// fixed-replication campaigns. rep_counts[c] is the number of
  /// replications config c actually ran -- per-config counts vary under
  /// sequential stopping, which is why nothing here may assume
  /// cells.size() is configs * replications.
  std::string stopping;
  std::size_t rounds = 0;
  std::vector<std::size_t> rep_counts;
};

/// Loads `path` via core::Dataset::load_csv and detects/regroups
/// campaign exports. Throws (with file/line/column positions) on
/// malformed input.
[[nodiscard]] Ingested load_measurements(const std::string& path);

/// One config's pooled measurement summary (all reps concatenated in
/// cell order, the long-form row order of the export).
struct ConfigSummary {
  std::size_t config = 0;
  std::size_t reps = 0;  ///< replication series pooled into this config
  stats::QuantileSummary summary;
};

/// Pools each config's replications and computes the p-quantile + rank
/// CI per config (one sort per config, stats::grouped_quantile_summary
/// underneath, sharded over policy.threads workers). Output is ordered
/// by config id and byte-identical at any thread count.
[[nodiscard]] std::vector<ConfigSummary> summarize_configs(
    const Ingested& ingested, double p, double confidence = 0.95,
    const stats::ExecPolicy& policy = {});

}  // namespace sci::exec
