#include "exec/interrupt.hpp"

#include <csignal>

namespace sci::exec {

namespace {

std::atomic<bool> g_interrupt{false};

static_assert(std::atomic<bool>::is_always_lock_free,
              "interrupt flag must be async-signal-safe");

extern "C" void scibench_interrupt_handler(int signo) {
  if (g_interrupt.exchange(true)) {
    // Second signal: the operator means it. Restore the default
    // disposition and re-raise so the process dies with the standard
    // signal semantics instead of looping in a wedged drain.
    std::signal(signo, SIG_DFL);
    std::raise(signo);
  }
}

}  // namespace

std::atomic<bool>* interrupt_flag() noexcept { return &g_interrupt; }

void install_interrupt_handlers() {
  std::signal(SIGINT, scibench_interrupt_handler);
  std::signal(SIGTERM, scibench_interrupt_handler);
}

bool interrupt_requested() noexcept {
  return g_interrupt.load(std::memory_order_relaxed);
}

void reset_interrupt() noexcept {
  g_interrupt.store(false, std::memory_order_relaxed);
}

}  // namespace sci::exec
