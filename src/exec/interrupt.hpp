// Cooperative interrupt handling for long-running campaign binaries.
//
// No binary used to install a SIGINT/SIGTERM handler: an interrupted
// resilience_study / latency_study / scibenchd relied entirely on the
// journal's torn-tail healing to survive a ^C. These helpers close that
// gap with the mildest possible mechanism: the handler sets one
// process-wide atomic flag and returns. The CampaignRunner polls the
// flag at every cell claim (CampaignRunnerOptions::interrupt); once it
// is set, remaining cells are marked "interrupted: signal" exactly like
// cell-budget exhaustion -- the journal holds every finished cell
// (appends are flushed record-by-record), the final ProgressSnapshot is
// still written atomically via metrics_path, and the binary exits 3
// ("resume me", the convention the CI smoke jobs already rely on).
//
// The flag is a plain lock-free std::atomic<bool>, so storing it from
// the handler is async-signal-safe; nothing else happens in signal
// context. A second ^C while the flag is already set restores the
// default disposition and re-raises, so a wedged run can still be
// killed the ordinary way.
#pragma once

#include <atomic>

namespace sci::exec {

/// The process-wide interrupt flag; pass it as
/// CampaignRunnerOptions::interrupt so a signal drains the campaign.
[[nodiscard]] std::atomic<bool>* interrupt_flag() noexcept;

/// Installs SIGINT and SIGTERM handlers that set the flag (idempotent).
void install_interrupt_handlers();

[[nodiscard]] bool interrupt_requested() noexcept;

/// Clears the flag (tests; also lets a daemon survive a drained job).
void reset_interrupt() noexcept;

/// The "interrupted, resume me" exit code shared by every campaign
/// binary (resilience_study established the convention; the CI smoke
/// jobs assert it).
inline constexpr int kInterruptedExitCode = 3;

}  // namespace sci::exec
