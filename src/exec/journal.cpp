#include "exec/journal.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "rng/xoshiro.hpp"

namespace sci::exec {

namespace {

// v2 adds "stop" records; v1 journals (no stop lines) still replay.
constexpr const char* kHeaderPrefix = "# scibench campaign journal v2 fp=";
constexpr const char* kHeaderPrefixV1 = "# scibench campaign journal v1 fp=";

/// Doubles travel as IEEE-754 bit patterns so the journal round-trip is
/// byte-exact (decimal formatting would quantize and break the resumed
/// CSV differential).
std::uint64_t double_bits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

/// Strings (unit, stop_reason, error) are hex-encoded into a single
/// space-free token; "-" marks the empty string.
std::string encode_text(const std::string& text) {
  if (text.empty()) return "-";
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(text.size() * 2);
  for (unsigned char c : text) {
    out.push_back(hex[c >> 4]);
    out.push_back(hex[c & 0xf]);
  }
  return out;
}

bool decode_text(const std::string& token, std::string& out) {
  out.clear();
  if (token == "-") return true;
  if (token.size() % 2 != 0) return false;
  out.reserve(token.size() / 2);
  for (std::size_t i = 0; i < token.size(); i += 2) {
    int hi = -1, lo = -1;
    for (int half = 0; half < 2; ++half) {
      const char c = token[i + static_cast<std::size_t>(half)];
      int v = -1;
      if (c >= '0' && c <= '9') v = c - '0';
      else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
      (half == 0 ? hi : lo) = v;
    }
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

bool parse_u64(const std::string& token, int base, std::uint64_t& out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, base);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

/// Parses one "cell ..." line into its key and result. Returns false on
/// any malformation (short line, bad token, missing trailing "ok") --
/// the caller treats that as the torn tail and stops replaying.
bool parse_record(const std::string& line, std::size_t& config_index, std::size_t& rep,
                  std::uint64_t& seed, CellResult& result) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  for (std::string t; in >> t;) tokens.push_back(std::move(t));
  // cell <config> <rep> <seed> <attempts> <warmup> <stop_reason> <unit>
  //   <error> <n> <n sample bit patterns> ok
  constexpr std::size_t kFixed = 10;
  if (tokens.size() < kFixed + 1 || tokens[0] != "cell") return false;
  if (tokens.back() != "ok") return false;
  std::uint64_t cfg = 0, r = 0, attempts = 0, warmup = 0, n = 0;
  if (!parse_u64(tokens[1], 10, cfg) || !parse_u64(tokens[2], 10, r) ||
      !parse_u64(tokens[3], 16, seed) || !parse_u64(tokens[4], 10, attempts) ||
      !parse_u64(tokens[5], 10, warmup)) {
    return false;
  }
  result = CellResult{};
  if (!decode_text(tokens[6], result.stop_reason) ||
      !decode_text(tokens[7], result.unit) || !decode_text(tokens[8], result.error)) {
    return false;
  }
  if (!parse_u64(tokens[9], 10, n)) return false;
  if (tokens.size() != kFixed + n + 1) return false;
  result.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits = 0;
    if (!parse_u64(tokens[kFixed + i], 16, bits)) return false;
    result.samples.push_back(bits_double(bits));
  }
  config_index = static_cast<std::size_t>(cfg);
  rep = static_cast<std::size_t>(r);
  result.attempts = static_cast<std::size_t>(attempts);
  result.warmup_discarded = static_cast<std::size_t>(warmup);
  return true;
}

/// Parses one "stop <config> <reps> <reason> ok" line.
bool parse_stop(const std::string& line, std::size_t& config_index,
                CampaignJournal::StopRecord& record) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  for (std::string t; in >> t;) tokens.push_back(std::move(t));
  if (tokens.size() != 5 || tokens[0] != "stop" || tokens.back() != "ok") return false;
  std::uint64_t cfg = 0, reps = 0;
  if (!parse_u64(tokens[1], 10, cfg) || !parse_u64(tokens[2], 10, reps)) return false;
  if (!decode_text(tokens[3], record.reason)) return false;
  config_index = static_cast<std::size_t>(cfg);
  record.reps = static_cast<std::size_t>(reps);
  return true;
}

std::uint64_t mix_bytes(std::uint64_t state, const std::string& text) {
  state = rng::splitmix64_next(state) ^ text.size();
  for (unsigned char c : text) state = rng::splitmix64_next(state) ^ c;
  return state;
}

}  // namespace

std::uint64_t CampaignJournal::fingerprint(const Campaign& campaign,
                                           const std::string& backend_name) {
  const CampaignSpec& spec = campaign.spec();
  std::uint64_t state = 0x9a5c1b3a0d2e4f17ULL;
  state = mix_bytes(state, spec.name);
  state = rng::splitmix64_next(state) ^ spec.seed;
  state = rng::splitmix64_next(state) ^ spec.replications;
  state = rng::splitmix64_next(state) ^ campaign.config_count();
  state = mix_bytes(state, backend_name);
  // Sequential campaigns mix the full policy: a journal written under a
  // different CI target / rep bounds would replay into different stop
  // decisions, so it must refuse to resume. Fixed-mode fingerprints
  // stay bit-identical to v1 (old journals keep resuming).
  if (spec.stopping.sequential()) state = mix_bytes(state, spec.stopping.describe());
  return rng::splitmix64_next(state);
}

CampaignJournal::CampaignJournal(std::string path, std::uint64_t fingerprint)
    : path_(std::move(path)) {
  // Replay pass: read whatever a previous (possibly killed) run left
  // behind. A line that fails to parse (no trailing "ok", truncated
  // token) is the torn tail of an interrupted append; it is skipped --
  // not treated as end-of-records, because a healed journal keeps
  // appending valid records AFTER the scar -- and the resumed run
  // simply re-executes that cell.
  bool has_header = false;
  bool ends_with_newline = true;
  {
    std::ifstream in(path_);
    std::string line;
    bool first = true;
    while (in && std::getline(in, line)) {
      ends_with_newline = !in.eof();
      if (first) {
        first = false;
        const bool v2 = line.rfind(kHeaderPrefix, 0) == 0;
        const bool v1 = !v2 && line.rfind(kHeaderPrefixV1, 0) == 0;
        if (v2 || v1) {
          const char* prefix = v2 ? kHeaderPrefix : kHeaderPrefixV1;
          std::uint64_t fp = 0;
          if (!parse_u64(line.substr(std::strlen(prefix)), 16, fp) ||
              fp != fingerprint) {
            throw std::runtime_error(
                "CampaignJournal: '" + path_ +
                "' was written by a different campaign/backend (fingerprint mismatch); "
                "refusing to resume from it");
          }
          has_header = true;
          continue;
        }
        throw std::runtime_error("CampaignJournal: '" + path_ +
                                 "' exists but is not a campaign journal");
      }
      if (line.rfind("stop ", 0) == 0) {
        std::size_t config_index = 0;
        StopRecord record;
        if (parse_stop(line, config_index, record)) {
          stops_[config_index] = std::move(record);
        }
        continue;
      }
      std::size_t config_index = 0, rep = 0;
      std::uint64_t seed = 0;
      CellResult result;
      if (!parse_record(line, config_index, rep, seed, result)) continue;
      records_[{config_index, rep}] = {seed, std::move(result)};
    }
  }

  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("CampaignJournal: cannot open '" + path_ +
                             "' for appending: " + std::strerror(errno));
  }
  if (!has_header) {
    std::fprintf(file_, "%s%016" PRIx64 "\n", kHeaderPrefix, fingerprint);
    std::fflush(file_);
  } else if (!ends_with_newline) {
    // Heal a torn tail so the next record starts on its own line
    // instead of gluing onto the scar.
    std::fputc('\n', file_);
    std::fflush(file_);
  }
}

CampaignJournal::~CampaignJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

const CellResult* CampaignJournal::find(std::size_t config_index, std::size_t rep,
                                        std::uint64_t seed) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find({config_index, rep});
  if (it == records_.end() || it->second.first != seed) return nullptr;
  return &it->second.second;
}

void CampaignJournal::append(std::size_t config_index, std::size_t rep,
                             std::uint64_t seed, const CellResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "cell %zu %zu %016" PRIx64 " %zu %zu %s %s %s %zu", config_index,
               rep, seed, result.attempts, result.warmup_discarded,
               encode_text(result.stop_reason).c_str(), encode_text(result.unit).c_str(),
               encode_text(result.error).c_str(), result.samples.size());
  for (double s : result.samples) {
    std::fprintf(file_, " %016" PRIx64, double_bits(s));
  }
  // Trailing token marks the record complete; a line missing it is the
  // torn tail of a crash and is dropped on replay.
  std::fprintf(file_, " ok\n");
  std::fflush(file_);
  records_[{config_index, rep}] = {seed, result};
}

const CampaignJournal::StopRecord* CampaignJournal::find_stop(
    std::size_t config_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stops_.find(config_index);
  return it == stops_.end() ? nullptr : &it->second;
}

void CampaignJournal::append_stop(std::size_t config_index, std::size_t reps,
                                  const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(file_, "stop %zu %zu %s ok\n", config_index, reps,
               encode_text(reason).c_str());
  std::fflush(file_);
  stops_[config_index] = StopRecord{reps, reason};
}

std::size_t CampaignJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace sci::exec
