// CampaignJournal: append-only on-disk record of completed campaign
// cells, giving CampaignRunner crash-safe checkpoint/resume.
//
// The journal is a text file with one header line and one line per
// finished cell (successful OR failed -- both outcomes are final; only
// interrupted cells are withheld so a resume retries them). Every
// append is fflush()ed before the runner moves on, so after a crash or
// kill the file holds every cell whose record write completed plus at
// most one torn line at the tail; the reader drops the torn tail and
// the resumed run simply re-executes that cell.
//
// Byte-exactness: sample values are stored as 16-hex-digit IEEE-754 bit
// patterns, not decimal, so a journal round-trip reproduces the exact
// doubles the backend emitted and resumed campaigns export CSVs that
// are byte-identical to an uninterrupted run (pinned by
// tests/test_exec_resilience.cpp).
//
// Identity: the header carries a fingerprint of (campaign name, seed,
// replications, config count, backend name). Opening a journal written
// by a different campaign or backend throws instead of silently
// serving wrong cells. Within a journal, records are keyed by
// (config_index, rep) and additionally carry the cell seed; a record
// whose seed disagrees with the requested cell (e.g. the campaign
// gained a seed_override) is ignored rather than trusted.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "exec/backend.hpp"
#include "exec/campaign.hpp"

namespace sci::exec {

class CampaignJournal {
 public:
  /// Opens (or creates) the journal at `path`, replaying any existing
  /// records. Throws std::runtime_error when the file exists but its
  /// fingerprint does not match, or when it cannot be opened/created.
  CampaignJournal(std::string path, std::uint64_t fingerprint);
  ~CampaignJournal();

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// The recorded result of (config_index, rep), or nullptr when the
  /// cell is not journaled or was journaled under a different seed.
  [[nodiscard]] const CellResult* find(std::size_t config_index, std::size_t rep,
                                       std::uint64_t seed) const;

  /// Appends one finished cell and flushes it to disk before returning.
  /// Thread-safe (the runner's workers append concurrently).
  void append(std::size_t config_index, std::size_t rep, std::uint64_t seed,
              const CellResult& result);

  /// Records replayed at open plus records appended since.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Campaign/backend identity hash written into the journal header:
  /// splitmix64 chained over the campaign name, seed, replications,
  /// config count, and backend name.
  [[nodiscard]] static std::uint64_t fingerprint(const Campaign& campaign,
                                                 const std::string& backend_name);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  /// (config_index, rep) -> (seed, result).
  std::map<std::pair<std::size_t, std::size_t>, std::pair<std::uint64_t, CellResult>>
      records_;
};

}  // namespace sci::exec
