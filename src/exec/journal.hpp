// CampaignJournal: append-only on-disk record of completed campaign
// cells, giving CampaignRunner crash-safe checkpoint/resume.
//
// The journal is a text file with one header line and one line per
// finished cell (successful OR failed -- both outcomes are final; only
// interrupted cells are withheld so a resume retries them). Every
// append is fflush()ed before the runner moves on, so after a crash or
// kill the file holds every cell whose record write completed plus at
// most one torn line at the tail; the reader drops the torn tail and
// the resumed run simply re-executes that cell.
//
// Byte-exactness: sample values are stored as 16-hex-digit IEEE-754 bit
// patterns, not decimal, so a journal round-trip reproduces the exact
// doubles the backend emitted and resumed campaigns export CSVs that
// are byte-identical to an uninterrupted run (pinned by
// tests/test_exec_resilience.cpp).
//
// Identity: the header carries a fingerprint of (campaign name, seed,
// replications, config count, backend name) -- plus the stopping-policy
// description for sequential campaigns, so a journal written under a
// different CI target or rep bounds refuses to resume. Opening a
// journal written by a different campaign or backend throws instead of
// silently serving wrong cells. Within a journal, records are keyed by
// (config_index, rep) and additionally carry the cell seed; a record
// whose seed disagrees with the requested cell (e.g. the campaign
// gained a seed_override) is ignored rather than trusted.
//
// Format v2 (current; v1 journals still replay) adds per-config stop
// records: "stop <config> <reps> <reason> ok", appended when a
// sequential campaign retires a config. On resume the runner recomputes
// each stop decision from the replayed samples -- the decisions are
// deterministic, so the journaled record acts as a cross-run
// consistency check (mismatch throws) rather than a directive.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "exec/backend.hpp"
#include "exec/campaign.hpp"

namespace sci::exec {

class CampaignJournal {
 public:
  /// Opens (or creates) the journal at `path`, replaying any existing
  /// records. Throws std::runtime_error when the file exists but its
  /// fingerprint does not match, or when it cannot be opened/created.
  CampaignJournal(std::string path, std::uint64_t fingerprint);
  ~CampaignJournal();

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// The recorded result of (config_index, rep), or nullptr when the
  /// cell is not journaled or was journaled under a different seed.
  [[nodiscard]] const CellResult* find(std::size_t config_index, std::size_t rep,
                                       std::uint64_t seed) const;

  /// Appends one finished cell and flushes it to disk before returning.
  /// Thread-safe (the runner's workers append concurrently).
  void append(std::size_t config_index, std::size_t rep, std::uint64_t seed,
              const CellResult& result);

  /// A journaled per-config stop decision (sequential stopping).
  struct StopRecord {
    std::size_t reps = 0;
    std::string reason;
  };

  /// The journaled stop decision for a config, or nullptr.
  [[nodiscard]] const StopRecord* find_stop(std::size_t config_index) const;

  /// Appends one stop decision and flushes it before returning.
  void append_stop(std::size_t config_index, std::size_t reps, const std::string& reason);

  /// Records replayed at open plus records appended since.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Campaign/backend identity hash written into the journal header:
  /// splitmix64 chained over the campaign name, seed, replications,
  /// config count, and backend name -- plus the stopping-policy
  /// description for sequential campaigns (fixed-mode fingerprints are
  /// unchanged from v1).
  [[nodiscard]] static std::uint64_t fingerprint(const Campaign& campaign,
                                                 const std::string& backend_name);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mutex_;
  /// (config_index, rep) -> (seed, result).
  std::map<std::pair<std::size_t, std::size_t>, std::pair<std::uint64_t, CellResult>>
      records_;
  /// config_index -> stop decision.
  std::map<std::size_t, StopRecord> stops_;
};

}  // namespace sci::exec
