#include "exec/process_pool.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "exec/wire.hpp"

extern char** environ;

namespace sci::exec {

namespace {

/// write() the whole buffer, riding out EINTR and short writes.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one newline-terminated line; false on EOF/error (dead worker).
bool read_line(std::FILE* stream, std::string& line) {
  line.clear();
  for (;;) {
    const int c = std::fgetc(stream);
    if (c == EOF) return false;
    if (c == '\n') return true;
    line.push_back(static_cast<char>(c));
  }
}

}  // namespace

ProcessPool::ProcessPool(ProcessPoolOptions options) : options_(std::move(options)) {
  if (options_.worker_path.empty()) {
    throw std::invalid_argument("ProcessPool: worker_path required");
  }
  if (options_.workers == 0) {
    throw std::invalid_argument("ProcessPool: need at least one worker");
  }
  // A worker dying between our liveness check and the job write turns
  // the write into SIGPIPE; we want the EPIPE errno path instead, so
  // the crash is contained and retried rather than fatal.
  ::signal(SIGPIPE, SIG_IGN);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    free_.push_back(spawn());
  }
}

ProcessPool::~ProcessPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& worker : free_) destroy(*worker, /*wait_for_exit=*/true);
  free_.clear();
}

std::unique_ptr<ProcessPool::Worker> ProcessPool::spawn() {
  int to_child[2];    // parent writes jobs -> child stdin
  int from_child[2];  // child stdout -> parent reads results
  // O_CLOEXEC is load-bearing: without it every later-spawned worker
  // inherits this worker's parent-side pipe ends, so closing ours would
  // never deliver EOF while a sibling lives (shutdown deadlock). The
  // adddup2 onto stdin/stdout clears the flag for the child's own ends.
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    throw std::runtime_error("ProcessPool: pipe: " + std::string(std::strerror(errno)));
  }
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw std::runtime_error("ProcessPool: pipe: " + std::string(std::strerror(errno)));
  }

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, to_child[0], STDIN_FILENO);
  posix_spawn_file_actions_adddup2(&actions, from_child[1], STDOUT_FILENO);
  posix_spawn_file_actions_addclose(&actions, to_child[0]);
  posix_spawn_file_actions_addclose(&actions, to_child[1]);
  posix_spawn_file_actions_addclose(&actions, from_child[0]);
  posix_spawn_file_actions_addclose(&actions, from_child[1]);

  char* const argv[] = {const_cast<char*>(options_.worker_path.c_str()), nullptr};
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, options_.worker_path.c_str(), &actions, nullptr, argv, environ);
  posix_spawn_file_actions_destroy(&actions);
  ::close(to_child[0]);
  ::close(from_child[1]);
  if (rc != 0) {
    ::close(to_child[1]);
    ::close(from_child[0]);
    throw std::runtime_error("ProcessPool: posix_spawn " + options_.worker_path + ": " +
                             std::strerror(rc));
  }

  auto worker = std::make_unique<Worker>();
  worker->pid = pid;
  worker->to_child = to_child[1];
  worker->from_child = ::fdopen(from_child[0], "r");
  if (worker->from_child == nullptr) {
    destroy(*worker, /*wait_for_exit=*/false);
    ::close(from_child[0]);
    throw std::runtime_error("ProcessPool: fdopen failed");
  }
  workers_spawned_.fetch_add(1, std::memory_order_relaxed);
  return worker;
}

void ProcessPool::destroy(Worker& worker, bool wait_for_exit) {
  if (worker.to_child >= 0) ::close(worker.to_child);  // EOF: worker exits
  if (worker.from_child != nullptr) std::fclose(worker.from_child);
  if (worker.pid > 0) {
    if (!wait_for_exit) ::kill(worker.pid, SIGKILL);
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  worker.to_child = -1;
  worker.from_child = nullptr;
  worker.pid = -1;
}

CellResult ProcessPool::run(const SimBackendOptions& backend, const Config& config,
                            std::uint64_t seed) {
  std::string job = wire::job_to_json(backend, config, seed);
  job += '\n';

  for (std::size_t attempt = 0;; ++attempt) {
    std::unique_ptr<Worker> worker;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      available_.wait(lock, [&] { return !free_.empty(); });
      worker = std::move(free_.back());
      free_.pop_back();
    }

    std::string reply;
    const bool ok = write_all(worker->to_child, job.data(), job.size()) &&
                    read_line(worker->from_child, reply);
    if (ok) {
      CellResult result;
      bool parsed = true;
      std::string parse_error;
      try {
        result = wire::parse_cell_result_json(reply);
      } catch (const std::exception& e) {
        // A worker that prints garbage is as broken as one that died.
        parsed = false;
        parse_error = e.what();
      }
      if (parsed) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          free_.push_back(std::move(worker));
        }
        available_.notify_one();
        return result;
      }
      workers_crashed_.fetch_add(1, std::memory_order_relaxed);
      destroy(*worker, /*wait_for_exit=*/false);
      std::unique_ptr<Worker> replacement = spawn();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(std::move(replacement));
      }
      available_.notify_one();
      throw std::runtime_error("ProcessPool: unparseable worker reply: " + parse_error);
    }

    // Dead worker: reap it, restore pool capacity, and re-dispatch the
    // SAME (config, seed) -- byte-identity for transient kills.
    workers_crashed_.fetch_add(1, std::memory_order_relaxed);
    destroy(*worker, /*wait_for_exit=*/true);
    std::unique_ptr<Worker> replacement = spawn();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      free_.push_back(std::move(replacement));
    }
    available_.notify_one();
    if (attempt >= options_.crash_retries) {
      throw std::runtime_error("ProcessPool: cell " + config.to_string() +
                               " crashed its worker " + std::to_string(attempt + 1) +
                               " time(s); giving up on this seed");
    }
  }
}

PoolBackend::PoolBackend(ProcessPool& pool, SimBackendOptions options)
    : pool_(pool), inner_(std::move(options)) {}

std::string PoolBackend::name() const { return inner_.name(); }

std::string PoolBackend::describe() const { return inner_.describe(); }

CellResult PoolBackend::run(const Config& config, std::uint64_t seed) {
  if (shared_cache_ != nullptr) {
    const CellKey key = make_cell_key(name(), config, seed);
    std::lock_guard<std::mutex> lock(*shared_mutex_);
    const auto it = shared_cache_->find(key);
    if (it != shared_cache_->end()) {
      CellResult result = it->second;
      result.from_cache = true;
      deduped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_) observer_(config, seed, result, /*deduped=*/true);
      return result;
    }
  }

  CellResult result = pool_.run(inner_.options(), config, seed);
  if (!result.error.empty()) {
    // Same exception surface as an in-process backend that threw: the
    // runner's retry/containment machinery must not be able to tell
    // the difference.
    throw std::runtime_error(result.error);
  }
  if (shared_cache_ != nullptr) {
    std::lock_guard<std::mutex> lock(*shared_mutex_);
    shared_cache_->emplace(make_cell_key(name(), config, seed), result);
  }
  if (observer_) observer_(config, seed, result, /*deduped=*/false);
  return result;
}

}  // namespace sci::exec
