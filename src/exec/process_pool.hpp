// ProcessPool: fork/exec crash isolation for campaign cells.
//
// The CampaignRunner's in-thread retry logic contains backends that
// THROW, but a backend that calls abort(), segfaults, or is SIGKILLed
// takes the whole process down -- journal and all. The pool moves cell
// execution into `scibench_worker` child processes connected over
// stdin/stdout pipes (one line-delimited JSON job in, one result line
// out; exec/wire.hpp), so the blast radius of a dying backend is one
// disposable worker.
//
// Crash semantics, in byte-identity order:
//
//   1. A worker that dies mid-cell (EOF/EPIPE on its pipes) is reaped,
//      a replacement is spawned, and the SAME job -- same config, SAME
//      seed -- is re-dispatched, up to crash_retries times. A transient
//      kill (operator SIGKILL, OOM) therefore produces exactly the
//      bytes an undisturbed run would have: the cell is a pure function
//      of (config, seed) and the seed never changes.
//   2. A job that kills every worker it touches (a deterministic
//      abort()) exhausts crash_retries and run() throws. The
//      CampaignRunner above then applies its ordinary containment:
//      derived-seed attempts up to max_attempts, then a failed cell
//      carried in the result with the error recorded -- the campaign
//      survives, minus one cell.
//
// Workers are stateless (every job line carries the full backend
// options), so any worker can run any job and the pool needs no
// affinity bookkeeping. run() is thread-safe; the runner's worker
// threads call it concurrently and block on the free list when all
// worker processes are busy.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"

namespace sci::exec {

struct ProcessPoolOptions {
  /// Path to the scibench_worker binary (argv[0] of the children).
  std::string worker_path;
  /// Worker processes kept alive; also the useful upper bound for the
  /// CampaignRunner thread count driving the pool.
  std::size_t workers = 2;
  /// Same-seed re-dispatches after a worker death before run() gives up
  /// and throws (step 2 above).
  std::size_t crash_retries = 2;
};

class ProcessPool {
 public:
  explicit ProcessPool(ProcessPoolOptions options);
  ~ProcessPool();

  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;

  /// Executes one cell on a pooled worker process. Blocks while all
  /// workers are busy. Throws std::runtime_error when the job crashes
  /// every worker it is offered (crash_retries exhausted).
  [[nodiscard]] CellResult run(const SimBackendOptions& backend, const Config& config,
                               std::uint64_t seed);

  [[nodiscard]] std::size_t worker_count() const noexcept { return options_.workers; }
  /// Processes ever spawned (initial fleet + crash replacements).
  [[nodiscard]] std::size_t workers_spawned() const noexcept {
    return workers_spawned_.load(std::memory_order_relaxed);
  }
  /// Worker deaths observed mid-cell.
  [[nodiscard]] std::size_t workers_crashed() const noexcept {
    return workers_crashed_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    pid_t pid = -1;
    int to_child = -1;      ///< job lines out
    std::FILE* from_child = nullptr;  ///< result lines in (fdopen'd)
  };

  [[nodiscard]] std::unique_ptr<Worker> spawn();
  static void destroy(Worker& worker, bool wait_for_exit);

  ProcessPoolOptions options_;
  std::mutex mutex_;
  std::condition_variable available_;
  std::vector<std::unique_ptr<Worker>> free_;
  std::atomic<std::size_t> workers_spawned_{0};
  std::atomic<std::size_t> workers_crashed_{0};
};

/// Backend adapter that dispatches every cell to a ProcessPool -- drop
/// it into an ordinary CampaignRunner and the whole round/journal/cache
/// machinery runs unchanged, which is how the daemon inherits the
/// byte-identity contract for free. name()/describe() delegate to the
/// equivalent in-process SimBackend so cache keys, journal fingerprints,
/// and Rule 9 headers are indistinguishable from an in-process run.
///
/// A worker reply with `error` set re-throws here: the runner must see
/// the same exception surface as an in-process backend that threw, so
/// its retry/containment path (derived attempt seeds, failed-cell
/// accounting) behaves identically.
class PoolBackend : public Backend {
 public:
  /// Observes every cell this backend resolves (fresh execution or
  /// shared-cache dedupe) -- the daemon's per-cell event stream. Called
  /// on runner worker threads; keep it cheap and thread-safe.
  using CellObserver =
      std::function<void(const Config&, std::uint64_t seed, const CellResult&, bool deduped)>;

  PoolBackend(ProcessPool& pool, SimBackendOptions options);

  /// Attaches the service-wide dedupe cache (full-identity CellKey ->
  /// CellResult). Cells found there are served without touching the
  /// pool, so identical submissions from concurrent clients re-run
  /// nothing. Pointers are borrowed; both must outlive the backend.
  void set_shared_cache(CellCache* cache, std::mutex* cache_mutex) {
    shared_cache_ = cache;
    shared_mutex_ = cache_mutex;
  }
  void set_observer(CellObserver observer) { observer_ = std::move(observer); }

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] CellResult run(const Config& config, std::uint64_t seed) override;

  /// Cells served from the shared cache instead of executed.
  [[nodiscard]] std::size_t deduped() const noexcept {
    return deduped_.load(std::memory_order_relaxed);
  }

 private:
  ProcessPool& pool_;
  SimBackend inner_;  ///< identity donor: name/describe/fingerprint
  CellCache* shared_cache_ = nullptr;
  std::mutex* shared_mutex_ = nullptr;
  CellObserver observer_;
  std::atomic<std::size_t> deduped_{0};
};

}  // namespace sci::exec
