#include "exec/progress.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace sci::exec {

namespace json = obs::json;

std::string ProgressSnapshot::to_json() const {
  std::string out;
  out.reserve(768);
  out += "{\n  \"schema\": \"scibench.campaign_metrics\",\n  \"version\": ";
  out += json::dump_size(static_cast<std::size_t>(kVersion));
  out += ",\n  \"campaign\": ";
  json::append_quoted(out, campaign);
  out += ",\n  \"backend\": ";
  json::append_quoted(out, backend);
  const auto field = [&out](const char* name, std::size_t value) {
    out += ",\n  \"";
    out += name;
    out += "\": " + json::dump_size(value);
  };
  field("total_cells", total_cells);
  field("completed", completed);
  field("executed", executed);
  field("failed", failed);
  field("retries", retries);
  field("cache_hits", cache_hits);
  field("journal_hits", journal_hits);
  field("interrupted", interrupted);
  field("samples_executed", samples_executed);
  field("samples_total", samples_total);
  out += ",\n  \"elapsed_s\": " + json::dump_number(elapsed_s);
  out += ",\n  \"finished\": ";
  out += finished ? "true" : "false";
  out += ",\n  \"sequential\": ";
  out += sequential ? "true" : "false";
  field("configs_total", configs_total);
  field("configs_converged", configs_converged);
  field("configs_capped", configs_capped);
  field("rounds", rounds);
  out += ",\n  \"rep_counts\": [";
  for (std::size_t i = 0; i < rep_counts.size(); ++i) {
    if (i > 0) out += ", ";
    out += json::dump_size(rep_counts[i]);
  }
  out += "]";
  out += ",\n  \"workers\": [";
  bool first = true;
  for (const auto& w : workers) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"cells\": " + json::dump_size(w.cells);
    out += ", \"busy_s\": " + json::dump_number(w.busy_s) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"counter_delta\": [";
  first = true;
  for (const auto& [name, value] : counter_delta) {  // already name-sorted
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": ";
    json::append_quoted(out, name);
    out += ", \"value\": " + json::dump_size(static_cast<std::size_t>(value)) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string ProgressSnapshot::to_line() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "campaign %s [%s]: %zu/%zu cells (%zu run, %zu cached, %zu journal, "
                "%zu failed, %zu interrupted), %zu samples, %.1fs",
                campaign.c_str(), backend.c_str(), completed, total_cells, executed,
                cache_hits, journal_hits, failed, interrupted, samples_executed,
                elapsed_s);
  std::string line = buf;
  if (sequential) {
    std::snprintf(buf, sizeof buf, ", round %zu: %zu/%zu configs converged, %zu capped",
                  rounds, configs_converged, configs_total, configs_capped);
    line += buf;
  }
  return line;
}

ProgressSnapshot parse_progress_snapshot(std::string_view json_text) {
  const json::Value root = json::parse(json_text);
  if (root.at("schema").as_string() != "scibench.campaign_metrics") {
    throw std::runtime_error("campaign metrics: unknown schema \"" +
                             root.at("schema").as_string() + "\"");
  }
  if (root.at("version").as_size() != static_cast<std::size_t>(ProgressSnapshot::kVersion)) {
    throw std::runtime_error("campaign metrics: unsupported version");
  }
  ProgressSnapshot snap;
  snap.campaign = root.at("campaign").as_string();
  snap.backend = root.at("backend").as_string();
  snap.total_cells = root.at("total_cells").as_size();
  snap.completed = root.at("completed").as_size();
  snap.executed = root.at("executed").as_size();
  snap.failed = root.at("failed").as_size();
  snap.retries = root.at("retries").as_size();
  snap.cache_hits = root.at("cache_hits").as_size();
  snap.journal_hits = root.at("journal_hits").as_size();
  snap.interrupted = root.at("interrupted").as_size();
  snap.samples_executed = root.at("samples_executed").as_size();
  snap.samples_total = root.at("samples_total").as_size();
  snap.elapsed_s = root.at("elapsed_s").as_number();
  snap.finished = root.at("finished").boolean;
  snap.sequential = root.at("sequential").boolean;
  snap.configs_total = root.at("configs_total").as_size();
  snap.configs_converged = root.at("configs_converged").as_size();
  snap.configs_capped = root.at("configs_capped").as_size();
  snap.rounds = root.at("rounds").as_size();
  for (const auto& r : root.at("rep_counts").array) {
    snap.rep_counts.push_back(r.as_size());
  }
  for (const auto& w : root.at("workers").array) {
    WorkerProgress wp;
    wp.cells = w.at("cells").as_size();
    wp.busy_s = w.at("busy_s").as_number();
    snap.workers.push_back(wp);
  }
  for (const auto& c : root.at("counter_delta").array) {
    snap.counter_delta.emplace_back(c.at("name").as_string(),
                                    static_cast<std::uint64_t>(c.at("value").as_size()));
  }
  return snap;
}

void StderrHeartbeat::on_heartbeat(const ProgressSnapshot& snapshot) {
  std::fprintf(stderr, "%s\n", snapshot.to_line().c_str());
}

void StderrHeartbeat::on_complete(const ProgressSnapshot& snapshot) {
  std::fprintf(stderr, "%s -- done\n", snapshot.to_line().c_str());
}

}  // namespace sci::exec
