// Live campaign telemetry: what a running CampaignRunner is doing,
// without touching what it produces.
//
// A ProgressSink observes a campaign from outside the determinism
// boundary: cells completed/failed/retried, samples run, cache and
// journal-resume hits, per-worker throughput, and obs-counter deltas.
// The runner feeds it a heartbeat (from a monitor thread, when
// CampaignRunnerOptions::heartbeat_period_s > 0) and one final snapshot
// on completion -- including budget-interrupted completion. When
// CampaignRunnerOptions::metrics_path is set, the final snapshot is
// additionally written to disk as canonical JSON via an atomic
// temp-file + rename, so a watcher never reads a torn file.
//
// Contract: telemetry is observational only. Result CSVs are a pure
// function of the campaign cells; attaching or detaching a sink (or
// the metrics file) cannot change a single exported byte, and when both
// are unset the runner does zero extra bookkeeping. Enforced by
// tests/test_exec_progress.cpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/counters.hpp"

namespace sci::exec {

/// One worker's share of the campaign: cells it completed and the time
/// it spent inside the claim loop (throughput = cells / busy_s).
struct WorkerProgress {
  std::size_t cells = 0;
  double busy_s = 0.0;
};

/// Point-in-time view of a running (or finished) campaign.
/// Version 2 adds the sequential-stopping convergence stats
/// (sequential, configs_total/converged/capped, rounds, rep_counts);
/// they are zero/empty for fixed campaigns.
struct ProgressSnapshot {
  static constexpr int kVersion = 2;

  std::string campaign;
  std::string backend;

  std::size_t total_cells = 0;
  /// Cells resolved so far by any means; == total_cells when finished.
  std::size_t completed = 0;
  std::size_t executed = 0;      ///< fresh backend runs that succeeded
  std::size_t failed = 0;
  std::size_t retries = 0;       ///< extra attempts beyond the first
  std::size_t cache_hits = 0;
  std::size_t journal_hits = 0;  ///< cells replayed from the resume journal
  std::size_t interrupted = 0;   ///< cell-budget casualties (resume executes them)

  /// Samples produced by fresh backend runs this process.
  std::size_t samples_executed = 0;
  /// Samples present in the assembled result (executed + replayed +
  /// cached); only known on the final snapshot. Equals the row count of
  /// the exported samples CSV.
  std::size_t samples_total = 0;

  double elapsed_s = 0.0;
  bool finished = false;

  /// Sequential-stopping convergence stats (live; zero under fixed).
  bool sequential = false;
  std::size_t configs_total = 0;      ///< grid configs under adaptive control
  std::size_t configs_converged = 0;  ///< retired with the CI criterion met
  std::size_t configs_capped = 0;     ///< retired at max_reps unconverged
  std::size_t rounds = 0;             ///< scheduling rounds completed
  /// Per-config replication counts; final-snapshot fact (like
  /// samples_total), empty on heartbeats and for fixed campaigns.
  std::vector<std::size_t> rep_counts;

  std::vector<WorkerProgress> workers;
  /// obs counter registry delta since run() started (what the campaign
  /// cost to produce -- Rule 9, live).
  obs::CounterSnapshot counter_delta;

  /// Canonical JSON (schema "scibench.campaign_metrics", version 1;
  /// byte-deterministic emit via obs/json.hpp).
  [[nodiscard]] std::string to_json() const;
  /// One human line for heartbeats/logs.
  [[nodiscard]] std::string to_line() const;
};

/// Inverse of ProgressSnapshot::to_json (throws on schema mismatch).
[[nodiscard]] ProgressSnapshot parse_progress_snapshot(std::string_view json_text);

class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  /// Periodic update from the monitor thread. NOT called on any worker
  /// thread; implementations may block briefly (I/O) without slowing
  /// the campaign.
  virtual void on_heartbeat(const ProgressSnapshot& snapshot) { (void)snapshot; }
  /// Exactly once, after the workers joined; snapshot.finished is true.
  virtual void on_complete(const ProgressSnapshot& snapshot) = 0;
};

/// Default sink: one status line per heartbeat and a closing summary,
/// both to stderr (stdout stays the campaign's own).
class StderrHeartbeat : public ProgressSink {
 public:
  void on_heartbeat(const ProgressSnapshot& snapshot) override;
  void on_complete(const ProgressSnapshot& snapshot) override;
};

}  // namespace sci::exec
