// core::Registry implementation, ported onto sci::exec (this file lives
// in src/exec because run_all executes through the backend/campaign
// machinery; the public interface stays core/registry.hpp).
//
// run_all() compiles the registered benchmarks into a one-factor
// campaign ("benchmark" x registration order) over a HostBackend and
// executes it with a CampaignRunner, so registry runs get the same
// sharding, caching, and per-worker tracing as any other campaign. The
// rendered text is unchanged from the pre-exec runner.
#include "core/registry.hpp"

#include <filesystem>
#include <ostream>
#include <stdexcept>

#include "core/dataset.hpp"
#include "core/report.hpp"
#include "exec/host_backend.hpp"
#include "exec/runner.hpp"

namespace sci::core {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(RegisteredBenchmark benchmark) {
  if (benchmark.name.empty()) throw std::invalid_argument("Registry: empty name");
  if (!benchmark.measure) throw std::invalid_argument("Registry: null measurement");
  for (const auto& b : benchmarks_) {
    if (b.name == benchmark.name) {
      throw std::invalid_argument("Registry: duplicate benchmark '" + benchmark.name +
                                  "'");
    }
  }
  if (benchmark.experiment.name.empty()) benchmark.experiment.name = benchmark.name;
  benchmarks_.push_back(std::move(benchmark));
}

void Registry::add(std::string name, std::function<double()> measure) {
  RegisteredBenchmark b;
  b.name = std::move(name);
  b.measure = std::move(measure);
  add(std::move(b));
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(benchmarks_.size());
  for (const auto& b : benchmarks_) out.push_back(b.name);
  return out;
}

std::size_t Registry::run_all(std::ostream& os, const RunnerOptions& options) {
  // Select in registration order; the selection becomes the campaign's
  // "benchmark" factor levels.
  std::vector<const RegisteredBenchmark*> selected;
  std::vector<exec::HostBenchmark> host;
  for (const auto& b : benchmarks_) {
    if (!options.filter.empty() && b.name.find(options.filter) == std::string::npos) {
      continue;
    }
    selected.push_back(&b);
    host.push_back({b.name, b.measure, b.unit, b.sampling});
  }
  if (selected.empty()) return 0;

  exec::HostBackend backend(std::move(host));
  exec::CampaignSpec spec;
  spec.name = "registry";
  spec.description = "core::Registry::run_all";
  spec.factors.push_back({exec::HostBackend::kBenchmarkFactor, backend.benchmark_names()});
  exec::CampaignRunnerOptions runner_options;
  runner_options.workers = options.workers == 0 ? 1 : options.workers;
  exec::CampaignRunner runner(backend, exec::Campaign(std::move(spec)), runner_options);
  const exec::CampaignResult result = runner.run();

  if (options.write_csv) {
    // Surface export problems instead of silently dropping data: create
    // the target directory if missing, fail loudly when that (or any
    // later write) is impossible.
    std::error_code ec;
    std::filesystem::create_directories(options.csv_directory, ec);
    if (ec) {
      throw std::runtime_error("Registry::run_all: cannot create csv_directory '" +
                               options.csv_directory + "': " + ec.message());
    }
  }

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const RegisteredBenchmark& b = *selected[i];
    const exec::CampaignCell& cell = result.cell(i);
    if (!cell.result.error.empty()) {
      // One broken benchmark must not take down the whole run (or, via
      // a worker-thread escape, the process): render the failure in
      // place and keep going. The count still includes it, mirroring
      // how campaign exports account failed cells.
      os << b.name << ": FAILED: " << cell.result.error << "\n\n";
      continue;
    }

    ReportBuilder report(b.experiment);
    report.add_series({b.name, b.unit, cell.result.samples});
    os << report.render();
    os << "sampling: " << cell.result.samples.size() << " samples, "
       << cell.result.stop_reason << " (warmup " << cell.result.warmup_discarded
       << ")\n";
    os << ReportBuilder::render_audit(report.audit()) << '\n';

    if (options.write_csv) {
      Dataset ds(b.experiment, {b.name + "_" + b.unit});
      for (double v : cell.result.samples) ds.add_row({v});
      ds.save_csv(options.csv_directory + "/" + b.name + ".csv");
    }
  }
  return selected.size();
}

}  // namespace sci::core
