#include "exec/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>

#include "exec/journal.hpp"
#include "obs/bench_report.hpp"
#include "obs/trace.hpp"
#include "sim/callback.hpp"
#include "sim/frame_pool.hpp"
#include "stats/online.hpp"

namespace sci::exec {

CellKey make_cell_key(const std::string& backend_name, const Config& config,
                      std::uint64_t seed) {
  std::uint64_t state = seed ^ 0xa0761d6478bd642fULL;
  state = rng::splitmix64_next(state) ^ backend_name.size();
  for (unsigned char c : backend_name) state = rng::splitmix64_next(state) ^ c;
  return CellKey{backend_name, config.levels, seed, config.hash(rng::splitmix64_next(state))};
}

std::size_t CampaignResult::rep_count(std::size_t config_index) const {
  if (cell_offsets.size() == configs + 1) {
    if (config_index >= configs)
      throw std::out_of_range("CampaignResult::rep_count: config out of range");
    return cell_offsets[config_index + 1] - cell_offsets[config_index];
  }
  // Hand-assembled fixed-arity results (tests, ad hoc tooling) that
  // never filled the offsets keep the legacy uniform grouping.
  return replications;
}

const CampaignCell& CampaignResult::cell(std::size_t config_index, std::size_t rep) const {
  if (rep >= rep_count(config_index))
    throw std::out_of_range("CampaignResult::cell: rep out of range");
  const std::size_t base = cell_offsets.size() == configs + 1
                               ? cell_offsets[config_index]
                               : config_index * replications;
  return cells.at(base + rep);
}

const std::vector<double>& CampaignResult::series(std::size_t config_index,
                                                  std::size_t rep) const {
  const CampaignCell& c = cell(config_index, rep);
  if (!c.result.error.empty()) {
    throw std::runtime_error("CampaignResult::series: cell " + c.config.to_string() +
                             " rep " + std::to_string(rep) + " failed: " + c.result.error);
  }
  return c.result.samples;
}

std::vector<double> CampaignResult::merged_series(std::size_t config_index) const {
  std::vector<double> out;
  const std::size_t reps = rep_count(config_index);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto& s = series(config_index, r);
    out.insert(out.end(), s.begin(), s.end());
  }
  return out;
}

core::MeasurementSummary CampaignResult::summary(std::size_t config_index,
                                                 std::size_t rep) const {
  return core::summarize_series(series(config_index, rep));
}

namespace {

std::vector<std::string> cell_columns(const std::vector<CampaignCell>& cells) {
  std::vector<std::string> cols = {"config", "rep"};
  if (!cells.empty()) {
    for (const auto& [factor, level] : cells.front().config.levels) {
      cols.push_back("f_" + factor);
    }
  }
  return cols;
}

std::vector<double> cell_prefix(const CampaignCell& cell) {
  std::vector<double> row = {static_cast<double>(cell.config.index),
                             static_cast<double>(cell.rep)};
  for (std::size_t idx : cell.config.level_indices) {
    row.push_back(static_cast<double>(idx));
  }
  return row;
}

}  // namespace

core::Dataset CampaignResult::samples_dataset() const {
  auto cols = cell_columns(cells);
  cols.push_back("sample");
  cols.push_back("value");
  core::Dataset ds(experiment, std::move(cols));
  for (const auto& cell : cells) {
    if (!cell.result.error.empty()) continue;
    const auto prefix = cell_prefix(cell);
    for (std::size_t i = 0; i < cell.result.samples.size(); ++i) {
      auto row = prefix;
      row.push_back(static_cast<double>(i));
      row.push_back(cell.result.samples[i]);
      ds.add_row(row);
    }
  }
  return ds;
}

core::Dataset CampaignResult::summary_dataset() const {
  auto cols = cell_columns(cells);
  for (const char* c : {"failed", "n", "median", "ci_lo", "ci_hi", "mean", "min", "max"}) {
    cols.emplace_back(c);
  }
  core::Dataset ds(experiment, std::move(cols));
  constexpr double nan = std::numeric_limits<double>::quiet_NaN();
  for (const auto& cell : cells) {
    // Failed cells keep their row (failed=1, NaN statistics) so a
    // partially-failed campaign renders with explicit holes instead of
    // silently shrinking the grid.
    const bool cell_failed = !cell.result.error.empty();
    auto row = cell_prefix(cell);
    row.push_back(cell_failed ? 1.0 : 0.0);
    if (cell_failed) {
      row.push_back(0.0);
      for (int i = 0; i < 6; ++i) row.push_back(nan);
    } else {
      const auto s = core::summarize_series(cell.result.samples);
      row.push_back(static_cast<double>(s.n));
      row.push_back(s.median);
      row.push_back(s.median_ci ? s.median_ci->lower : nan);
      row.push_back(s.median_ci ? s.median_ci->upper : nan);
      row.push_back(s.mean);
      row.push_back(s.min);
      row.push_back(s.max);
    }
    ds.add_row(row);
  }
  return ds;
}

CampaignRunner::CampaignRunner(Backend& backend, Campaign campaign,
                               CampaignRunnerOptions options)
    : backend_(backend), campaign_(std::move(campaign)), options_(options) {}

std::size_t CampaignRunner::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void CampaignRunner::clear_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

CampaignResult CampaignRunner::run() {
  const CampaignSpec& spec = campaign_.spec();
  const StoppingPolicy& policy = spec.stopping;
  const bool sequential = policy.sequential();
  const std::size_t n_configs = campaign_.config_count();
  // Fixed mode is "one round containing the whole grid" -- the same
  // claim order, cache/journal/budget handling, and assembly as the
  // historical flat runner, byte-for-byte.
  const std::size_t min_reps = sequential ? policy.min_reps : spec.replications;
  const std::size_t max_reps = sequential ? policy.max_reps : spec.replications;

  CampaignResult result;
  result.experiment = campaign_.experiment(&backend_);
  result.replications = sequential ? 0 : spec.replications;
  result.configs = n_configs;
  result.sequential = sequential;

  const std::string backend_name = backend_.name();
  const std::vector<Config> grid = campaign_.configs();

  // Per-config round state. Completed cells accumulate here in rep
  // order and are flattened into the result at the end; the pooled
  // sample accumulator drives the sequential stop decisions.
  struct ConfigState {
    std::vector<CampaignCell> cells;
    stats::OnlineSeries series;
    std::size_t scheduled = 0;  ///< reps scheduled so far
    bool retired = false;
    double width = std::numeric_limits<double>::infinity();
    std::uint64_t tie_break = 0;  ///< CellKey hash of rep 0 (rank tie-break)
    ConfigStopInfo info;
  };
  std::vector<ConfigState> state;
  state.reserve(n_configs);
  for (std::size_t c = 0; c < n_configs; ++c) {
    ConfigState st;
    st.series = stats::OnlineSeries(sequential ? policy.max_lag : 1);
    if (sequential) {
      st.tie_break =
          make_cell_key(backend_name, grid[c], campaign_.seed_for(grid[c], 0)).hash;
    }
    state.push_back(std::move(st));
  }

  // The current round's cells, in (config.index, rep) order. Workers
  // claim slots via the shared atomic and write only their own, so the
  // round's assembled order never depends on scheduling.
  std::vector<CampaignCell> work;
  const auto schedule = [&](std::size_t c, std::size_t count) {
    ConfigState& st = state[c];
    for (std::size_t r = st.scheduled; r < st.scheduled + count; ++r) {
      CampaignCell cell;
      cell.config = grid[c];
      cell.rep = r;
      cell.seed = campaign_.seed_for(grid[c], r);
      work.push_back(std::move(cell));
    }
    st.scheduled += count;
  };
  for (std::size_t c = 0; c < n_configs; ++c) schedule(c, min_reps);

  std::size_t workers = options_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  if (workers > work.size()) workers = work.size();
  if (workers == 0) workers = 1;

  // Crash-safe checkpoint/resume: completed cells append to the journal
  // as they finish, and a rerun with the same path replays them instead
  // of executing. Fingerprint mismatch (different campaign/backend)
  // throws here, before any cell runs.
  std::unique_ptr<CampaignJournal> journal;
  if (!options_.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(
        options_.journal_path, CampaignJournal::fingerprint(campaign_, backend_name));
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> journal_hits{0};
  std::atomic<std::size_t> interrupted{0};
  std::atomic<std::size_t> retries{0};
  std::atomic<std::size_t> budget_used{0};
  // Round bookkeeping, readable by the heartbeat monitor mid-run.
  std::atomic<std::size_t> scheduled_cells{work.size()};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> configs_converged{0};
  std::atomic<std::size_t> configs_capped{0};
  const std::size_t max_attempts = std::max<std::size_t>(1, options_.max_attempts);

  // Telemetry is fully optional: with no sink and no metrics file, the
  // extra per-cell bookkeeping below is skipped entirely (zero-cost
  // contract), and none of it can influence results either way.
  const bool telemetry =
      options_.progress != nullptr || !options_.metrics_path.empty();
  std::atomic<std::size_t> samples_executed{0};
  std::unique_ptr<std::atomic<std::size_t>[]> worker_cells;
  std::vector<double> worker_busy;
  obs::CounterSnapshot counters_at_start;
  if (telemetry) {
    worker_cells = std::make_unique<std::atomic<std::size_t>[]>(workers);
    for (std::size_t w = 0; w < workers; ++w) worker_cells[w].store(0);
    worker_busy.assign(workers, 0.0);
    counters_at_start = obs::CounterRegistry::instance().snapshot();
  }
  const double run_t0 = obs::host_now_s();

  // Heartbeat snapshots read only the atomics above (never the cells
  // vector, which workers are still writing); samples_total and
  // per-worker busy time are final-snapshot facts.
  const auto make_snapshot = [&](bool finished) {
    ProgressSnapshot snap;
    snap.campaign = campaign_.spec().name;
    snap.backend = backend_name;
    snap.total_cells = scheduled_cells.load(std::memory_order_relaxed);
    snap.executed = executed.load(std::memory_order_relaxed);
    snap.failed = failed.load(std::memory_order_relaxed);
    snap.retries = retries.load(std::memory_order_relaxed);
    snap.cache_hits = cache_hits.load(std::memory_order_relaxed);
    snap.journal_hits = journal_hits.load(std::memory_order_relaxed);
    snap.interrupted = interrupted.load(std::memory_order_relaxed);
    snap.completed = snap.executed + snap.failed + snap.cache_hits +
                     snap.journal_hits + snap.interrupted;
    snap.samples_executed = samples_executed.load(std::memory_order_relaxed);
    snap.elapsed_s = obs::host_now_s() - run_t0;
    snap.finished = finished;
    snap.workers.resize(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      snap.workers[w].cells = worker_cells[w].load(std::memory_order_relaxed);
      snap.workers[w].busy_s = finished ? worker_busy[w] : snap.elapsed_s;
    }
    snap.counter_delta = obs::snapshot_delta(counters_at_start,
                                             obs::CounterRegistry::instance().snapshot());
    // Live convergence stats (sequential mode; zeros under fixed).
    snap.sequential = sequential;
    snap.configs_total = sequential ? n_configs : 0;
    snap.configs_converged = configs_converged.load(std::memory_order_relaxed);
    snap.configs_capped = configs_capped.load(std::memory_order_relaxed);
    snap.rounds = rounds_done.load(std::memory_order_relaxed);
    if (finished) {
      for (const auto& cell : result.cells) {
        if (cell.result.error.empty()) snap.samples_total += cell.result.samples.size();
      }
      // Final-snapshot fact, like samples_total: per-config rep counts
      // (read from the assembled result, after the rounds finish).
      if (sequential && result.cell_offsets.size() == n_configs + 1) {
        snap.rep_counts.reserve(n_configs);
        for (std::size_t c = 0; c < n_configs; ++c) {
          snap.rep_counts.push_back(result.cell_offsets[c + 1] - result.cell_offsets[c]);
        }
      }
    }
    return snap;
  };

  // Per-worker trace sinks, merged into the caller's sink after the
  // join (TraceSink is deliberately single-threaded). Only pay for
  // tracing when the caller attached a sink.
  obs::TraceSink* parent_sink = obs::sink();
  std::vector<obs::TraceSink> worker_sinks(parent_sink != nullptr ? workers : 0);

  // Worker-slot contexts outlive the per-round threads: slot w is used
  // by exactly one thread per round, so its warm world carries across
  // round boundaries without synchronization.
  std::vector<std::unique_ptr<BackendContext>> contexts(workers);
  std::vector<std::string> context_errors(workers);
  std::vector<char> context_tried(workers, 0);

  const auto worker_body = [&](std::size_t worker_id) {
    std::optional<obs::ScopedAttach> attach;
    if (parent_sink != nullptr) {
      attach.emplace(worker_sinks[worker_id]);
      worker_sinks[worker_id].set_track_name(
          obs::kHarnessTrack, "campaign worker " + std::to_string(worker_id));
    }

    // Per-worker reusable backend state: worlds, buffers, and RNG
    // scratch stay warm across every cell this worker claims. Results
    // are byte-identical to stateless backend_.run() calls.
    //
    // make_context() runs inside the worker thread, so an exception
    // escaping it would hit std::terminate (no frame above us catches
    // on this thread). Catch it here and record the error: this
    // worker's claimed cells are marked failed with the context error
    // and the campaign keeps going. A deterministically-throwing
    // make_context throws in every worker, so every cell fails
    // identically regardless of worker count.
    std::unique_ptr<BackendContext>& context = contexts[worker_id];
    std::string& context_error = context_errors[worker_id];
    if (options_.reuse_contexts && !context_tried[worker_id]) {
      context_tried[worker_id] = 1;
      try {
        context = backend_.make_context();
      } catch (const std::exception& e) {
        context_error = std::string("make_context failed: ") + e.what();
      } catch (...) {
        context_error = "make_context failed: unknown exception";
      }
    }

    const double worker_t0 = obs::host_now_s();
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= work.size()) break;
      // Every claimed cell is resolved by this worker (run, cached,
      // replayed, failed, or interrupted), so claiming is completing
      // for telemetry purposes.
      if (telemetry) worker_cells[worker_id].fetch_add(1, std::memory_order_relaxed);
      CampaignCell& cell = work[i];
      const CellKey key = make_cell_key(backend_name, cell.config, cell.seed);

      if (options_.use_cache) {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
          cell.result = it->second;
          cell.result.from_cache = true;
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      }

      if (journal != nullptr) {
        if (const CellResult* rec = journal->find(cell.config.index, cell.rep, cell.seed)) {
          cell.result = *rec;
          cell.result.from_cache = true;
          journal_hits.fetch_add(1, std::memory_order_relaxed);
          if (rec->error.empty()) {
            if (options_.use_cache) {
              std::lock_guard<std::mutex> lock(cache_mutex_);
              cache_.emplace(key, cell.result);
            }
          } else {
            // A journaled failure is final (deterministic backends fail
            // the same way again); it still counts against the campaign
            // so the resumed accounting matches an uninterrupted run.
            failed.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
      }

      if (!context_error.empty()) {
        cell.result = CellResult{};
        cell.result.error = context_error;
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }

      // Cooperative signal drain: once the interrupt flag is set (by a
      // SIGINT/SIGTERM handler, exec/interrupt.hpp), remaining cells are
      // marked interrupted -- the same not-failed / not-journaled drain
      // as budget exhaustion, so a rerun with the journal resumes
      // byte-identically from the finished cells.
      if (options_.interrupt != nullptr &&
          options_.interrupt->load(std::memory_order_relaxed)) {
        cell.result = CellResult{};
        cell.result.error = "interrupted: signal";
        interrupted.fetch_add(1, std::memory_order_relaxed);
        continue;
      }

      // Deterministic stand-in for a mid-campaign kill: once the budget
      // is spent, remaining cells are marked interrupted (not failed,
      // not journaled) so a resume executes exactly them.
      if (options_.cell_budget > 0 &&
          budget_used.fetch_add(1, std::memory_order_relaxed) >= options_.cell_budget) {
        cell.result = CellResult{};
        cell.result.error = "interrupted: cell budget exhausted";
        interrupted.fetch_add(1, std::memory_order_relaxed);
        continue;
      }

      // Replication-boundary audit baseline: thread-local tallies make
      // the deltas exact even with every worker measuring at once.
      const std::uint64_t frames0 = sim::FramePool::local().heap_allocs();
      const std::uint64_t spills0 = sim::callback_heap_spills_local();
      [[maybe_unused]] const double t0 = obs::host_now_s();
      // Bounded retry. Attempt k > 0 uses the deterministically derived
      // seed splitmix64(cell.seed ^ k), so the attempt sequence -- and
      // therefore the final outcome -- is a pure function of the cell,
      // independent of scheduling and worker count.
      for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          retries.fetch_add(1, std::memory_order_relaxed);
          if (options_.retry_backoff_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options_.retry_backoff_ms * attempt));
          }
        }
        std::uint64_t attempt_state = cell.seed ^ attempt;
        const std::uint64_t attempt_seed =
            attempt == 0 ? cell.seed : rng::splitmix64_next(attempt_state);
        try {
          cell.result = context != nullptr ? context->run(cell.config, attempt_seed)
                                           : backend_.run(cell.config, attempt_seed);
          cell.result.from_cache = false;
        } catch (const std::exception& e) {
          cell.result = CellResult{};
          cell.result.error = e.what();
        } catch (...) {
          cell.result = CellResult{};
          cell.result.error = "unknown backend exception";
        }
        cell.result.attempts = attempt + 1;
        if (cell.result.error.empty()) break;
      }
      cell.result.coro_frame_heap_allocs =
          sim::FramePool::local().heap_allocs() - frames0;
      cell.result.callback_heap_spills = sim::callback_heap_spills_local() - spills0;
      SCI_TRACE_COMPLETE(obs::kHarnessTrack, "campaign.cell", "exec", t0,
                         obs::host_now_s() - t0,
                         {obs::TraceArg{"config", cell.config.index},
                          obs::TraceArg{"rep", cell.rep},
                          obs::TraceArg{"samples", cell.result.samples.size()},
                          obs::TraceArg{"attempts", cell.result.attempts},
                          obs::TraceArg{"failed", cell.result.error.empty() ? 0 : 1}});

      if (journal != nullptr) {
        journal->append(cell.config.index, cell.rep, cell.seed, cell.result);
      }
      if (cell.result.error.empty()) {
        executed.fetch_add(1, std::memory_order_relaxed);
        if (telemetry) {
          samples_executed.fetch_add(cell.result.samples.size(),
                                     std::memory_order_relaxed);
        }
        if (options_.use_cache) {
          std::lock_guard<std::mutex> lock(cache_mutex_);
          cache_.emplace(key, cell.result);
        }
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (telemetry) worker_busy[worker_id] += obs::host_now_s() - worker_t0;
  };

  // Heartbeat monitor: its own thread so sink I/O never blocks a
  // worker, started only when someone is listening.
  std::thread monitor;
  std::mutex monitor_mutex;
  std::condition_variable monitor_cv;
  bool monitor_stop = false;
  if (options_.progress != nullptr && options_.heartbeat_period_s > 0.0) {
    const auto period = std::chrono::duration<double>(options_.heartbeat_period_s);
    monitor = std::thread([&] {
      std::unique_lock<std::mutex> lock(monitor_mutex);
      while (!monitor_cv.wait_for(lock, period, [&] { return monitor_stop; })) {
        lock.unlock();
        options_.progress->on_heartbeat(make_snapshot(/*finished=*/false));
        lock.lock();
      }
    });
  }
  const auto stop_monitor = [&] {
    if (!monitor.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(monitor_mutex);
      monitor_stop = true;
    }
    monitor_cv.notify_all();
    monitor.join();
  };

  const auto run_round = [&] {
    next.store(0, std::memory_order_relaxed);
    if (workers == 1) {
      // In-thread execution keeps single-worker runs trivially
      // debuggable (and lets HostBackend cells inherit the caller's
      // thread state).
      worker_body(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_body, w);
      for (auto& t : pool) t.join();
    }
  };

  // -------------------------------------------------------- round loop
  // Fixed mode: exactly one round holding the whole grid. Sequential
  // mode: after each round, live configs are tested for convergence on
  // their pooled samples (fed strictly in (config, rep) order, so the
  // decision stream is a pure function of the campaign -- worker count
  // and round timing can't touch it), retirees journal their stop
  // decision, and the next round's budget is granted widest-CI-first.
  std::size_t round = 0;
  while (!work.empty()) {
    run_round();
    ++round;
    rounds_done.store(round, std::memory_order_relaxed);

    bool round_interrupted = false;
    for (auto& cell : work) {
      ConfigState& st = state[cell.config.index];
      if (cell.result.error.empty()) {
        if (sequential)
          st.series.add(std::span<const double>(cell.result.samples));
      } else if (cell.result.error.rfind("interrupted:", 0) == 0) {
        round_interrupted = true;
      }
      st.cells.push_back(std::move(cell));
    }
    work.clear();

    if (!sequential) break;
    if (round_interrupted) {
      // Budget exhausted mid-round: stop scheduling. No convergence
      // decisions are taken on the incomplete round; the resume
      // executes the interrupted cells, reaches this barrier with the
      // full round's data, and decides identically to an uninterrupted
      // run. (Configs still live at exit are exactly the budget
      // casualties; they get stop_reason "interrupted" below.)
      break;
    }

    // Convergence evaluation (main thread, between rounds).
    for (std::size_t c = 0; c < n_configs; ++c) {
      ConfigState& st = state[c];
      if (st.retired) continue;
      double width = std::numeric_limits<double>::infinity();
      double ess = std::numeric_limits<double>::quiet_NaN();
      bool converged = false;
      if (st.series.count() > 5) {
        width = st.series.relative_ci_half_width(policy.quantile, policy.confidence);
        ess = st.series.effective_sample_size();
        converged = width <= policy.target_rel_ci_half_width &&
                    (policy.ess_floor <= 0.0 || ess >= policy.ess_floor);
      }
      st.width = width;
      if (!converged && st.scheduled < max_reps) continue;
      st.retired = true;
      st.info.reps = st.scheduled;
      st.info.stop_round = round;
      st.info.converged = converged;
      st.info.stop_reason = converged ? "converged" : "max_reps";
      if (st.series.count() > 5) {
        st.info.median = st.series.quantile(policy.quantile);
        st.info.rel_ci_half_width = width;
        st.info.ess = ess;
      }
      (converged ? configs_converged : configs_capped)
          .fetch_add(1, std::memory_order_relaxed);
      // Journal the stop decision. On resume the decision is recomputed
      // from the replayed samples; the record is the cross-run
      // consistency check -- a mismatch means the journal belongs to a
      // different campaign or policy than the fingerprint suggested.
      if (journal != nullptr) {
        if (const CampaignJournal::StopRecord* rec = journal->find_stop(c)) {
          if (rec->reps != st.info.reps || rec->reason != st.info.stop_reason) {
            throw std::runtime_error(
                "campaign journal: stop record mismatch for config " +
                std::to_string(c) + " (journal: reps=" + std::to_string(rec->reps) +
                " reason=" + rec->reason + ", recomputed: reps=" +
                std::to_string(st.info.reps) + " reason=" + st.info.stop_reason + ")");
          }
        } else {
          journal->append_stop(c, st.info.reps, st.info.stop_reason);
        }
      }
    }

    // Schedule the next round: every live config gets its quantum
    // (capped at max_reps); the budget freed by retired configs is
    // re-granted one rep at a time in deterministic rank order --
    // widest relative CI first, CellKey hash then config index as
    // tie-breaks.
    std::vector<std::size_t> live;
    for (std::size_t c = 0; c < n_configs; ++c) {
      if (!state[c].retired) live.push_back(c);
    }
    if (live.empty()) break;
    std::vector<std::size_t> alloc(n_configs, 0);
    for (std::size_t c : live) {
      alloc[c] = std::min(policy.round_quantum, max_reps - state[c].scheduled);
    }
    std::size_t freed = policy.round_quantum * (n_configs - live.size());
    std::vector<std::size_t> ranked = live;
    std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      if (state[a].width != state[b].width) return state[a].width > state[b].width;
      if (state[a].tie_break != state[b].tie_break)
        return state[a].tie_break < state[b].tie_break;
      return a < b;
    });
    bool granted = true;
    while (freed > 0 && granted) {
      granted = false;
      for (std::size_t c : ranked) {
        if (freed == 0) break;
        if (state[c].scheduled + alloc[c] < max_reps) {
          ++alloc[c];
          --freed;
          granted = true;
        }
      }
    }
    for (std::size_t c : live) {
      if (alloc[c] > 0) schedule(c, alloc[c]);
    }
    scheduled_cells.fetch_add(work.size(), std::memory_order_relaxed);
  }

  if (parent_sink != nullptr) {
    for (std::size_t w = 0; w < workers; ++w) {
      parent_sink->merge(worker_sinks[w],
                         kWorkerTrackBase + static_cast<int>(w) * kWorkerTrackStride);
    }
  }

  stop_monitor();

  result.executed = executed.load();
  result.cache_hits = cache_hits.load();
  result.failed = failed.load();
  result.journal_hits = journal_hits.load();
  result.interrupted = interrupted.load();
  result.retries = retries.load();
  result.rounds = round;

  // Flatten per-config state into the canonical (config.index, rep)
  // cell order with explicit offsets; fill the fixed-mode /
  // interrupted stop info for configs that never retired.
  result.cell_offsets.assign(n_configs + 1, 0);
  std::size_t total_cells = 0;
  for (std::size_t c = 0; c < n_configs; ++c) {
    total_cells += state[c].cells.size();
    result.cell_offsets[c + 1] = total_cells;
  }
  result.cells.reserve(total_cells);
  result.stopping.reserve(n_configs);
  for (std::size_t c = 0; c < n_configs; ++c) {
    ConfigState& st = state[c];
    for (auto& cell : st.cells) result.cells.push_back(std::move(cell));
    if (!st.retired) {
      st.info.reps = st.scheduled;
      st.info.stop_round = round;
      st.info.converged = false;
      st.info.stop_reason = sequential ? "interrupted" : "fixed";
    }
    result.stopping.push_back(std::move(st.info));
  }

  // Rule 9 documentation of the adaptive design actually executed:
  // rounds taken and the per-config rep counts. Both are deterministic,
  // so exported CSV headers stay byte-identical at any worker count.
  if (sequential) {
    result.experiment.set("campaign.rounds", std::to_string(round));
    std::string counts;
    for (std::size_t c = 0; c < n_configs; ++c) {
      if (!counts.empty()) counts += ',';
      counts += std::to_string(result.cell_offsets[c + 1] - result.cell_offsets[c]);
    }
    result.experiment.set("campaign.rep_counts", counts);
  }

  // Final telemetry: one complete snapshot after the rounds finish
  // (finished is true even when the cell budget interrupted the grid --
  // the watcher learns exactly how far the run got), written atomically
  // so no reader sees a torn metrics file.
  if (telemetry) {
    const ProgressSnapshot snapshot = make_snapshot(/*finished=*/true);
    if (!options_.metrics_path.empty()) {
      obs::write_file_atomic(options_.metrics_path, snapshot.to_json());
    }
    if (options_.progress != nullptr) options_.progress->on_complete(snapshot);
  }

  // Rule 9 damage report: partially-failed campaigns export CSVs whose
  // headers say exactly which cells are missing and why, instead of a
  // silently thinner grid. Cells are listed in grid order (bounded at
  // eight), so the header -- like everything else -- is independent of
  // scheduling. Interrupted cells are transient (a resume executes
  // them) and only annotated on the interrupted run itself, keeping the
  // resumed run's header identical to an uninterrupted one.
  if (result.failed > 0) {
    result.experiment.set("campaign.failed", std::to_string(result.failed));
    std::string detail;
    std::size_t listed = 0;
    for (const auto& cell : result.cells) {
      if (cell.result.error.empty() ||
          cell.result.error.rfind("interrupted:", 0) == 0) {
        continue;
      }
      if (listed == 8) {
        detail += "; +" + std::to_string(result.failed - listed) + " more";
        break;
      }
      if (!detail.empty()) detail += "; ";
      detail += "config " + std::to_string(cell.config.index) + " rep " +
                std::to_string(cell.rep) + ": " + cell.result.error;
      ++listed;
    }
    result.experiment.set("campaign.failed_cells", detail);
  }
  if (result.interrupted > 0) {
    result.experiment.set("campaign.interrupted", std::to_string(result.interrupted));
  }
  return result;
}

}  // namespace sci::exec
