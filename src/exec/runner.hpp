// CampaignRunner: deterministic parallel execution of a Campaign.
//
// The runner flattens the grid into cells (config x replication),
// shards them across a std::thread worker pool, and reassembles the
// results in grid order. Because every cell is a pure function of its
// (config, seed) pair -- seeds derive from (campaign_seed, config_index,
// rep), never from execution order -- the assembled CampaignResult and
// every CSV exported from it are byte-identical for ANY worker count.
// That contract is enforced by tests/test_exec.cpp.
//
// An in-memory result cache keyed by (backend name, config levels,
// seed) lets a partially-completed campaign resume without repeating
// finished cells: re-running the same runner (or a larger campaign that
// shares cells with an earlier one) only executes what is missing.
//
// Observability: when a trace sink is attached on the calling thread,
// each worker records its cells on its own track
// (kWorkerTrackBase + worker * kWorkerTrackStride, in host seconds) and
// any simulator spans emitted inside the cell land on that worker's
// track block; all worker sinks are merged back into the caller's sink
// after the join, so a campaign renders as parallel swimlanes in the
// PR-1 tracing layer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dataset.hpp"
#include "core/measurement.hpp"
#include "exec/backend.hpp"
#include "exec/campaign.hpp"

namespace sci::exec {

/// Trace-track layout: worker w owns the half-open tid block
/// [kWorkerTrackBase + w*kWorkerTrackStride, +kWorkerTrackStride).
/// The stride leaves room for the simulator's per-rank (0..), wire
/// (1000+rank), and engine (990) tracks inside each block.
inline constexpr int kWorkerTrackBase = 100000;
inline constexpr int kWorkerTrackStride = 10000;

/// One executed cell: replication `rep` of `config` with `seed`.
struct CampaignCell {
  Config config;
  std::size_t rep = 0;
  std::uint64_t seed = 0;
  CellResult result;
};

struct CampaignResult {
  /// Compiled Rule 9 documentation of what ran (grid + environment).
  core::Experiment experiment;
  /// Cells ordered by (config.index, rep), independent of worker count.
  std::vector<CampaignCell> cells;
  std::size_t replications = 1;
  /// Backend calls actually made / served from the result cache.
  std::size_t executed = 0;
  std::size_t cache_hits = 0;
  /// Cells whose backend call threw (their CellResult::error is set).
  std::size_t failed = 0;

  [[nodiscard]] std::size_t config_count() const {
    return replications == 0 ? 0 : cells.size() / replications;
  }
  [[nodiscard]] const CampaignCell& cell(std::size_t config_index,
                                         std::size_t rep = 0) const;
  /// Samples of one cell (throws when the cell failed).
  [[nodiscard]] const std::vector<double>& series(std::size_t config_index,
                                                  std::size_t rep = 0) const;
  /// All replications of one config concatenated in rep order.
  [[nodiscard]] std::vector<double> merged_series(std::size_t config_index) const;
  /// Rule 5/6 summary of one cell's samples.
  [[nodiscard]] core::MeasurementSummary summary(std::size_t config_index,
                                                 std::size_t rep = 0) const;

  /// Long-form dataset: one row per sample with columns
  ///   config, rep, f_<factor> (level index), sample, value.
  /// Factor levels are recorded as indices so the table stays numeric;
  /// the embedded experiment header documents the index -> level map.
  [[nodiscard]] core::Dataset samples_dataset() const;
  /// One row per cell: config, rep, f_<factor>..., n, median, ci_lo,
  /// ci_hi, mean, min, max (CI cells are NaN when n is too small).
  [[nodiscard]] core::Dataset summary_dataset() const;
};

struct CampaignRunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Results
  /// do not depend on this value (the determinism contract).
  std::size_t workers = 0;
  /// Serve repeated cells from the in-memory result cache.
  bool use_cache = true;
  /// Give each worker a Backend::make_context() and run its cells
  /// through it, reusing simulation state across replications. Results
  /// are byte-identical either way (the BackendContext contract); OFF
  /// exists for differential testing and allocation triage.
  bool reuse_contexts = true;
};

class CampaignRunner {
 public:
  CampaignRunner(Backend& backend, Campaign campaign, CampaignRunnerOptions options = {});

  /// Executes every cell not already cached; byte-deterministic output.
  [[nodiscard]] CampaignResult run();

  [[nodiscard]] const Campaign& campaign() const noexcept { return campaign_; }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();

 private:
  Backend& backend_;
  Campaign campaign_;
  CampaignRunnerOptions options_;
  mutable std::mutex cache_mutex_;
  std::unordered_map<std::uint64_t, CellResult> cache_;
};

}  // namespace sci::exec
