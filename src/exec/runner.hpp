// CampaignRunner: deterministic parallel execution of a Campaign.
//
// The runner schedules cells (config x replication) in rounds, shards
// each round across a std::thread worker pool, and reassembles the
// results in grid order. Because every cell is a pure function of its
// (config, seed) pair -- seeds derive from (campaign_seed, config_index,
// rep), never from execution order -- the assembled CampaignResult and
// every CSV exported from it are byte-identical for ANY worker count.
// That contract is enforced by tests/test_exec.cpp.
//
// Measurement control (StoppingPolicy): with the default fixed policy
// there is a single round containing the whole grid -- exactly the
// historical behavior, byte-for-byte. Under sequential stopping the
// first round gives every config min_reps replications; after each
// round the pooled samples of every live config are tested against the
// rank-CI criterion (stats::OnlineSeries), converged configs retire
// with their stop decision journaled, and the next round grants each
// live config its quantum plus a share of the budget freed by retired
// configs, ranked by relative CI width (widest first, CellKey hash then
// config index as tie-breaks). Round boundaries and worker counts never
// influence seeds or sample values, so sequential campaigns are as
// byte-deterministic as fixed ones -- including across kill/resume
// (tests/test_exec_sequential.cpp).
//
// An in-memory result cache keyed by (backend name, config levels,
// seed) lets a partially-completed campaign resume without repeating
// finished cells: re-running the same runner (or a larger campaign that
// shares cells with an earlier one) only executes what is missing.
// For resume across PROCESSES -- a killed or crashed campaign -- set
// CampaignRunnerOptions::journal_path: completed cells append to a
// crash-safe on-disk journal (exec/journal.hpp) and the rerun replays
// them, producing byte-identical CSVs to an uninterrupted run.
//
// Failure containment: a backend whose run() or make_context() throws
// can no longer take the process down. Cells are retried up to
// max_attempts with deterministically derived seeds; cells that still
// fail are carried in the result with CellResult::error set and
// accounted in the experiment header (campaign.failed /
// campaign.failed_cells), so reports render partial campaigns with
// explicit holes.
//
// Observability: when a trace sink is attached on the calling thread,
// each worker records its cells on its own track
// (kWorkerTrackBase + worker * kWorkerTrackStride, in host seconds) and
// any simulator spans emitted inside the cell land on that worker's
// track block; all worker sinks are merged back into the caller's sink
// after the join, so a campaign renders as parallel swimlanes in the
// PR-1 tracing layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dataset.hpp"
#include "core/measurement.hpp"
#include "exec/backend.hpp"
#include "exec/campaign.hpp"
#include "exec/progress.hpp"

namespace sci::exec {

/// Trace-track layout: worker w owns the half-open tid block
/// [kWorkerTrackBase + w*kWorkerTrackStride, +kWorkerTrackStride).
/// The stride leaves room for the simulator's per-rank (0..), wire
/// (1000+rank), and engine (990) tracks inside each block.
inline constexpr int kWorkerTrackBase = 100000;
inline constexpr int kWorkerTrackStride = 10000;

/// One executed cell: replication `rep` of `config` with `seed`.
struct CampaignCell {
  Config config;
  std::size_t rep = 0;
  std::uint64_t seed = 0;
  CellResult result;
};

/// Result-cache key. The 64-bit hash picks the bucket, but equality
/// compares the full identity -- backend name, factor/level assignment,
/// and seed -- so a hash collision between two distinct cells resolves
/// to separate entries instead of silently serving the wrong cell's
/// samples. Deliberately excludes config.index so the same levels at
/// another grid position (same seed, i.e. under a seed_override) still
/// reuse their entry.
struct CellKey {
  std::string backend;
  std::vector<std::pair<std::string, std::string>> levels;
  std::uint64_t seed = 0;
  std::uint64_t hash = 0;  ///< precomputed; NOT part of the identity

  [[nodiscard]] bool operator==(const CellKey& other) const noexcept {
    return seed == other.seed && backend == other.backend && levels == other.levels;
  }
};

struct CellKeyHash {
  [[nodiscard]] std::size_t operator()(const CellKey& key) const noexcept {
    return static_cast<std::size_t>(key.hash);
  }
};

[[nodiscard]] CellKey make_cell_key(const std::string& backend_name, const Config& config,
                                    std::uint64_t seed);

using CellCache = std::unordered_map<CellKey, CellResult, CellKeyHash>;

/// Per-config measurement-control outcome (why this config stopped
/// getting replications). Fixed campaigns carry it too, with
/// stop_reason "fixed" and no CI facts.
struct ConfigStopInfo {
  std::size_t reps = 0;        ///< replications present in the result
  std::size_t stop_round = 0;  ///< 1-based round after which it retired
  bool converged = false;      ///< rank-CI criterion met before the cap
  /// "fixed" | "converged" | "max_reps" | "interrupted".
  std::string stop_reason = "fixed";
  /// Facts at stop time (sequential mode, n > 5 only; NaN otherwise).
  double median = std::numeric_limits<double>::quiet_NaN();
  double rel_ci_half_width = std::numeric_limits<double>::quiet_NaN();
  double ess = std::numeric_limits<double>::quiet_NaN();
};

struct CampaignResult {
  /// Compiled Rule 9 documentation of what ran (grid + environment).
  core::Experiment experiment;
  /// Cells ordered by (config.index, rep), independent of worker count.
  /// Under sequential stopping different configs carry different rep
  /// counts; cell_offsets maps a config to its slice.
  std::vector<CampaignCell> cells;
  /// Replications per config in fixed mode; 0 under sequential stopping
  /// (per-config counts live in cell_offsets / stopping).
  std::size_t replications = 1;
  /// Number of grid configs, stored explicitly -- NEVER derived from
  /// cells.size() / replications, which mis-groups once per-config rep
  /// counts vary.
  std::size_t configs = 0;
  /// Prefix sums: config c owns cells [cell_offsets[c], cell_offsets[c+1]).
  std::vector<std::size_t> cell_offsets;
  /// Per-config stop decisions, size configs.
  std::vector<ConfigStopInfo> stopping;
  /// Scheduling rounds executed (1 for fixed campaigns).
  std::size_t rounds = 0;
  /// True when the campaign ran under sequential stopping.
  bool sequential = false;
  /// Backend calls actually made / served from the result cache.
  std::size_t executed = 0;
  std::size_t cache_hits = 0;
  /// Cells whose backend call threw on every allowed attempt (their
  /// CellResult::error is set). A failed campaign still assembles --
  /// the error cells are accounted in the experiment header
  /// (campaign.failed / campaign.failed_cells) so exported CSVs carry
  /// the damage report.
  std::size_t failed = 0;
  /// Cells replayed from the on-disk journal instead of executed.
  std::size_t journal_hits = 0;
  /// Cells skipped because the cell_budget ran out (error set to
  /// "interrupted: ..."; not failures, not journaled -- a resume with
  /// the same journal executes exactly these).
  std::size_t interrupted = 0;
  /// Extra backend calls spent on retries (attempts beyond the first).
  std::size_t retries = 0;

  [[nodiscard]] std::size_t config_count() const { return configs; }
  /// Replications present for one config (varies under sequential
  /// stopping; == replications in fixed mode).
  [[nodiscard]] std::size_t rep_count(std::size_t config_index) const;
  [[nodiscard]] const CampaignCell& cell(std::size_t config_index,
                                         std::size_t rep = 0) const;
  /// Samples of one cell (throws when the cell failed).
  [[nodiscard]] const std::vector<double>& series(std::size_t config_index,
                                                  std::size_t rep = 0) const;
  /// All replications of one config concatenated in rep order.
  [[nodiscard]] std::vector<double> merged_series(std::size_t config_index) const;
  /// Rule 5/6 summary of one cell's samples.
  [[nodiscard]] core::MeasurementSummary summary(std::size_t config_index,
                                                 std::size_t rep = 0) const;

  /// Long-form dataset: one row per sample with columns
  ///   config, rep, f_<factor> (level index), sample, value.
  /// Factor levels are recorded as indices so the table stays numeric;
  /// the embedded experiment header documents the index -> level map.
  [[nodiscard]] core::Dataset samples_dataset() const;
  /// One row per cell: config, rep, f_<factor>..., n, median, ci_lo,
  /// ci_hi, mean, min, max (CI cells are NaN when n is too small).
  [[nodiscard]] core::Dataset summary_dataset() const;
};

struct CampaignRunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Results
  /// do not depend on this value (the determinism contract).
  std::size_t workers = 0;
  /// Serve repeated cells from the in-memory result cache.
  bool use_cache = true;
  /// Give each worker a Backend::make_context() and run its cells
  /// through it, reusing simulation state across replications. Results
  /// are byte-identical either way (the BackendContext contract); OFF
  /// exists for differential testing and allocation triage.
  bool reuse_contexts = true;
  /// Backend calls allowed per cell before it is declared failed.
  /// Attempt k (k >= 1) re-runs with the deterministically derived seed
  /// splitmix64(cell.seed ^ k), so retry outcomes are a pure function
  /// of the cell -- independent of worker count and scheduling -- and a
  /// deterministic always-throwing backend fails identically every run.
  std::size_t max_attempts = 1;
  /// Host-time pause before retry k: k * retry_backoff_ms. Affects only
  /// wall-clock pacing, never results.
  std::size_t retry_backoff_ms = 0;
  /// When non-empty, completed cells (success or final failure) are
  /// appended to this crash-safe journal and replayed on the next run
  /// with the same path -- see exec/journal.hpp. The resumed campaign
  /// skips journaled cells and produces byte-identical CSVs.
  std::string journal_path;
  /// When non-zero, at most this many cells are executed; the rest are
  /// marked interrupted (CampaignResult::interrupted). Deterministic
  /// in-process stand-in for a mid-campaign kill in resume tests; 0 =
  /// unlimited.
  std::size_t cell_budget = 0;
  /// Cooperative interrupt (not owned; may be null). Once it reads
  /// true, every not-yet-claimed cell is marked interrupted -- exactly
  /// the cell-budget drain -- so a SIGINT/SIGTERM handler that sets the
  /// flag (exec/interrupt.hpp) leaves a journal + final metrics
  /// snapshot a rerun resumes byte-identically from.
  const std::atomic<bool>* interrupt = nullptr;
  /// Telemetry observer (not owned; must outlive run()). Receives
  /// heartbeats from a monitor thread every heartbeat_period_s (when
  /// > 0) and one final snapshot after the workers join. Telemetry is
  /// observational only: exported CSVs are byte-identical with the sink
  /// attached or not, and nullptr + empty metrics_path costs nothing.
  ProgressSink* progress = nullptr;
  double heartbeat_period_s = 0.0;
  /// When non-empty, the final ProgressSnapshot is written here as
  /// canonical JSON via atomic temp-file + rename -- on completion AND
  /// on budget interruption, so an external watcher always finds a
  /// whole file describing how far the campaign got.
  std::string metrics_path;
};

class CampaignRunner {
 public:
  CampaignRunner(Backend& backend, Campaign campaign, CampaignRunnerOptions options = {});

  /// Executes every cell not already cached; byte-deterministic output.
  [[nodiscard]] CampaignResult run();

  [[nodiscard]] const Campaign& campaign() const noexcept { return campaign_; }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();

 private:
  Backend& backend_;
  Campaign campaign_;
  CampaignRunnerOptions options_;
  mutable std::mutex cache_mutex_;
  CellCache cache_;
};

}  // namespace sci::exec
