#include "exec/service.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

#include "exec/wire.hpp"
#include "obs/json.hpp"

namespace sci::exec {

namespace json = obs::json;

namespace {

/// Forwards runner heartbeats as single-line "progress" events.
class EventProgressSink : public ProgressSink {
 public:
  EventProgressSink(std::uint64_t job_id, std::function<void(const std::string&)> emit)
      : job_id_(job_id), emit_(std::move(emit)) {}

  void on_heartbeat(const ProgressSnapshot& s) override {
    std::string line = "{\"event\": \"progress\", \"job\": " + json::dump_size(job_id_);
    line += ", \"completed\": " + json::dump_size(s.completed);
    line += ", \"total\": " + json::dump_size(s.total_cells);
    line += ", \"executed\": " + json::dump_size(s.executed);
    line += ", \"cache_hits\": " + json::dump_size(s.cache_hits);
    line += ", \"journal_hits\": " + json::dump_size(s.journal_hits);
    line += ", \"failed\": " + json::dump_size(s.failed);
    line += ", \"interrupted\": " + json::dump_size(s.interrupted);
    line += ", \"elapsed_s\": " + json::dump_number(s.elapsed_s);
    line += "}";
    emit_(line);
  }
  void on_complete(const ProgressSnapshot&) override {}  // "done" covers it

 private:
  std::uint64_t job_id_;
  std::function<void(const std::string&)> emit_;
};

}  // namespace

CampaignService::CampaignService(ProcessPool& pool, ServiceOptions options)
    : pool_(pool), options_(options) {
  service_thread_ = std::thread([this] { service_loop(); });
}

CampaignService::~CampaignService() {
  stop();
  if (service_thread_.joinable()) service_thread_.join();
}

void CampaignService::emit(ServiceEventSink* sink, const std::string& line) {
  if (sink != nullptr) sink->on_event(line);
}

std::uint64_t CampaignService::submit(Submission submission, ServiceEventSink* sink) {
  std::uint64_t id = 0;
  const int priority = submission.priority;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_job_id_++;
    if (stopping_) {
      rejected = true;
      metrics_.jobs_rejected += 1;
      JobOutcome outcome;
      outcome.job_id = id;
      outcome.error = "service is stopping";
      outcomes_.emplace(id, std::move(outcome));
    } else {
      metrics_.jobs_submitted += 1;
      QueuedJob job;
      job.id = id;
      job.priority = submission.priority;
      job.submission = std::move(submission);
      job.sink = sink;
      queue_.push(std::move(job));
      if (queue_.size() > metrics_.queue_peak) metrics_.queue_peak = queue_.size();
    }
  }
  if (rejected) {
    emit(sink, "{\"event\": \"rejected\", \"job\": " + json::dump_size(id) +
                   ", \"error\": " + json::quoted("service is stopping") + "}");
    done_cv_.notify_all();
    return id;
  }
  emit(sink, "{\"event\": \"queued\", \"job\": " + json::dump_size(id) +
                 ", \"priority\": " + std::to_string(priority) + "}");
  queue_cv_.notify_one();
  return id;
}

JobOutcome CampaignService::wait(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return outcomes_.count(job_id) != 0; });
  return outcomes_.at(job_id);
}

void CampaignService::stop() {
  std::vector<QueuedJob> cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && queue_.empty()) {
      queue_cv_.notify_all();
      return;
    }
    stopping_ = true;
    while (!queue_.empty()) {
      cancelled.push_back(queue_.top());
      queue_.pop();
    }
  }
  for (auto& job : cancelled) {
    JobOutcome outcome;
    outcome.job_id = job.id;
    outcome.error = "cancelled: service stopping";
    emit(job.sink,
         "{\"event\": \"cancelled\", \"job\": " + json::dump_size(job.id) + "}");
    finish(job.id, std::move(outcome));
  }
  queue_cv_.notify_all();
}

obs::DaemonMetrics CampaignService::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::DaemonMetrics m = metrics_;
  m.workers_spawned = pool_.workers_spawned();
  m.workers_crashed = pool_.workers_crashed();
  return m;
}

void CampaignService::finish(std::uint64_t job_id, JobOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.jobs_completed += outcome.ran ? 1 : 0;
    metrics_.jobs_with_failures += (outcome.ran && outcome.failed > 0) ? 1 : 0;
    metrics_.cells_executed += outcome.executed;
    metrics_.cells_deduped += outcome.deduped;
    metrics_.cells_journal_replayed += outcome.journal_hits;
    metrics_.cells_failed += outcome.failed;
    metrics_.cells_interrupted += outcome.interrupted;
    outcomes_[job_id] = std::move(outcome);
  }
  done_cv_.notify_all();
}

void CampaignService::service_loop() {
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = queue_.top();
      queue_.pop();
    }
    run_job(std::move(job));
  }
}

void CampaignService::run_job(QueuedJob job) {
  ServiceEventSink* sink = job.sink;
  // Cell events arrive on runner worker threads and heartbeats on the
  // monitor thread; serialize them so the sink sees one line at a time.
  std::mutex emit_mutex;
  const auto emit_line = [&](const std::string& line) {
    if (sink == nullptr) return;
    std::lock_guard<std::mutex> lock(emit_mutex);
    sink->on_event(line);
  };

  JobOutcome outcome;
  outcome.job_id = job.id;
  const Submission& sub = job.submission;

  try {
    Campaign campaign(sub.spec);  // validates; invalid specs are rejected below

    emit_line("{\"event\": \"started\", \"job\": " + json::dump_size(job.id) +
              ", \"campaign\": " + json::quoted(sub.spec.name) +
              ", \"cells\": " + json::dump_size(campaign.cell_count()) + "}");

    PoolBackend backend(pool_, sub.backend);
    backend.set_shared_cache(&cache_, &cache_mutex_);
    backend.set_observer([&](const Config& config, std::uint64_t seed,
                             const CellResult& result, bool deduped) {
      std::string line = "{\"event\": \"cell\", \"job\": " + json::dump_size(job.id);
      line += ", \"config\": " + json::dump_size(config.index);
      line += ", \"seed\": " + json::quoted(wire::hex_u64(seed));
      line += ", \"n\": " + json::dump_size(result.samples.size());
      line += ", \"deduped\": ";
      line += deduped ? "true" : "false";
      line += "}";
      emit_line(line);
    });

    EventProgressSink progress(job.id, emit_line);
    CampaignRunnerOptions ropts;
    ropts.workers =
        options_.runner_threads != 0 ? options_.runner_threads : pool_.worker_count();
    ropts.journal_path = sub.journal_path;
    ropts.max_attempts = sub.max_attempts;
    ropts.cell_budget = sub.cell_budget;
    ropts.metrics_path = sub.metrics_path;
    ropts.interrupt = options_.interrupt;
    if (sub.heartbeat_s > 0.0) {
      ropts.progress = &progress;
      ropts.heartbeat_period_s = sub.heartbeat_s;
    }

    CampaignRunner runner(backend, std::move(campaign), ropts);
    const CampaignResult result = runner.run();

    if (!sub.samples_csv.empty()) result.samples_dataset().save_csv(sub.samples_csv);
    if (!sub.summary_csv.empty()) result.summary_dataset().save_csv(sub.summary_csv);

    outcome.ran = true;
    outcome.cells = result.cells.size();
    outcome.executed = result.executed;
    outcome.deduped = backend.deduped();
    outcome.cache_hits = result.cache_hits;
    outcome.journal_hits = result.journal_hits;
    outcome.failed = result.failed;
    outcome.interrupted = result.interrupted;
    outcome.retries = result.retries;
    outcome.rounds = result.rounds;
    outcome.sequential = result.sequential;

    std::string line = "{\"event\": \"done\", \"job\": " + json::dump_size(job.id);
    line += ", \"cells\": " + json::dump_size(outcome.cells);
    line += ", \"executed\": " + json::dump_size(outcome.executed);
    line += ", \"deduped\": " + json::dump_size(outcome.deduped);
    line += ", \"cache_hits\": " + json::dump_size(outcome.cache_hits);
    line += ", \"journal_hits\": " + json::dump_size(outcome.journal_hits);
    line += ", \"failed\": " + json::dump_size(outcome.failed);
    line += ", \"interrupted\": " + json::dump_size(outcome.interrupted);
    line += ", \"retries\": " + json::dump_size(outcome.retries);
    line += ", \"rounds\": " + json::dump_size(outcome.rounds);
    line += ", \"sequential\": ";
    line += outcome.sequential ? "true" : "false";
    line += "}";
    emit_line(line);
  } catch (const std::invalid_argument& e) {
    // The spec itself is broken: admission failure.
    outcome.ran = false;
    outcome.error = e.what();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      metrics_.jobs_rejected += 1;
    }
    emit_line("{\"event\": \"rejected\", \"job\": " + json::dump_size(job.id) +
              ", \"error\": " + json::quoted(outcome.error) + "}");
  } catch (const std::exception& e) {
    // The run itself failed (journal mismatch, unwritable CSV...).
    outcome.ran = false;
    outcome.error = e.what();
    emit_line("{\"event\": \"error\", \"job\": " + json::dump_size(job.id) +
              ", \"error\": " + json::quoted(outcome.error) + "}");
  }

  finish(job.id, std::move(outcome));
}

// ---------------------------------------------------------------- sockets

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("listen_unix: socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("listen_unix: socket: " + std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());  // stale socket from a previous daemon
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen_unix: bind " + path + ": " + err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen_unix: listen: " + err);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("connect_unix: socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("connect_unix: socket: " +
                             std::string(std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect_unix: " + path + ": " + err);
  }
  return fd;
}

bool write_line_fd(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  const char* data = framed.data();
  std::size_t size = framed.size();
  while (size > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data, size);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line_fd(int fd, std::string& line) {
  line.clear();
  for (;;) {
    char c = 0;
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-line: dead peer
    if (c == '\n') return true;
    line.push_back(c);
  }
}

}  // namespace sci::exec
