// CampaignService: the benchmark-as-a-service core behind scibenchd.
//
// The service owns a priority submission queue, a cross-job dedupe
// cache, and one service thread that runs admitted campaigns through an
// ordinary CampaignRunner whose backend is a PoolBackend -- cells
// execute in scibench_worker processes (exec/process_pool.hpp), so a
// backend that aborts or is SIGKILLed costs one worker, not the daemon.
//
// Deliberate reuse over reinvention: the service contains NO scheduling
// or journaling logic of its own. Rounds, sequential stopping, retry
// containment, journal WAL/resume, and result assembly are exactly the
// CampaignRunner's -- which is why a campaign run through the daemon at
// any worker-process count produces CSVs byte-identical to an
// in-process run (the PR invariant, pinned by test_exec_service.cpp).
//
// Queue semantics: jobs run one at a time, highest priority first,
// submission order within a priority (deterministic; no starvation
// surprises). Concurrency lives below the queue -- each job saturates
// the whole worker-process fleet -- so two "concurrent" clients
// serialize at the campaign level but share the dedupe cache: the
// overlapping cells of the second submission are served from the cache
// without touching a worker.
//
// Dedupe: the cache is keyed on full-identity CellKey (backend name,
// factor/level assignment, seed) -- the same key the runner's own
// in-memory cache uses -- so only a cell that would provably produce
// identical bytes is ever deduplicated.
//
// Events: every state transition is streamed to the submitting client's
// ServiceEventSink as one line of canonical JSON ("queued", "started",
// per-cell "cell", periodic "progress" heartbeats, "done"/"rejected"/
// "error"), the ProgressSnapshot-style live view the tools print.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "exec/process_pool.hpp"
#include "exec/runner.hpp"
#include "exec/sim_backend.hpp"
#include "obs/daemon_metrics.hpp"

namespace sci::exec {

/// One campaign submission: the serializable campaign plus run options
/// the client controls. Output paths are daemon-side filesystem paths
/// (the transport is a local Unix socket; client and daemon share the
/// filesystem by construction).
struct Submission {
  CampaignSpec spec;
  SimBackendOptions backend;
  /// Larger runs first; ties resolve in submission order.
  int priority = 0;
  std::string journal_path;  ///< WAL for crash-safe resume (optional)
  std::string samples_csv;   ///< written when non-empty
  std::string summary_csv;   ///< written when non-empty
  std::string metrics_path;  ///< final ProgressSnapshot (optional)
  std::size_t max_attempts = 1;
  /// Deterministic kill drill (CampaignRunnerOptions::cell_budget).
  std::size_t cell_budget = 0;
  /// Emit "progress" events every this many seconds (0 = off).
  double heartbeat_s = 0.0;
};

/// Terminal state of one job.
struct JobOutcome {
  std::uint64_t job_id = 0;
  bool ran = false;          ///< false: rejected or cancelled
  std::string error;         ///< rejection/cancellation/abort reason
  std::size_t cells = 0;
  std::size_t executed = 0;
  std::size_t deduped = 0;   ///< served from the cross-job cache
  std::size_t cache_hits = 0;
  std::size_t journal_hits = 0;
  std::size_t failed = 0;
  std::size_t interrupted = 0;
  std::size_t retries = 0;
  std::size_t rounds = 0;
  bool sequential = false;
};

/// Receives the event stream of one submission. Called from the service
/// thread (never concurrently for one sink); implementations that write
/// to sockets should tolerate slow/dead peers without throwing.
class ServiceEventSink {
 public:
  virtual ~ServiceEventSink() = default;
  virtual void on_event(const std::string& json_line) = 0;
};

struct ServiceOptions {
  /// Runner threads driving the pool per job; 0 = pool worker count
  /// (saturate the fleet). Never affects result bytes.
  std::size_t runner_threads = 0;
  /// Cooperative interrupt forwarded to every runner (see
  /// exec/interrupt.hpp); a signalled daemon drains the active job as
  /// interrupted cells and journals nothing partial.
  const std::atomic<bool>* interrupt = nullptr;
};

class CampaignService {
 public:
  CampaignService(ProcessPool& pool, ServiceOptions options = {});
  /// Stops the queue (pending jobs are cancelled) and joins.
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Enqueues a campaign; returns its job id immediately. `sink` may be
  /// nullptr (no event stream) and must otherwise outlive the job.
  std::uint64_t submit(Submission submission, ServiceEventSink* sink = nullptr);

  /// Blocks until the job reaches a terminal state.
  [[nodiscard]] JobOutcome wait(std::uint64_t job_id);

  /// Stops accepting work and cancels everything still queued; the
  /// in-flight job (if any) finishes or drains via the interrupt flag.
  void stop();

  [[nodiscard]] obs::DaemonMetrics metrics() const;

 private:
  struct QueuedJob {
    std::uint64_t id = 0;
    int priority = 0;
    Submission submission;
    ServiceEventSink* sink = nullptr;
  };
  struct QueueOrder {
    bool operator()(const QueuedJob& a, const QueuedJob& b) const noexcept {
      if (a.priority != b.priority) return a.priority < b.priority;  // max-heap
      return a.id > b.id;  // FIFO within a priority
    }
  };

  void service_loop();
  void run_job(QueuedJob job);
  void finish(std::uint64_t job_id, JobOutcome outcome);
  static void emit(ServiceEventSink* sink, const std::string& line);

  ProcessPool& pool_;
  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable done_cv_;
  std::priority_queue<QueuedJob, std::vector<QueuedJob>, QueueOrder> queue_;
  std::map<std::uint64_t, JobOutcome> outcomes_;
  std::uint64_t next_job_id_ = 1;
  bool stopping_ = false;
  obs::DaemonMetrics metrics_;

  std::mutex cache_mutex_;
  CellCache cache_;  ///< cross-job dedupe, full-identity CellKey

  std::thread service_thread_;
};

// ---------------------------------------------------------------------
// Unix-domain line transport shared by scibenchd and scibench_submit.
// Control-plane only: one short JSON line per read/write.

/// Binds + listens on `path` (unlinking a stale socket first). Throws
/// std::runtime_error; returns the listening fd.
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 8);
/// Connects to a listening daemon; throws std::runtime_error.
[[nodiscard]] int connect_unix(const std::string& path);
/// Writes `line` + '\n'; false on a dead peer (never throws, never
/// raises SIGPIPE -- callers sit in event loops).
bool write_line_fd(int fd, const std::string& line);
/// Reads one '\n'-terminated line; false on EOF/error.
bool read_line_fd(int fd, std::string& line);

}  // namespace sci::exec
