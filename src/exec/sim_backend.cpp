#include "exec/sim_backend.hpp"

#include <stdexcept>

#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"

namespace sci::exec {

const char* to_string(SimKernel kernel) noexcept {
  switch (kernel) {
    case SimKernel::kPingPong: return "pingpong";
    case SimKernel::kReduce: return "reduce";
    case SimKernel::kPiScaling: return "pi_scaling";
  }
  return "unknown";
}

SimBackend::SimBackend(SimBackendOptions options) : options_(std::move(options)) {
  if (options_.samples == 0) throw std::invalid_argument("SimBackend: samples >= 1");
  if (options_.scale == 0.0) throw std::invalid_argument("SimBackend: zero scale");
}

std::string SimBackend::name() const {
  return std::string("sim.") + to_string(options_.kernel);
}

std::string SimBackend::describe() const {
  return "simulated cluster (sim::make_machine), kernel " +
         std::string(to_string(options_.kernel));
}

CellResult SimBackend::run(const Config& config, std::uint64_t seed) {
  const std::string* machine_name = config.find_level("system");
  if (machine_name == nullptr) machine_name = config.find_level("machine");
  const sim::Machine machine =
      sim::make_machine(machine_name != nullptr ? *machine_name : options_.machine);

  const auto ranks = [&]() -> int {
    if (config.find_level("processes") != nullptr)
      return static_cast<int>(config.level_int("processes"));
    if (config.find_level("ranks") != nullptr)
      return static_cast<int>(config.level_int("ranks"));
    return options_.ranks;
  };

  CellResult result;
  result.unit = options_.unit;
  result.stop_reason = "fixed";
  switch (options_.kernel) {
    case SimKernel::kPingPong: {
      const std::size_t bytes =
          config.find_level("message_bytes") != nullptr
              ? static_cast<std::size_t>(config.level_int("message_bytes"))
              : options_.message_bytes;
      result.samples = simmpi::pingpong_latency(machine, options_.samples, bytes, seed,
                                                options_.warmup);
      result.warmup_discarded = options_.warmup;
      break;
    }
    case SimKernel::kReduce: {
      result.samples = simmpi::reduce_bench(machine, ranks(), options_.iterations, seed,
                                            options_.sync_window_s)
                           .max_across_ranks();
      break;
    }
    case SimKernel::kPiScaling: {
      result.samples =
          simmpi::pi_scaling_run(machine, ranks(), options_.base_seconds,
                                 options_.serial_fraction, options_.repetitions, seed);
      break;
    }
  }
  if (options_.scale != 1.0) {
    for (double& v : result.samples) v *= options_.scale;
  }
  return result;
}

}  // namespace sci::exec
