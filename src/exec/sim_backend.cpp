#include "exec/sim_backend.hpp"

#include <map>
#include <memory>
#include <stdexcept>

#include "sim/machine.hpp"
#include "simmpi/benchmarks.hpp"

namespace sci::exec {

namespace {

/// Factor lookup shared by run() and the reusable context: "system"
/// wins, "machine" is the alias, the backend option is the fall-back.
const std::string& machine_name_for(const Config& config,
                                    const SimBackendOptions& options) {
  const std::string* name = config.find_level("system");
  if (name == nullptr) name = config.find_level("machine");
  return name != nullptr ? *name : options.machine;
}

/// "processes" wins, "ranks" is the alias, the backend option last.
int ranks_for(const Config& config, const SimBackendOptions& options) {
  if (config.find_level("processes") != nullptr)
    return static_cast<int>(config.level_int("processes"));
  if (config.find_level("ranks") != nullptr)
    return static_cast<int>(config.level_int("ranks"));
  return options.ranks;
}

std::size_t message_bytes_for(const Config& config, const SimBackendOptions& options) {
  if (config.find_level("message_bytes") != nullptr)
    return static_cast<std::size_t>(config.level_int("message_bytes"));
  return options.message_bytes;
}

void apply_scale(CellResult& result, double scale) {
  if (scale != 1.0) {
    for (double& v : result.samples) v *= scale;
  }
}

/// Appends `value` in decimal without touching the heap (std::to_string
/// would be fine for small numbers but makes no such promise).
void append_number(std::string& out, std::uint64_t value) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (n != 0) out.push_back(digits[--n]);
}

}  // namespace

const char* to_string(SimKernel kernel) noexcept {
  switch (kernel) {
    case SimKernel::kPingPong: return "pingpong";
    case SimKernel::kReduce: return "reduce";
    case SimKernel::kPiScaling: return "pi_scaling";
  }
  return "unknown";
}

SimBackend::SimBackend(SimBackendOptions options) : options_(std::move(options)) {
  if (options_.samples == 0) throw std::invalid_argument("SimBackend: samples >= 1");
  if (options_.scale == 0.0) throw std::invalid_argument("SimBackend: zero scale");
}

std::string SimBackend::name() const {
  return std::string("sim.") + to_string(options_.kernel);
}

std::string SimBackend::describe() const {
  return "simulated cluster (sim::make_machine), kernel " +
         std::string(to_string(options_.kernel));
}

CellResult SimBackend::run(const Config& config, std::uint64_t seed) {
  const std::shared_ptr<const sim::Machine> machine =
      sim::machine_preset(machine_name_for(config, options_));

  CellResult result;
  result.unit = options_.unit;
  result.stop_reason = "fixed";
  switch (options_.kernel) {
    case SimKernel::kPingPong: {
      result.samples =
          simmpi::pingpong_latency(*machine, options_.samples,
                                   message_bytes_for(config, options_), seed,
                                   options_.warmup);
      result.warmup_discarded = options_.warmup;
      break;
    }
    case SimKernel::kReduce: {
      result.samples = simmpi::reduce_bench(*machine, ranks_for(config, options_),
                                            options_.iterations, seed,
                                            options_.sync_window_s)
                           .max_across_ranks();
      // The reduce protocol times every iteration (window sync first),
      // so nothing is discarded -- record that explicitly rather than
      // leaving the field to chance.
      result.warmup_discarded = 0;
      break;
    }
    case SimKernel::kPiScaling: {
      result.samples = simmpi::pi_scaling_run(
          *machine, ranks_for(config, options_), options_.base_seconds,
          options_.serial_fraction, options_.repetitions, seed);
      result.warmup_discarded = 0;  // every repetition is reported
      break;
    }
  }
  apply_scale(result, options_.scale);
  return result;
}

/// Per-worker reusable state: one warm benchmark driver per distinct
/// cell shape. Campaign cells are claimed in (config, rep) order, so a
/// worker typically replays one shape many times before moving on; the
/// map keeps earlier shapes warm for grids that revisit levels.
class SimBackend::Context final : public BackendContext {
 public:
  explicit Context(const SimBackendOptions& options) : options_(options) {}

 private:
  // Defined before run() so its deduced return type is known there.
  template <typename BenchMap, typename Make>
  auto& find_or_create(BenchMap& benches, const Config& config, std::size_t param,
                       Make make) {
    const std::string& machine_name = machine_name_for(config, options_);
    // Reused key buffer: "machine|param". Stays off the heap once its
    // capacity covers the longest shape seen.
    key_.clear();
    key_.append(machine_name);
    key_.push_back('|');
    append_number(key_, param);
    auto it = benches.find(key_);
    if (it == benches.end()) {
      it = benches.emplace(key_, make(*sim::machine_preset(machine_name), param)).first;
    }
    return *it->second;
  }

 public:
  [[nodiscard]] CellResult run(const Config& config, std::uint64_t seed) override {
    CellResult result;
    result.unit = options_.unit;
    result.stop_reason = "fixed";
    switch (options_.kernel) {
      case SimKernel::kPingPong: {
        auto& bench = find_or_create(pingpong_, config, message_bytes_for(config, options_),
                                     [&](const sim::Machine& m, std::size_t bytes) {
                                       return std::make_unique<simmpi::PingPongBench>(
                                           m, bytes, options_.warmup);
                                     });
        const std::vector<double>& samples = bench.run(options_.samples, seed);
        result.samples.assign(samples.begin(), samples.end());
        result.warmup_discarded = options_.warmup;
        break;
      }
      case SimKernel::kReduce: {
        auto& bench = find_or_create(
            reduce_, config, static_cast<std::size_t>(ranks_for(config, options_)),
            [&](const sim::Machine& m, std::size_t ranks) {
              return std::make_unique<simmpi::ReduceBench>(m, static_cast<int>(ranks),
                                                           options_.sync_window_s);
            });
        bench.run(options_.iterations, seed).max_across_ranks_into(result.samples);
        result.warmup_discarded = 0;
        break;
      }
      case SimKernel::kPiScaling: {
        auto& bench = find_or_create(
            pi_, config, static_cast<std::size_t>(ranks_for(config, options_)),
            [&](const sim::Machine& m, std::size_t ranks) {
              return std::make_unique<simmpi::PiScalingBench>(
                  m, static_cast<int>(ranks), options_.base_seconds,
                  options_.serial_fraction);
            });
        const std::vector<double>& completion = bench.run(options_.repetitions, seed);
        result.samples.assign(completion.begin(), completion.end());
        result.warmup_discarded = 0;
        break;
      }
    }
    apply_scale(result, options_.scale);
    return result;
  }

 private:
  const SimBackendOptions& options_;
  std::string key_;
  std::map<std::string, std::unique_ptr<simmpi::PingPongBench>, std::less<>> pingpong_;
  std::map<std::string, std::unique_ptr<simmpi::ReduceBench>, std::less<>> reduce_;
  std::map<std::string, std::unique_ptr<simmpi::PiScalingBench>, std::less<>> pi_;
};

std::unique_ptr<BackendContext> SimBackend::make_context() {
  return std::make_unique<Context>(options_);
}

}  // namespace sci::exec
