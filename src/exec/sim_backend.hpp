// SimBackend: simulated-cluster measurements behind the Backend
// interface. Each run() executes one simmpi benchmark with the cell
// seed on a machine chosen by the cell's configuration, so a cell is a
// pure function of (config, seed) -- the property the CampaignRunner
// byte-determinism contract rests on. run() builds a fresh world per
// call; make_context() returns a per-worker context that reuses worlds
// across replications (same results, no per-call setup).
//
// Factor conventions (all optional; options provide the fall-backs):
//   "system" or "machine"  -> sim::make_machine name
//   "message_bytes"        -> ping-pong message size
//   "processes" or "ranks" -> communicator size (reduce / pi scaling)
#pragma once

#include <cstddef>
#include <string>

#include "exec/backend.hpp"

namespace sci::exec {

enum class SimKernel {
  kPingPong,   ///< simmpi::pingpong_latency, one sample per iteration
  kReduce,     ///< simmpi::reduce_bench, max-across-ranks per iteration
  kPiScaling,  ///< simmpi::pi_scaling_run, one completion time per rep
};

[[nodiscard]] const char* to_string(SimKernel kernel) noexcept;

struct SimBackendOptions {
  SimKernel kernel = SimKernel::kPingPong;

  /// Machine preset when the grid has no "system"/"machine" factor.
  std::string machine = "dora";

  // -- ping-pong --
  std::size_t samples = 1000;   ///< timed iterations per cell
  std::size_t warmup = 16;
  std::size_t message_bytes = 64;  ///< used when no message_bytes factor

  // -- reduce --
  std::size_t iterations = 100;
  double sync_window_s = 200e-6;

  // -- pi scaling --
  double base_seconds = 50e-3;
  double serial_fraction = 0.02;
  std::size_t repetitions = 20;

  int ranks = 2;  ///< communicator size when no processes/ranks factor

  /// Samples are multiplied by this before being returned; pair it with
  /// `unit` (e.g. scale=1e6, unit="us") so reports stay unambiguous.
  double scale = 1.0;
  std::string unit = "s";
};

class SimBackend : public Backend {
 public:
  explicit SimBackend(SimBackendOptions options);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] CellResult run(const Config& config, std::uint64_t seed) override;

  /// Per-worker context that keeps one reusable simulation world (plus
  /// sample buffers) per distinct cell shape -- (machine, bytes/ranks)
  /// -- the worker encounters, and World::reset()s it per replication
  /// instead of rebuilding. Byte-identical to run() (pinned by
  /// test_exec_reuse); replications after a shape's first run
  /// allocation-free simulation.
  [[nodiscard]] std::unique_ptr<BackendContext> make_context() override;

  [[nodiscard]] const SimBackendOptions& options() const noexcept { return options_; }

 private:
  class Context;
  SimBackendOptions options_;
};

}  // namespace sci::exec
