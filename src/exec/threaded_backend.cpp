#include "exec/threaded_backend.hpp"

#include <stdexcept>

namespace sci::exec {

ThreadedBackend::ThreadedBackend(ThreadedBackendOptions options)
    : options_(std::move(options)) {
  if (!options_.kernel) throw std::invalid_argument("ThreadedBackend: null kernel");
}

std::string ThreadedBackend::describe() const {
  return "host thread team, spin barrier + delay window (" +
         std::to_string(options_.measure.threads) + " threads default)";
}

CellResult ThreadedBackend::run(const Config& config, std::uint64_t /*seed*/) {
  threads::ThreadedMeasurementOptions opts = options_.measure;
  if (config.find_level("threads") != nullptr) {
    opts.threads = static_cast<std::size_t>(config.level_int("threads"));
  }
  const auto m = threads::measure_threaded(options_.kernel, opts);

  CellResult result;
  result.unit = options_.unit;
  result.stop_reason = "fixed";
  result.warmup_discarded = opts.warmup;
  if (options_.max_across_threads) {
    result.samples = m.max_across_threads();
  } else {
    result.samples.reserve(m.times_ns.size() * opts.threads);
    for (const auto& row : m.times_ns) {
      result.samples.insert(result.samples.end(), row.begin(), row.end());
    }
  }
  return result;
}

}  // namespace sci::exec
