// ThreadedBackend: shared-memory measurements behind the Backend
// interface. Wraps threads::measure_threaded -- a real spin-barrier
// thread team with the paper's delay-window start synchronization --
// and summarizes each iteration across the team per Rule 10.
//
// The campaign factor "threads" (optional) overrides the team size, so
// a thread-scalability study is a one-factor campaign. Like HostBackend
// this measures real time: seeds are ignored, and because every cell
// spawns its own team, run campaigns with workers = 1 unless the host
// has cores to spare for parallel teams.
#pragma once

#include <functional>
#include <string>

#include "exec/backend.hpp"
#include "threads/measure.hpp"

namespace sci::exec {

struct ThreadedBackendOptions {
  /// kernel(thread_id): the timed body, run once per iteration per thread.
  std::function<void(std::size_t)> kernel;
  threads::ThreadedMeasurementOptions measure;
  /// Per-iteration summary across the team: true = max across threads
  /// (completion of the slowest, the Rule 10 default for parallel
  /// work), false = every thread's sample flattened into the series.
  bool max_across_threads = true;
  std::string unit = "ns";
};

class ThreadedBackend : public Backend {
 public:
  explicit ThreadedBackend(ThreadedBackendOptions options);

  [[nodiscard]] std::string name() const override { return "threads"; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] CellResult run(const Config& config, std::uint64_t seed) override;

 private:
  ThreadedBackendOptions options_;
};

}  // namespace sci::exec
