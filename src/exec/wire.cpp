#include "exec/wire.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/json.hpp"

namespace sci::exec::wire {

namespace json = obs::json;

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

SimKernel kernel_from_string(const std::string& text) {
  if (text == "pingpong") return SimKernel::kPingPong;
  if (text == "reduce") return SimKernel::kReduce;
  if (text == "pi_scaling") return SimKernel::kPiScaling;
  throw std::runtime_error("wire: unknown kernel \"" + text + "\"");
}

void check_schema(const json::Value& root, const char* schema) {
  if (root.at("schema").as_string() != schema) {
    throw std::runtime_error("wire: expected schema \"" + std::string(schema) +
                             "\", got \"" + root.at("schema").as_string() + "\"");
  }
  if (root.at("version").as_size() != static_cast<std::size_t>(kVersion)) {
    throw std::runtime_error("wire: unsupported version for schema \"" +
                             std::string(schema) + "\"");
  }
}

void append_backend(std::string& out, const SimBackendOptions& b) {
  out += "\"backend\": {\"kernel\": ";
  json::append_quoted(out, to_string(b.kernel));
  out += ", \"machine\": ";
  json::append_quoted(out, b.machine);
  out += ", \"samples\": " + json::dump_size(b.samples);
  out += ", \"warmup\": " + json::dump_size(b.warmup);
  out += ", \"message_bytes\": " + json::dump_size(b.message_bytes);
  out += ", \"iterations\": " + json::dump_size(b.iterations);
  out += ", \"sync_window_s\": " + json::dump_number(b.sync_window_s);
  out += ", \"base_seconds\": " + json::dump_number(b.base_seconds);
  out += ", \"serial_fraction\": " + json::dump_number(b.serial_fraction);
  out += ", \"repetitions\": " + json::dump_size(b.repetitions);
  out += ", \"ranks\": " + json::dump_size(static_cast<std::size_t>(b.ranks));
  out += ", \"scale\": " + json::dump_number(b.scale);
  out += ", \"unit\": ";
  json::append_quoted(out, b.unit);
  out += "}";
}

SimBackendOptions parse_backend(const json::Value& v) {
  SimBackendOptions b;
  b.kernel = kernel_from_string(v.at("kernel").as_string());
  b.machine = v.at("machine").as_string();
  b.samples = v.at("samples").as_size();
  b.warmup = v.at("warmup").as_size();
  b.message_bytes = v.at("message_bytes").as_size();
  b.iterations = v.at("iterations").as_size();
  b.sync_window_s = v.at("sync_window_s").as_number();
  b.base_seconds = v.at("base_seconds").as_number();
  b.serial_fraction = v.at("serial_fraction").as_number();
  b.repetitions = v.at("repetitions").as_size();
  b.ranks = static_cast<int>(v.at("ranks").as_size());
  b.scale = v.at("scale").as_number();
  b.unit = v.at("unit").as_string();
  return b;
}

void append_config(std::string& out, const Config& config) {
  out += "\"config\": {\"index\": " + json::dump_size(config.index);
  out += ", \"levels\": [";
  for (std::size_t i = 0; i < config.levels.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"factor\": ";
    json::append_quoted(out, config.levels[i].first);
    out += ", \"level\": ";
    json::append_quoted(out, config.levels[i].second);
    out += ", \"level_index\": " + json::dump_size(config.level_indices[i]);
    out += "}";
  }
  out += "]}";
}

Config parse_config(const json::Value& v) {
  Config config;
  config.index = v.at("index").as_size();
  for (const auto& entry : v.at("levels").array) {
    config.levels.emplace_back(entry.at("factor").as_string(),
                               entry.at("level").as_string());
    config.level_indices.push_back(entry.at("level_index").as_size());
  }
  return config;
}

}  // namespace

std::string hex_u64(std::uint64_t value) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex_u64(std::string_view text) {
  if (text.size() != 16) {
    throw std::runtime_error("wire: hex u64 must be 16 digits, got \"" +
                             std::string(text) + "\"");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error("wire: bad hex digit in \"" + std::string(text) + "\"");
    }
  }
  return value;
}

std::string hex_double(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return hex_u64(bits);
}

double parse_hex_double(std::string_view text) {
  const std::uint64_t bits = parse_hex_u64(text);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::string campaign_to_json(const CampaignSpec& spec, const SimBackendOptions& backend) {
  if (spec.seed_override) {
    throw std::invalid_argument(
        "wire: CampaignSpec::seed_override is not serializable (an arbitrary "
        "function); submit derived-seed campaigns or run in-process");
  }
  std::string out;
  out.reserve(1024);
  out += "{\"schema\": \"scibench.campaign\", \"version\": ";
  out += json::dump_size(static_cast<std::size_t>(kVersion));
  out += ", \"name\": ";
  json::append_quoted(out, spec.name);
  out += ", \"description\": ";
  json::append_quoted(out, spec.description);

  const core::Experiment& base = spec.base;
  out += ", \"base\": {\"name\": ";
  json::append_quoted(out, base.name);
  out += ", \"description\": ";
  json::append_quoted(out, base.description);
  out += ", \"environment\": [";
  bool first = true;
  for (const auto& [key, value] : base.environment) {  // std::map: key-sorted
    if (!first) out += ", ";
    first = false;
    out += "{\"key\": ";
    json::append_quoted(out, key);
    out += ", \"value\": ";
    json::append_quoted(out, value);
    out += "}";
  }
  out += "], \"scaling\": " + json::dump_size(static_cast<std::size_t>(base.scaling));
  out += ", \"weak_scaling_function\": ";
  json::append_quoted(out, base.weak_scaling_function);
  out += ", \"subset_reason\": ";
  json::append_quoted(out, base.subset_reason);
  out += ", \"uses_subset\": ";
  out += base.uses_subset ? "true" : "false";
  out += ", \"parallel_measurement\": ";
  out += base.parallel_measurement ? "true" : "false";
  out += ", \"synchronization_method\": ";
  json::append_quoted(out, base.synchronization_method);
  out += ", \"summary_across_processes\": ";
  json::append_quoted(out, base.summary_across_processes);
  out += "}";

  out += ", \"factors\": [";
  for (std::size_t f = 0; f < spec.factors.size(); ++f) {
    if (f > 0) out += ", ";
    out += "{\"name\": ";
    json::append_quoted(out, spec.factors[f].name);
    out += ", \"levels\": [";
    for (std::size_t l = 0; l < spec.factors[f].levels.size(); ++l) {
      if (l > 0) out += ", ";
      json::append_quoted(out, spec.factors[f].levels[l]);
    }
    out += "]}";
  }
  out += "]";

  out += ", \"replications\": " + json::dump_size(spec.replications);
  const StoppingPolicy& p = spec.stopping;
  out += ", \"stopping\": {\"mode\": ";
  json::append_quoted(out, p.sequential() ? "sequential" : "fixed");
  out += ", \"min_reps\": " + json::dump_size(p.min_reps);
  out += ", \"max_reps\": " + json::dump_size(p.max_reps);
  out += ", \"target_rel_ci_half_width\": " + json::dump_number(p.target_rel_ci_half_width);
  out += ", \"confidence\": " + json::dump_number(p.confidence);
  out += ", \"quantile\": " + json::dump_number(p.quantile);
  out += ", \"ess_floor\": " + json::dump_number(p.ess_floor);
  out += ", \"round_quantum\": " + json::dump_size(p.round_quantum);
  out += ", \"max_lag\": " + json::dump_size(p.max_lag);
  out += "}";

  out += ", \"seed\": ";
  json::append_quoted(out, hex_u64(spec.seed));
  out += ", ";
  append_backend(out, backend);
  out += "}";
  return out;
}

CampaignEnvelope parse_campaign_json(std::string_view text) {
  const json::Value root = json::parse(text);
  check_schema(root, "scibench.campaign");

  CampaignEnvelope envelope;
  CampaignSpec& spec = envelope.spec;
  spec.name = root.at("name").as_string();
  spec.description = root.at("description").as_string();

  const json::Value& base = root.at("base");
  spec.base.name = base.at("name").as_string();
  spec.base.description = base.at("description").as_string();
  for (const auto& entry : base.at("environment").array) {
    spec.base.environment[entry.at("key").as_string()] = entry.at("value").as_string();
  }
  const std::size_t scaling = base.at("scaling").as_size();
  if (scaling > static_cast<std::size_t>(core::ScalingMode::kWeak)) {
    throw std::runtime_error("wire: bad scaling mode");
  }
  spec.base.scaling = static_cast<core::ScalingMode>(scaling);
  spec.base.weak_scaling_function = base.at("weak_scaling_function").as_string();
  spec.base.subset_reason = base.at("subset_reason").as_string();
  spec.base.uses_subset = base.at("uses_subset").boolean;
  spec.base.parallel_measurement = base.at("parallel_measurement").boolean;
  spec.base.synchronization_method = base.at("synchronization_method").as_string();
  spec.base.summary_across_processes = base.at("summary_across_processes").as_string();

  for (const auto& factor : root.at("factors").array) {
    core::Factor f;
    f.name = factor.at("name").as_string();
    for (const auto& level : factor.at("levels").array) f.levels.push_back(level.as_string());
    spec.factors.push_back(std::move(f));
  }

  spec.replications = root.at("replications").as_size();
  const json::Value& stopping = root.at("stopping");
  StoppingPolicy& p = spec.stopping;
  const std::string mode = stopping.at("mode").as_string();
  if (mode == "sequential") {
    p.mode = StoppingPolicy::Mode::kSequential;
  } else if (mode == "fixed") {
    p.mode = StoppingPolicy::Mode::kFixed;
  } else {
    throw std::runtime_error("wire: unknown stopping mode \"" + mode + "\"");
  }
  p.min_reps = stopping.at("min_reps").as_size();
  p.max_reps = stopping.at("max_reps").as_size();
  p.target_rel_ci_half_width = stopping.at("target_rel_ci_half_width").as_number();
  p.confidence = stopping.at("confidence").as_number();
  p.quantile = stopping.at("quantile").as_number();
  p.ess_floor = stopping.at("ess_floor").as_number();
  p.round_quantum = stopping.at("round_quantum").as_size();
  p.max_lag = stopping.at("max_lag").as_size();

  spec.seed = parse_hex_u64(root.at("seed").as_string());
  envelope.backend = parse_backend(root.at("backend"));
  return envelope;
}

std::string job_to_json(const SimBackendOptions& backend, const Config& config,
                        std::uint64_t seed) {
  std::string out;
  out.reserve(512);
  out += "{\"schema\": \"scibench.job\", \"version\": ";
  out += json::dump_size(static_cast<std::size_t>(kVersion));
  out += ", \"seed\": ";
  json::append_quoted(out, hex_u64(seed));
  out += ", ";
  append_config(out, config);
  out += ", ";
  append_backend(out, backend);
  out += "}";
  return out;
}

JobSpec parse_job_json(std::string_view text) {
  const json::Value root = json::parse(text);
  check_schema(root, "scibench.job");
  JobSpec job;
  job.seed = parse_hex_u64(root.at("seed").as_string());
  job.config = parse_config(root.at("config"));
  job.backend = parse_backend(root.at("backend"));
  return job;
}

std::string cell_result_to_json(const CellResult& result) {
  std::string out;
  out.reserve(64 + result.samples.size() * 20);
  out += "{\"schema\": \"scibench.cell\", \"version\": ";
  out += json::dump_size(static_cast<std::size_t>(kVersion));
  out += ", \"unit\": ";
  json::append_quoted(out, result.unit);
  out += ", \"stop_reason\": ";
  json::append_quoted(out, result.stop_reason);
  out += ", \"warmup_discarded\": " + json::dump_size(result.warmup_discarded);
  out += ", \"error\": ";
  json::append_quoted(out, result.error);
  out += ", \"samples\": [";
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    if (i > 0) out += ", ";
    json::append_quoted(out, hex_double(result.samples[i]));
  }
  out += "]}";
  return out;
}

CellResult parse_cell_result_json(std::string_view text) {
  const json::Value root = json::parse(text);
  check_schema(root, "scibench.cell");
  CellResult result;
  result.unit = root.at("unit").as_string();
  result.stop_reason = root.at("stop_reason").as_string();
  result.warmup_discarded = root.at("warmup_discarded").as_size();
  result.error = root.at("error").as_string();
  const json::Value& samples = root.at("samples");
  result.samples.reserve(samples.array.size());
  for (const auto& s : samples.array) {
    result.samples.push_back(parse_hex_double(s.as_string()));
  }
  return result;
}

}  // namespace sci::exec::wire
