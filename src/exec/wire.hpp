// Wire format for the campaign service: line-delimited canonical JSON
// over local transports (Unix-domain sockets, worker pipes).
//
// Three message families, all emitted through obs/json.hpp so
// emit -> parse -> re-emit is byte-identical:
//
//   Campaign envelope   A complete, serializable campaign submission:
//       CampaignSpec (name, base experiment, factors, replications,
//       stopping policy, seed) plus the SimBackendOptions that
//       reconstruct the backend. This is the daemon's admission unit --
//       a client that can produce this line gets exactly the campaign
//       an in-process CampaignRunner would run, because the parse
//       rebuilds the identical Campaign object (same fingerprint, same
//       derived seeds, same grid).
//
//   Job spec            One cell dispatch to a worker process: backend
//       options + Config + seed. Stateless by design -- any worker can
//       run any job, so a crashed worker's job re-dispatches to a fresh
//       process with the SAME seed and produces the same bytes.
//
//   Cell result         The worker's reply: CellResult with every
//       sample carried as the 16-hex-digit IEEE-754 bit pattern (the
//       journal's convention) -- doubles cross the process boundary
//       bit-exactly, which the byte-identity invariant requires. JSON
//       numbers would round-trip via shortest-form decimal too, but hex
//       also survives NaN payloads and is grep-able against journals.
//
// u64 seeds travel as 16-digit hex strings: a JSON number is a double
// and cannot represent every 64-bit seed.
//
// Deliberately NOT serialized: CampaignSpec::seed_override (an
// arbitrary std::function). campaign_to_json throws on it -- historical
// reproductions with hand-picked seeds stay in-process.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "exec/backend.hpp"
#include "exec/campaign.hpp"
#include "exec/sim_backend.hpp"

namespace sci::exec::wire {

inline constexpr int kVersion = 1;

/// 16-digit lowercase hex of a u64 (zero-padded, no prefix).
[[nodiscard]] std::string hex_u64(std::uint64_t value);
/// Inverse of hex_u64; throws std::runtime_error on malformed input.
[[nodiscard]] std::uint64_t parse_hex_u64(std::string_view text);
/// IEEE-754 bit pattern round trip for samples.
[[nodiscard]] std::string hex_double(double value);
[[nodiscard]] double parse_hex_double(std::string_view text);

/// A parsed campaign submission: everything needed to reconstruct the
/// exact in-process campaign.
struct CampaignEnvelope {
  CampaignSpec spec;
  SimBackendOptions backend;
};

/// One line of canonical JSON (schema "scibench.campaign", version 1).
/// Throws std::invalid_argument when spec.seed_override is set.
[[nodiscard]] std::string campaign_to_json(const CampaignSpec& spec,
                                           const SimBackendOptions& backend);
/// Inverse; throws std::runtime_error on schema mismatch.
[[nodiscard]] CampaignEnvelope parse_campaign_json(std::string_view text);

/// One cell dispatch (schema "scibench.job", version 1).
[[nodiscard]] std::string job_to_json(const SimBackendOptions& backend,
                                      const Config& config, std::uint64_t seed);
struct JobSpec {
  SimBackendOptions backend;
  Config config;
  std::uint64_t seed = 0;
};
[[nodiscard]] JobSpec parse_job_json(std::string_view text);

/// One worker reply (schema "scibench.cell", version 1). Samples are
/// hex bit patterns; error text passes through quoted.
[[nodiscard]] std::string cell_result_to_json(const CellResult& result);
[[nodiscard]] CellResult parse_cell_result_json(std::string_view text);

}  // namespace sci::exec::wire
