#include "fault/fault.hpp"

#include <stdexcept>

#include "obs/counters.hpp"

namespace sci::fault {

void FaultSpec::validate() const {
  const auto bad_prob = [](double p) { return !(p >= 0.0 && p <= 1.0); };
  if (bad_prob(drop_prob))
    throw std::invalid_argument("FaultSpec: drop_prob must be in [0, 1]");
  if (bad_prob(link_degrade_prob))
    throw std::invalid_argument("FaultSpec: link_degrade_prob must be in [0, 1]");
  if (bad_prob(straggler_prob))
    throw std::invalid_argument("FaultSpec: straggler_prob must be in [0, 1]");
  if (!(retransmit_timeout_s >= 0.0))
    throw std::invalid_argument("FaultSpec: retransmit_timeout_s must be >= 0");
  if (!(link_degrade_factor >= 1.0))
    throw std::invalid_argument("FaultSpec: link_degrade_factor must be >= 1");
  if (!(straggler_factor >= 1.0))
    throw std::invalid_argument("FaultSpec: straggler_factor must be >= 1");
}

FaultSpec fault_preset(const std::string& name) {
  if (name == "none") return {};
  if (name == "lossy") {
    FaultSpec f;
    f.drop_prob = 0.02;
    f.retransmit_timeout_s = 50e-6;
    f.max_retransmits = 4;
    return f;
  }
  if (name == "degraded") {
    FaultSpec f;
    f.link_degrade_prob = 0.15;
    f.link_degrade_factor = 3.0;
    return f;
  }
  if (name == "straggler") {
    FaultSpec f;
    f.straggler_prob = 0.10;
    f.straggler_factor = 4.0;
    return f;
  }
  if (name == "chaos") {
    FaultSpec f;
    f.drop_prob = 0.02;
    f.retransmit_timeout_s = 50e-6;
    f.max_retransmits = 4;
    f.link_degrade_prob = 0.15;
    f.link_degrade_factor = 3.0;
    f.straggler_prob = 0.10;
    f.straggler_factor = 4.0;
    return f;
  }
  std::string known;
  for (const auto& n : fault_preset_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("fault_preset: unknown preset '" + name +
                              "' (known: " + known + ")");
}

const std::vector<std::string>& fault_preset_names() {
  static const std::vector<std::string> names = {"none", "lossy", "degraded",
                                                 "straggler", "chaos"};
  return names;
}

void FaultTally::flush() noexcept {
  if (drops == 0 && retransmit_ns == 0 && degraded_transfers == 0 && straggler_ns == 0)
    return;
  static obs::Counter& drops_counter = obs::counter(obs::keys::kFaultDrops);
  static obs::Counter& retransmit_counter = obs::counter(obs::keys::kFaultRetransmitNs);
  static obs::Counter& degraded_counter = obs::counter(obs::keys::kFaultDegradedTransfers);
  static obs::Counter& straggler_counter = obs::counter(obs::keys::kFaultStragglerNs);
  if (drops > 0) drops_counter.add(drops);
  if (retransmit_ns > 0) retransmit_counter.add(retransmit_ns);
  if (degraded_transfers > 0) degraded_counter.add(degraded_transfers);
  if (straggler_ns > 0) straggler_counter.add(straggler_ns);
  drops = 0;
  retransmit_ns = 0;
  degraded_transfers = 0;
  straggler_ns = 0;
}

}  // namespace sci::fault
