// sci::fault -- deterministic fault injection for the simulated
// machines. The paper's rules assume measurements survive a hostile
// environment; the benign noise models in sim/noise.hpp cover jitter
// and congestion, but real campaigns also see lost messages, degraded
// links, and straggling nodes. A FaultSpec describes those hazards; the
// simulator (simmpi::World) draws every fault decision from the world
// RNG, so a faulty run is still a pure function of (machine, seed):
// re-running or World::reset()-ing replays the exact same drops,
// degradations, and straggler episodes byte for byte.
//
// Layering: this library sits below sim/ (sim::Machine embeds a
// FaultSpec) and depends only on rng/ and obs/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sci::fault {

/// Injection parameters for one simulated machine. All fields off by
/// default, so `FaultSpec{}` is the benign machine and any() == false
/// guarantees zero extra RNG draws (existing seeds keep their byte
/// streams).
struct FaultSpec {
  // -- message drop + retransmission (per payload transfer) --
  /// Probability that one transfer attempt is lost on the wire. Each
  /// lost attempt costs `retransmit_timeout_s` before the (re-drawn)
  /// retransmission starts; delivery is guaranteed after at most
  /// `max_retransmits` losses (a reliable-transport model, so rank
  /// programs never deadlock on an injected drop).
  double drop_prob = 0.0;
  double retransmit_timeout_s = 100e-6;
  std::size_t max_retransmits = 4;

  // -- link degradation (per rank pair, drawn at World::reset) --
  /// Probability that a (src, dst) rank pair's route is degraded for
  /// the whole run; degraded routes multiply every wire time by
  /// `link_degrade_factor`.
  double link_degrade_prob = 0.0;
  double link_degrade_factor = 1.0;

  // -- node straggler episodes (per node, drawn at World::reset) --
  /// Probability that a node straggles for the whole episode (one
  /// World::reset to the next); compute intervals on a straggling node
  /// are multiplied by `straggler_factor`.
  double straggler_prob = 0.0;
  double straggler_factor = 1.0;

  /// True when any injection is active. The simulator's hot paths and
  /// reset draws are gated on this, so a spec-free machine pays nothing
  /// and draws nothing.
  [[nodiscard]] bool any() const noexcept {
    return drop_prob > 0.0 || link_degrade_prob > 0.0 || straggler_prob > 0.0;
  }

  /// Throws std::invalid_argument on out-of-range parameters
  /// (probabilities outside [0, 1], factors < 1, negative timeout).
  void validate() const;
};

/// Named presets, applied to machine presets via the "machine+fault"
/// naming scheme (sim::make_machine("dora+lossy")):
///   none       no injection (the default machine)
///   lossy      2% message drop, 50 us retransmit timeout
///   degraded   15% of routes at 3x wire time
///   straggler  10% of nodes at 4x compute time
///   chaos      all of the above at once
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] FaultSpec fault_preset(const std::string& name);

/// The preset names fault_preset accepts, for error messages and docs.
[[nodiscard]] const std::vector<std::string>& fault_preset_names();

/// Batched fault observability, mirroring sim::NoiseTally: the world
/// tallies injections in plain integers on the hot path and publishes
/// them into the obs counter registry in one transaction at flush().
struct FaultTally {
  std::uint64_t drops = 0;               ///< lost transfer attempts
  std::uint64_t retransmit_ns = 0;       ///< timeout + re-send wire time
  std::uint64_t degraded_transfers = 0;  ///< transfers on a degraded route
  std::uint64_t straggler_ns = 0;        ///< extra compute time injected

  /// Publishes the batch into the obs counter registry and zeroes it.
  void flush() noexcept;
};

}  // namespace sci::fault
