#include "hpl/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::hpl {

void fill_linear_system(Matrix& a, std::vector<double>& b, std::uint64_t seed) {
  rng::Xoshiro256 gen(seed);
  const std::size_t n = a.rows();
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double* col = a.col(c);
    for (std::size_t r = 0; r < n; ++r) col[r] = rng::uniform(gen, -0.5, 0.5);
  }
  b.resize(n);
  for (std::size_t r = 0; r < n; ++r) b[r] = rng::uniform(gen, -0.5, 0.5);
}

namespace {

// Unblocked LU on the panel A[k:n, k:k+nb) with partial pivoting over the
// full remaining column height. Swaps are applied to the whole matrix.
void panel_factorize(Matrix& a, std::size_t k, std::size_t nb,
                     std::vector<std::size_t>& pivots, std::uint64_t& flops) {
  const std::size_t n = a.rows();
  const std::size_t end = std::min(k + nb, a.cols());
  for (std::size_t j = k; j < end; ++j) {
    // Pivot search in column j below row j.
    std::size_t piv = j;
    double best = std::fabs(a(j, j));
    for (std::size_t r = j + 1; r < n; ++r) {
      const double v = std::fabs(a(r, j));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < std::numeric_limits<double>::min()) {
      throw std::runtime_error("lu_factorize: numerically singular pivot");
    }
    pivots[j] = piv;
    if (piv != j) {
      for (std::size_t c = 0; c < a.cols(); ++c) std::swap(a(j, c), a(piv, c));
    }
    // Scale multipliers and update the rest of the panel.
    const double inv = 1.0 / a(j, j);
    for (std::size_t r = j + 1; r < n; ++r) a(r, j) *= inv;
    flops += (n - j - 1);
    for (std::size_t c = j + 1; c < end; ++c) {
      const double ajc = a(j, c);
      double* col = a.col(c);
      for (std::size_t r = j + 1; r < n; ++r) col[r] -= a(r, j) * ajc;
    }
    flops += 2 * (n - j - 1) * (end - j - 1);
  }
}

// A[k:k+nb, end:n) <- L(panel)^-1 * A[k:k+nb, end:n)  (unit lower tri).
void update_row_block(Matrix& a, std::size_t k, std::size_t nb, std::uint64_t& flops) {
  const std::size_t end = std::min(k + nb, a.cols());
  for (std::size_t c = end; c < a.cols(); ++c) {
    double* col = a.col(c);
    for (std::size_t j = k; j < end; ++j) {
      const double v = col[j];
      for (std::size_t r = j + 1; r < end; ++r) col[r] -= a(r, j) * v;
    }
  }
  if (a.cols() > end) flops += (end - k) * (end - k - 1) * (a.cols() - end);
}

// Trailing update A[end:n, end:n) -= A[end:n, k:end) * A[k:end, end:n).
void trailing_update(Matrix& a, std::size_t k, std::size_t nb, std::uint64_t& flops) {
  const std::size_t n = a.rows();
  const std::size_t end = std::min(k + nb, a.cols());
  if (end >= a.cols() || end >= n) return;
  // jik loop order: column-major friendly rank-nb update.
  for (std::size_t c = end; c < a.cols(); ++c) {
    double* dst = a.col(c);
    for (std::size_t j = k; j < end; ++j) {
      const double v = a(j, c);
      if (v == 0.0) continue;
      const double* lcol = a.col(j);
      for (std::size_t r = end; r < n; ++r) dst[r] -= lcol[r] * v;
    }
  }
  flops += 2 * (n - end) * (end - k) * (a.cols() - end);
}

}  // namespace

LuResult lu_factorize(Matrix& a, std::size_t block) {
  if (a.rows() != a.cols()) throw std::invalid_argument("lu_factorize: square matrix required");
  if (block == 0) throw std::invalid_argument("lu_factorize: block >= 1");
  const std::size_t n = a.rows();
  LuResult result;
  result.pivots.resize(n);
  for (std::size_t k = 0; k < n; k += block) {
    panel_factorize(a, k, block, result.pivots, result.flops);
    update_row_block(a, k, block, result.flops);
    trailing_update(a, k, block, result.flops);
  }
  return result;
}

std::vector<double> lu_solve(const Matrix& lu, const std::vector<std::size_t>& pivots,
                             std::vector<double> b) {
  const std::size_t n = lu.rows();
  if (b.size() != n || pivots.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  // Apply row swaps in factorization order.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
  }
  // Forward substitution with unit lower triangle.
  for (std::size_t c = 0; c < n; ++c) {
    const double v = b[c];
    if (v == 0.0) continue;
    const double* col = lu.col(c);
    for (std::size_t r = c + 1; r < n; ++r) b[r] -= col[r] * v;
  }
  // Backward substitution with upper triangle.
  for (std::size_t c = n; c-- > 0;) {
    b[c] /= lu(c, c);
    const double v = b[c];
    const double* col = lu.col(c);
    for (std::size_t r = 0; r < c; ++r) b[r] -= col[r] * v;
  }
  return b;
}

double scaled_residual(const Matrix& a, const std::vector<double>& x,
                       const std::vector<double>& b) {
  const std::size_t n = a.rows();
  // r = b - A x; accumulate per row.
  std::vector<double> r = b;
  for (std::size_t c = 0; c < n; ++c) {
    const double v = x[c];
    const double* col = a.col(c);
    for (std::size_t row = 0; row < n; ++row) r[row] -= col[row] * v;
  }
  double r_inf = 0.0;
  for (double v : r) r_inf = std::max(r_inf, std::fabs(v));
  double a_1 = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    double colsum = 0.0;
    const double* col = a.col(c);
    for (std::size_t row = 0; row < n; ++row) colsum += std::fabs(col[row]);
    a_1 = std::max(a_1, colsum);
  }
  double x_1 = 0.0;
  for (double v : x) x_1 += std::fabs(v);
  const double eps = std::numeric_limits<double>::epsilon();
  return r_inf / (eps * a_1 * x_1 * static_cast<double>(n));
}

double lu_flop_count(std::size_t n) noexcept {
  const auto nd = static_cast<double>(n);
  return 2.0 / 3.0 * nd * nd * nd - nd * nd / 2.0 - nd / 6.0;
}

}  // namespace sci::hpl
