// A real, runnable Linpack-style kernel: blocked right-looking LU
// factorization with partial pivoting, triangular solves, and the HPL
// residual check. This is the local (single-node) half of the HPL
// substrate; the distributed half is the cost-model simulation in
// sim_hpl.hpp. Examples and benches use this kernel to produce genuine
// nondeterministic timings on the host machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sci::hpl {

/// Dense column-major matrix with owned storage.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[c * rows_ + r];
  }
  [[nodiscard]] const double& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[c * rows_ + r];
  }
  [[nodiscard]] double* col(std::size_t c) noexcept { return data_.data() + c * rows_; }
  [[nodiscard]] const double* col(std::size_t c) const noexcept {
    return data_.data() + c * rows_;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Fills `a` with the standard HPL random matrix (uniform in [-0.5, 0.5],
/// diagonally safe for pivoting at these sizes) and `b` with a matching
/// right-hand side; deterministic in `seed`.
void fill_linear_system(Matrix& a, std::vector<double>& b, std::uint64_t seed);

struct LuResult {
  std::vector<std::size_t> pivots;  ///< row swapped with k at step k
  std::uint64_t flops = 0;          ///< exact flop count of the factorization
};

/// In-place blocked LU with partial pivoting (right-looking, block size
/// `block`). Throws on a numerically singular pivot.
[[nodiscard]] LuResult lu_factorize(Matrix& a, std::size_t block = 64);

/// Solves A x = b using a factorization produced by lu_factorize
/// (applies the recorded row swaps, then forward/backward substitution).
[[nodiscard]] std::vector<double> lu_solve(const Matrix& lu,
                                           const std::vector<std::size_t>& pivots,
                                           std::vector<double> b);

/// HPL-style scaled residual ||Ax-b||_inf / (eps * ||A||_1 * ||x||_1 * n);
/// values below ~16 certify the solution.
[[nodiscard]] double scaled_residual(const Matrix& a, const std::vector<double>& x,
                                     const std::vector<double>& b);

/// Exact LU flop count 2/3 n^3 - n^2/2 - n/6 (+ solve 2 n^2).
[[nodiscard]] double lu_flop_count(std::size_t n) noexcept;

}  // namespace sci::hpl
