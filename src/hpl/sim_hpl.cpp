#include "hpl/sim_hpl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace sci::hpl {

double hpl_flops(std::size_t n) noexcept {
  const auto nd = static_cast<double>(n);
  return 2.0 / 3.0 * nd * nd * nd + 3.0 / 2.0 * nd * nd;
}

SimHplRun simulate_hpl_run(const sim::Machine& machine, const SimHplConfig& config,
                           std::uint64_t seed) {
  if (config.grid_p * config.grid_q != config.nodes)
    throw std::invalid_argument("simulate_hpl_run: grid_p * grid_q must equal nodes");
  if (config.n == 0 || config.block == 0 || config.n < config.block)
    throw std::invalid_argument("simulate_hpl_run: need n >= block >= 1");

  rng::Xoshiro256 gen(seed);

  // Fresh batch allocation per run (paper: "For HPL we chose different
  // allocations for each experiment").
  auto allocation = sim::allocate_nodes(*machine.topology, config.nodes,
                                        sim::AllocationPolicy::kScattered, gen);
  const sim::Network network = machine.make_network();

  // Per-run node efficiencies: every node loses |N(0,sigma)|; disturbed
  // nodes lose an extra uniform slice. HPL is bulk-synchronous, so the
  // slowest node paces every panel.
  std::vector<double> node_rate(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    double eff = machine.node_base_efficiency;
    eff *= 1.0 - std::fabs(rng::normal(gen, 0.0, config.node_slowdown_sigma));
    if (rng::bernoulli(gen, config.disturbed_prob)) {
      eff *= 1.0 - std::min(0.9, rng::exponential(gen, 1.0 / config.disturbed_mean));
    }
    node_rate[i] = machine.node_peak_flops * eff;
  }

  const auto n = static_cast<double>(config.n);
  const auto nb = static_cast<double>(config.block);
  const auto p = static_cast<double>(config.grid_p);
  const auto q = static_cast<double>(config.grid_q);

  SimHplRun run;
  const std::size_t panels = (config.n + config.block - 1) / config.block;
  // Representative wire path for broadcasts this run: median hop pair of
  // the allocation, one draw per panel keeps the cost model cheap.
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const double m = n - static_cast<double>(jp) * nb;  // remaining size
    if (m <= 0.0) break;

    // Panel factorization: ~m*nb^2 flops on one process column (p nodes).
    const std::size_t col = jp % config.grid_q;
    double panel_t = 0.0;
    for (std::size_t r = 0; r < config.grid_p; ++r) {
      const std::size_t node = col * config.grid_p + r;
      const double flops = m * nb * nb / p;
      const double pure = flops / node_rate[node];
      panel_t = std::max(panel_t, machine.compute_noise.perturb(pure, gen));
    }
    run.compute_s += panel_t;

    // Panel broadcast across process columns: binomial tree, log2(q)
    // stages of an m*nb/p panel slice per node row.
    const auto bytes = static_cast<std::size_t>(m * nb / p * 8.0);
    const std::size_t src = allocation[col * config.grid_p];
    const std::size_t dst = allocation[((col + 1) % config.grid_q) * config.grid_p];
    // Production HPL pipelines the broadcast (increasing-ring): steady
    // state costs one transfer per panel regardless of q.
    (void)q;
    run.comm_s += network.transfer_time(src, dst, bytes, gen) +
                  2.0 * machine.loggp.overhead_s;

    // Row swaps: nb exchanges of m/q-sized rows across the column,
    // pipelined -- charge one latency plus the volume.
    const auto swap_bytes = static_cast<std::size_t>(m / q * nb * 2.0);
    run.comm_s += network.transfer_time(src, dst, swap_bytes, gen) +
                  2.0 * machine.loggp.overhead_s;

    // Trailing update: 2*m*nb*m flops spread over all nodes; the max
    // perturbed node time paces the panel.
    double update_t = 0.0;
    for (std::size_t node = 0; node < config.nodes; ++node) {
      const double flops = 2.0 * m * nb * m / (p * q);
      const double pure = flops / node_rate[node];
      update_t = std::max(update_t, machine.compute_noise.perturb(pure, gen));
    }
    run.compute_s += update_t;
  }

  run.completion_s = run.compute_s + run.comm_s;
  run.gflops = hpl_flops(config.n) / run.completion_s / 1e9;
  // Energy: all nodes idle for the makespan, all compute during the
  // factorization/update phases (BSP: phases are machine-wide).
  const auto nodes = static_cast<double>(config.nodes);
  run.energy_j = machine.power.idle_w * run.completion_s * nodes +
                 machine.power.compute_w * run.compute_s * nodes;
  run.hpl_flops_for_rate_ = hpl_flops(config.n);
  return run;
}

std::vector<SimHplRun> simulate_hpl_series(const sim::Machine& machine,
                                           const SimHplConfig& config, std::size_t runs,
                                           std::uint64_t seed) {
  std::vector<SimHplRun> out;
  out.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    out.push_back(simulate_hpl_run(machine, config, seed + i));
  }
  return out;
}

}  // namespace sci::hpl
