// Simulated distributed High-Performance Linpack.
//
// Stand-in for the paper's Figure 1 experiment (50 HPL runs on 64 nodes
// of Piz Daint, N = 314k, different batch allocation per run). The
// simulation walks the panel loop of right-looking LU on a P x Q process
// grid and charges, per panel:
//     panel factorization  (one process column, max over its nodes)
//     panel broadcast      (binomial over process columns, LogGP wire)
//     row swaps            (pairwise exchanges, LogGP wire)
//     trailing update      (all nodes, max over perturbed node times)
// Nondeterminism enters through (a) the machine's compute/network noise
// models, (b) a per-run, per-node efficiency draw (daemons/thermals:
// slow nodes drag the whole run -- HPL is bulk-synchronous), and (c) a
// fresh batch allocation per run affecting broadcast hop counts.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace sci::hpl {

struct SimHplConfig {
  std::size_t n = 314'000;       ///< matrix dimension
  std::size_t block = 1024;      ///< panel width NB
  std::size_t nodes = 64;        ///< allocation size
  std::size_t grid_p = 8;        ///< process grid rows (grid_p*grid_q == nodes)
  std::size_t grid_q = 8;        ///< process grid cols
  /// Spread of the per-run per-node efficiency degradation |N(0, sigma)|.
  double node_slowdown_sigma = 0.010;
  /// Probability that a node is disturbed this run (noisy neighbour,
  /// daemon storm) and the mean of its exponential extra degradation.
  /// HPL is bulk-synchronous, so the run paces on max over nodes: an
  /// exponential per-node draw yields a Gumbel-distributed run slowdown,
  /// the right-skewed shape of the paper's Figure 1.
  double disturbed_prob = 0.30;
  double disturbed_mean = 0.045;
};

struct SimHplRun {
  double completion_s = 0.0;
  double gflops = 0.0;          ///< achieved rate for this run
  double compute_s = 0.0;       ///< time in factorization/update phases
  double comm_s = 0.0;          ///< time in broadcast/swap phases
  double energy_j = 0.0;        ///< job energy under the machine's power model
  /// The paper's canonical rate example (Section 3.1.1): flop per watt.
  [[nodiscard]] double gflops_per_watt() const {
    return (energy_j > 0.0) ? hpl_flops_for_rate_ / energy_j / 1e9 : 0.0;
  }
  double hpl_flops_for_rate_ = 0.0;  ///< set by the simulator
};

/// One HPL execution on a fresh allocation; deterministic in `seed`.
[[nodiscard]] SimHplRun simulate_hpl_run(const sim::Machine& machine,
                                         const SimHplConfig& config, std::uint64_t seed);

/// `runs` executions with distinct allocations (seed + run index).
[[nodiscard]] std::vector<SimHplRun> simulate_hpl_series(const sim::Machine& machine,
                                                         const SimHplConfig& config,
                                                         std::size_t runs,
                                                         std::uint64_t seed);

/// Total flop of one factorization + solve, the number HPL reports.
[[nodiscard]] double hpl_flops(std::size_t n) noexcept;

}  // namespace sci::hpl
