#include "lp/simplex.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace sci::lp {
namespace {

constexpr double kEps = 1e-9;

// Tableau-based simplex over an explicit basis. The tableau stores the
// constraint matrix extended with artificial columns; `basis[r]` is the
// column currently basic in row r.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * (cols + 1)), basis_(rows) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * (cols_ + 1) + c]; }
  double& rhs(std::size_t r) { return data_[r * (cols_ + 1) + cols_]; }
  std::size_t& basis(std::size_t r) { return basis_[r]; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double inv = 1.0 / at(pr, pc);
    for (std::size_t c = 0; c <= cols_; ++c) at(pr, c) *= inv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) at(r, c) -= factor * at(pr, c);
    }
    basis_[pr] = pc;
  }

  // One phase of simplex on reduced costs of `cost`, restricted to columns
  // < allowed_cols. Returns optimal objective or infinity if unbounded.
  Status run(std::span<const double> cost, std::size_t allowed_cols,
             std::size_t max_iter, double& objective, std::size_t& iters) {
    std::vector<double> y(rows_);  // multipliers c_B B^-1 implicit via tableau
    for (; iters < max_iter; ++iters) {
      // Reduced cost of column j: c_j - sum_r cost[basis[r]] * at(r, j).
      // Bland's rule: first column with negative reduced cost.
      std::size_t enter = allowed_cols;
      for (std::size_t j = 0; j < allowed_cols; ++j) {
        double red = cost[j];
        for (std::size_t r = 0; r < rows_; ++r) red -= cost[basis_[r]] * at(r, j);
        if (red < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter == allowed_cols) {
        objective = 0.0;
        for (std::size_t r = 0; r < rows_; ++r) objective += cost[basis_[r]] * rhs(r);
        return Status::kOptimal;
      }
      // Ratio test, Bland: smallest basis index among ties.
      std::size_t leave = rows_;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        if (at(r, enter) > kEps) {
          const double ratio = rhs(r) / at(r, enter);
          if (ratio < best - kEps ||
              (ratio < best + kEps && (leave == rows_ || basis_[r] < basis_[leave]))) {
            best = ratio;
            leave = r;
          }
        }
      }
      if (leave == rows_) return Status::kUnbounded;
      pivot(leave, enter);
    }
    return Status::kIterationLimit;
  }

  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
  std::vector<std::size_t> basis_;
};

}  // namespace

Problem::Problem(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), a_(rows * cols), b_(rows), c_(cols) {}

void Problem::set_objective(std::size_t col, double coeff) {
  assert(col < cols_);
  c_[col] = coeff;
}

void Problem::set_coefficient(std::size_t row, std::size_t col, double value) {
  assert(row < rows_ && col < cols_);
  a_[row * cols_ + col] = value;
}

void Problem::set_rhs(std::size_t row, double value) {
  assert(row < rows_);
  b_[row] = value;
}

Solution Problem::solve(std::size_t max_iterations) const {
  const std::size_t total_cols = cols_ + rows_;  // original + artificial
  if (max_iterations == 0) max_iterations = 200 * (rows_ + cols_) + 10000;

  Tableau tab(rows_, total_cols);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double sign = (b_[r] < 0.0) ? -1.0 : 1.0;  // keep rhs non-negative
    for (std::size_t c = 0; c < cols_; ++c) tab.at(r, c) = sign * a_[r * cols_ + c];
    tab.rhs(r) = sign * b_[r];
    tab.at(r, cols_ + r) = 1.0;
    tab.basis(r) = cols_ + r;
  }

  Solution sol;

  // Phase I: minimize sum of artificials.
  std::vector<double> phase1(total_cols, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) phase1[cols_ + r] = 1.0;
  double obj1 = 0.0;
  Status s1 = tab.run(phase1, total_cols, max_iterations, obj1, sol.iterations);
  if (s1 != Status::kOptimal) {
    sol.status = s1;
    return sol;
  }
  if (obj1 > 1e-7) {
    sol.status = Status::kInfeasible;
    return sol;
  }
  // Drive remaining artificials out of the basis where possible.
  for (std::size_t r = 0; r < rows_; ++r) {
    if (tab.basis(r) >= cols_) {
      for (std::size_t c = 0; c < cols_; ++c) {
        if (std::fabs(tab.at(r, c)) > kEps) {
          tab.pivot(r, c);
          break;
        }
      }
    }
  }

  // Phase II on the true objective; artificial columns excluded.
  std::vector<double> phase2(total_cols, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) phase2[c] = c_[c];
  // A redundant row may keep an artificial basic at value 0; give it zero
  // cost so it cannot perturb the objective.
  double obj2 = 0.0;
  Status s2 = tab.run(phase2, cols_, max_iterations, obj2, sol.iterations);
  sol.status = s2;
  if (s2 != Status::kOptimal) return sol;

  sol.objective = obj2;
  sol.x.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (tab.basis(r) < cols_) sol.x[tab.basis(r)] = tab.rhs(r);
  }
  return sol;
}

}  // namespace sci::lp
