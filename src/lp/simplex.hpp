// Dense two-phase primal simplex for small/medium LPs.
//
// Substrate for stats::quantile_regression (Koenker & Bassett formulate
// quantile regression as a linear program; the paper's Section 3.2.3
// notes QR "can be efficiently computed using linear programming").
//
// Solves  min c'x  s.t.  Ax = b, x >= 0  with Bland's anti-cycling rule.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sci::lp {

enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct Solution {
  Status status = Status::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< primal solution, size = #columns
  std::size_t iterations = 0;
};

/// Dense row-major LP in standard equality form.
class Problem {
 public:
  /// `rows` equality constraints over `cols` non-negative variables.
  Problem(std::size_t rows, std::size_t cols);

  void set_objective(std::size_t col, double coeff);
  void set_coefficient(std::size_t row, std::size_t col, double value);
  void set_rhs(std::size_t row, double value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// Two-phase simplex. `max_iterations` of 0 means a size-derived default.
  [[nodiscard]] Solution solve(std::size_t max_iterations = 0) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> a_;  // rows_ x cols_, row-major
  std::vector<double> b_;
  std::vector<double> c_;
};

}  // namespace sci::lp
