#include "obs/bench_report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"
#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

namespace sci::obs {

const char* to_string(Improve improve) noexcept {
  return improve == Improve::kHigher ? "higher" : "lower";
}

Improve improve_from_string(std::string_view text) {
  if (text == "higher") return Improve::kHigher;
  if (text == "lower") return Improve::kLower;
  throw std::runtime_error("bench report: improve must be \"higher\" or \"lower\", got \"" +
                           std::string(text) + "\"");
}

const BenchMetric* BenchReport::find_metric(std::string_view name) const noexcept {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string bench_report_json(const BenchReport& report) {
  std::string out;
  out.reserve(512 + report.metrics.size() * 160);
  out += "{\n  \"schema\": \"scibench.bench\",\n  \"version\": ";
  out += json::dump_size(static_cast<std::size_t>(BenchReport::kVersion));
  out += ",\n  \"bench\": ";
  json::append_quoted(out, report.bench);
  out += ",\n  \"git_sha\": ";
  json::append_quoted(out, report.git_sha);
  out += ",\n  \"context\": {";
  bool first = true;
  for (const auto& [key, value] : report.context) {  // std::map: sorted by key
    out += first ? "\n    " : ",\n    ";
    first = false;
    json::append_quoted(out, key);
    out += ": ";
    json::append_quoted(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"metrics\": [";
  first = true;
  for (const auto& m : report.metrics) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": ";
    json::append_quoted(out, m.name);
    out += ", \"unit\": ";
    json::append_quoted(out, m.unit);
    out += ", \"improve\": ";
    json::append_quoted(out, to_string(m.improve));
    out += ", \"n\": " + json::dump_size(m.n);
    out += ", \"median\": " + json::dump_number(m.median);
    out += ", \"ci_lo\": " + json::dump_number(m.ci_lo);
    out += ", \"ci_hi\": " + json::dump_number(m.ci_hi);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  // Counters sorted by name: deterministic across platforms regardless
  // of the order the harness recorded them in.
  CounterSnapshot counters = report.counters;
  std::sort(counters.begin(), counters.end());
  out += "  \"counters\": [";
  first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": ";
    json::append_quoted(out, name);
    out += ", \"value\": " + json::dump_size(static_cast<std::size_t>(value));
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

BenchReport parse_bench_report(std::string_view json_text) {
  const json::Value root = json::parse(json_text);
  if (root.type != json::Value::Type::kObject) {
    throw std::runtime_error("bench report: top level must be an object");
  }
  if (root.at("schema").as_string() != "scibench.bench") {
    throw std::runtime_error("bench report: unknown schema \"" +
                             root.at("schema").as_string() + "\"");
  }
  const std::size_t version = root.at("version").as_size();
  if (version != static_cast<std::size_t>(BenchReport::kVersion)) {
    throw std::runtime_error("bench report: unsupported version " +
                             std::to_string(version));
  }
  BenchReport report;
  report.bench = root.at("bench").as_string();
  report.git_sha = root.at("git_sha").as_string();
  for (const auto& [key, value] : root.at("context").object) {
    report.context[key] = value.as_string();
  }
  for (const auto& m : root.at("metrics").array) {
    BenchMetric metric;
    metric.name = m.at("name").as_string();
    metric.unit = m.at("unit").as_string();
    metric.improve = improve_from_string(m.at("improve").as_string());
    metric.n = m.at("n").as_size();
    metric.median = m.at("median").as_number();
    metric.ci_lo = m.at("ci_lo").as_number();
    metric.ci_hi = m.at("ci_hi").as_number();
    report.metrics.push_back(std::move(metric));
  }
  for (const auto& c : root.at("counters").array) {
    report.counters.emplace_back(c.at("name").as_string(),
                                 static_cast<std::uint64_t>(c.at("value").as_size()));
  }
  return report;
}

BenchReport load_bench_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_bench_report(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

bool write_file_atomic(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

BenchReporter::BenchReporter(std::string bench_name) {
  report_.bench = std::move(bench_name);
  if (const char* sha = std::getenv("SCIBENCH_GIT_SHA"); sha != nullptr && *sha != '\0') {
    report_.git_sha = sha;
  }
#ifdef NDEBUG
  report_.context["build_type"] = "release";
#else
  report_.context["build_type"] = "debug";
#endif
#if defined(SCIBENCH_POOLING) && !SCIBENCH_POOLING
  report_.context["pooling"] = "0";
#else
  report_.context["pooling"] = "1";
#endif
#if defined(SCIBENCH_TRACING) && !SCIBENCH_TRACING
  report_.context["tracing"] = "0";
#else
  report_.context["tracing"] = "1";
#endif
  report_.context["hardware_concurrency"] =
      std::to_string(std::thread::hardware_concurrency());
}

BenchReporter& BenchReporter::set_context(std::string key, std::string value) {
  report_.context[std::move(key)] = std::move(value);
  return *this;
}

BenchMetric& BenchReporter::add_metric(std::string name, std::string unit,
                                       std::span<const double> samples, Improve improve) {
  if (samples.empty()) {
    throw std::invalid_argument("BenchReporter::add_metric: no samples for " + name);
  }
  BenchMetric metric;
  metric.name = std::move(name);
  metric.unit = std::move(unit);
  metric.improve = improve;
  metric.n = samples.size();
  const auto sorted = stats::sorted_copy(samples);
  metric.median = stats::quantile_sorted(sorted, 0.5);
  if (sorted.size() > 5) {
    const auto ci = stats::quantile_confidence_interval_sorted(sorted, 0.5, 0.95);
    metric.ci_lo = ci.lower;
    metric.ci_hi = ci.upper;
  } else {
    metric.ci_lo = sorted.front();
    metric.ci_hi = sorted.back();
  }
  return add_summary(std::move(metric));
}

BenchMetric& BenchReporter::add_summary(BenchMetric metric) {
  report_.metrics.push_back(std::move(metric));
  return report_.metrics.back();
}

BenchReporter& BenchReporter::add_counter(std::string name, std::uint64_t value) {
  for (auto& [existing, existing_value] : report_.counters) {
    if (existing == name) {
      existing_value = value;
      return *this;
    }
  }
  report_.counters.emplace_back(std::move(name), value);
  return *this;
}

std::string BenchReporter::json_path(const std::string& dir) const {
  return dir + "/BENCH_" + report_.bench + ".json";
}

std::string BenchReporter::write_json(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; write reports failure
  const std::string path = json_path(dir);
  if (!write_file_atomic(path, bench_report_json(report_))) return {};
  return path;
}

std::string BenchReporter::render_markdown() const {
  std::string out = "| metric | unit | n | median | 95% CI |\n|---|---|---|---|---|\n";
  char buf[160];
  for (const auto& m : report_.metrics) {
    std::snprintf(buf, sizeof buf, "| `%s` | %s | %zu | %.6g | [%.6g, %.6g] |\n",
                  m.name.c_str(), m.unit.c_str(), m.n, m.median, m.ci_lo, m.ci_hi);
    out += buf;
  }
  return out;
}

}  // namespace sci::obs
