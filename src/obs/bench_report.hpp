// Machine-readable bench telemetry (the self-benchmarking face of
// Rule 12: performance claims must be comparable over time, including
// this repo's own).
//
// Every bench_* harness that reports medians + 95% nonparametric CIs
// routes them through a BenchReporter: the harness keeps its prose
// stdout, and `--json DIR` additionally writes a schema-versioned
// `BENCH_<name>.json` that tools/scibench_ci can ingest into the
// append-only performance history. One emitter (obs/json.hpp) and a
// fixed key order make the files canonical: emit -> parse -> re-emit is
// byte-identical, which the history store and the round-trip tests rely
// on.
//
// Schema (version 1):
//   {
//     "schema": "scibench.bench", "version": 1,
//     "bench": "<name>", "git_sha": "<sha or unknown>",
//     "context": { "<key>": "<value>", ... },         // sorted by key
//     "metrics": [ { "name", "unit", "improve",       // insertion order
//                    "n", "median", "ci_lo", "ci_hi" }, ... ],
//     "counters": [ { "name", "value" }, ... ]        // sorted by name
//   }
// Non-finite medians/CI bounds are emitted as null and parse back as
// NaN. `improve` is "higher" or "lower": which direction is better,
// so regression detection knows the sign of "worse".
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/counters.hpp"

namespace sci::obs {

/// Direction of improvement for a metric ("rep/s" -> kHigher,
/// "ms" -> kLower). Drives the sign convention in scibench_ci.
enum class Improve { kLower, kHigher };
[[nodiscard]] const char* to_string(Improve improve) noexcept;
[[nodiscard]] Improve improve_from_string(std::string_view text);  ///< throws on junk

struct BenchMetric {
  std::string name;  ///< e.g. "pingpong_8B.1w.reuse"
  std::string unit;  ///< e.g. "rep/s"
  Improve improve = Improve::kLower;
  std::size_t n = 0;        ///< samples behind the median
  double median = 0.0;
  double ci_lo = 0.0;       ///< 95% nonparametric CI (min/max when n <= 5)
  double ci_hi = 0.0;
};

struct BenchReport {
  static constexpr int kVersion = 1;

  std::string bench;
  std::string git_sha = "unknown";
  std::map<std::string, std::string> context;  ///< build flags, host facts
  std::vector<BenchMetric> metrics;
  CounterSnapshot counters;  ///< allocator audits etc.; sorted on emit

  [[nodiscard]] const BenchMetric* find_metric(std::string_view name) const noexcept;
};

/// Canonical JSON for `report` (byte-deterministic; see header comment).
[[nodiscard]] std::string bench_report_json(const BenchReport& report);
/// Inverse of bench_report_json; throws std::runtime_error on schema
/// mismatch or malformed JSON.
[[nodiscard]] BenchReport parse_bench_report(std::string_view json_text);
/// Loads and parses one BENCH_*.json file (throws on I/O or schema).
[[nodiscard]] BenchReport load_bench_report(const std::string& path);

/// Writes `text` to `path` atomically (temp file + rename) so readers
/// never observe a torn file. Returns false on I/O failure.
bool write_file_atomic(const std::string& path, std::string_view text);

class BenchReporter {
 public:
  /// Fills git sha (SCIBENCH_GIT_SHA env var, else "unknown") and the
  /// standard build context: build_type, pooling, tracing,
  /// hardware_concurrency.
  explicit BenchReporter(std::string bench_name);

  BenchReporter& set_context(std::string key, std::string value);

  /// Summarizes `samples` the same way the bench prose does -- median +
  /// 95% nonparametric rank CI, min/max fallback for n <= 5 -- and
  /// records the metric. Throws std::invalid_argument on empty samples.
  BenchMetric& add_metric(std::string name, std::string unit,
                          std::span<const double> samples,
                          Improve improve = Improve::kLower);
  /// Records a metric whose summary the harness already computed.
  BenchMetric& add_summary(BenchMetric metric);
  /// Records an audited counter (e.g. allocator calls during steady
  /// state); duplicate names keep the last value.
  BenchReporter& add_counter(std::string name, std::uint64_t value);

  [[nodiscard]] const BenchReport& report() const noexcept { return report_; }

  /// `dir`/BENCH_`bench`.json -- the filename contract scibench_ci
  /// globs for.
  [[nodiscard]] std::string json_path(const std::string& dir) const;
  /// Atomically writes the canonical JSON into `dir` (created if
  /// missing); returns the path, or empty on I/O failure.
  std::string write_json(const std::string& dir) const;

  /// Compact GitHub-flavored table of the recorded metrics.
  [[nodiscard]] std::string render_markdown() const;

 private:
  BenchReport report_;
};

}  // namespace sci::obs
