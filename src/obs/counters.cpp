#include "obs/counters.hpp"

#include <algorithm>

namespace sci::obs {

CounterRegistry& CounterRegistry::instance() {
  static CounterRegistry registry;
  return registry;
}

Counter& CounterRegistry::get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

CounterSnapshot CounterRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CounterSnapshot snap;
  snap.reserve(counters_.size());
  for (const auto& [name, ctr] : counters_) snap.emplace_back(name, ctr.value());
  return snap;
}

void CounterRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, ctr] : counters_) ctr.reset();
}

std::uint64_t snapshot_value(const CounterSnapshot& snap, std::string_view name) {
  const auto it = std::lower_bound(
      snap.begin(), snap.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  return (it != snap.end() && it->first == name) ? it->second : 0;
}

CounterSnapshot snapshot_delta(const CounterSnapshot& before, const CounterSnapshot& after) {
  CounterSnapshot delta;
  for (const auto& [name, value] : after) {
    const std::uint64_t base = snapshot_value(before, name);
    if (value != base) delta.emplace_back(name, value - base);
  }
  return delta;
}

}  // namespace sci::obs
