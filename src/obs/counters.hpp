// sci::obs counters: a process-wide registry of named monotonic
// counters and high-water gauges. This is the "software PAPI" face of
// the observability layer (Section 6 lists counter access beside
// timers): the simulator's exact message/byte/noise tallies and the
// harness's own bookkeeping cost are first-class, queryable quantities,
// so every report can state what its production cost (Rule 9).
//
// Counters are relaxed atomics: increments from the single-threaded
// simulator are branch-plus-add cheap, and the threads/ layer can bump
// them without races. Registration (name -> slot) takes a mutex once;
// hot sites cache the returned reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sci::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// High-water gauge update: value = max(value, x).
  void set_max(std::uint64_t x) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < x && !value_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Name -> value pairs, sorted by name (deterministic iteration).
using CounterSnapshot = std::vector<std::pair<std::string, std::uint64_t>>;

class CounterRegistry {
 public:
  static CounterRegistry& instance();

  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid for the process lifetime.
  Counter& get(std::string_view name);

  [[nodiscard]] CounterSnapshot snapshot() const;

  /// Zeroes every registered counter (test isolation).
  void reset_all();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
};

/// Shorthand: obs::counter("net.messages").add(n). Hot paths should
/// cache the reference in a local static.
inline Counter& counter(std::string_view name) { return CounterRegistry::instance().get(name); }

/// Value of `name` in a snapshot; 0 when absent.
[[nodiscard]] std::uint64_t snapshot_value(const CounterSnapshot& snap, std::string_view name);

/// after - before, per name; names only in `after` keep their value,
/// zero-delta entries are dropped.
[[nodiscard]] CounterSnapshot snapshot_delta(const CounterSnapshot& before,
                                             const CounterSnapshot& after);

/// Well-known counter names used by the built-in instrumentation.
namespace keys {
inline constexpr const char* kEngineEvents = "engine.events";        ///< events dispatched
inline constexpr const char* kEngineQueueHwm = "engine.queue_hwm";   ///< queue depth high water
inline constexpr const char* kEngineCallbackHeapAllocs =
    "engine.callback_heap_allocs";  ///< InlineCallback oversize spills (0 = zero-alloc contract)
inline constexpr const char* kCoroFrameHeapAllocs =
    "simmpi.coro_frame_heap_allocs";  ///< coroutine-frame heap allocs (FramePool misses)
inline constexpr const char* kEngineArenaSlots = "engine.arena_slots";  ///< event pool high water
inline constexpr const char* kNetMessages = "net.messages";          ///< messages delivered
inline constexpr const char* kNetBytes = "net.bytes";                ///< payload bytes on the wire
inline constexpr const char* kNoiseDraws = "sim.noise_draws";        ///< perturb() invocations
inline constexpr const char* kNoiseInjectedNs = "sim.noise_injected_ns";  ///< extra ns injected
inline constexpr const char* kFaultDrops = "fault.drops";            ///< lost transfer attempts
inline constexpr const char* kFaultRetransmitNs = "fault.retransmit_ns";  ///< retransmit time
inline constexpr const char* kFaultDegradedTransfers =
    "fault.degraded_transfers";  ///< transfers routed over a degraded link
inline constexpr const char* kFaultStragglerNs =
    "fault.straggler_ns";  ///< extra compute ns injected on straggler nodes
inline constexpr const char* kHarnessSamples = "harness.samples";    ///< adaptive samples taken
inline constexpr const char* kHarnessOverheadNs = "harness.overhead_ns";  ///< bookkeeping time
inline constexpr const char* kCiRecomputes = "harness.ci_recomputes";     ///< CI re-evaluations
}  // namespace keys

}  // namespace sci::obs
