#include "obs/daemon_metrics.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace sci::obs {

std::string DaemonMetrics::to_json() const {
  std::string out;
  out.reserve(512);
  out += "{\n  \"schema\": \"scibench.daemon_metrics\",\n  \"version\": ";
  out += json::dump_size(static_cast<std::size_t>(kVersion));
  const auto field = [&out](const char* name, std::size_t value) {
    out += ",\n  \"";
    out += name;
    out += "\": " + json::dump_size(value);
  };
  field("jobs_submitted", jobs_submitted);
  field("jobs_completed", jobs_completed);
  field("jobs_with_failures", jobs_with_failures);
  field("jobs_rejected", jobs_rejected);
  field("queue_peak", queue_peak);
  field("cells_executed", cells_executed);
  field("cells_deduped", cells_deduped);
  field("cells_journal_replayed", cells_journal_replayed);
  field("cells_failed", cells_failed);
  field("cells_interrupted", cells_interrupted);
  field("workers_spawned", workers_spawned);
  field("workers_crashed", workers_crashed);
  out += "\n}\n";
  return out;
}

DaemonMetrics parse_daemon_metrics(std::string_view json_text) {
  const json::Value root = json::parse(json_text);
  if (root.at("schema").as_string() != "scibench.daemon_metrics") {
    throw std::runtime_error("daemon metrics: unknown schema \"" +
                             root.at("schema").as_string() + "\"");
  }
  if (root.at("version").as_size() != static_cast<std::size_t>(DaemonMetrics::kVersion)) {
    throw std::runtime_error("daemon metrics: unsupported version");
  }
  DaemonMetrics m;
  m.jobs_submitted = root.at("jobs_submitted").as_size();
  m.jobs_completed = root.at("jobs_completed").as_size();
  m.jobs_with_failures = root.at("jobs_with_failures").as_size();
  m.jobs_rejected = root.at("jobs_rejected").as_size();
  m.queue_peak = root.at("queue_peak").as_size();
  m.cells_executed = root.at("cells_executed").as_size();
  m.cells_deduped = root.at("cells_deduped").as_size();
  m.cells_journal_replayed = root.at("cells_journal_replayed").as_size();
  m.cells_failed = root.at("cells_failed").as_size();
  m.cells_interrupted = root.at("cells_interrupted").as_size();
  m.workers_spawned = root.at("workers_spawned").as_size();
  m.workers_crashed = root.at("workers_crashed").as_size();
  return m;
}

}  // namespace sci::obs
