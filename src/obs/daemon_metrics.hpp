// Daemon-level telemetry for the campaign service: what scibenchd has
// done since it started, one canonical-JSON snapshot.
//
// Same contract as the campaign metrics (exec/progress.hpp): purely
// observational, byte-deterministic emit via obs/json.hpp, and
// emit -> parse -> re-emit identical. The service updates the counters
// as jobs flow; the daemon writes the snapshot on shutdown (and on
// request) so an operator can see queue pressure, dedupe efficiency,
// and worker churn without scraping logs.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace sci::obs {

struct DaemonMetrics {
  static constexpr int kVersion = 1;

  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  /// Jobs whose campaign finished with failed cells (still completed).
  std::size_t jobs_with_failures = 0;
  /// Jobs rejected before running (bad envelope, non-serializable spec).
  std::size_t jobs_rejected = 0;
  /// Highest queue depth observed (admission pressure).
  std::size_t queue_peak = 0;

  std::size_t cells_executed = 0;  ///< fresh worker-process executions
  std::size_t cells_deduped = 0;   ///< served from the cross-job cache
  std::size_t cells_journal_replayed = 0;
  std::size_t cells_failed = 0;
  std::size_t cells_interrupted = 0;

  std::size_t workers_spawned = 0;  ///< initial fleet + crash respawns
  std::size_t workers_crashed = 0;  ///< deaths observed mid-cell

  /// Canonical JSON (schema "scibench.daemon_metrics").
  [[nodiscard]] std::string to_json() const;
};

/// Inverse of DaemonMetrics::to_json (throws on schema mismatch).
[[nodiscard]] DaemonMetrics parse_daemon_metrics(std::string_view json_text);

}  // namespace sci::obs
