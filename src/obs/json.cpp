#include "obs/json.hpp"

#include <charconv>
#include <cstdio>
#include <limits>

namespace sci::obs::json {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " + std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail(pos_, "bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail(pos_, "bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "bad \\u escape digit");
          }
          // The emitter never produces \u escapes; accept the ASCII
          // range on input so hand-written files still parse.
          if (code > 0x7f) fail(pos_ - 4, "\\u escape above ASCII unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail(pos_ - 1, "bad escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail(start, "expected a value");
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail(start, "bad number");
    Value v;
    v.type = Value::Type::kNumber;
    v.number = out;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  return *v;
}

double Value::as_number() const {
  if (type == Type::kNull) return std::numeric_limits<double>::quiet_NaN();
  if (type != Type::kNumber) throw std::runtime_error("json: expected a number");
  return number;
}

const std::string& Value::as_string() const {
  if (type != Type::kString) throw std::runtime_error("json: expected a string");
  return string;
}

std::size_t Value::as_size() const {
  const double v = as_number();
  if (!(v >= 0.0) || v != static_cast<double>(static_cast<std::size_t>(v))) {
    throw std::runtime_error("json: expected a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

Value parse(std::string_view text) { return Parser(text).document(); }

std::string dump_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "null";  // cannot happen for finite doubles
  return std::string(buf, ptr);
}

std::string dump_size(std::size_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  return std::string(buf, ptr);
}

void append_quoted(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  append_quoted(out, text);
  return out;
}

}  // namespace sci::obs::json
