// Minimal canonical JSON for the observability pipeline.
//
// Everything machine-readable this repo emits about itself -- bench
// reports (obs/bench_report.hpp), campaign metrics snapshots
// (exec/progress.hpp), and the scibench_ci history store -- goes
// through this one emitter/parser pair, so "emit -> parse -> re-emit"
// is byte-identical by construction:
//
//   * numbers are written with std::to_chars (shortest representation
//     that round-trips the exact double), so re-emitting a parsed value
//     reproduces the original bytes;
//   * object keys keep insertion order (emitters write a fixed schema
//     order; no std::map reshuffling);
//   * non-finite doubles are emitted as null (JSON has no NaN) and
//     parse back as quiet NaN.
//
// This is deliberately a subset: UTF-8 pass-through, no \u escapes on
// output (inputs with \uXXXX below 0x80 are accepted), doubles only.
// It exists so the repo needs no third-party JSON dependency.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sci::obs::json {

struct Value;
using Member = std::pair<std::string, Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Member> object;  ///< insertion order preserved
  std::vector<Value> array;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  /// Member that must exist (throws std::runtime_error naming the key).
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::size_t as_size() const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws std::runtime_error with a byte offset.
[[nodiscard]] Value parse(std::string_view text);

/// Canonical number emit: shortest round-trip form via std::to_chars;
/// NaN/inf become "null".
[[nodiscard]] std::string dump_number(double v);
/// Canonical unsigned emit (no exponent form, ever).
[[nodiscard]] std::string dump_size(std::size_t v);
/// Appends `text` as a quoted JSON string (escapes ", \, and control
/// bytes; everything else passes through as UTF-8).
void append_quoted(std::string& out, std::string_view text);
[[nodiscard]] std::string quoted(std::string_view text);

}  // namespace sci::obs::json
