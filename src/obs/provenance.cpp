#include "obs/provenance.hpp"

#include "obs/counters.hpp"

namespace sci::obs {

void SampleProbe::begin(std::uint64_t trace_id) {
  trace_id_ = trace_id;
  messages0_ = counter(keys::kNetMessages).value();
  bytes0_ = counter(keys::kNetBytes).value();
  draws0_ = counter(keys::kNoiseDraws).value();
  overhead_ns0_ = counter(keys::kHarnessOverheadNs).value();
}

SampleProvenance SampleProbe::end() const {
  SampleProvenance p;
  p.trace_id = trace_id_;
  p.messages = counter(keys::kNetMessages).value() - messages0_;
  p.bytes = counter(keys::kNetBytes).value() - bytes0_;
  p.noise_draws = counter(keys::kNoiseDraws).value() - draws0_;
  p.harness_overhead_s =
      static_cast<double>(counter(keys::kHarnessOverheadNs).value() - overhead_ns0_) * 1e-9;
  return p;
}

const std::vector<std::string>& provenance_columns() {
  static const std::vector<std::string> columns = {
      "prov_trace_id", "prov_messages", "prov_bytes", "prov_noise_draws",
      "prov_harness_overhead_s"};
  return columns;
}

std::vector<double> provenance_row(const SampleProvenance& p) {
  return {static_cast<double>(p.trace_id), static_cast<double>(p.messages),
          static_cast<double>(p.bytes), static_cast<double>(p.noise_draws),
          p.harness_overhead_s};
}

}  // namespace sci::obs
