// Per-sample provenance: the counter deltas and trace identity of one
// measurement. core::Dataset can append these as extra CSV columns so a
// data file carries, per row, *how* that number was produced -- which
// messages, bytes, and noise draws went into it and what the harness
// itself cost (Rules 5 and 9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sci::obs {

struct SampleProvenance {
  std::uint64_t trace_id = 0;          ///< caller-chosen id linking to a trace span
  std::uint64_t messages = 0;          ///< messages delivered during the sample
  std::uint64_t bytes = 0;             ///< payload bytes moved during the sample
  std::uint64_t noise_draws = 0;       ///< noise-model invocations during the sample
  double harness_overhead_s = 0.0;     ///< harness bookkeeping charged to the sample
};

/// Brackets one sample: begin() pins the counter baseline, end()
/// returns the deltas. Cheap enough to wrap every measurement (four
/// relaxed atomic loads per call).
class SampleProbe {
 public:
  void begin(std::uint64_t trace_id);
  [[nodiscard]] SampleProvenance end() const;

 private:
  std::uint64_t trace_id_ = 0;
  std::uint64_t messages0_ = 0;
  std::uint64_t bytes0_ = 0;
  std::uint64_t draws0_ = 0;
  std::uint64_t overhead_ns0_ = 0;
};

/// Column names Dataset appends when provenance is enabled, in the
/// order provenance_row() produces.
[[nodiscard]] const std::vector<std::string>& provenance_columns();

/// The provenance rendered as CSV cells (doubles, matching the columns).
[[nodiscard]] std::vector<double> provenance_row(const SampleProvenance& p);

}  // namespace sci::obs
