#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sci::obs {
namespace {

/// Deterministic number rendering: fixed microsecond timestamps with
/// picosecond resolution, shortest-roundtrip args. printf-family output
/// for a given double is stable within one libc, which is what the
/// byte-identical-trace guarantee needs.
std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", seconds * 1e6);
  return buf;
}

std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_args(std::ostream& os, const std::vector<TraceArg>& args) {
  os << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ',';
    os << '"';
    write_escaped(os, args[i].key);
    os << "\":" << fmt_value(args[i].value);
  }
  os << '}';
}

}  // namespace

void TraceSink::complete(int tid, const char* name, const char* cat, double start_s,
                         double dur_s, std::initializer_list<TraceArg> args) {
  events_.push_back(Event{'X', tid, name, cat, start_s, dur_s, std::vector<TraceArg>(args)});
}

void TraceSink::complete(int tid, const char* name, const char* cat, double start_s,
                         double dur_s, std::vector<TraceArg> args) {
  events_.push_back(Event{'X', tid, name, cat, start_s, dur_s, std::move(args)});
}

void TraceSink::instant(int tid, const char* name, const char* cat, double t_s,
                        std::initializer_list<TraceArg> args) {
  events_.push_back(Event{'i', tid, name, cat, t_s, 0.0, std::vector<TraceArg>(args)});
}

void TraceSink::counter(int tid, const char* name, double t_s, double value) {
  events_.push_back(Event{'C', tid, name, "counter", t_s, 0.0, {TraceArg{"value", value}}});
}

void TraceSink::set_track_name(int tid, std::string name) {
  track_names_[tid] = std::move(name);
}

void TraceSink::merge(const TraceSink& other, int tid_offset) {
  events_.reserve(events_.size() + other.events_.size());
  for (Event e : other.events_) {
    e.tid += tid_offset;
    events_.push_back(std::move(e));
  }
  for (const auto& [tid, name] : other.track_names_) {
    track_names_[tid + tid_offset] = name;
  }
}

void TraceSink::clear() {
  events_.clear();
  track_names_.clear();
}

void TraceSink::write_json(std::ostream& os, const WriteOptions& options) const {
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"metadata\": {\"tool\": \"scibench\", "
        "\"format_version\": 1";
  if (options.wallclock_metadata) {
    const auto unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::system_clock::now().time_since_epoch())
                             .count();
    os << ", \"captured_unix_ms\": " << unix_ms;
  }
  os << "},\n\"traceEvents\": [\n";

  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":")";
  write_escaped(os, process_name_);
  os << "\"}}";
  for (const auto& [tid, name] : track_names_) {
    sep();
    os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tid
       << R"(,"args":{"name":")";
    write_escaped(os, name);
    os << "\"}}";
  }

  for (const Event& e : events_) {
    sep();
    os << "{\"name\":\"";
    write_escaped(os, e.name);
    os << "\",\"cat\":\"";
    write_escaped(os, e.cat);
    os << "\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << fmt_us(e.ts_s);
    if (e.phase == 'X') os << ",\"dur\":" << fmt_us(e.dur_s);
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (!e.args.empty() || e.phase == 'C') {
      os << ',';
      write_args(os, e.args);
    }
    os << '}';
  }
  os << "\n]\n}\n";
}

std::string TraceSink::to_json(const WriteOptions& options) const {
  std::ostringstream os;
  write_json(os, options);
  return os.str();
}

void TraceSink::save(const std::string& path, const WriteOptions& options) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("TraceSink::save: cannot open " + path);
  write_json(os, options);
}

double host_now_s() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

}  // namespace sci::obs
