// sci::obs tracing: structured telemetry for the simulator and the
// measurement harness (Rule 9: a number without its production story is
// not a result).
//
// The model is the Chrome trace-event format (viewable in Perfetto or
// chrome://tracing): complete spans ("X"), instant events ("i"), and
// counter samples ("C") on integer tracks. Simulator layers emit spans
// in *simulated* seconds on one track per rank, so the binomial-tree
// structure of a collective is literally visible; the measurement
// harness emits spans in host seconds on the harness track.
//
// Cost contract (Section 4.1: the harness must not perturb what it
// measures):
//   - compiled out entirely with -DSCIBENCH_TRACING=0 (CMake option
//     SCIBENCH_TRACING=OFF): the SCI_TRACE_* macros expand to nothing
//     and no argument expression is evaluated;
//   - compiled in but no sink attached: one thread-local load and one
//     branch per instrumentation site (bench_library_micro's
//     BM_TraceUnattachedBranch pins this below timer resolution);
//   - attached: events append to an in-memory vector, no I/O until
//     write_json()/save().
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#ifndef SCIBENCH_TRACING
#define SCIBENCH_TRACING 1
#endif

namespace sci::obs {

/// One numeric argument attached to an event ("args" in the trace JSON).
/// Keys must outlive the sink (string literals in practice).
struct TraceArg {
  template <typename T>
  TraceArg(const char* k, T v) : key(k), value(static_cast<double>(v)) {}
  const char* key;
  double value;
};

/// Track-id conventions used by the built-in instrumentation. Rank r of
/// a simulated World emits on track r; the wire (message flight) of a
/// message sent by rank r renders on track kWireTrackBase + r.
inline constexpr int kHarnessTrack = 900;
inline constexpr int kEngineTrack = 990;
inline constexpr int kWireTrackBase = 1000;

/// In-memory event collector; writes Chrome trace-event JSON. Not
/// thread-safe: attach one sink per thread (the simulator is
/// single-threaded, so this is the natural granularity).
class TraceSink {
 public:
  /// Complete span ("X"): [start_s, start_s + dur_s) on track `tid`.
  /// `name`/`cat` must be string literals (stored by pointer).
  void complete(int tid, const char* name, const char* cat, double start_s, double dur_s,
                std::initializer_list<TraceArg> args = {});
  void complete(int tid, const char* name, const char* cat, double start_s, double dur_s,
                std::vector<TraceArg> args);

  /// Instant event ("i", thread scope).
  void instant(int tid, const char* name, const char* cat, double t_s,
               std::initializer_list<TraceArg> args = {});

  /// Counter sample ("C"); renders as a value track in Perfetto.
  void counter(int tid, const char* name, double t_s, double value);

  /// Track label (emitted as thread_name metadata).
  void set_track_name(int tid, std::string name);
  void set_process_name(std::string name) { process_name_ = std::move(name); }

  /// Appends every event and track name of `other`, shifting its track
  /// ids by `tid_offset`. Lets a parallel harness collect per-worker
  /// sinks (TraceSink is single-threaded by design) and merge them into
  /// one trace with disjoint per-worker track blocks after the join.
  void merge(const TraceSink& other, int tid_offset = 0);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::map<int, std::string>& track_names() const noexcept {
    return track_names_;
  }
  void clear();

  struct WriteOptions {
    /// Embed the wall-clock capture time in the metadata header. Turn
    /// off for byte-identical output across runs (determinism tests).
    bool wallclock_metadata = true;
  };

  /// JSON object form: {"traceEvents": [...], "metadata": {...}}.
  /// ts/dur are microseconds per the Chrome spec; output is
  /// deterministic except for the optional wall-clock metadata line.
  void write_json(std::ostream& os, const WriteOptions& options) const;
  void write_json(std::ostream& os) const { write_json(os, WriteOptions{}); }
  [[nodiscard]] std::string to_json(const WriteOptions& options) const;
  [[nodiscard]] std::string to_json() const { return to_json(WriteOptions{}); }
  void save(const std::string& path, const WriteOptions& options) const;
  void save(const std::string& path) const { save(path, WriteOptions{}); }

 private:
  struct Event {
    char phase;  // 'X' | 'i' | 'C'
    int tid;
    const char* name;
    const char* cat;
    double ts_s;
    double dur_s;
    std::vector<TraceArg> args;
  };

  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
  std::string process_name_ = "scibench";
};

namespace detail {
inline thread_local TraceSink* g_sink = nullptr;
}

/// The sink instrumentation writes to, or nullptr when detached. The
/// accessor is the entire disabled-path cost: one thread-local load.
[[nodiscard]] inline TraceSink* sink() noexcept { return detail::g_sink; }
inline void attach(TraceSink* s) noexcept { detail::g_sink = s; }
inline void detach() noexcept { detail::g_sink = nullptr; }

/// RAII attach/detach for a measurement scope.
class ScopedAttach {
 public:
  explicit ScopedAttach(TraceSink& s) noexcept : previous_(sink()) { attach(&s); }
  ~ScopedAttach() { attach(previous_); }
  ScopedAttach(const ScopedAttach&) = delete;
  ScopedAttach& operator=(const ScopedAttach&) = delete;

 private:
  TraceSink* previous_;
};

/// Monotonic host time in seconds since the first call in this process;
/// the time base for harness-side (non-simulated) spans.
[[nodiscard]] double host_now_s() noexcept;

/// Marks values as used regardless of SCIBENCH_TRACING, for locals whose
/// only consumer is a trace macro. One shared spelling instead of ad hoc
/// `(void)x;` casts scattered next to each instrumentation site. Note
/// the arguments ARE evaluated (unlike disabled SCI_TRACE_* macros), so
/// only pass plain locals.
template <typename... Ts>
constexpr void unused(const Ts&... /*values*/) noexcept {}
#define SCI_TRACE_UNUSED(...) ::sci::obs::unused(__VA_ARGS__)

#if SCIBENCH_TRACING

/// Host-time RAII span on kHarnessTrack; emits on destruction if a sink
/// is attached then.
class HostSpan {
 public:
  HostSpan(const char* name, const char* cat) noexcept
      : name_(name), cat_(cat), t0_(host_now_s()) {}
  ~HostSpan() {
    if (TraceSink* s = sink()) s->complete(kHarnessTrack, name_, cat_, t0_, host_now_s() - t0_);
  }
  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  double t0_;
};

#define SCI_TRACE_ATTACHED() (::sci::obs::sink() != nullptr)
#define SCI_TRACE_COMPLETE(tid, name, cat, start_s, dur_s, ...)                          \
  do {                                                                                   \
    if (::sci::obs::TraceSink* sci_obs_sink_ = ::sci::obs::sink())                       \
      sci_obs_sink_->complete((tid), (name), (cat), (start_s), (dur_s)__VA_OPT__(, )     \
                                  __VA_ARGS__);                                          \
  } while (0)
#define SCI_TRACE_INSTANT(tid, name, cat, t_s, ...)                                      \
  do {                                                                                   \
    if (::sci::obs::TraceSink* sci_obs_sink_ = ::sci::obs::sink())                       \
      sci_obs_sink_->instant((tid), (name), (cat), (t_s)__VA_OPT__(, ) __VA_ARGS__);     \
  } while (0)
#define SCI_TRACE_COUNTER(tid, name, t_s, value)                                         \
  do {                                                                                   \
    if (::sci::obs::TraceSink* sci_obs_sink_ = ::sci::obs::sink())                       \
      sci_obs_sink_->counter((tid), (name), (t_s), (value));                             \
  } while (0)
#define SCI_TRACE_HOST_SPAN(var, name, cat) ::sci::obs::HostSpan var{(name), (cat)}
// Hoisted-sink variants for hot loops: SCI_TRACE_SINK_HOIST reads the
// thread-local sink pointer once into `var`; the SINK_* emitters branch
// on that local instead of reloading per event. A sink attached while
// the loop runs is observed on the next hoist.
#define SCI_TRACE_SINK_HOIST(var) ::sci::obs::TraceSink* const var = ::sci::obs::sink()
#define SCI_TRACE_SINK_COUNTER(var, tid, name, t_s, value)      \
  do {                                                          \
    if ((var) != nullptr) (var)->counter((tid), (name), (t_s), (value)); \
  } while (0)

#else  // !SCIBENCH_TRACING

#define SCI_TRACE_ATTACHED() false
#define SCI_TRACE_COMPLETE(tid, name, cat, start_s, dur_s, ...) \
  do {                                                          \
  } while (0)
#define SCI_TRACE_INSTANT(tid, name, cat, t_s, ...) \
  do {                                              \
  } while (0)
#define SCI_TRACE_COUNTER(tid, name, t_s, value) \
  do {                                           \
  } while (0)
#define SCI_TRACE_HOST_SPAN(var, name, cat) \
  do {                                      \
  } while (0)
#define SCI_TRACE_SINK_HOIST(var) \
  do {                            \
  } while (0)
#define SCI_TRACE_SINK_COUNTER(var, tid, name, t_s, value) \
  do {                                                     \
  } while (0)

#endif  // SCIBENCH_TRACING

}  // namespace sci::obs
