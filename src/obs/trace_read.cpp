#include "obs/trace_read.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <istream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace sci::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, sufficient for the trace schema
// (objects, arrays, strings, numbers, true/false/null). Kept local: the
// toolchain has no JSON dependency and the input is our own writer.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = text_.compare(pos_, 4, "true") == 0;
        pos_ += v.boolean ? 4 : 5;
        return v;
      }
      case 'n': {
        pos_ += 4;
        return {};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // The writer only escapes control characters; anything else is
          // passed through as a single byte.
          out += static_cast<char>(code & 0xff);
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) fail("expected number");
    pos_ += static_cast<std::size_t>(end - begin);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double require_number(const JsonValue& event, const std::string& key) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error("trace event missing numeric '" + key + "'");
  }
  return v->number;
}

std::string require_string(const JsonValue& event, const std::string& key) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    throw std::runtime_error("trace event missing string '" + key + "'");
  }
  return v->string;
}

}  // namespace

ParsedTrace parse_trace(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("trace JSON: top level must be an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("trace JSON: missing traceEvents array");
  }

  ParsedTrace trace;
  for (const JsonValue& ev : events->array) {
    const std::string ph = require_string(ev, "ph");
    const int tid = static_cast<int>(require_number(ev, "tid"));
    const std::string name = require_string(ev, "name");

    if (ph == "M") {
      const JsonValue* args = ev.find("args");
      if (args != nullptr) {
        if (const JsonValue* label = args->find("name"); label != nullptr) {
          if (name == "thread_name") trace.track_names[tid] = label->string;
          if (name == "process_name") trace.process_name = label->string;
        }
      }
      continue;
    }

    ParsedEvent out;
    out.phase = ph.empty() ? '?' : ph[0];
    out.tid = tid;
    out.name = name;
    if (const JsonValue* cat = ev.find("cat"); cat != nullptr) out.cat = cat->string;
    out.ts_s = require_number(ev, "ts") * 1e-6;
    if (out.phase == 'X') out.dur_s = require_number(ev, "dur") * 1e-6;
    if (const JsonValue* args = ev.find("args"); args != nullptr) {
      for (const auto& [key, value] : args->object) {
        if (value.kind == JsonValue::Kind::kNumber) out.args[key] = value.number;
      }
    }
    trace.events.push_back(std::move(out));
  }
  return trace;
}

ParsedTrace parse_trace(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_trace(buffer.str());
}

ParsedTrace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_trace: cannot open " + path);
  return parse_trace(is);
}

std::vector<int> ParsedTrace::rank_tracks() const {
  std::vector<std::pair<int, int>> ranked;  // (rank, tid)
  for (const auto& [tid, name] : track_names) {
    if (name.rfind("rank ", 0) == 0) {
      ranked.emplace_back(std::atoi(name.c_str() + 5), tid);
    }
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> tids;
  tids.reserve(ranked.size());
  for (const auto& [rank, tid] : ranked) tids.push_back(tid);
  return tids;
}

std::vector<RankBreakdown> per_rank_breakdown(const ParsedTrace& trace) {
  std::map<int, std::vector<const ParsedEvent*>> spans_by_tid;
  for (const ParsedEvent& e : trace.events) {
    if (e.phase == 'X') spans_by_tid[e.tid].push_back(&e);
  }

  std::vector<RankBreakdown> out;
  for (auto& [tid, spans] : spans_by_tid) {
    RankBreakdown b;
    b.tid = tid;
    const auto it = trace.track_names.find(tid);
    b.track = it != trace.track_names.end() ? it->second : "tid " + std::to_string(tid);

    std::map<std::string, double> totals;
    std::vector<std::pair<double, double>> intervals;
    for (const ParsedEvent* s : spans) {
      b.makespan_s = std::max(b.makespan_s, s->end_s());
      totals[s->name] += s->dur_s;
      intervals.emplace_back(s->ts_s, s->end_s());
    }
    // Busy = union of (possibly nested) span intervals.
    std::sort(intervals.begin(), intervals.end());
    double cover_end = -1.0;
    for (const auto& [lo, hi] : intervals) {
      if (lo > cover_end) {
        b.busy_s += hi - lo;
        cover_end = hi;
      } else if (hi > cover_end) {
        b.busy_s += hi - cover_end;
        cover_end = hi;
      }
    }
    b.idle_s = std::max(0.0, b.makespan_s - b.busy_s);

    b.by_name.assign(totals.begin(), totals.end());
    std::sort(b.by_name.begin(), b.by_name.end(), [](const auto& a, const auto& c) {
      return a.second != c.second ? a.second > c.second : a.first < c.first;
    });
    out.push_back(std::move(b));
  }
  return out;
}

namespace {

bool is_recv_like(const ParsedEvent& e) { return e.name == "recv" || e.name == "irecv"; }
bool is_send_like(const ParsedEvent& e) { return e.name == "send" || e.name == "isend"; }

}  // namespace

std::vector<PathSegment> critical_path(const ParsedTrace& trace) {
  const std::vector<int> ranks = trace.rank_tracks();
  const std::set<int> rank_set(ranks.begin(), ranks.end());

  // Leaf spans only: point-to-point and compute. Collective wrapper
  // spans ("coll") nest the leaves and would shadow them.
  std::vector<const ParsedEvent*> leaves;
  for (const ParsedEvent& e : trace.events) {
    if (e.phase != 'X' || rank_set.count(e.tid) == 0) continue;
    if (e.cat == "p2p" || e.cat == "compute") leaves.push_back(&e);
  }
  if (leaves.empty()) {
    for (const ParsedEvent& e : trace.events) {
      if (e.phase == 'X' && rank_set.count(e.tid) != 0) leaves.push_back(&e);
    }
  }
  if (leaves.empty()) return {};

  const ParsedEvent* cur = *std::max_element(
      leaves.begin(), leaves.end(), [](const ParsedEvent* a, const ParsedEvent* b) {
        if (a->end_s() != b->end_s()) return a->end_s() < b->end_s();
        return a->ts_s < b->ts_s;  // prefer the later-starting (innermost) span
      });

  constexpr double kEps = 1e-12;
  std::vector<PathSegment> path;
  std::set<const ParsedEvent*> visited;
  while (cur != nullptr && visited.insert(cur).second) {
    path.push_back(PathSegment{cur->tid, cur->name, cur->ts_s, cur->end_s()});

    const ParsedEvent* next = nullptr;
    if (is_recv_like(*cur) && cur->has_arg("mseq")) {
      // The recv was unblocked by a message: hop to the matching send.
      const double mseq = cur->arg("mseq");
      for (const ParsedEvent* s : leaves) {
        if (is_send_like(*s) && s->has_arg("mseq") && s->arg("mseq") == mseq) {
          next = s;
          break;
        }
      }
    }
    if (next == nullptr) {
      // Previous blocking operation on the same track.
      for (const ParsedEvent* s : leaves) {
        if (s->tid != cur->tid || s == cur || s->end_s() > cur->ts_s + kEps) continue;
        if (next == nullptr || s->end_s() > next->end_s() ||
            (s->end_s() == next->end_s() && s->ts_s > next->ts_s)) {
          next = s;
        }
      }
    }
    cur = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<LateSender> late_senders(const ParsedTrace& trace) {
  std::map<int, LateSender> by_src;
  for (const ParsedEvent& e : trace.events) {
    if (e.phase != 'X' || !is_recv_like(e) || !e.has_arg("src")) continue;
    const double wait = e.arg("wait_s");
    if (wait <= 0.0) continue;
    const int src = static_cast<int>(e.arg("src"));
    LateSender& entry = by_src[src];
    entry.src_rank = src;
    entry.blocked_s += wait;
    ++entry.waits;
  }
  std::vector<LateSender> out;
  out.reserve(by_src.size());
  for (const auto& [src, entry] : by_src) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const LateSender& a, const LateSender& b) {
    return a.blocked_s != b.blocked_s ? a.blocked_s > b.blocked_s : a.src_rank < b.src_rank;
  });
  return out;
}

}  // namespace sci::obs
