// Reading side of the tracing layer: parse a Chrome trace-event JSON
// (as written by TraceSink) back into events and analyze it -- per-rank
// time breakdowns, the critical path through a collective, and
// late-sender attribution. tools/scibench_trace is a thin CLI over
// these; tests use them to schema-check emitted traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sci::obs {

struct ParsedEvent {
  char phase = 'X';  // 'X' | 'i' | 'C' | 'M'
  int tid = 0;
  std::string name;
  std::string cat;
  double ts_s = 0.0;
  double dur_s = 0.0;
  std::map<std::string, double> args;

  [[nodiscard]] double end_s() const noexcept { return ts_s + dur_s; }
  [[nodiscard]] double arg(const std::string& key, double fallback = 0.0) const {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has_arg(const std::string& key) const { return args.count(key) != 0; }
};

struct ParsedTrace {
  std::vector<ParsedEvent> events;          ///< X/i/C events, file order
  std::map<int, std::string> track_names;   ///< from thread_name metadata
  std::string process_name;

  /// Track ids labeled "rank N", ascending by N.
  [[nodiscard]] std::vector<int> rank_tracks() const;
};

/// Parses TraceSink output. Throws std::runtime_error with a position
/// message on malformed JSON or events missing required keys -- this is
/// the schema check the tests rely on.
[[nodiscard]] ParsedTrace parse_trace(std::istream& is);
[[nodiscard]] ParsedTrace parse_trace(const std::string& json);
[[nodiscard]] ParsedTrace load_trace(const std::string& path);

/// Where one rank's simulated time went.
struct RankBreakdown {
  int tid = 0;
  std::string track;
  double makespan_s = 0.0;  ///< last span end on this track
  double busy_s = 0.0;      ///< union of span intervals (overlaps merged)
  double idle_s = 0.0;      ///< makespan - busy
  std::vector<std::pair<std::string, double>> by_name;  ///< span name -> summed duration
};

[[nodiscard]] std::vector<RankBreakdown> per_rank_breakdown(const ParsedTrace& trace);

/// One hop of the critical path, earliest first.
struct PathSegment {
  int tid = 0;
  std::string name;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Walks back from the last-finishing point-to-point span: a recv hop
/// jumps to the matching send on the sender's track (exact match via
/// the "mseq" argument the instrumentation attaches to both sides),
/// otherwise to the previous span on the same track. The result is the
/// dependence chain that determined the collective's completion time.
[[nodiscard]] std::vector<PathSegment> critical_path(const ParsedTrace& trace);

/// Per sender: how long receivers sat blocked waiting for its messages
/// (the "wait_s" argument of recv spans), i.e. late-sender attribution.
struct LateSender {
  int src_rank = 0;
  double blocked_s = 0.0;
  std::uint64_t waits = 0;
};

[[nodiscard]] std::vector<LateSender> late_senders(const ParsedTrace& trace);

}  // namespace sci::obs
