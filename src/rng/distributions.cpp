#include "rng/distributions.hpp"

#include <cmath>
#include <numbers>

namespace sci::rng {

double uniform(Xoshiro256& gen, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(gen);
}

double normal(Xoshiro256& gen) noexcept {
  // Box-Muller. u1 is nudged away from 0 so log() stays finite.
  const double u1 = uniform01(gen);
  const double u2 = uniform01(gen);
  const double r = std::sqrt(-2.0 * std::log(u1 + 0x1.0p-54));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

double normal(Xoshiro256& gen, double mean, double stddev) noexcept {
  return mean + stddev * normal(gen);
}

double lognormal(Xoshiro256& gen, double mu, double sigma) noexcept {
  return std::exp(normal(gen, mu, sigma));
}

double exponential(Xoshiro256& gen, double lambda) noexcept {
  return -std::log1p(-uniform01(gen)) / lambda;
}

double pareto(Xoshiro256& gen, double scale, double shape) noexcept {
  return scale / std::pow(1.0 - uniform01(gen), 1.0 / shape);
}

bool bernoulli(Xoshiro256& gen, double p) noexcept {
  return uniform01(gen) < p;
}

double gamma(Xoshiro256& gen, double shape, double scale) noexcept {
  // Marsaglia & Tsang (2000). For shape < 1 use the boost trick
  // G(a) = G(a+1) * U^(1/a).
  if (shape < 1.0) {
    const double u = uniform01(gen);
    return gamma(gen, shape + 1.0, scale) * std::pow(u + 0x1.0p-54, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal(gen);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform01(gen);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u + 0x1.0p-54) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

std::size_t discrete(Xoshiro256& gen, std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = uniform01(gen) * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace sci::rng
