// Deterministic samplers over Xoshiro256.
//
// Each sampler consumes a fixed, documented number of generator draws per
// sample so simulated experiments replay identically regardless of
// platform or standard library.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro.hpp"

namespace sci::rng {

/// Uniform double in [0, 1) with 53 bits of precision (1 draw).
[[nodiscard]] inline double uniform01(Xoshiro256& gen) noexcept {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi) (1 draw).
[[nodiscard]] double uniform(Xoshiro256& gen, double lo, double hi) noexcept;

/// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
/// Inline: shuffle-heavy paths (node allocation on every World reset)
/// make one call per element, and the generator itself is inline.
[[nodiscard]] inline std::uint64_t uniform_below(Xoshiro256& gen,
                                                 std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire 2019: unbiased bounded integers without division in the hot path.
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Standard normal via Box-Muller (always consumes 2 draws; the second
/// deviate is intentionally discarded for replay stability).
[[nodiscard]] double normal(Xoshiro256& gen) noexcept;

/// Normal with given mean and standard deviation.
[[nodiscard]] double normal(Xoshiro256& gen, double mean, double stddev) noexcept;

/// Log-normal: exp(N(mu, sigma)). `mu`/`sigma` act on the log scale.
[[nodiscard]] double lognormal(Xoshiro256& gen, double mu, double sigma) noexcept;

/// Exponential with rate lambda (mean 1/lambda).
[[nodiscard]] double exponential(Xoshiro256& gen, double lambda) noexcept;

/// Pareto (type I) with scale x_m > 0 and shape alpha > 0. Heavy right
/// tail; models rare long OS-noise detours (Hoefler et al., SC'10).
[[nodiscard]] double pareto(Xoshiro256& gen, double scale, double shape) noexcept;

/// Bernoulli trial with probability p (1 draw).
[[nodiscard]] bool bernoulli(Xoshiro256& gen, double p) noexcept;

/// Gamma(shape k, scale theta) via Marsaglia-Tsang; draw count varies.
[[nodiscard]] double gamma(Xoshiro256& gen, double shape, double scale) noexcept;

/// Samples an index according to non-negative `weights` (1 draw).
[[nodiscard]] std::size_t discrete(Xoshiro256& gen, std::span<const double> weights) noexcept;

/// Fisher-Yates shuffle (size-1 draws, one uniform_below per step).
inline void shuffle(Xoshiro256& gen, std::span<std::size_t> values) noexcept {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = uniform_below(gen, i);
    std::swap(values[i - 1], values[j]);
  }
}

/// Convenience: n iid samples from `sampler(gen)`.
template <typename Sampler>
[[nodiscard]] std::vector<double> sample_n(Xoshiro256& gen, std::size_t n, Sampler&& sampler) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sampler(gen));
  return out;
}

}  // namespace sci::rng
