#include "rng/lanes.hpp"

#include "rng/distributions.hpp"

namespace sci::rng {

namespace {

/// One lane's draws with the generator held in registers for the whole
/// run (copy in, copy out) instead of round-tripping state_ through
/// memory on every draw.
template <bool kHasMap>
void fill_one(Xoshiro256& gen, std::uint64_t bound, std::size_t count,
              const std::uint32_t* map, std::uint32_t* out) noexcept {
  Xoshiro256 local = gen;
  for (std::size_t i = 0; i < count; ++i) {
    const auto draw = static_cast<std::uint32_t>(uniform_below(local, bound));
    out[i] = kHasMap ? map[draw] : draw;
  }
  gen = local;
}

}  // namespace

void LaneRng::reset(std::uint64_t seed, std::size_t lanes) {
  gens_.clear();
  gens_.reserve(lanes);
  Xoshiro256 gen(seed);
  for (std::size_t l = 0; l < lanes; ++l) gens_.push_back(gen.split());
}

void LaneRng::fill_indices(std::uint64_t bound, std::size_t count, std::size_t first,
                           std::size_t active, const std::uint32_t* map, std::uint32_t* out,
                           std::size_t stride) noexcept {
  // One lane at a time, each with its generator in registers. Measured
  // against 2-/4-wide software-interleaved variants: a single xoshiro
  // chain already runs at its ~5-cycle dependency-latency floor
  // (~1.4 ns/draw here), while four interleaved 256-bit states spill to
  // the stack and come out 30-170% slower per draw. The cross-lane ILP
  // that does pay lives downstream, in the consumers that read four
  // filled rows at once (kahan_mean_rows4).
  if (map != nullptr) {
    for (std::size_t l = 0; l < active; ++l)
      fill_one<true>(gens_[first + l], bound, count, map, out + l * stride);
  } else {
    for (std::size_t l = 0; l < active; ++l)
      fill_one<false>(gens_[first + l], bound, count, map, out + l * stride);
  }
}

}  // namespace sci::rng
