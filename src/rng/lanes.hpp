// Multi-lane xoshiro256++: L independent streams derived from one seed.
//
// Lane l is Xoshiro256(seed) advanced by l jump() calls (2^128 steps
// each, via the precomputed byte-basis table), so lane 0 is exactly the
// legacy single-stream generator and the streams are provably disjoint
// for any realistic draw count. Batch fills write one row per lane;
// consumers that want cross-lane instruction-level parallelism read
// several filled rows at once (see kahan_mean_rows4 in the bootstrap
// engine) -- the fill itself stays one-lane-at-a-time because a single
// xoshiro chain already runs at its dependency-latency floor (see
// fill_indices).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/xoshiro.hpp"

namespace sci::rng {

class LaneRng {
 public:
  LaneRng() = default;

  /// Rebuilds the lane set: lane l = Xoshiro256(seed) jumped l times.
  /// Alloc-free once `lanes` has been seen (capacity is kept).
  void reset(std::uint64_t seed, std::size_t lanes);

  [[nodiscard]] std::size_t lanes() const noexcept { return gens_.size(); }
  [[nodiscard]] Xoshiro256& lane(std::size_t l) noexcept { return gens_[l]; }
  [[nodiscard]] const Xoshiro256& lane(std::size_t l) const noexcept { return gens_[l]; }

  /// For each lane l in [first, first + active): appends `count` draws of
  /// uniform_below(lane, bound) to out + (l - first) * stride, mapped
  /// through `map` when non-null (out[k] = map[draw]). Each lane consumes
  /// exactly the draws uniform_below would -- rejection redraws included
  /// -- so per-lane sequences are bit-identical to scalar use of the same
  /// generator. Requires bound <= UINT32_MAX.
  void fill_indices(std::uint64_t bound, std::size_t count, std::size_t first,
                    std::size_t active, const std::uint32_t* map, std::uint32_t* out,
                    std::size_t stride) noexcept;

 private:
  std::vector<Xoshiro256> gens_;
};

}  // namespace sci::rng
