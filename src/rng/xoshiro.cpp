#include "rng/xoshiro.hpp"

namespace sci::rng {
namespace {

using State = std::array<std::uint64_t, 4>;

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// One state transition of xoshiro256++. The output scrambler is the
/// only nonlinear part of the generator; the transition itself is pure
/// XOR/shift/rotate, i.e. linear over GF(2) -- the fact the jump table
/// below rests on.
constexpr void step(State& s) noexcept {
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl(s[3], 45);
}

/// Reference jump from Blackman & Vigna: 256 transitions, XOR-folding
/// the states selected by the jump polynomial (2^128 steps).
constexpr void reference_jump(State& s) noexcept {
  constexpr State kJump = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                           0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  State acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= s[i];
      }
      step(s);
    }
  }
  s = acc;
}

/// The jump is a fixed linear map J over GF(2)^256, so J(state) is the
/// XOR of J's images of each state byte: row[p][v] = J(state whose p-th
/// byte is v, all else zero). 32 table lookups replace 256 generator
/// steps -- World::reset() calls split() per rank, which made the
/// reference loop the single largest cost of reusing a world.
struct JumpTable {
  std::array<std::array<State, 256>, 32> row;
};

JumpTable build_jump_table() {
  // Images of the 256 single-bit states...
  std::array<State, 256> basis;
  for (std::size_t bit = 0; bit < 256; ++bit) {
    State s{};
    s[bit / 64] = std::uint64_t{1} << (bit % 64);
    reference_jump(s);
    basis[bit] = s;
  }
  // ...folded into per-byte rows by linearity.
  JumpTable table;
  for (std::size_t p = 0; p < 32; ++p) {
    for (std::size_t v = 0; v < 256; ++v) {
      State acc{};
      for (std::size_t bit = 0; bit < 8; ++bit) {
        if (v & (std::size_t{1} << bit)) {
          const State& b = basis[p * 8 + bit];
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= b[i];
        }
      }
      table.row[p][v] = acc;
    }
  }
  return table;
}

const JumpTable& jump_table() {
  static const JumpTable table = build_jump_table();
  return table;
}

}  // namespace

void Xoshiro256::jump() noexcept {
  const JumpTable& table = jump_table();
  State acc{};
  for (std::size_t p = 0; p < 32; ++p) {
    const auto byte = static_cast<std::size_t>((state_[p / 8] >> ((p % 8) * 8)) & 0xff);
    const State& r = table.row[p][byte];
    for (std::size_t i = 0; i < 4; ++i) acc[i] ^= r[i];
  }
  state_ = acc;
}

void Xoshiro256::jump_reference() noexcept { reference_jump(state_); }

}  // namespace sci::rng
