// xoshiro256++ pseudo-random number generator.
//
// scibench needs bit-reproducible random streams so that simulated
// experiments are *deterministic measurements* in the sense of the paper:
// re-running a bench binary regenerates exactly the published series.
// std::mt19937 + std:: distributions are not bit-stable across standard
// library implementations, so we carry our own generator and samplers.
//
// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators", ACM TOMS 2021. Public-domain reference implementation.
#pragma once

#include <array>
#include <cstdint>

namespace sci::rng {

/// splitmix64: used to expand a single 64-bit seed into a full xoshiro
/// state. Also a fine standalone mixing function for hashing seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ 1.0. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x185706b82c2e03f8ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// per-rank / per-node streams from a single experiment seed. Applies
  /// a precomputed byte-indexed table of the (GF(2)-linear) jump map:
  /// 32 lookups instead of 256 generator steps, bit-identical to the
  /// reference loop (cross-checked by test_rng against
  /// jump_reference()).
  void jump() noexcept;

  /// The Blackman & Vigna reference jump loop; exists so tests can pin
  /// the table-based jump() against it.
  void jump_reference() noexcept;

  /// Returns a generator 2^128 steps ahead and advances *this past it.
  [[nodiscard]] Xoshiro256 split() noexcept {
    Xoshiro256 child = *this;
    jump();
    return child;
  }

  [[nodiscard]] constexpr bool operator==(const Xoshiro256&) const noexcept = default;

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace sci::rng
