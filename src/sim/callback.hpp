// Small-buffer callback type for the event engine's hot path.
//
// Every simulated event carries a callback; with std::function the
// common captures (a delivered Message, a coroutine handle, a shared
// completion state) overflow the library's tiny SBO and cost one heap
// allocation + deallocation per event. InlineCallback sizes its inline
// buffer so every callback the simulator schedules -- coroutine
// resumes, message deliveries, completion notifications -- is stored
// in place: the steady-state event loop performs zero allocations.
//
// Callables larger than the buffer still work (heap fallback) but bump
// the obs counter `engine.callback_heap_allocs`, so tests and benches
// can assert the zero-allocation contract instead of trusting it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "obs/counters.hpp"

namespace sci::sim {

/// Per-thread running count of InlineCallback heap spills. Mirrors the
/// global obs counter `engine.callback_heap_allocs` but is private to
/// the calling thread, so a campaign worker can take per-replication
/// deltas without seeing other workers' spills (the global counter
/// keeps the process total for report footers).
[[nodiscard]] inline std::uint64_t callback_heap_spills_local() noexcept;

namespace detail {
inline std::uint64_t& callback_spill_tally() noexcept {
  static thread_local std::uint64_t count = 0;
  return count;
}
}  // namespace detail

inline std::uint64_t callback_heap_spills_local() noexcept {
  return detail::callback_spill_tally();
}

/// Move-only type-erased `void()` callable with an inline buffer large
/// enough for the simulator's event captures (~64-byte payloads plus a
/// pointer; see simmpi::World::deliver). Unlike std::function it
/// accepts move-only callables, and its move is a memcpy-sized
/// relocation -- cheap enough to live inside a pooled event arena.
class InlineCallback {
 public:
  /// Inline capacity. The largest steady-state capture today is
  /// simmpi's irecv completion (shared_ptr control block pointer pair +
  /// a 56-byte Message) at 72 bytes; 80 leaves headroom without
  /// inflating the event arena slot past one cache line pair.
  static constexpr std::size_t kInlineBytes = 80;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    emplace(std::forward<F>(fn));
  }

  InlineCallback(InlineCallback&& other) noexcept
      : vtable_(other.vtable_), invoke_(other.invoke_) {
    if (vtable_ != nullptr) vtable_->relocate(other.storage_, storage_);
    other.vtable_ = nullptr;
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      invoke_ = other.invoke_;
      if (vtable_ != nullptr) vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  /// Replaces the stored callable, constructing `fn` directly in the
  /// buffer -- no intermediate InlineCallback, no extra relocation.
  /// This is what lets the event arena erase a lambda exactly once.
  template <typename F>
  void assign(F&& fn) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineCallback>) {
      *this = std::forward<F>(fn);
    } else {
      reset();
      emplace(std::forward<F>(fn));
    }
  }

  /// True when a callable of type F is stored in the inline buffer
  /// (compile-time; lets tests assert specific captures never allocate).
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct VTable {
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    /// Null when destruction is a no-op, so the per-event release path
    /// skips the indirect call entirely for trivial captures.
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  struct InlineOps {
    static void invoke(void* storage) { (*std::launder(static_cast<F*>(storage)))(); }
    static void relocate(void* src, void* dst) noexcept {
      F* from = std::launder(static_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* storage) noexcept { std::launder(static_cast<F*>(storage))->~F(); }
    static constexpr VTable kVTable{
        &relocate, std::is_trivially_destructible_v<F> ? nullptr : &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& slot(void* storage) noexcept { return *std::launder(static_cast<F**>(storage)); }
    static void invoke(void* storage) { (*slot(storage))(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) F*(slot(src));
    }
    static void destroy(void* storage) noexcept { delete slot(storage); }
    static constexpr VTable kVTable{&relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &InlineOps<D>::kVTable;
      invoke_ = &InlineOps<D>::invoke;
    } else {
      // Cold path: oversized capture. Tallied so the zero-allocation
      // contract is checkable, not aspirational.
      static obs::Counter& heap_allocs = obs::counter(obs::keys::kEngineCallbackHeapAllocs);
      heap_allocs.add(1);
      ++detail::callback_spill_tally();
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &HeapOps<D>::kVTable;
      invoke_ = &HeapOps<D>::invoke;
    }
  }

  // The invoke pointer is stored directly (not behind the vtable): the
  // dispatch loop's call is one load off the object instead of two
  // dependent loads, and the bytes are free -- they live in the padding
  // before the max_align_t-aligned buffer.
  const VTable* vtable_ = nullptr;
  void (*invoke_)(void* storage) = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace sci::sim
