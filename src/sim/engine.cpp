#include "sim/engine.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace sci::sim {

template <typename Bound>
std::size_t Engine::drain(Bound may_fire) {
  // A stopped engine restarts cleanly on the next run: stop() only ends
  // the run it interrupts.
  stopped_ = false;
  std::size_t processed = 0;
  const double run_start = now_;
  // The sink check is hoisted out of the loop (one thread-local load per
  // run, not per event); a sink attached mid-run is picked up by the
  // next run, which is when measurement scopes attach anyway.
  SCI_TRACE_SINK_HOIST(trace_sink);
  while (!queue_.empty() && !stopped_ && may_fire(queue_.top())) {
    now_ = queue_.top().time;
    // The node leaves the heap first, then the callback runs in place in
    // its (stable) arena slot: no copy out, and the slot is recycled the
    // moment the callback returns.
    const std::uint32_t slot = queue_.pop_slot();
    SCI_TRACE_SINK_COUNTER(trace_sink, obs::kEngineTrack, "queue_depth", now_,
                           static_cast<double>(queue_.size()));
    queue_.invoke_and_release(slot);
    ++processed;
  }
  dispatched_ += processed;
  flush_observability(processed, run_start);
  return processed;
}

void Engine::flush_observability(std::size_t processed, double run_start) {
  if (processed == 0) return;
  // Counter updates happen once per run, not per event, so the hot loop
  // stays branch-free with respect to the registry.
  static obs::Counter& events = obs::counter(obs::keys::kEngineEvents);
  static obs::Counter& hwm = obs::counter(obs::keys::kEngineQueueHwm);
  static obs::Counter& arena = obs::counter(obs::keys::kEngineArenaSlots);
  events.add(processed);
  hwm.set_max(queue_hwm_);
  arena.set_max(queue_.arena_slots());
  SCI_TRACE_COMPLETE(obs::kEngineTrack, "run", "engine", run_start, now_ - run_start,
                     {{"events", static_cast<double>(processed)}});
  SCI_TRACE_UNUSED(run_start);
}

std::size_t Engine::run() {
  return drain([](const EventQueue::Node&) { return true; });
}

std::size_t Engine::run_until(double deadline) {
  const std::size_t processed =
      drain([deadline](const EventQueue::Node& ev) { return ev.time <= deadline; });
  // Advance to the deadline only when the run genuinely exhausted it; a
  // stop() mid-run must not teleport the clock forward.
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace sci::sim
