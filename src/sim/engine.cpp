#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace sci::sim {

void Engine::schedule_at(double time, Callback fn) {
  if (time < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  queue_.push(Event{time, next_seq_++, std::move(fn)});
  if (queue_.size() > queue_hwm_) queue_hwm_ = queue_.size();
}

template <typename Bound>
std::size_t Engine::drain(Bound may_fire) {
  // A stopped engine restarts cleanly on the next run: stop() only ends
  // the run it interrupts.
  stopped_ = false;
  std::size_t processed = 0;
  const double run_start = now_;
  while (!queue_.empty() && !stopped_ && may_fire(queue_.top())) {
    // Move the callback out before popping: it may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    SCI_TRACE_COUNTER(obs::kEngineTrack, "queue_depth", now_,
                      static_cast<double>(queue_.size()));
    ev.fn();
    ++processed;
  }
  dispatched_ += processed;
  flush_observability(processed, run_start);
  return processed;
}

void Engine::flush_observability(std::size_t processed, double run_start) {
  if (processed == 0) return;
  // Counter updates happen once per run, not per event, so the hot loop
  // stays branch-free with respect to the registry.
  static obs::Counter& events = obs::counter(obs::keys::kEngineEvents);
  static obs::Counter& hwm = obs::counter(obs::keys::kEngineQueueHwm);
  events.add(processed);
  hwm.set_max(queue_hwm_);
  SCI_TRACE_COMPLETE(obs::kEngineTrack, "run", "engine", run_start, now_ - run_start,
                     {{"events", static_cast<double>(processed)}});
  (void)run_start;
}

std::size_t Engine::run() {
  return drain([](const Event&) { return true; });
}

std::size_t Engine::run_until(double deadline) {
  const std::size_t processed =
      drain([deadline](const Event& ev) { return ev.time <= deadline; });
  // Advance to the deadline only when the run genuinely exhausted it; a
  // stop() mid-run must not teleport the clock forward.
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace sci::sim
