#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

namespace sci::sim {

void Engine::schedule_at(double time, Callback fn) {
  if (time < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  queue_.push(Event{time, next_seq_++, std::move(fn)});
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t processed = 0;
  while (!queue_.empty() && !stopped_) {
    // Move the callback out before popping: it may schedule new events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++processed;
  }
  return processed;
}

std::size_t Engine::run_until(double deadline) {
  stopped_ = false;
  std::size_t processed = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace sci::sim
