// Discrete-event simulation engine.
//
// This is the substrate standing in for the paper's physical testbeds
// (Piz Daint / Piz Dora / Pilatus, cf. DESIGN.md): rank programs run as
// C++20 coroutines whose awaits translate into timestamped events. Time
// is simulated seconds; execution is single-threaded and deterministic
// for a fixed seed, which makes every "measurement" taken inside the
// simulator exactly reproducible -- the property the paper wishes real
// machines had.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sci::sim {

/// Event-driven scheduler. Events at equal times fire in insertion order
/// (a strict tiebreaker keeps runs deterministic).
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute simulated time `time` (>= now()).
  void schedule_at(double time, Callback fn);

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_after(double delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Runs until the event queue drains or stop() is called.
  /// Returns the number of events processed.
  std::size_t run();

  /// Runs until simulated time exceeds `deadline` (events beyond it stay
  /// queued), the queue drains, or stop() is called.
  std::size_t run_until(double deadline);

  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Deepest the event queue has ever been (observability gauge).
  [[nodiscard]] std::size_t queue_high_water() const noexcept { return queue_hwm_; }
  /// Events dispatched over this engine's lifetime.
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return dispatched_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Shared drain loop; Bound is a predicate deciding whether the next
  /// event may fire.
  template <typename Bound>
  std::size_t drain(Bound may_fire);
  void flush_observability(std::size_t processed, double run_start);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::size_t queue_hwm_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace sci::sim
