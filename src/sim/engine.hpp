// Discrete-event simulation engine.
//
// This is the substrate standing in for the paper's physical testbeds
// (Piz Daint / Piz Dora / Pilatus, cf. DESIGN.md): rank programs run as
// C++20 coroutines whose awaits translate into timestamped events. Time
// is simulated seconds; execution is single-threaded and deterministic
// for a fixed seed, which makes every "measurement" taken inside the
// simulator exactly reproducible -- the property the paper wishes real
// machines had.
//
// The hot path is allocation-free in steady state: callbacks live in
// sim::InlineCallback's inline buffer (no per-event std::function heap
// node) and events are pooled in EventQueue's arena (no per-event queue
// node). See DESIGN.md "Hot path & allocation discipline".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "sim/callback.hpp"
#include "sim/event_queue.hpp"

namespace sci::sim {

/// Event-driven scheduler. Events at equal times fire in insertion order
/// (a strict tiebreaker keeps runs deterministic).
class Engine {
 public:
  using Callback = InlineCallback;

  /// Schedules `fn` at absolute simulated time `time` (>= now()). A
  /// forwarding template so the callable is type-erased exactly once,
  /// directly into the event arena (no intermediate Callback move).
  template <typename F, typename = std::enable_if_t<std::is_invocable_r_v<
                            void, std::remove_reference_t<F>&>>>
  void schedule_at(double time, F&& fn) {
    if (time < now_) throw std::logic_error("Engine::schedule_at: time in the past");
    queue_.push(time, next_seq_++, std::forward<F>(fn));
    if (queue_.size() > queue_hwm_) queue_hwm_ = queue_.size();
  }

  /// Schedules `fn` after a relative delay (>= 0).
  template <typename F, typename = std::enable_if_t<std::is_invocable_r_v<
                            void, std::remove_reference_t<F>&>>>
  void schedule_after(double delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Runs until the event queue drains or stop() is called.
  /// Returns the number of events processed.
  std::size_t run();

  /// Runs until simulated time exceeds `deadline` (events beyond it stay
  /// queued), the queue drains, or stop() is called.
  std::size_t run_until(double deadline);

  void stop() noexcept { stopped_ = true; }

  /// Returns the engine to its just-constructed state -- time 0,
  /// sequence 0, gauges zeroed -- while the event arena keeps its
  /// chunks and the heap its capacity. Reusing one engine across
  /// replications is therefore seed-for-seed indistinguishable from
  /// constructing a fresh one, minus the allocations.
  void reset() noexcept {
    queue_.reset();
    now_ = 0.0;
    next_seq_ = 0;
    stopped_ = false;
    queue_hwm_ = 0;
    dispatched_ = 0;
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Deepest the event queue has ever been (observability gauge).
  [[nodiscard]] std::size_t queue_high_water() const noexcept { return queue_hwm_; }
  /// Events dispatched over this engine's lifetime.
  [[nodiscard]] std::uint64_t events_dispatched() const noexcept { return dispatched_; }
  /// Pooled event slots ever allocated (== queue high water once warm).
  [[nodiscard]] std::size_t arena_slots() const noexcept { return queue_.arena_slots(); }

 private:
  /// Shared drain loop; Bound is a predicate deciding whether the next
  /// event may fire.
  template <typename Bound>
  std::size_t drain(Bound may_fire);
  void flush_observability(std::size_t processed, double run_start);

  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::size_t queue_hwm_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace sci::sim
