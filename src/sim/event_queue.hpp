// Pooled event storage for the engine's pending-event set.
//
// The previous implementation kept a std::priority_queue<Event> whose
// binary-heap sift operations moved whole Event structs -- each one
// dragging a std::function along -- and whose only mutable access to
// the minimum was the classic const_cast-move-from-top() smell. Here
// the two concerns are split:
//
//   - callbacks live in a chunked slab arena recycled through a free
//     list. Chunks never move, so a callback is type-erased exactly
//     once, invoked in place, and destroyed in place -- the capture
//     bytes are written and read once each, with no per-event
//     allocation and no relocation copies;
//   - ordering lives in a 4-ary implicit min-heap of 24-byte Nodes
//     (time, seq, slot). Sift operations compare and move plain PODs
//     through contiguous memory and never touch the arena, so a deep
//     queue stays cache-resident where index-indirection (or whole-
//     event moves) would thrash.
//
// Once the arena chunks and the heap vector reach their high-water
// capacity the queue performs no allocations at all.
//
// Ordering is strict (time, then insertion sequence), so equal-time
// events fire in insertion order exactly as before -- the property the
// byte-determinism contract rests on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/callback.hpp"

namespace sci::sim {

class EventQueue {
 public:
  /// Heap node: ordering key plus the arena slot holding the callback,
  /// packed to 16 bytes so a 4-ary level's four children share a cache
  /// line. `key` holds (seq << kSlotBits) | slot: comparing keys on a
  /// time tie compares seq, because the slot bits can only decide
  /// between equal seqs, which cannot occur.
  struct Node {
    double time = 0.0;
    std::uint64_t key = 0;

    [[nodiscard]] std::uint64_t seq() const noexcept { return key >> kSlotBits; }
    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(key & (kMaxSlots - 1));
    }
  };

  /// Arena capacity bound from the packed node layout: 2^24 pending
  /// events (~1.6 GB of callbacks) before push() throws.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kMaxSlots = std::uint64_t{1} << kSlotBits;
  /// Sequence bound: 2^40 events over one queue's lifetime (weeks of
  /// wall-clock at simulator rates) before push() throws.
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1} << (64 - kSlotBits);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest pending event (min by time, then seq). Precondition: !empty().
  [[nodiscard]] const Node& top() const noexcept { return heap_.front(); }

  /// Schedules `fn`, erasing it straight into a pooled arena slot.
  template <typename F>
  void push(double time, std::uint64_t seq, F&& fn) {
    if (seq >= kMaxSeq) throw std::length_error("EventQueue: sequence space exhausted");
    std::uint32_t slot;
    if (free_head_ != kNull) {
      slot = free_head_;
      free_head_ = at(slot).next_free;
    } else {
      if (slots_used_ == kMaxSlots) throw std::length_error("EventQueue: arena full");
      slot = slots_used_++;
      if ((slot >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
    }
    at(slot).fn.assign(std::forward<F>(fn));
    heap_.push_back(Node{time, (seq << kSlotBits) | slot});
    sift_up(heap_.size() - 1);
  }

  /// Removes the minimum node from the heap and returns its (still
  /// busy) arena slot, to be passed to invoke_and_release(). Splitting
  /// the two lets the caller observe the shrunken queue between pop and
  /// dispatch. Precondition: !empty().
  [[nodiscard]] std::uint32_t pop_slot() noexcept {
    const std::uint32_t slot = heap_.front().slot();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return slot;
  }

  /// Invokes the callback in `slot` in place (chunks are stable, so the
  /// callback may schedule new events freely) and recycles the slot --
  /// even if the callback throws.
  void invoke_and_release(std::uint32_t slot) {
    Slot& s = at(slot);
    ReleaseGuard guard{this, &s, slot};
    s.fn();
  }

  /// Arena slots ever allocated (pool high water; observability gauge).
  [[nodiscard]] std::size_t arena_slots() const noexcept { return slots_used_; }

  /// Returns the queue to the just-constructed state while keeping the
  /// arena chunks and the heap vector's capacity: pending callbacks are
  /// destroyed, carving restarts at slot 0, and no memory is released
  /// -- the world-reuse path performs no allocations until the queue
  /// grows past its previous high water.
  void reset() noexcept {
    for (const Node& n : heap_) at(n.slot()).fn.reset();
    heap_.clear();
    slots_used_ = 0;
    free_head_ = kNull;
  }

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;
  static constexpr std::size_t kArity = 4;
  static constexpr std::uint32_t kChunkShift = 8;  ///< 256 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static_assert(kMaxSlots - 1 <= kNull, "slot indices must fit the free-list links");

  /// Pooled callback storage; `next_free` links idle slots.
  struct Slot {
    InlineCallback fn;
    std::uint32_t next_free = kNull;
  };

  struct ReleaseGuard {
    EventQueue* queue;
    Slot* s;
    std::uint32_t slot;
    ~ReleaseGuard() {
      s->fn.reset();
      s->next_free = queue->free_head_;
      queue->free_head_ = slot;
    }
  };

  [[nodiscard]] Slot& at(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  [[nodiscard]] static bool before(const Node& a, const Node& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void sift_up(std::size_t pos) noexcept {
    const Node moving = heap_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / kArity;
      if (!before(moving, heap_[parent])) break;
      heap_[pos] = heap_[parent];
      pos = parent;
    }
    heap_[pos] = moving;
  }

  void sift_down(std::size_t pos) noexcept {
    const Node moving = heap_[pos];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = kArity * pos + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], moving)) break;
      heap_[pos] = heap_[best];
      pos = best;
    }
    heap_[pos] = moving;
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;  // stable callback storage
  std::vector<Node> heap_;  // 4-ary implicit min-heap of (key, slot)
  std::uint32_t slots_used_ = 0;
  std::uint32_t free_head_ = kNull;
};

}  // namespace sci::sim
