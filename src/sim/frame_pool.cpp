#include "sim/frame_pool.hpp"

#include <atomic>
#include <new>

#include "obs/counters.hpp"

namespace sci::sim {

namespace {

/// Per-block provenance, prepended to every frame. 16 bytes
/// (max_align_t) so the frame behind it keeps the fundamental alignment
/// operator new guarantees. `owner == nullptr` means the block came
/// straight from the heap (oversized, pooling disabled, or allocated
/// before the pool existed) and goes straight back.
struct BlockHeader {
  FramePool* owner;
  std::uint32_t bucket;
  std::uint32_t pad;
};
static_assert(sizeof(BlockHeader) <= alignof(std::max_align_t),
              "header must preserve frame alignment");
constexpr std::size_t kHeaderBytes = alignof(std::max_align_t);

std::atomic<bool> g_default_enabled{SCIBENCH_POOLING != 0};

void count_heap_alloc(std::uint64_t& local_tally) {
  ++local_tally;
  static obs::Counter& total = obs::counter(obs::keys::kCoroFrameHeapAllocs);
  total.add(1);
}

}  // namespace

FramePool::FramePool() noexcept : enabled_(default_enabled()) {}

FramePool::~FramePool() { trim(); }

FramePool& FramePool::local() noexcept {
  static thread_local FramePool pool;
  return pool;
}

void FramePool::set_default_enabled(bool on) noexcept {
  g_default_enabled.store(on, std::memory_order_relaxed);
}

bool FramePool::default_enabled() noexcept {
  return g_default_enabled.load(std::memory_order_relaxed);
}

void* FramePool::allocate(std::size_t size) {
  const std::size_t total = size + kHeaderBytes;
  if (enabled_ && total <= kMaxPooledBytes) {
    const std::size_t bucket = (total - 1) / kBucketBytes;
    void* raw;
    if (free_[bucket] != nullptr) {
      raw = free_[bucket];
      free_[bucket] = free_[bucket]->next;
      --cached_blocks_;
      ++pool_hits_;
    } else {
      raw = ::operator new((bucket + 1) * kBucketBytes);
      count_heap_alloc(heap_allocs_);
    }
    auto* header = static_cast<BlockHeader*>(raw);
    header->owner = this;
    header->bucket = static_cast<std::uint32_t>(bucket);
    return static_cast<std::byte*>(raw) + kHeaderBytes;
  }
  void* raw = ::operator new(total);
  count_heap_alloc(heap_allocs_);
  auto* header = static_cast<BlockHeader*>(raw);
  header->owner = nullptr;
  header->bucket = 0;
  return static_cast<std::byte*>(raw) + kHeaderBytes;
}

void FramePool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  void* raw = static_cast<std::byte*>(p) - kHeaderBytes;
  auto* header = static_cast<BlockHeader*>(raw);
  // Every pooled block is an individual heap allocation, so a block
  // owned by another thread's pool (or surfacing after its pool died)
  // can be released directly instead of racing on a foreign free list.
  if (header->owner != this) {
    ::operator delete(raw);
    return;
  }
  const std::size_t bucket = header->bucket;
  auto* block = static_cast<FreeBlock*>(raw);
  block->next = free_[bucket];
  free_[bucket] = block;
  ++cached_blocks_;
}

void FramePool::trim() noexcept {
  for (FreeBlock*& head : free_) {
    while (head != nullptr) {
      FreeBlock* next = head->next;
      ::operator delete(head);
      head = next;
      --cached_blocks_;
    }
  }
}

}  // namespace sci::sim
