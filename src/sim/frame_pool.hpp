// Pooled allocator for coroutine frames.
//
// Every rank program, collective, and trampoline in the simulator is a
// C++20 coroutine whose frame the compiler allocates through the
// promise's operator new. By default that is one malloc/free pair per
// coroutine -- thousands per campaign replication once collectives nest
// -- and it is the last per-replication allocation left after the event
// arena (PR 3) removed the per-event ones.
//
// FramePool is a per-thread, size-bucketed free-list arena: frames are
// rounded up to 64-byte classes and recycled on a per-class free list,
// so from the second replication of a world shape onward every frame
// allocation is a pop and every deallocation is a push -- the allocator
// is never entered. Each block carries a 16-byte header naming its
// origin (owning pool or direct heap), which keeps three awkward cases
// correct without a flag-day contract: blocks freed on a different
// thread than they were allocated on, blocks allocated while pooling
// was disabled and freed after it was re-enabled (and vice versa), and
// oversized frames that bypass the buckets entirely.
//
// Underlying heap allocations (bucket refills, oversized frames, and
// every allocation when pooling is disabled) bump the obs counter
// `simmpi.coro_frame_heap_allocs` plus a per-thread tally, mirroring
// PR 3's `engine.callback_heap_allocs`: the zero-allocation contract is
// a failing test, not an aspiration. Build with -DSCIBENCH_POOLING=OFF
// (or call set_enabled(false)) to route every frame through the heap --
// the differential path tests/test_exec_reuse.cpp pins byte-identical
// results against, and the configuration the ASan CI job uses to keep
// real frame lifetimes visible to the sanitizer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sci::sim {

#ifndef SCIBENCH_POOLING
#define SCIBENCH_POOLING 1
#endif

class FramePool {
 public:
  /// Size-class granularity and count: frames up to 4 KiB are pooled
  /// (the deepest collective nest today is < 1 KiB); larger frames fall
  /// through to the heap and are tallied.
  static constexpr std::size_t kBucketBytes = 64;
  static constexpr std::size_t kBucketCount = 64;
  static constexpr std::size_t kMaxPooledBytes = kBucketBytes * kBucketCount;

  FramePool() noexcept;
  ~FramePool();
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// The calling thread's pool (one per thread, created on first use).
  [[nodiscard]] static FramePool& local() noexcept;

  [[nodiscard]] void* allocate(std::size_t size);
  void deallocate(void* p) noexcept;

  /// Underlying operator new calls made for frames on this thread:
  /// bucket refills, oversized frames, and (when pooling is disabled)
  /// every frame. Monotonic; per-replication audits take deltas, the
  /// process-wide total accumulates in the obs counter
  /// `simmpi.coro_frame_heap_allocs` for the report footer.
  [[nodiscard]] std::uint64_t heap_allocs() const noexcept { return heap_allocs_; }
  /// Frame allocations served from a free list (zero heap involvement).
  [[nodiscard]] std::uint64_t pool_hits() const noexcept { return pool_hits_; }
  /// Blocks currently cached on this thread's free lists.
  [[nodiscard]] std::size_t cached_blocks() const noexcept { return cached_blocks_; }

  /// Runtime kill switch for this thread's pool (differential tests).
  /// Blocks already handed out are freed correctly either way (the
  /// header remembers where each came from).
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Process-wide default for pools of threads created later (campaign
  /// workers); compile-time default SCIBENCH_POOLING. Benchmarks flip
  /// this around baseline runs so worker threads inherit the setting.
  static void set_default_enabled(bool on) noexcept;
  [[nodiscard]] static bool default_enabled() noexcept;

  /// Returns every cached free block to the heap (keeps live frames
  /// valid; they free themselves through their headers).
  void trim() noexcept;

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  FreeBlock* free_[kBucketCount] = {};
  std::uint64_t heap_allocs_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::size_t cached_blocks_ = 0;
  bool enabled_ = true;
};

}  // namespace sci::sim
