#include "sim/machine.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

namespace sci::sim {

Machine make_daint() {
  Machine m;
  m.name = "daint";
  // Piz Daint: Cray XC30, 28 cabinets; model 16 groups x 16 routers x 4.
  m.topology = std::make_shared<Dragonfly>(16, 16, 4);
  m.loggp = {.latency_s = 0.95e-6,
             .overhead_s = 250e-9,
             .gap_per_msg_s = 100e-9,
             .gap_per_byte_s = 0.1e-9,
             .hop_latency_s = 30e-9};
  m.net_noise = {.rel_jitter = 0.10,
                 .congestion_prob = 0.20,
                 .congestion_mean = 0.5e-6,
                 .rare_prob = 0.002,
                 .rare_scale = 4e-6,
                 .rare_shape = 2.8};
  // Detours: ~1 kHz scheduler ticks of ~2 us, ~5 Hz daemon bursts with a
  // Pareto tail (Hoefler et al. SC'10 measured similar shapes on XC/XE).
  m.compute_noise = {.rel_jitter = 0.015,
                     .detour_rate = 1000.0,
                     .detour_mean = 2e-6,
                     .burst_rate = 5.0,
                     .burst_scale = 4e-5,
                     .burst_shape = 2.2};
  // 8-core SNB (~166 Gflop/s) + K20X (~1.31 Tflop/s) = 94.5/64 Tflop/s.
  m.node_peak_flops = 94.5e12 / 64.0;
  m.node_base_efficiency = 0.96;
  // XC30 node: ~100 W idle, ~350 W under HPL (CPU + K20X).
  m.power = {.idle_w = 100.0, .compute_w = 250.0,
             .net_j_per_msg = 1e-6, .net_j_per_byte = 30e-9};
  return m;
}

Machine make_dora() {
  Machine m;
  m.name = "dora";
  // Piz Dora: Cray XC40; smaller Aries dragonfly.
  m.topology = std::make_shared<Dragonfly>(8, 16, 4);
  m.loggp = {.latency_s = 1.02e-6,
             .overhead_s = 250e-9,
             .gap_per_msg_s = 80e-9,
             .gap_per_byte_s = 0.08e-9,
             .hop_latency_s = 30e-9};
  // Tight distribution: min ~1.57 us, median ~1.77 us, max ~7 us at 1M.
  m.net_noise = {.rel_jitter = 0.16,
                 .congestion_prob = 0.45,
                 .congestion_mean = 0.22e-6,
                 .rare_prob = 0.001,
                 .rare_scale = 2.0e-6,
                 .rare_shape = 4.0};
  m.compute_noise = {.rel_jitter = 0.01,
                     .detour_rate = 800.0,
                     .detour_mean = 2e-6,
                     .burst_rate = 4.0,
                     .burst_scale = 3e-5,
                     .burst_shape = 2.4};
  m.node_peak_flops = 2.0 * 12.0 * 2.6e9 * 16.0;  // 2x 12-core Haswell, AVX2 FMA
  m.node_base_efficiency = 0.92;
  return m;
}

Machine make_pilatus() {
  Machine m;
  m.name = "pilatus";
  // Pilatus: InfiniBand FDR fat tree; radix-16 two-level tree.
  m.topology = std::make_shared<FatTree>(16, 2);
  m.loggp = {.latency_s = 0.68e-6,
             .overhead_s = 200e-9,
             .gap_per_msg_s = 120e-9,
             .gap_per_byte_s = 0.15e-9,
             .hop_latency_s = 100e-9};
  // Lower base latency but a heavier tail: min ~1.48 us, max ~11.6 us.
  m.net_noise = {.rel_jitter = 0.20,
                 .congestion_prob = 0.60,
                 .congestion_mean = 0.55e-6,
                 .rare_prob = 0.002,
                 .rare_scale = 2.5e-6,
                 .rare_shape = 4.0};
  m.compute_noise = {.rel_jitter = 0.02,
                     .detour_rate = 2000.0,
                     .detour_mean = 3e-6,
                     .burst_rate = 10.0,
                     .burst_scale = 5e-5,
                     .burst_shape = 2.2};
  m.node_peak_flops = 2.0 * 8.0 * 2.6e9 * 8.0;  // 2x 8-core SNB, AVX
  m.node_base_efficiency = 0.88;
  return m;
}

Machine make_noiseless(std::size_t nodes) {
  Machine m;
  m.name = "noiseless";
  m.topology = std::make_shared<Dragonfly>(1, 1, nodes);
  m.loggp = {.latency_s = 1e-6,
             .overhead_s = 200e-9,
             .gap_per_msg_s = 100e-9,
             .gap_per_byte_s = 0.1e-9,
             .hop_latency_s = 0.0};
  m.net_noise = {};     // zero noise
  m.compute_noise = {}; // zero noise
  m.clock_drift_ppm_sigma = 0.0;
  m.clock_offset_sigma_s = 0.0;
  m.node_base_efficiency = 1.0;
  return m;
}

Machine make_bgq() {
  Machine m;
  m.name = "bgq";
  m.topology = std::make_shared<Torus3D>(8, 8, 8);  // 512 nodes
  m.loggp = {.latency_s = 1.3e-6,
             .overhead_s = 350e-9,
             .gap_per_msg_s = 150e-9,
             .gap_per_byte_s = 0.5e-9,   // 2 GB/s links
             .hop_latency_s = 45e-9};
  // CNK runs almost nothing beside the application.
  m.net_noise = {.rel_jitter = 0.02,
                 .congestion_prob = 0.03,
                 .congestion_mean = 0.1e-6,
                 .rare_prob = 1e-5,
                 .rare_scale = 1e-6,
                 .rare_shape = 4.0};
  m.compute_noise = {.rel_jitter = 0.0005,
                     .detour_rate = 1.0,
                     .detour_mean = 1e-6,
                     .burst_rate = 0.01,
                     .burst_scale = 1e-5,
                     .burst_shape = 3.0};
  m.node_peak_flops = 204.8e9;  // 16 cores x 4-wide FMA @ 1.6 GHz
  m.node_base_efficiency = 0.85;
  m.clock_drift_ppm_sigma = 1.0;
  m.clock_offset_sigma_s = 2e-5;
  m.power = {.idle_w = 40.0, .compute_w = 45.0,
             .net_j_per_msg = 0.5e-6, .net_j_per_byte = 20e-9};
  return m;
}

Machine make_machine(const std::string& name) {
  // "base+fault" composes a fault preset onto a machine preset:
  // make_machine("dora+lossy") is dora with fault::fault_preset("lossy").
  // The composed name is kept so machine_preset memoizes per combination
  // and campaign factors like system={"dora","dora+lossy"} just work.
  if (const auto plus = name.find('+'); plus != std::string::npos) {
    Machine m = make_machine(name.substr(0, plus));
    m.faults = fault::fault_preset(name.substr(plus + 1));
    m.faults.validate();
    m.name = name;
    return m;
  }
  if (name == "daint") return make_daint();
  if (name == "dora") return make_dora();
  if (name == "pilatus") return make_pilatus();
  if (name == "noiseless") return make_noiseless();
  if (name == "bgq") return make_bgq();
  throw std::invalid_argument("make_machine: unknown machine '" + name + "'");
}

std::shared_ptr<const Machine> machine_preset(const std::string& name) {
  static std::mutex mutex;
  static std::map<std::string, std::shared_ptr<const Machine>, std::less<>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, std::make_shared<const Machine>(make_machine(name))).first;
  }
  return it->second;
}

}  // namespace sci::sim
