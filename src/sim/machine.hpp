// Machine presets: simulated stand-ins for the paper's experimental
// systems (Section 4.1.2 "Our experimental setup"). Noise and LogGP
// parameters are calibrated so that the *distributions* of simulated
// measurements match the scales the paper reports:
//
//   daint   Cray XC30, Aries dragonfly; 8-core SNB + K20X, peak
//           ~1.48 Tflop/s per node (94.5/64); HPL runs 280-340 s.
//   dora    Cray XC40, Aries dragonfly; ping-pong 64 B latency
//           min 1.57 us, median ~1.77 us, max ~7 us, tight right tail.
//   pilatus InfiniBand FDR fat tree; min 1.48 us, median ~1.88 us,
//           heavy tail to ~11.6 us.
//   noiseless  deterministic machine for unit tests and bounds models.
#pragma once

#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "sim/network.hpp"
#include "sim/noise.hpp"
#include "sim/topology.hpp"

namespace sci::sim {

/// Per-node power model: energy is a first-class cost metric in the
/// paper (Section 3.1.1 lists Joules beside seconds and dollars; flop/W
/// is its canonical rate example). Job energy =
///   nodes * idle_w * makespan + compute_w * busy_time
///   + per-message/per-byte network energy.
struct PowerModel {
  double idle_w = 100.0;           ///< node baseline draw
  double compute_w = 150.0;        ///< extra draw while computing
  double net_j_per_msg = 1e-6;     ///< NIC per-message energy
  double net_j_per_byte = 30e-9;   ///< wire + SerDes energy per byte
};

struct Machine {
  std::string name;
  std::shared_ptr<const Topology> topology;
  LogGPParams loggp;
  NetworkNoise net_noise;
  ComputeNoise compute_noise;
  double node_peak_flops = 1e12;   ///< peak flop/s per node
  double node_base_efficiency = 0.8;  ///< achievable fraction for dense kernels
  double coll_entry_overhead_s = 2e-6;  ///< software setup cost per collective call
  PowerModel power;
  double clock_drift_ppm_sigma = 5.0; ///< per-node clock drift spread (ppm)
  double clock_offset_sigma_s = 1e-4; ///< initial clock offset spread
  /// Fault injection (off by default). simmpi::World draws every fault
  /// decision from the world RNG, so faulty runs stay byte-reproducible
  /// and World::reset replays them.
  fault::FaultSpec faults;

  [[nodiscard]] Network make_network() const { return {topology, loggp, net_noise}; }
};

[[nodiscard]] Machine make_daint();
[[nodiscard]] Machine make_dora();
[[nodiscard]] Machine make_pilatus();
[[nodiscard]] Machine make_noiseless(std::size_t nodes = 64);

/// Blue Gene/Q-style machine: 3-D torus, modest link speed, and the
/// famously quiet compute kernel (the paper warns that "implicit
/// assumptions (e.g., that IBM Blue Gene systems are noise-free) are
/// not always understood by all readers" -- this preset quantifies the
/// assumption instead: tiny but nonzero noise).
[[nodiscard]] Machine make_bgq();

/// Lookup by name ("daint", "dora", "pilatus", "noiseless", "bgq");
/// throws on unknown names. A "+fault" suffix composes a fault preset
/// onto the machine ("dora+lossy", "pilatus+chaos"; see
/// fault::fault_preset for the catalogue).
[[nodiscard]] Machine make_machine(const std::string& name);

/// Memoized make_machine: one shared immutable Machine per preset name
/// per process, built on first use (thread-safe). Machines are pure
/// data, so sharing one instance across every replication of a
/// campaign is observationally identical to rebuilding it -- minus the
/// topology/string allocations, which on setup-dominated campaigns are
/// a measurable slice of the replication loop.
[[nodiscard]] std::shared_ptr<const Machine> machine_preset(const std::string& name);

}  // namespace sci::sim
