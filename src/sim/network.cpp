#include "sim/network.hpp"

namespace sci::sim {

double Network::ideal_transfer_time(std::size_t src, std::size_t dst,
                                    std::size_t bytes) const {
  const unsigned h = topology_->hops(src, dst);
  const double payload = (bytes > 0) ? static_cast<double>(bytes - 1) : 0.0;
  return params_.latency_s + params_.hop_latency_s * h + params_.gap_per_byte_s * payload;
}

double Network::transfer_time(std::size_t src, std::size_t dst, std::size_t bytes,
                              rng::Xoshiro256& gen) const {
  return noise_.perturb(ideal_transfer_time(src, dst, bytes), gen);
}

}  // namespace sci::sim
