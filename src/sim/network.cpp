#include "sim/network.hpp"

namespace sci::sim {

double Network::route_base(std::size_t src, std::size_t dst) const {
  const unsigned h = topology_->hops(src, dst);
  return params_.latency_s + params_.hop_latency_s * h;
}

double Network::ideal_transfer_time(std::size_t src, std::size_t dst,
                                    std::size_t bytes) const {
  return ideal_transfer_on_route(route_base(src, dst), bytes);
}

double Network::transfer_time(std::size_t src, std::size_t dst, std::size_t bytes,
                              rng::Xoshiro256& gen) const {
  return noise_.perturb(ideal_transfer_time(src, dst, bytes), gen);
}

}  // namespace sci::sim
