// LogGP network cost model (Culler et al. / Alexandrov et al.) with
// per-hop latency and stochastic noise. One instance models the
// interconnect of a simulated machine.
//
//   transfer(src, dst, k bytes) =
//       L + hop_latency * hops(src, dst) + G * (k - 1)       [+ noise]
//   sender/receiver overhead o is charged to the endpoints by simmpi.
#pragma once

#include <cstddef>
#include <memory>

#include "rng/xoshiro.hpp"
#include "sim/noise.hpp"
#include "sim/topology.hpp"

namespace sci::sim {

struct LogGPParams {
  double latency_s = 1e-6;        ///< L: base wire latency
  double overhead_s = 300e-9;     ///< o: CPU send/recv overhead
  double gap_per_msg_s = 100e-9;  ///< g: minimum inter-message gap
  double gap_per_byte_s = 0.1e-9; ///< G: inverse bandwidth (s/B)
  double hop_latency_s = 30e-9;   ///< per switch hop
  /// Messages above this size use the rendezvous protocol: a
  /// ready-to-send handshake costs one extra small-message round trip
  /// before the payload moves (the step real MPIs exhibit around the
  /// eager limit).
  std::size_t eager_threshold_bytes = 16384;
};

class Network {
 public:
  Network(std::shared_ptr<const Topology> topology, LogGPParams params,
          NetworkNoise noise)
      : topology_(std::move(topology)), params_(params), noise_(noise) {}

  /// Wire time for `bytes` from node `src` to node `dst` (excludes the
  /// endpoint overheads; includes noise from this network's model).
  [[nodiscard]] double transfer_time(std::size_t src, std::size_t dst, std::size_t bytes,
                                     rng::Xoshiro256& gen) const;

  /// Noise-free transfer time (for bounds models, Rule 11).
  [[nodiscard]] double ideal_transfer_time(std::size_t src, std::size_t dst,
                                           std::size_t bytes) const;

  /// Byte-independent cost of the (src, dst) route: L + hop_latency *
  /// hops. Hot callers (simmpi's p2p path) precompute this per route
  /// pair so steady-state messages skip the topology hop query.
  [[nodiscard]] double route_base(std::size_t src, std::size_t dst) const;

  /// Noise-free transfer time given a precomputed route_base(). Same
  /// arithmetic, term for term, as ideal_transfer_time -- callers may
  /// mix the two freely without perturbing a single bit.
  [[nodiscard]] double ideal_transfer_on_route(double base, std::size_t bytes) const noexcept {
    const double payload = (bytes > 0) ? static_cast<double>(bytes - 1) : 0.0;
    return base + params_.gap_per_byte_s * payload;
  }

  /// transfer_time() over a precomputed route, with batched noise
  /// tallies. Identical RNG draw sequence to transfer_time().
  [[nodiscard]] double transfer_time_on_route(double base, std::size_t bytes,
                                              rng::Xoshiro256& gen, NoiseTally& tally) const {
    return noise_.perturb(ideal_transfer_on_route(base, bytes), gen, tally);
  }

  [[nodiscard]] const LogGPParams& params() const noexcept { return params_; }
  [[nodiscard]] const Topology& topology() const noexcept { return *topology_; }

 private:
  std::shared_ptr<const Topology> topology_;
  LogGPParams params_;
  NetworkNoise noise_;
};

}  // namespace sci::sim
