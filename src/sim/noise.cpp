#include "sim/noise.hpp"

#include <cmath>

#include "obs/counters.hpp"
#include "rng/distributions.hpp"

namespace sci::sim {
namespace {

/// Tallies one perturbation into the observability registry: how often
/// the noise models fire and how much time they inject (the raw
/// material of the paper's Figures 5-6 variability).
void record_noise(double pure, double perturbed) {
  static obs::Counter& draws = obs::counter(obs::keys::kNoiseDraws);
  static obs::Counter& injected = obs::counter(obs::keys::kNoiseInjectedNs);
  draws.add(1);
  if (perturbed > pure) {
    injected.add(static_cast<std::uint64_t>((perturbed - pure) * 1e9));
  }
}

/// Poisson count via inversion; rates here keep lambda small.
unsigned poisson_count(double lambda, rng::Xoshiro256& gen) {
  if (lambda <= 0.0) return 0;
  double p = std::exp(-lambda);
  double cdf = p;
  const double u = rng::uniform01(gen);
  unsigned k = 0;
  while (u > cdf && k < 10000) {
    ++k;
    p *= lambda / static_cast<double>(k);
    cdf += p;
  }
  return k;
}

}  // namespace

void NoiseTally::flush() noexcept {
  if (draws == 0) return;
  static obs::Counter& draws_counter = obs::counter(obs::keys::kNoiseDraws);
  static obs::Counter& injected_counter = obs::counter(obs::keys::kNoiseInjectedNs);
  draws_counter.add(draws);
  if (injected_ns > 0) injected_counter.add(injected_ns);
  draws = 0;
  injected_ns = 0;
}

double ComputeNoise::apply(double duration, rng::Xoshiro256& gen) const {
  double out = duration;
  if (rel_jitter > 0.0) out *= 1.0 + std::fabs(rng::normal(gen, 0.0, rel_jitter));
  if (detour_rate > 0.0 && detour_mean > 0.0) {
    const double lambda = detour_rate * duration;
    if (lambda > 50.0) {
      // CLT shortcut for long intervals: the summed detour time of a
      // Poisson(lambda) number of Exp(mean) detours is approximately
      // N(lambda*mean, sqrt(2*lambda)*mean). Keeps 1-second HPL panels
      // from drawing hundreds of exponentials each.
      const double total = rng::normal(gen, lambda * detour_mean,
                                       std::sqrt(2.0 * lambda) * detour_mean);
      out += std::max(0.0, total);
    } else {
      const unsigned k = poisson_count(lambda, gen);
      for (unsigned i = 0; i < k; ++i) out += rng::exponential(gen, 1.0 / detour_mean);
    }
  }
  if (burst_rate > 0.0 && burst_scale > 0.0) {
    const unsigned k = poisson_count(burst_rate * duration, gen);
    for (unsigned i = 0; i < k; ++i) out += rng::pareto(gen, burst_scale, burst_shape);
  }
  return out;
}

double ComputeNoise::perturb(double duration, rng::Xoshiro256& gen) const {
  const double out = apply(duration, gen);
  record_noise(duration, out);
  return out;
}

double ComputeNoise::perturb(double duration, rng::Xoshiro256& gen, NoiseTally& tally) const {
  const double out = apply(duration, gen);
  tally.record(duration, out);
  return out;
}

double NetworkNoise::apply(double duration, rng::Xoshiro256& gen) const {
  double out = duration;
  if (rel_jitter > 0.0) out *= 1.0 + std::fabs(rng::normal(gen, 0.0, rel_jitter));
  if (congestion_prob > 0.0 && rng::bernoulli(gen, congestion_prob)) {
    out += rng::exponential(gen, 1.0 / congestion_mean);
  }
  if (rare_prob > 0.0 && rng::bernoulli(gen, rare_prob)) {
    out += rng::pareto(gen, rare_scale, rare_shape);
  }
  return out;
}

double NetworkNoise::perturb(double duration, rng::Xoshiro256& gen) const {
  const double out = apply(duration, gen);
  record_noise(duration, out);
  return out;
}

double NetworkNoise::perturb(double duration, rng::Xoshiro256& gen, NoiseTally& tally) const {
  const double out = apply(duration, gen);
  tally.record(duration, out);
  return out;
}

}  // namespace sci::sim
