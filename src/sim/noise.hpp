// Noise models: the sources of nondeterminism the paper enumerates in
// its introduction -- OS jitter (task scheduling, interrupts), network
// background traffic, and per-run environment differences (batch
// allocation). Parameters follow the structure used in Hoefler,
// Schneider & Lumsdaine's noise-simulation work (SC'10): frequent short
// detours plus rare long ones with a heavy (Pareto) tail. All detour
// processes are *rates* (events per second of computation), so a 2 us
// collective entry and a 1 s HPL panel experience proportionate noise.
#pragma once

#include <cstdint>

#include "rng/xoshiro.hpp"

namespace sci::sim {

/// Local accumulator for noise observability. The immediate-publishing
/// perturb() overloads touch two registry counters per draw -- cheap,
/// but measurable when simmpi perturbs every message of a million-event
/// run. A NoiseTally batches the same tallies in two plain integers and
/// publishes them in one registry transaction at flush(); totals are
/// identical because each draw's injected time is truncated to ns
/// exactly as the immediate path truncates it.
struct NoiseTally {
  std::uint64_t draws = 0;
  std::uint64_t injected_ns = 0;

  void record(double pure, double perturbed) noexcept {
    ++draws;
    if (perturbed > pure) {
      injected_ns += static_cast<std::uint64_t>((perturbed - pure) * 1e9);
    }
  }

  /// Publishes the batch into the obs counter registry and zeroes it.
  void flush() noexcept;
};

/// Perturbation model for compute intervals on one node.
struct ComputeNoise {
  /// Multiplicative jitter: duration *= 1 + |N(0, rel_jitter)|.
  double rel_jitter = 0.0;
  /// Poisson rate (1/s) of short OS detours (scheduler ticks, interrupts).
  double detour_rate = 0.0;
  /// Mean length (s) of a short detour (exponential).
  double detour_mean = 0.0;
  /// Poisson rate (1/s) of rare long detours (daemon bursts, page faults).
  double burst_rate = 0.0;
  /// Pareto scale/shape of a burst's length.
  double burst_scale = 0.0;
  double burst_shape = 2.0;

  /// Returns the perturbed duration of a pure compute interval.
  [[nodiscard]] double perturb(double duration, rng::Xoshiro256& gen) const;

  /// Same draw sequence, but tallies into `tally` instead of the global
  /// counter registry (hot-path batching; see NoiseTally).
  [[nodiscard]] double perturb(double duration, rng::Xoshiro256& gen, NoiseTally& tally) const;

 private:
  [[nodiscard]] double apply(double duration, rng::Xoshiro256& gen) const;
};

/// Perturbation model for one message transfer. Per-message events are
/// genuinely discrete, so these are probabilities, not rates.
struct NetworkNoise {
  /// Multiplicative jitter on the transfer time.
  double rel_jitter = 0.0;
  /// Probability that background traffic delays this message.
  double congestion_prob = 0.0;
  /// Mean extra delay (s) under congestion (exponential).
  double congestion_mean = 0.0;
  /// Probability of a rare severe event (route flap, deep congestion).
  double rare_prob = 0.0;
  /// Pareto scale/shape of the severe delay.
  double rare_scale = 0.0;
  double rare_shape = 2.0;

  /// Returns the perturbed transfer time.
  [[nodiscard]] double perturb(double duration, rng::Xoshiro256& gen) const;

  /// Same draw sequence, batched tallies (see NoiseTally).
  [[nodiscard]] double perturb(double duration, rng::Xoshiro256& gen, NoiseTally& tally) const;

 private:
  [[nodiscard]] double apply(double duration, rng::Xoshiro256& gen) const;
};

}  // namespace sci::sim
