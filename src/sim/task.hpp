// C++20 coroutine task types for simulated rank programs.
//
// A rank program is written as straight-line code:
//
//   sim::Task<void> pingpong(simmpi::Comm& comm) {
//     co_await comm.send(1, /*tag=*/0, /*bytes=*/64);
//     co_await comm.recv(1, 0);
//   }
//
// Awaiting suspends the coroutine and hands control back to the event
// engine; the engine resumes it when the simulated operation completes.
// Task<T> supports nesting (collectives are themselves coroutines) via
// symmetric transfer in final_suspend.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"

namespace sci::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  // Coroutine frames route through the per-thread FramePool: the
  // compiler finds these through the promise type, so every sim::Task
  // frame -- rank programs, collectives, trampolines -- is recycled
  // instead of hitting the allocator once the pool is warm.
  static void* operator new(std::size_t size) { return FramePool::local().allocate(size); }
  static void operator delete(void* p) noexcept { FramePool::local().deallocate(p); }

  std::coroutine_handle<> continuation;  // resumed when this task finishes

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] std::suspend_always initial_suspend() const noexcept { return {}; }
  [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
  [[noreturn]] void unhandled_exception() const { std::terminate(); }
};

}  // namespace detail

/// Lazily started coroutine task. Owns its frame; safe to destroy once
/// finished (the awaiting parent destroys it when the Task goes out of
/// scope after co_await completes).
template <typename T = void>
class Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  /// Starts the task detached (no awaiting parent); the engine drives it.
  /// The caller keeps ownership of the Task object until done.
  void start() const {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      [[nodiscard]] bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) const noexcept {
        child.promise().continuation = parent;
        return child;  // symmetric transfer: run the child now
      }
      T await_resume() const { return std::move(*child.promise().value); }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  void start() const {
    if (handle_ && !handle_.done()) handle_.resume();
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> child;
      [[nodiscard]] bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) const noexcept {
        child.promise().continuation = parent;
        return child;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable that parks the coroutine for `delay` simulated seconds.
struct Delay {
  Engine& engine;
  double delay;

  [[nodiscard]] bool await_ready() const noexcept { return delay <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_after(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// Awaitable that parks the coroutine until absolute simulated time `when`.
struct Until {
  Engine& engine;
  double when;

  [[nodiscard]] bool await_ready() const noexcept { return when <= engine.now(); }
  void await_suspend(std::coroutine_handle<> h) const {
    engine.schedule_at(when, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

}  // namespace sci::sim
