#include "sim/topology.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace sci::sim {

Dragonfly::Dragonfly(std::size_t groups, std::size_t routers_per_group,
                     std::size_t nodes_per_router)
    : groups_(groups),
      routers_per_group_(routers_per_group),
      nodes_per_router_(nodes_per_router),
      nodes_(groups * routers_per_group * nodes_per_router) {
  if (nodes_ == 0) throw std::invalid_argument("Dragonfly: empty topology");
}

unsigned Dragonfly::hops(std::size_t a, std::size_t b) const {
  if (a >= nodes_ || b >= nodes_) throw std::out_of_range("Dragonfly::hops");
  if (a == b) return 0;
  const std::size_t router_a = a / nodes_per_router_;
  const std::size_t router_b = b / nodes_per_router_;
  if (router_a == router_b) return 1;
  const std::size_t group_a = router_a / routers_per_group_;
  const std::size_t group_b = router_b / routers_per_group_;
  if (group_a == group_b) return 2;
  return 3;  // minimal routing: local -> optical -> local
}

FatTree::FatTree(std::size_t radix, std::size_t levels) : radix_(radix), levels_(levels) {
  if (radix == 0 || levels == 0) throw std::invalid_argument("FatTree: radix, levels >= 1");
  nodes_ = 1;
  for (std::size_t i = 0; i < levels; ++i) {
    if (nodes_ > 1'000'000'000 / radix) throw std::invalid_argument("FatTree: too large");
    nodes_ *= radix;
  }
}

unsigned FatTree::hops(std::size_t a, std::size_t b) const {
  if (a >= nodes_ || b >= nodes_) throw std::out_of_range("FatTree::hops");
  if (a == b) return 0;
  // Climb until both land under the same switch subtree.
  unsigned level = 0;
  while (a != b) {
    a /= radix_;
    b /= radix_;
    ++level;
  }
  return 2 * level;  // up and down
}

Torus3D::Torus3D(std::size_t dim_x, std::size_t dim_y, std::size_t dim_z)
    : dx_(dim_x), dy_(dim_y), dz_(dim_z), nodes_(dim_x * dim_y * dim_z) {
  if (nodes_ == 0) throw std::invalid_argument("Torus3D: empty topology");
}

unsigned Torus3D::hops(std::size_t a, std::size_t b) const {
  if (a >= nodes_ || b >= nodes_) throw std::out_of_range("Torus3D::hops");
  auto ring_distance = [](std::size_t p, std::size_t q, std::size_t dim) {
    const std::size_t d = (p > q) ? p - q : q - p;
    return static_cast<unsigned>(std::min(d, dim - d));
  };
  const unsigned hx = ring_distance(a % dx_, b % dx_, dx_);
  const unsigned hy = ring_distance((a / dx_) % dy_, (b / dx_) % dy_, dy_);
  const unsigned hz = ring_distance(a / (dx_ * dy_), b / (dx_ * dy_), dz_);
  return hx + hy + hz;
}

std::vector<std::size_t> allocate_nodes(const Topology& topo, std::size_t count,
                                        AllocationPolicy policy, rng::Xoshiro256& gen) {
  std::vector<std::size_t> nodes;
  std::vector<std::size_t> scratch;
  allocate_nodes_into(topo, count, policy, gen, nodes, scratch);
  return nodes;
}

void allocate_nodes_into(const Topology& topo, std::size_t count, AllocationPolicy policy,
                         rng::Xoshiro256& gen, std::vector<std::size_t>& out,
                         std::vector<std::size_t>& scratch) {
  const std::size_t total = topo.node_count();
  if (count == 0 || count > total)
    throw std::invalid_argument("allocate_nodes: 1 <= count <= node_count required");

  out.clear();
  out.reserve(count);
  switch (policy) {
    case AllocationPolicy::kPacked: {
      const auto base = static_cast<std::size_t>(rng::uniform_below(gen, total - count + 1));
      for (std::size_t i = 0; i < count; ++i) out.push_back(base + i);
      break;
    }
    case AllocationPolicy::kScattered: {
      scratch.resize(total);
      std::iota(scratch.begin(), scratch.end(), std::size_t{0});
      rng::shuffle(gen, scratch);
      out.assign(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(count));
      break;
    }
  }
}

}  // namespace sci::sim
