// Network topologies: Cray Aries dragonfly (Piz Daint / Piz Dora) and
// InfiniBand fat tree (Pilatus), reduced to the property the LogGP layer
// needs -- the hop count between two nodes -- plus the batch-system view:
// which nodes an allocation receives (Section 4.1.2 notes allocation
// policies "can play an important role for performance").
#pragma once

#include <cstddef>
#include <vector>

#include "rng/xoshiro.hpp"

namespace sci::sim {

class Topology {
 public:
  virtual ~Topology() = default;
  [[nodiscard]] virtual std::size_t node_count() const noexcept = 0;
  /// Switch hops between two nodes (0 for the same node).
  [[nodiscard]] virtual unsigned hops(std::size_t a, std::size_t b) const = 0;
};

/// Dragonfly: nodes -> routers -> groups, all-to-all between groups.
/// Hop model: same router 1, same group 2, different group 3-4 (one
/// optical hop, possibly one intermediate for non-minimal routing -- we
/// use minimal routing: 3).
class Dragonfly final : public Topology {
 public:
  Dragonfly(std::size_t groups, std::size_t routers_per_group, std::size_t nodes_per_router);
  [[nodiscard]] std::size_t node_count() const noexcept override { return nodes_; }
  [[nodiscard]] unsigned hops(std::size_t a, std::size_t b) const override;

 private:
  std::size_t groups_;
  std::size_t routers_per_group_;
  std::size_t nodes_per_router_;
  std::size_t nodes_;
};

/// k-ary fat tree with `levels` switch levels; hops = 2 * (levels needed
/// to reach the common ancestor).
class FatTree final : public Topology {
 public:
  FatTree(std::size_t radix, std::size_t levels);
  [[nodiscard]] std::size_t node_count() const noexcept override { return nodes_; }
  [[nodiscard]] unsigned hops(std::size_t a, std::size_t b) const override;

 private:
  std::size_t radix_;
  std::size_t levels_;
  std::size_t nodes_;
};

/// 3-D torus (the Blue Gene / Cray XT-era topology): nodes indexed
/// x + dim_x * (y + dim_y * z); hops = sum of per-dimension wrap-around
/// distances (dimension-ordered routing).
class Torus3D final : public Topology {
 public:
  Torus3D(std::size_t dim_x, std::size_t dim_y, std::size_t dim_z);
  [[nodiscard]] std::size_t node_count() const noexcept override { return nodes_; }
  [[nodiscard]] unsigned hops(std::size_t a, std::size_t b) const override;

 private:
  std::size_t dx_;
  std::size_t dy_;
  std::size_t dz_;
  std::size_t nodes_;
};

/// Batch-system allocation policy (Section 4.1.2: "packed or scattered
/// node layout").
enum class AllocationPolicy {
  kPacked,     ///< contiguous node ids starting at a random base
  kScattered,  ///< uniform random distinct nodes across the machine
};

/// Chooses `count` distinct nodes from `topo` under `policy`.
[[nodiscard]] std::vector<std::size_t> allocate_nodes(const Topology& topo,
                                                      std::size_t count,
                                                      AllocationPolicy policy,
                                                      rng::Xoshiro256& gen);

/// In-place allocate_nodes: writes the allocation into `out` and uses
/// `scratch` for the scattered policy's node permutation, so a caller
/// that keeps both buffers (World::reset, every replication) draws the
/// exact same allocation as allocate_nodes without touching the heap
/// once the buffers reached node_count() capacity.
void allocate_nodes_into(const Topology& topo, std::size_t count, AllocationPolicy policy,
                         rng::Xoshiro256& gen, std::vector<std::size_t>& out,
                         std::vector<std::size_t>& scratch);

}  // namespace sci::sim
