// Simulated-time tracing helpers: RAII spans whose clock is the event
// engine, for instrumenting coroutine rank programs and collectives.
// A local EngineSpan in a coroutine emits its span when the coroutine
// body finishes (locals are destroyed at co_return), covering every
// suspension in between -- exactly the collective's per-rank extent.
//
// Like the SCI_TRACE_* macros, SCI_SIM_SPAN vanishes entirely under
// SCIBENCH_TRACING=OFF (no argument evaluation).
#pragma once

#include <initializer_list>
#include <vector>

#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace sci::sim {

#if SCIBENCH_TRACING

class EngineSpan {
 public:
  EngineSpan(const Engine& engine, int tid, const char* name, const char* cat,
             std::initializer_list<obs::TraceArg> args = {})
      : engine_(&engine), tid_(tid), name_(name), cat_(cat), t0_(engine.now()),
        armed_(obs::sink() != nullptr) {
    // Copying the args costs a heap allocation; with no sink attached
    // (every untraced replication) the span must cost nothing, so the
    // copy only happens when someone is listening.
    if (armed_) args_.assign(args.begin(), args.end());
  }
  ~EngineSpan() {
    if (!armed_) return;
    if (obs::TraceSink* s = obs::sink()) {
      s->complete(tid_, name_, cat_, t0_, engine_->now() - t0_, std::move(args_));
    }
  }
  EngineSpan(const EngineSpan&) = delete;
  EngineSpan& operator=(const EngineSpan&) = delete;

 private:
  const Engine* engine_;
  int tid_;
  const char* name_;
  const char* cat_;
  double t0_;
  bool armed_;
  std::vector<obs::TraceArg> args_;
};

#define SCI_SIM_SPAN(var, engine, tid, name, cat, ...) \
  ::sci::sim::EngineSpan var{(engine), (tid), (name), (cat)__VA_OPT__(, ) __VA_ARGS__}

#else  // !SCIBENCH_TRACING

#define SCI_SIM_SPAN(var, engine, tid, name, cat, ...) \
  do {                                                 \
  } while (0)

#endif  // SCIBENCH_TRACING

}  // namespace sci::sim
