#include "simmpi/benchmarks.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/task.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

constexpr int kTagPing = 1;
constexpr int kTagPong = 2;

}  // namespace

std::vector<double> pingpong_latency(const sim::Machine& machine, std::size_t samples,
                                     std::size_t message_bytes, std::uint64_t seed,
                                     std::size_t warmup) {
  World world(machine, 2, seed);
  std::vector<double> out;
  out.reserve(samples);

  const std::size_t total = samples + warmup;
  world.launch_on(0, [&](Comm& comm) -> sim::Task<void> {
    for (std::size_t i = 0; i < total; ++i) {
      const double t0 = comm.wtime();
      co_await comm.send(1, kTagPing, message_bytes);
      (void)co_await comm.recv(1, kTagPong);
      const double t1 = comm.wtime();
      if (i >= warmup) out.push_back((t1 - t0) / 2.0);
    }
  });
  world.launch_on(1, [&, total](Comm& comm) -> sim::Task<void> {
    for (std::size_t i = 0; i < total; ++i) {
      (void)co_await comm.recv(0, kTagPing);
      co_await comm.send(0, kTagPong, message_bytes);
    }
  });
  world.run();
  return out;
}

ReduceBenchResult ReduceBenchResult_make(std::size_t iterations, int ranks) {
  ReduceBenchResult r;
  r.times.assign(iterations, std::vector<double>(static_cast<std::size_t>(ranks), 0.0));
  return r;
}

std::vector<double> ReduceBenchResult::max_across_ranks() const {
  std::vector<double> out;
  out.reserve(times.size());
  for (const auto& row : times) out.push_back(*std::max_element(row.begin(), row.end()));
  return out;
}

std::vector<double> ReduceBenchResult::rank_series(int rank) const {
  std::vector<double> out;
  out.reserve(times.size());
  for (const auto& row : times) out.push_back(row.at(static_cast<std::size_t>(rank)));
  return out;
}

ReduceBenchResult reduce_bench(const sim::Machine& machine, int ranks,
                               std::size_t iterations, std::uint64_t seed,
                               double sync_window_s) {
  if (ranks < 1) throw std::invalid_argument("reduce_bench: ranks >= 1");
  World world(machine, ranks, seed);
  ReduceBenchResult result = ReduceBenchResult_make(iterations, ranks);

  world.launch([&](Comm& comm) -> sim::Task<void> {
    for (std::size_t i = 0; i < iterations; ++i) {
      co_await window_sync(comm, sync_window_s);
      const double t0 = comm.wtime();
      (void)co_await reduce(comm, static_cast<double>(comm.rank()), /*root=*/0);
      const double t1 = comm.wtime();
      result.times[i][static_cast<std::size_t>(comm.rank())] = t1 - t0;
    }
  });
  world.run();
  return result;
}

std::vector<double> pi_scaling_run(const sim::Machine& machine, int ranks,
                                   double base_seconds, double serial_fraction,
                                   std::size_t repetitions, std::uint64_t seed) {
  std::vector<double> completion(repetitions, 0.0);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    World world(machine, ranks, seed + rep);
    std::vector<double> finish(static_cast<std::size_t>(ranks), 0.0);

    world.launch([&](Comm& comm) -> sim::Task<void> {
      // Serial initialization on rank 0 (the Amdahl fraction), then
      // embarrassingly parallel work, then one reduction.
      if (comm.rank() == 0) {
        co_await comm.compute(base_seconds * serial_fraction);
        // Release the other ranks (models broadcasting the work).
        (void)co_await bcast(comm, 0.0, 0);
      } else {
        (void)co_await bcast(comm, 0.0, 0);
      }
      const double parallel_work =
          base_seconds * (1.0 - serial_fraction) / static_cast<double>(comm.size());
      co_await comm.compute(parallel_work);
      (void)co_await reduce(comm, 3.14159 / static_cast<double>(comm.size()), 0);
      finish[static_cast<std::size_t>(comm.rank())] = comm.world().engine().now();
    });
    world.run();
    completion[rep] = *std::max_element(finish.begin(), finish.end());
  }
  return completion;
}

std::vector<double> window_sync_skew(const sim::Machine& machine, int ranks,
                                     std::size_t trials, std::uint64_t seed) {
  World world(machine, ranks, seed);
  std::vector<std::vector<double>> leave_time(
      trials, std::vector<double>(static_cast<std::size_t>(ranks), 0.0));

  world.launch([&](Comm& comm) -> sim::Task<void> {
    for (std::size_t t = 0; t < trials; ++t) {
      co_await window_sync(comm, 200e-6);
      // True (global) time at which this rank resumed after the sync.
      leave_time[t][static_cast<std::size_t>(comm.rank())] = comm.world().engine().now();
    }
  });
  world.run();

  std::vector<double> skew;
  skew.reserve(trials);
  for (const auto& row : leave_time) {
    const auto [lo, hi] = std::minmax_element(row.begin(), row.end());
    skew.push_back(*hi - *lo);
  }
  return skew;
}

}  // namespace sci::simmpi
