#include "simmpi/benchmarks.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/task.hpp"
#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

constexpr int kTagPing = 1;
constexpr int kTagPong = 2;

}  // namespace

std::vector<double> pingpong_latency(const sim::Machine& machine, std::size_t samples,
                                     std::size_t message_bytes, std::uint64_t seed,
                                     std::size_t warmup) {
  PingPongBench bench(machine, message_bytes, warmup);
  return bench.run(samples, seed);
}

void ReduceBenchResult::max_across_ranks_into(std::vector<double>& out) const {
  out.clear();
  out.reserve(times.size());
  for (const auto& row : times) out.push_back(*std::max_element(row.begin(), row.end()));
}

std::vector<double> ReduceBenchResult::max_across_ranks() const {
  std::vector<double> out;
  max_across_ranks_into(out);
  return out;
}

std::vector<double> ReduceBenchResult::rank_series(int rank) const {
  std::vector<double> out;
  out.reserve(times.size());
  for (const auto& row : times) out.push_back(row.at(static_cast<std::size_t>(rank)));
  return out;
}

ReduceBenchResult reduce_bench(const sim::Machine& machine, int ranks,
                               std::size_t iterations, std::uint64_t seed,
                               double sync_window_s) {
  if (ranks < 1) throw std::invalid_argument("reduce_bench: ranks >= 1");
  ReduceBench bench(machine, ranks, sync_window_s);
  return bench.run(iterations, seed);
}

std::vector<double> pi_scaling_run(const sim::Machine& machine, int ranks,
                                   double base_seconds, double serial_fraction,
                                   std::size_t repetitions, std::uint64_t seed) {
  PiScalingBench bench(machine, ranks, base_seconds, serial_fraction);
  return bench.run(repetitions, seed);
}

std::vector<double> window_sync_skew(const sim::Machine& machine, int ranks,
                                     std::size_t trials, std::uint64_t seed) {
  World world(machine, ranks, seed);
  std::vector<std::vector<double>> leave_time(
      trials, std::vector<double>(static_cast<std::size_t>(ranks), 0.0));

  world.launch([&](Comm& comm) -> sim::Task<void> {
    for (std::size_t t = 0; t < trials; ++t) {
      co_await window_sync(comm, 200e-6);
      // True (global) time at which this rank resumed after the sync.
      leave_time[t][static_cast<std::size_t>(comm.rank())] = comm.world().engine().now();
    }
  });
  world.run();

  std::vector<double> skew;
  skew.reserve(trials);
  for (const auto& row : leave_time) {
    const auto [lo, hi] = std::minmax_element(row.begin(), row.end());
    skew.push_back(*hi - *lo);
  }
  return skew;
}

PingPongBench::PingPongBench(sim::Machine machine, std::size_t message_bytes,
                             std::size_t warmup)
    : world_(std::move(machine), 2, /*seed=*/0),
      message_bytes_(message_bytes),
      warmup_(warmup) {}

const std::vector<double>& PingPongBench::run(std::size_t samples, std::uint64_t seed) {
  world_.reset(seed);
  out_.clear();
  out_.reserve(samples);

  const std::size_t total = samples + warmup_;
  world_.launch_on(0, [this, total](Comm& comm) -> sim::Task<void> {
    for (std::size_t i = 0; i < total; ++i) {
      const double t0 = comm.wtime();
      co_await comm.send(1, kTagPing, message_bytes_);
      (void)co_await comm.recv(1, kTagPong);
      const double t1 = comm.wtime();
      if (i >= warmup_) out_.push_back((t1 - t0) / 2.0);
    }
  });
  world_.launch_on(1, [this, total](Comm& comm) -> sim::Task<void> {
    for (std::size_t i = 0; i < total; ++i) {
      (void)co_await comm.recv(0, kTagPing);
      co_await comm.send(0, kTagPong, message_bytes_);
    }
  });
  world_.run();
  return out_;
}

ReduceBench::ReduceBench(sim::Machine machine, int ranks, double sync_window_s)
    : world_(std::move(machine), ranks, /*seed=*/0),
      ranks_(ranks),
      sync_window_s_(sync_window_s) {}

const ReduceBenchResult& ReduceBench::run(std::size_t iterations, std::uint64_t seed) {
  world_.reset(seed);
  const auto width = static_cast<std::size_t>(ranks_);
  // resize + assign rather than a fresh grid: rows keep their capacity,
  // so repeat runs with the same shape touch no memory allocator.
  result_.times.resize(iterations);
  for (auto& row : result_.times) row.assign(width, 0.0);

  world_.launch([this, iterations](Comm& comm) -> sim::Task<void> {
    for (std::size_t i = 0; i < iterations; ++i) {
      co_await window_sync(comm, sync_window_s_);
      const double t0 = comm.wtime();
      (void)co_await reduce(comm, static_cast<double>(comm.rank()), /*root=*/0);
      const double t1 = comm.wtime();
      result_.times[i][static_cast<std::size_t>(comm.rank())] = t1 - t0;
    }
  });
  world_.run();
  return result_;
}

PiScalingBench::PiScalingBench(sim::Machine machine, int ranks, double base_seconds,
                               double serial_fraction)
    : world_(std::move(machine), ranks, /*seed=*/0),
      ranks_(ranks),
      base_seconds_(base_seconds),
      serial_fraction_(serial_fraction) {}

const std::vector<double>& PiScalingBench::run(std::size_t repetitions,
                                               std::uint64_t seed) {
  completion_.assign(repetitions, 0.0);
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    // pi_scaling_run builds World(machine, ranks, seed + rep) per
    // repetition; reset with the same seed chain is byte-identical.
    world_.reset(seed + rep);
    finish_.assign(static_cast<std::size_t>(ranks_), 0.0);

    world_.launch([this](Comm& comm) -> sim::Task<void> {
      // Serial initialization on rank 0 (the Amdahl fraction), then
      // embarrassingly parallel work, then one reduction.
      if (comm.rank() == 0) {
        co_await comm.compute(base_seconds_ * serial_fraction_);
        // Release the other ranks (models broadcasting the work).
        (void)co_await bcast(comm, 0.0, 0);
      } else {
        (void)co_await bcast(comm, 0.0, 0);
      }
      const double parallel_work =
          base_seconds_ * (1.0 - serial_fraction_) / static_cast<double>(comm.size());
      co_await comm.compute(parallel_work);
      (void)co_await reduce(comm, 3.14159 / static_cast<double>(comm.size()), 0);
      finish_[static_cast<std::size_t>(comm.rank())] = comm.world().engine().now();
    });
    world_.run();
    completion_[rep] = *std::max_element(finish_.begin(), finish_.end());
  }
  return completion_;
}

}  // namespace sci::simmpi
