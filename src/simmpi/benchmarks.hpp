// Canned measurement drivers used by the paper-reproduction benches and
// the examples. Each runs a complete simulated experiment and returns
// the raw per-event samples -- never pre-summarized, so downstream code
// can apply the statistics the paper calls for (Rule 5: report spread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace sci::simmpi {

/// Ping-pong between two ranks on different nodes. Returns `samples`
/// half-round-trip latencies in seconds, measured on rank 0 with its
/// local clock, first `warmup` iterations discarded (Section 4.1.2
/// "Warmup").
[[nodiscard]] std::vector<double> pingpong_latency(const sim::Machine& machine,
                                                   std::size_t samples,
                                                   std::size_t message_bytes,
                                                   std::uint64_t seed,
                                                   std::size_t warmup = 16);

/// Reduce benchmark: `iterations` timed MPI_Reduce calls on `ranks`
/// processes. Timing protocol (Rule 10): every iteration starts with a
/// window synchronization; each rank then records the local time until
/// *it* completes its part of the reduction.
struct ReduceBenchResult {
  /// times[i][r]: completion time of iteration i on rank r (seconds).
  std::vector<std::vector<double>> times;
  /// Per-iteration maximum across ranks (the usual "reduce latency").
  [[nodiscard]] std::vector<double> max_across_ranks() const;
  /// All iterations of one rank.
  [[nodiscard]] std::vector<double> rank_series(int rank) const;
};

[[nodiscard]] ReduceBenchResult reduce_bench(const sim::Machine& machine, int ranks,
                                             std::size_t iterations, std::uint64_t seed,
                                             double sync_window_s = 200e-6);

/// Computing digits of Pi (the paper's Figure 7 example): perfectly
/// parallel work of `base_seconds` total, a serial fraction
/// `serial_fraction` executed on rank 0, and one final reduction.
/// Returns the completion time (max across ranks, true time) of each of
/// the `repetitions` runs.
[[nodiscard]] std::vector<double> pi_scaling_run(const sim::Machine& machine, int ranks,
                                                 double base_seconds,
                                                 double serial_fraction,
                                                 std::size_t repetitions,
                                                 std::uint64_t seed);

/// Measured offset-estimation error of window_sync: runs `trials`
/// synchronizations on `ranks` processes and returns, per trial, the
/// spread (max - min) of the *true* times at which ranks left the sync.
[[nodiscard]] std::vector<double> window_sync_skew(const sim::Machine& machine, int ranks,
                                                   std::size_t trials, std::uint64_t seed);

}  // namespace sci::simmpi
