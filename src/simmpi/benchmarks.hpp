// Canned measurement drivers used by the paper-reproduction benches and
// the examples. Each runs a complete simulated experiment and returns
// the raw per-event samples -- never pre-summarized, so downstream code
// can apply the statistics the paper calls for (Rule 5: report spread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/machine.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {

/// Ping-pong between two ranks on different nodes. Returns `samples`
/// half-round-trip latencies in seconds, measured on rank 0 with its
/// local clock, first `warmup` iterations discarded (Section 4.1.2
/// "Warmup").
[[nodiscard]] std::vector<double> pingpong_latency(const sim::Machine& machine,
                                                   std::size_t samples,
                                                   std::size_t message_bytes,
                                                   std::uint64_t seed,
                                                   std::size_t warmup = 16);

/// Reduce benchmark: `iterations` timed MPI_Reduce calls on `ranks`
/// processes. Timing protocol (Rule 10): every iteration starts with a
/// window synchronization; each rank then records the local time until
/// *it* completes its part of the reduction.
struct ReduceBenchResult {
  /// times[i][r]: completion time of iteration i on rank r (seconds).
  std::vector<std::vector<double>> times;
  /// Per-iteration maximum across ranks (the usual "reduce latency").
  [[nodiscard]] std::vector<double> max_across_ranks() const;
  /// In-place max_across_ranks for callers that reuse the output buffer
  /// across replications.
  void max_across_ranks_into(std::vector<double>& out) const;
  /// All iterations of one rank.
  [[nodiscard]] std::vector<double> rank_series(int rank) const;
};

[[nodiscard]] ReduceBenchResult reduce_bench(const sim::Machine& machine, int ranks,
                                             std::size_t iterations, std::uint64_t seed,
                                             double sync_window_s = 200e-6);

/// Computing digits of Pi (the paper's Figure 7 example): perfectly
/// parallel work of `base_seconds` total, a serial fraction
/// `serial_fraction` executed on rank 0, and one final reduction.
/// Returns the completion time (max across ranks, true time) of each of
/// the `repetitions` runs.
[[nodiscard]] std::vector<double> pi_scaling_run(const sim::Machine& machine, int ranks,
                                                 double base_seconds,
                                                 double serial_fraction,
                                                 std::size_t repetitions,
                                                 std::uint64_t seed);

/// Measured offset-estimation error of window_sync: runs `trials`
/// synchronizations on `ranks` processes and returns, per trial, the
/// spread (max - min) of the *true* times at which ranks left the sync.
[[nodiscard]] std::vector<double> window_sync_skew(const sim::Machine& machine, int ranks,
                                                   std::size_t trials, std::uint64_t seed);

// -- Reusable replication contexts ------------------------------------
//
// The free functions above build a fresh World (topology walk, clock
// draws, mailboxes, event arena) per call. A replication loop pays that
// setup over and over even though only the seed changes. These contexts
// construct the world once and World::reset() it per replication, which
// is seed-for-seed byte-identical to fresh construction (pinned by
// test_exec_reuse) but leaves every buffer at its high-water capacity,
// so replications after the first run allocation-free.

/// Reusable ping-pong driver: one 2-rank world plus the sample buffer.
class PingPongBench {
 public:
  PingPongBench(sim::Machine machine, std::size_t message_bytes, std::size_t warmup = 16);

  /// Runs one replication; returns `samples` half-round-trip latencies,
  /// byte-identical to pingpong_latency(machine, samples, message_bytes,
  /// seed, warmup). The reference stays valid until the next run().
  const std::vector<double>& run(std::size_t samples, std::uint64_t seed);

  [[nodiscard]] World& world() noexcept { return world_; }

 private:
  World world_;
  std::size_t message_bytes_;
  std::size_t warmup_;
  std::vector<double> out_;
};

/// Reusable reduce driver: one `ranks`-wide world plus the result grid.
class ReduceBench {
 public:
  ReduceBench(sim::Machine machine, int ranks, double sync_window_s = 200e-6);

  /// Runs one replication, byte-identical to reduce_bench(machine,
  /// ranks, iterations, seed, sync_window_s). The reference stays valid
  /// until the next run().
  const ReduceBenchResult& run(std::size_t iterations, std::uint64_t seed);

  [[nodiscard]] World& world() noexcept { return world_; }

 private:
  World world_;
  int ranks_;
  double sync_window_s_;
  ReduceBenchResult result_;
};

/// Reusable Pi-scaling driver: pi_scaling_run builds a fresh world per
/// repetition (seed + rep); this context resets one world instead.
class PiScalingBench {
 public:
  PiScalingBench(sim::Machine machine, int ranks, double base_seconds,
                 double serial_fraction);

  /// Runs `repetitions` replications, byte-identical to
  /// pi_scaling_run(machine, ranks, base_seconds, serial_fraction,
  /// repetitions, seed). The reference stays valid until the next run().
  const std::vector<double>& run(std::size_t repetitions, std::uint64_t seed);

  [[nodiscard]] World& world() noexcept { return world_; }

 private:
  World world_;
  int ranks_;
  double base_seconds_;
  double serial_fraction_;
  std::vector<double> completion_;
  std::vector<double> finish_;
};

}  // namespace sci::simmpi
