// LocalClock is header-only; this TU anchors the target.
#include "simmpi/clock.hpp"
