// Per-rank clocks. "Most of today's parallel systems are asynchronous
// and do not have a common clock source. Furthermore, clock drift
// between processes could impact measurements" (Section 4.2.1). Each
// simulated rank owns a clock with a fixed offset and a drift in ppm;
// Comm::wtime() reads it, so measurement code experiences exactly the
// skew a real cluster would exhibit.
#pragma once

namespace sci::simmpi {

class LocalClock {
 public:
  LocalClock() = default;
  LocalClock(double offset_s, double drift_ppm)
      : offset_s_(offset_s), rate_(1.0 + drift_ppm * 1e-6) {}

  /// Local reading at global (true) simulated time t.
  [[nodiscard]] double to_local(double global_s) const noexcept {
    return global_s * rate_ + offset_s_;
  }

  /// Global time at which this clock shows `local_s`.
  [[nodiscard]] double to_global(double local_s) const noexcept {
    return (local_s - offset_s_) / rate_;
  }

  [[nodiscard]] double offset() const noexcept { return offset_s_; }
  [[nodiscard]] double drift_ppm() const noexcept { return (rate_ - 1.0) * 1e6; }

 private:
  double offset_s_ = 0.0;
  double rate_ = 1.0;
};

}  // namespace sci::simmpi
