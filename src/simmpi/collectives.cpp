#include "simmpi/collectives.hpp"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <limits>

#include "sim/trace_hooks.hpp"

namespace sci::simmpi {
namespace {

/// Largest power of two <= p.
int pow2_floor(int p) noexcept {
  int r = 1;
  while (2 * r <= p) r *= 2;
  return r;
}

constexpr std::size_t kCtrlBytes = 8;  // one double on the wire

}  // namespace

double apply(ReduceOp op, double a, double b) noexcept {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  return a;
}

sim::Task<void> barrier(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  SCI_SIM_SPAN(span, comm.world().engine(), r, "barrier", "coll", {{"p", p}});
  // Software entry cost of the collective call itself.
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  for (int k = 1, round = 0; k < p; k *= 2, ++round) {
    const int to = (r + k) % p;
    const int from = (r - k % p + p) % p;
    co_await comm.send(to, kTagBarrier + round, kCtrlBytes);
    (void)co_await comm.recv(from, kTagBarrier + round);
  }
}

sim::Task<double> reduce(Comm& comm, double value, int root, ReduceOp op) {
  const int p = comm.size();
  // Non-power-of-two communicators take the slow code path: the fold
  // phase below plus extra setup (tree computation, displacement math).
  // This models the well-known effect the paper's Figure 5 demonstrates
  // ("several implementations perform better with 2^k processes").
  const bool is_pow2 = (p & (p - 1)) == 0;
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "reduce", "coll",
               {{"p", p}, {"root", root}, {"pow2", is_pow2 ? 1 : 0}});
  const double entry = comm.world().machine().coll_entry_overhead_s;
  co_await comm.compute(is_pow2 ? entry : 2.0 * entry);
  if (p == 1) co_return value;

  // Rotate so the algorithm always reduces to virtual rank 0.
  const int vrank = (comm.rank() - root + p) % p;
  auto real = [&](int vr) { return (vr + root) % p; };

  double acc = value;
  const int p2 = pow2_floor(p);

  // Fold phase: ranks beyond the largest power of two send their value
  // in (the extra step that penalizes non-power-of-two counts).
  if (vrank >= p2) {
    co_await comm.send(real(vrank - p2), kTagReduce, kCtrlBytes, std::vector<double>(1, acc));
    co_return acc;  // non-participating rank: partial value only
  }
  if (vrank + p2 < p) {
    Message m = co_await comm.recv(real(vrank + p2), kTagReduce);
    acc = apply(op, acc, m.payload.at(0));
  }

  // Binomial tree over the power-of-two set.
  for (int mask = 1; mask < p2; mask *= 2) {
    if (vrank & mask) {
      co_await comm.send(real(vrank - mask), kTagReduce + mask, kCtrlBytes, std::vector<double>(1, acc));
      co_return acc;
    }
    Message m = co_await comm.recv(real(vrank + mask), kTagReduce + mask);
    acc = apply(op, acc, m.payload.at(0));
  }
  co_return acc;
}

sim::Task<double> bcast(Comm& comm, double value, int root) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "bcast", "coll",
               {{"p", p}, {"root", root}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  if (p == 1) co_return value;

  const int vrank = (comm.rank() - root + p) % p;
  auto real = [&](int vr) { return (vr + root) % p; };

  // Find this rank's position: receive from parent, then forward to
  // children in decreasing mask order (standard binomial broadcast).
  int mask = 1;
  while (mask < p) mask *= 2;

  double v = value;
  if (vrank != 0) {
    // Parent: clear the lowest set bit.
    const int parent = vrank & (vrank - 1);
    // Round tag = position of the differing bit, for ordered matching.
    const int bit = vrank ^ parent;
    Message m = co_await comm.recv(real(parent), kTagBcast + bit);
    v = m.payload.at(0);
  }
  // Children: vrank + bit for bits above the lowest set bit of vrank.
  const int low = (vrank == 0) ? mask : (vrank & -vrank);
  for (int bit = low / 2; bit >= 1; bit /= 2) {
    if (vrank + bit < p) {
      co_await comm.send(real(vrank + bit), kTagBcast + bit, kCtrlBytes, std::vector<double>(1, v));
    }
  }
  co_return v;
}

sim::Task<double> allreduce(Comm& comm, double value, ReduceOp op) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "allreduce", "coll", {{"p", p}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  if (p == 1) co_return value;

  const int r = comm.rank();
  const int p2 = pow2_floor(p);
  double acc = value;

  // Fold in the excess ranks.
  if (r >= p2) {
    co_await comm.send(r - p2, kTagAllreduce, kCtrlBytes, std::vector<double>(1, acc));
    // Wait for the final result from the partner.
    Message m = co_await comm.recv(r - p2, kTagAllreduce + 1);
    co_return m.payload.at(0);
  }
  if (r + p2 < p) {
    Message m = co_await comm.recv(r + p2, kTagAllreduce);
    acc = apply(op, acc, m.payload.at(0));
  }

  // Recursive doubling among the power-of-two set.
  for (int mask = 1; mask < p2; mask *= 2) {
    const int partner = r ^ mask;
    co_await comm.send(partner, kTagAllreduce + 2 + mask, kCtrlBytes, std::vector<double>(1, acc));
    Message m = co_await comm.recv(partner, kTagAllreduce + 2 + mask);
    acc = apply(op, acc, m.payload.at(0));
  }

  // Unfold: send the result back to the excess rank.
  if (r + p2 < p) {
    co_await comm.send(r + p2, kTagAllreduce + 1, kCtrlBytes, std::vector<double>(1, acc));
  }
  co_return acc;
}


sim::Task<std::vector<double>> gather(Comm& comm, double value, int root) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "gather", "coll",
               {{"p", p}, {"root", root}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  if (p == 1) co_return std::vector<double>(1, value);

  const int vrank = (comm.rank() - root + p) % p;
  auto real = [&](int vr) { return (vr + root) % p; };

  // Binomial gather: after round `mask` a surviving node holds the
  // virtual block [vrank, vrank + 2*mask) clipped to p.
  std::vector<double> block(1, value);
  for (int mask = 1; mask < p; mask *= 2) {
    if (vrank & mask) {
      const std::size_t block_bytes = 8 * block.size();
      co_await comm.send(real(vrank - mask), kTagGather + mask, block_bytes,
                         std::move(block));
      co_return std::vector<double>{};
    }
    if (vrank + mask < p) {
      Message m = co_await comm.recv(real(vrank + mask), kTagGather + mask);
      block.insert(block.end(), m.payload.begin(), m.payload.end());
    }
  }
  // Root: translate the virtual ordering back to real ranks.
  std::vector<double> out(static_cast<std::size_t>(p));
  for (int v = 0; v < p; ++v) out[static_cast<std::size_t>(real(v))] = block[v];
  co_return out;
}

sim::Task<double> scatter(Comm& comm, std::vector<double> values, int root) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "scatter", "coll",
               {{"p", p}, {"root", root}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  if (p == 1) co_return values.at(0);
  if (comm.rank() == root && static_cast<int>(values.size()) != p)
    throw std::invalid_argument("scatter: values.size() must equal comm.size()");

  const int vrank = (comm.rank() - root + p) % p;
  auto real = [&](int vr) { return (vr + root) % p; };

  int top = 1;
  while (top < p) top *= 2;

  // Node v owns virtual block [v, v + low) where low = lowest set bit of
  // v (or `top` for the root); receive it from the parent, then forward
  // the upper halves down the binomial tree.
  const int low = (vrank == 0) ? top : (vrank & -vrank);
  std::vector<double> block;
  if (vrank == 0) {
    // Rotate into virtual order.
    block.resize(static_cast<std::size_t>(p));
    for (int v = 0; v < p; ++v) block[v] = values[static_cast<std::size_t>(real(v))];
  } else {
    const int parent = vrank & (vrank - 1);
    Message m = co_await comm.recv(real(parent), kTagScatter + low);
    block = std::move(m.payload);
  }
  // block covers [vrank, min(vrank + low, p)).
  int have = std::min(low, p - vrank);
  for (int bit = low / 2; bit >= 1; bit /= 2) {
    if (vrank + bit < p) {
      const int child_len = std::min(bit, p - (vrank + bit));
      std::vector<double> sub(block.begin() + bit, block.begin() + bit + child_len);
      const std::size_t sub_bytes = 8 * sub.size();
      co_await comm.send(real(vrank + bit), kTagScatter + bit, sub_bytes,
                         std::move(sub));
      block.resize(bit);
      have = bit;
    }
  }
  (void)have;
  co_return block.at(0);
}

sim::Task<std::vector<double>> allgather(Comm& comm, double value) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "allgather", "coll", {{"p", p}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  std::vector<double> out(static_cast<std::size_t>(p), 0.0);
  const int r = comm.rank();
  out[static_cast<std::size_t>(r)] = value;
  if (p == 1) co_return out;

  // Ring: in step s, pass along the block that originated s hops back.
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_idx = (r - s + p) % p;
    const int recv_idx = (r - s - 1 + p) % p;
    co_await comm.send(right, kTagAllgather, kCtrlBytes,
                       std::vector<double>(1, out[static_cast<std::size_t>(send_idx)]));
    Message m = co_await comm.recv(left, kTagAllgather);
    out[static_cast<std::size_t>(recv_idx)] = m.payload.at(0);
  }
  co_return out;
}

sim::Task<std::vector<double>> alltoall(Comm& comm, std::vector<double> to_each) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "alltoall", "coll", {{"p", p}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  if (static_cast<int>(to_each.size()) != p)
    throw std::invalid_argument("alltoall: to_each.size() must equal comm.size()");
  const int r = comm.rank();
  std::vector<double> out(static_cast<std::size_t>(p), 0.0);
  out[static_cast<std::size_t>(r)] = to_each[static_cast<std::size_t>(r)];

  // Pairwise exchange: in round i talk to (r + i) and hear from (r - i).
  for (int i = 1; i < p; ++i) {
    const int dst = (r + i) % p;
    const int src = (r - i + p) % p;
    co_await comm.send(dst, kTagAlltoall + i, kCtrlBytes,
                       std::vector<double>(1, to_each[static_cast<std::size_t>(dst)]));
    Message m = co_await comm.recv(src, kTagAlltoall + i);
    out[static_cast<std::size_t>(src)] = m.payload.at(0);
  }
  co_return out;
}

sim::Task<double> scan(Comm& comm, double value, ReduceOp op) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "scan", "coll", {{"p", p}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  const int r = comm.rank();
  double prefix = value;  // op over [r - (2^round - 1), r]
  for (int d = 1; d < p; d *= 2) {
    if (r + d < p) {
      co_await comm.send(r + d, kTagScan + d, kCtrlBytes,
                         std::vector<double>(1, prefix));
    }
    if (r - d >= 0) {
      Message m = co_await comm.recv(r - d, kTagScan + d);
      prefix = apply(op, m.payload.at(0), prefix);
    }
  }
  co_return prefix;
}


namespace {

void combine_inplace(ReduceOp op, std::vector<double>& acc,
                     const std::vector<double>& other, std::size_t offset = 0) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    acc.at(offset + i) = apply(op, acc.at(offset + i), other[i]);
  }
}

constexpr int kTagAllreduceV = 2'000'000;

sim::Task<std::vector<double>> allreduce_v_rd(Comm& comm, std::vector<double> values,
                                              ReduceOp op) {
  const int p = comm.size();
  const int r = comm.rank();
  const int p2 = pow2_floor(p);
  const std::size_t bytes = 8 * values.size();

  if (r >= p2) {
    co_await comm.send(r - p2, kTagAllreduceV, bytes, std::move(values));
    Message m = co_await comm.recv(r - p2, kTagAllreduceV + 1);
    co_return std::move(m.payload);
  }
  if (r + p2 < p) {
    Message m = co_await comm.recv(r + p2, kTagAllreduceV);
    combine_inplace(op, values, m.payload);
  }
  for (int mask = 1; mask < p2; mask *= 2) {
    const int partner = r ^ mask;
    co_await comm.send(partner, kTagAllreduceV + 2 + mask, bytes,
                       std::vector<double>(values));
    Message m = co_await comm.recv(partner, kTagAllreduceV + 2 + mask);
    combine_inplace(op, values, m.payload);
  }
  if (r + p2 < p) {
    co_await comm.send(r + p2, kTagAllreduceV + 1, bytes, std::vector<double>(values));
  }
  co_return values;
}

sim::Task<std::vector<double>> allreduce_v_ring(Comm& comm, std::vector<double> values,
                                                ReduceOp op) {
  // Ring reduce-scatter + ring allgather over p chunks (any p >= 2).
  const int p = comm.size();
  const int r = comm.rank();
  const std::size_t n = values.size();
  const int right = (r + 1) % p;
  const int left = (r - 1 + p) % p;
  auto chunk_begin = [&](int c) {
    return n * static_cast<std::size_t>((c % p + p) % p) / static_cast<std::size_t>(p);
  };
  auto chunk = [&](int c) {
    const std::size_t lo = chunk_begin(c);
    const std::size_t hi = chunk_begin(c + 1) == 0 ? n : chunk_begin(c + 1);
    return std::pair<std::size_t, std::size_t>{lo, (c % p == p - 1) ? n : hi};
  };

  // Reduce-scatter: after step s, this rank holds the partial reduction
  // of chunk (r - s) over ranks r-s..r.
  for (int s = 0; s < p - 1; ++s) {
    const auto [slo, shi] = chunk(r - s);
    std::vector<double> out(values.begin() + static_cast<std::ptrdiff_t>(slo),
                            values.begin() + static_cast<std::ptrdiff_t>(shi));
    const std::size_t out_bytes = 8 * out.size();
    co_await comm.send(right, kTagAllreduceV + 100 + s, out_bytes, std::move(out));
    Message m = co_await comm.recv(left, kTagAllreduceV + 100 + s);
    const auto [rlo, rhi] = chunk(r - s - 1);
    (void)rhi;
    combine_inplace(op, values, m.payload, rlo);
  }
  // Allgather: circulate the fully reduced chunks.
  for (int s = 0; s < p - 1; ++s) {
    const auto [slo, shi] = chunk(r + 1 - s);
    std::vector<double> out(values.begin() + static_cast<std::ptrdiff_t>(slo),
                            values.begin() + static_cast<std::ptrdiff_t>(shi));
    const std::size_t out_bytes = 8 * out.size();
    co_await comm.send(right, kTagAllreduceV + 500 + s, out_bytes, std::move(out));
    Message m = co_await comm.recv(left, kTagAllreduceV + 500 + s);
    const auto [rlo, rhi] = chunk(r - s);
    (void)rhi;
    for (std::size_t i = 0; i < m.payload.size(); ++i) values.at(rlo + i) = m.payload[i];
  }
  co_return values;
}

}  // namespace

sim::Task<std::vector<double>> allreduce_v(Comm& comm, std::vector<double> values,
                                           ReduceOp op, AllreduceAlgo algo,
                                           std::size_t auto_threshold_bytes) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "allreduce_v", "coll",
               {{"p", p}, {"n", values.size()}});
  co_await comm.compute(comm.world().machine().coll_entry_overhead_s);
  if (values.empty()) throw std::invalid_argument("allreduce_v: empty vector");
  if (p == 1) co_return values;

  if (algo == AllreduceAlgo::kAuto) {
    algo = (8 * values.size() <= auto_threshold_bytes) ? AllreduceAlgo::kRecursiveDoubling
                                                       : AllreduceAlgo::kRing;
  }
  // The ring needs at least one element per chunk boundary to make
  // progress; tiny vectors on many ranks fall back to doubling.
  if (algo == AllreduceAlgo::kRing && values.size() < static_cast<std::size_t>(p)) {
    algo = AllreduceAlgo::kRecursiveDoubling;
  }
  if (algo == AllreduceAlgo::kRing) {
    co_return co_await allreduce_v_ring(comm, std::move(values), op);
  }
  co_return co_await allreduce_v_rd(comm, std::move(values), op);
}

sim::Task<void> window_sync(Comm& comm, double window_s, int master, int rounds) {
  const int p = comm.size();
  SCI_SIM_SPAN(span, comm.world().engine(), comm.rank(), "window_sync", "coll",
               {{"p", p}, {"rounds", rounds}});
  if (p == 1) co_return;

  if (comm.rank() == master) {
    // Estimate each rank's clock offset from the minimum-RTT ping-pong:
    // offset ~ slave_local - (t1 + t2) / 2 measured in master-local time.
    std::vector<double> offsets(static_cast<std::size_t>(p), 0.0);
    for (int r = 0; r < p; ++r) {
      if (r == master) continue;
      double best_rtt = std::numeric_limits<double>::infinity();
      double best_offset = 0.0;
      for (int k = 0; k < rounds; ++k) {
        const double t1 = comm.wtime();
        co_await comm.send(r, kTagSync, kCtrlBytes);
        Message m = co_await comm.recv(r, kTagSync + 1);
        const double t2 = comm.wtime();
        const double rtt = t2 - t1;
        if (rtt < best_rtt) {
          best_rtt = rtt;
          best_offset = m.payload.at(0) - (t1 + t2) / 2.0;
        }
      }
      offsets[static_cast<std::size_t>(r)] = best_offset;
    }
    // Broadcast the start: each rank gets its *local* start time.
    const double start_master_local = comm.wtime() + window_s;
    for (int r = 0; r < p; ++r) {
      if (r == master) continue;
      const double start_r = start_master_local + offsets[static_cast<std::size_t>(r)];
      co_await comm.send(r, kTagSync + 2, kCtrlBytes, std::vector<double>(1, start_r));
    }
    co_await comm.wait_until_local(start_master_local);
  } else {
    for (int k = 0; k < rounds; ++k) {
      (void)co_await comm.recv(master, kTagSync);
      co_await comm.send(master, kTagSync + 1, kCtrlBytes, std::vector<double>(1, comm.wtime()));
    }
    Message m = co_await comm.recv(master, kTagSync + 2);
    co_await comm.wait_until_local(m.payload.at(0));
  }
}

}  // namespace sci::simmpi
