// Collective operations built from point-to-point, mirroring the
// algorithms production MPIs use:
//
//   barrier    dissemination (Hensgen et al.): ceil(log2 p) rounds
//   bcast      binomial tree from the root
//   reduce     power-of-two fold + binomial tree -- non-power-of-two
//              process counts pay an extra fold step, which is exactly
//              the effect the paper's Figure 5 demonstrates
//   allreduce  recursive doubling with power-of-two fold
//   window_sync  the delay-window time synchronization of Section 4.2.1
//                (master estimates per-rank clock offsets via ping-pong
//                and broadcasts a common start time)
//
// All are coroutines: co_await them from a rank program. Every rank of
// the communicator must call the same collective in the same order.
#pragma once

#include <vector>

#include "sim/task.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {

/// Reserved tag range for collectives (user tags should stay below).
inline constexpr int kTagBarrier = 1'000'000;
inline constexpr int kTagReduce = 1'100'000;
inline constexpr int kTagBcast = 1'200'000;
inline constexpr int kTagAllreduce = 1'300'000;
inline constexpr int kTagSync = 1'400'000;
inline constexpr int kTagGather = 1'500'000;
inline constexpr int kTagScatter = 1'600'000;
inline constexpr int kTagAllgather = 1'700'000;
inline constexpr int kTagAlltoall = 1'800'000;
inline constexpr int kTagScan = 1'900'000;

/// Dissemination barrier.
[[nodiscard]] sim::Task<void> barrier(Comm& comm);

enum class ReduceOp { kSum, kMin, kMax };

/// Reduce `value` to `root`; the returned value is meaningful on the
/// root only (other ranks receive their partial result).
[[nodiscard]] sim::Task<double> reduce(Comm& comm, double value, int root = 0,
                                       ReduceOp op = ReduceOp::kSum);

/// Broadcast `value` from `root`; returns the root's value on all ranks.
[[nodiscard]] sim::Task<double> bcast(Comm& comm, double value, int root = 0);

/// Allreduce: every rank returns the reduction over all ranks.
[[nodiscard]] sim::Task<double> allreduce(Comm& comm, double value,
                                          ReduceOp op = ReduceOp::kSum);

/// Gather: rank r's value lands at index r of the vector returned on
/// `root` (binomial tree; other ranks return an empty vector).
[[nodiscard]] sim::Task<std::vector<double>> gather(Comm& comm, double value,
                                                    int root = 0);

/// Scatter: `values` (significant on root, size = comm.size()) is
/// distributed; rank r returns values[r]. Binomial tree.
[[nodiscard]] sim::Task<double> scatter(Comm& comm, std::vector<double> values,
                                        int root = 0);

/// Allgather: every rank returns the full vector of per-rank values
/// (ring algorithm: p-1 neighbor exchanges).
[[nodiscard]] sim::Task<std::vector<double>> allgather(Comm& comm, double value);

/// Personalized all-to-all: `to_each[r]` is sent to rank r; the returned
/// vector holds what every rank sent to this one (pairwise exchange).
[[nodiscard]] sim::Task<std::vector<double>> alltoall(Comm& comm,
                                                      std::vector<double> to_each);

/// Inclusive prefix reduction (Hillis-Steele, ceil(log2 p) rounds):
/// rank r returns op(value_0, ..., value_r).
[[nodiscard]] sim::Task<double> scan(Comm& comm, double value,
                                     ReduceOp op = ReduceOp::kSum);

/// Vector allreduce algorithm selection. Real MPIs switch algorithms at
/// a payload threshold: recursive doubling moves the whole vector
/// log2(p) times (latency-optimal); the ring (reduce-scatter +
/// allgather) moves 2(p-1)/p of the vector total (bandwidth-optimal).
enum class AllreduceAlgo { kAuto, kRecursiveDoubling, kRing };

/// Element-wise allreduce of `values` (same length on every rank);
/// every rank returns the fully reduced vector. kAuto picks recursive
/// doubling below `auto_threshold_bytes` of payload and the ring above.
[[nodiscard]] sim::Task<std::vector<double>> allreduce_v(
    Comm& comm, std::vector<double> values, ReduceOp op = ReduceOp::kSum,
    AllreduceAlgo algo = AllreduceAlgo::kAuto,
    std::size_t auto_threshold_bytes = 262144);

/// Window-based synchronization (Hoefler, Schneider & Lumsdaine, IPDPS'08
/// scheme, simplified): rank `master` ping-pongs `rounds` times with each
/// rank, estimates clock offsets from the minimum-RTT round, then sends
/// each rank the *local* time at which to start, `window_s` in the
/// future. Returns after this rank has waited until its start time.
/// All ranks then proceed within the offset-estimation error -- which is
/// itself a measurable quantity (see tests).
[[nodiscard]] sim::Task<void> window_sync(Comm& comm, double window_s, int master = 0,
                                          int rounds = 5);

[[nodiscard]] double apply(ReduceOp op, double a, double b) noexcept;

}  // namespace sci::simmpi
