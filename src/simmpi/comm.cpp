#include "simmpi/comm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"

namespace sci::simmpi {

int Comm::size() const noexcept { return world_->size(); }

double Comm::wtime() const noexcept { return clock_.to_local(world_->engine_.now()); }

Comm::SendAwaitable Comm::send(int dst, int tag, std::size_t bytes,
                               std::vector<double> payload) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("Comm::send: bad destination");
  return SendAwaitable{this, dst, tag, bytes, std::move(payload)};
}

Comm::RecvAwaitable Comm::recv(int src, int tag) {
  if (src != kAnySource && (src < 0 || src >= size()))
    throw std::out_of_range("Comm::recv: bad source");
  return RecvAwaitable{this, src, tag, {}};
}

Comm::ComputeAwaitable Comm::compute(double pure_seconds) {
  if (pure_seconds < 0.0) throw std::domain_error("Comm::compute: negative duration");
  return ComputeAwaitable{this, pure_seconds};
}

Comm::WaitLocalAwaitable Comm::wait_until_local(double local_time) {
  return WaitLocalAwaitable{this, local_time};
}

Request::WaitAwaitable Request::wait() { return WaitAwaitable{state_}; }

sim::Task<void> wait_all(std::span<Request> requests) {
  for (auto& r : requests) (void)co_await r.wait();
}

Request Comm::isend(int dst, int tag, std::size_t bytes, std::vector<double> payload) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("Comm::isend: bad destination");
  ++stats_.sends;
  stats_.bytes_sent += bytes;
  World& w = *world_;
  const double o = w.machine_.loggp.overhead_s;

  const double base = w.route_base(rank_, dst);
  const double wire = w.faulty_transfer(base, bytes, rank_, dst, gen_);
  double handshake = 0.0;
  if (bytes > w.machine_.loggp.eager_threshold_bytes) {
    handshake = 2.0 * (o + w.network_.transfer_time_on_route(base, 8, gen_, w.noise_tally_));
  }

  Message msg;
  msg.src = rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.seq = w.next_msg_seq_++;
  msg.payload = std::move(payload);

  double arrival = w.engine_.now() + o + handshake + wire;
  double& last =
      w.fifo_clock_[static_cast<std::size_t>(rank_)][static_cast<std::size_t>(dst)];
  arrival = std::max(arrival, last);
  last = arrival;
#if SCIBENCH_TRACING
  if (obs::TraceSink* s = obs::sink()) {
    const double t0 = w.engine_.now();
    const double wire_start = t0 + o + handshake;
    const double ideal = w.network_.ideal_transfer_on_route(base, bytes);
    s->complete(rank_, "isend", "p2p", t0, o + handshake,
                {{"dst", dst}, {"tag", tag}, {"bytes", bytes}, {"mseq", msg.seq}});
    s->complete(obs::kWireTrackBase + rank_, "wire", "net.wire", wire_start,
                arrival - wire_start,
                {{"src", rank_},
                 {"dst", dst},
                 {"bytes", bytes},
                 {"mseq", msg.seq},
                 {"noise_s", wire - ideal}});
  }
#endif
  w.engine_.schedule_at(arrival,
                        [&w, m = std::move(msg)]() mutable { w.deliver(std::move(m)); });

  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->world = &w;
  // Sender-side completion: overhead (+ handshake under rendezvous).
  w.engine_.schedule_after(o + handshake, [state = req.state_] {
    state->complete = true;
    if (state->waiter) {
      const auto h = state->waiter;
      state->waiter = nullptr;
      h.resume();
    }
  });
  return req;
}

Request Comm::irecv(int src, int tag) {
  if (src != kAnySource && (src < 0 || src >= size()))
    throw std::out_of_range("Comm::irecv: bad source");
  World& w = *world_;
  auto& box = w.mailboxes_[static_cast<std::size_t>(rank_)];

  Request req;
  req.state_ = std::make_shared<Request::State>();
  req.state_->world = &w;

  auto it = std::find_if(box.unexpected.begin(), box.unexpected.end(),
                         [&](const Message& m) { return World::matches(src, tag, m); });
  if (it != box.unexpected.end()) {
    Message msg = std::move(*it);
    box.unexpected.erase(it);
    SCI_TRACE_COMPLETE(rank_, "irecv", "p2p", w.engine_.now(),
                       w.machine_.loggp.overhead_s,
                       {{"src", msg.src},
                        {"tag", msg.tag},
                        {"bytes", msg.bytes},
                        {"mseq", msg.seq},
                        {"wait_s", 0.0}});
    w.complete_request(req.state_, std::move(msg));
  } else {
    box.posted_nb.push_back(World::PostedIrecv{src, tag, req.state_, w.engine_.now()});
  }
  return req;
}

double World::faulty_transfer(double base, std::size_t bytes, int src_rank, int dst_rank,
                              rng::Xoshiro256& gen) {
  // Benign machines take the first return: route_degrade_ is empty and
  // drop_prob is 0, so this is exactly transfer_time_on_route (same RNG
  // draw sequence -- the determinism pins of test_exec_reuse hold).
  double degrade = 1.0;
  if (!route_degrade_.empty()) {
    degrade = route_degrade_[static_cast<std::size_t>(src_rank) * comms_.size() +
                             static_cast<std::size_t>(dst_rank)];
  }
  double wire = network_.transfer_time_on_route(base, bytes, gen, noise_tally_) * degrade;
  if (degrade > 1.0) ++fault_tally_.degraded_transfers;
  const fault::FaultSpec& f = machine_.faults;
  if (f.drop_prob > 0.0) {
    // Reliable-transport model: each attempt is lost with drop_prob;
    // a loss costs the retransmit timeout before the (re-drawn) resend
    // starts, and delivery is guaranteed after max_retransmits losses,
    // so injected drops can never deadlock a rank program.
    std::size_t losses = 0;
    double penalty = 0.0;
    while (losses < f.max_retransmits && rng::bernoulli(gen, f.drop_prob)) {
      ++losses;
      SCI_TRACE_INSTANT(obs::kWireTrackBase + src_rank, "drop", "fault", engine_.now(),
                        {{"dst", dst_rank}, {"bytes", bytes}, {"attempt", losses}});
      const double resend =
          network_.transfer_time_on_route(base, bytes, gen, noise_tally_) * degrade;
      penalty += f.retransmit_timeout_s + resend;
    }
    if (losses > 0) {
      wire += penalty;
      fault_tally_.drops += losses;
      fault_tally_.retransmit_ns += static_cast<std::uint64_t>(penalty * 1e9);
    }
  }
  return wire;
}

void World::complete_request(const std::shared_ptr<Request::State>& state, Message msg) {
  const double o = machine_.loggp.overhead_s;
  engine_.schedule_after(o, [state, m = std::move(msg)]() mutable {
    state->msg = std::move(m);
    state->complete = true;
    if (state->waiter) {
      const auto h = state->waiter;
      state->waiter = nullptr;
      h.resume();
    }
  });
}

void Comm::SendAwaitable::await_suspend(std::coroutine_handle<> h) {
  ++comm->stats_.sends;
  comm->stats_.bytes_sent += bytes;
  World& w = *comm->world_;
  const double o = w.machine_.loggp.overhead_s;
  const double gap = w.machine_.loggp.gap_per_msg_s;

  // Wire time including this network's noise and any injected faults
  // (degraded routes, dropped attempts); drawn from the *sender's*
  // stream so runs stay deterministic. The route base is precomputed per
  // rank pair and the tallies are batched: nothing on this path touches
  // the topology or the counter registry.
  const double base = w.route_base(comm->rank_, dst);
  const double wire = w.faulty_transfer(base, bytes, comm->rank_, dst, comm->gen_);

  // Rendezvous: payloads above the eager limit pay a ready-to-send
  // handshake (one small-message round trip) before the data moves, and
  // the sender stays blocked through the handshake.
  double handshake = 0.0;
  if (bytes > w.machine_.loggp.eager_threshold_bytes) {
    handshake =
        2.0 * (o + w.network_.transfer_time_on_route(base, 8, comm->gen_, w.noise_tally_));
  }

  Message msg;
  msg.src = comm->rank_;
  msg.dst = dst;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.seq = w.next_msg_seq_++;
  msg.payload = std::move(payload);

  // FIFO non-overtaking per (src, dst): a message may not arrive before
  // one sent earlier on the same channel.
  double arrival = w.engine_.now() + o + handshake + wire;
  double& last = w.fifo_clock_[static_cast<std::size_t>(comm->rank_)]
                             [static_cast<std::size_t>(dst)];
  arrival = std::max(arrival, last);
  last = arrival;

#if SCIBENCH_TRACING
  if (obs::TraceSink* s = obs::sink()) {
    const double t0 = w.engine_.now();
    const double wire_start = t0 + o + handshake;
    const double ideal = w.network_.ideal_transfer_on_route(base, bytes);
    s->complete(comm->rank_, "send", "p2p", t0, o + gap + handshake,
                {{"dst", dst}, {"tag", tag}, {"bytes", bytes}, {"mseq", msg.seq}});
    s->complete(obs::kWireTrackBase + comm->rank_, "wire", "net.wire", wire_start,
                arrival - wire_start,
                {{"src", comm->rank_},
                 {"dst", dst},
                 {"bytes", bytes},
                 {"mseq", msg.seq},
                 {"noise_s", wire - ideal}});
  }
#endif
  w.engine_.schedule_at(arrival, [&w, m = std::move(msg)]() mutable { w.deliver(std::move(m)); });

  // The sender is blocked for its CPU overhead plus the inter-message
  // gap (eager), plus the handshake when rendezvous applies.
  w.engine_.schedule_after(o + gap + handshake, [h] { h.resume(); });
}

void Comm::RecvAwaitable::await_suspend(std::coroutine_handle<> h) {
  World& w = *comm->world_;
  auto& box = w.mailboxes_[static_cast<std::size_t>(comm->rank_)];
  const double o = w.machine_.loggp.overhead_s;

  auto it = std::find_if(box.unexpected.begin(), box.unexpected.end(),
                         [&](const Message& m) { return World::matches(src, tag, m); });
  if (it != box.unexpected.end()) {
    result = std::move(*it);
    box.unexpected.erase(it);
    SCI_TRACE_COMPLETE(comm->rank_, "recv", "p2p", w.engine_.now(), o,
                       {{"src", result.src},
                        {"tag", result.tag},
                        {"bytes", result.bytes},
                        {"mseq", result.seq},
                        {"wait_s", 0.0}});
    w.engine_.schedule_after(o, [h] { h.resume(); });
    return;
  }
  box.posted.push_back(World::PostedRecv{src, tag, h, &result, w.engine_.now()});
}

void Comm::ComputeAwaitable::await_suspend(std::coroutine_handle<> h) {
  World& w = *comm->world_;
  double duration =
      w.machine_.compute_noise.perturb(pure_seconds, comm->gen_, w.noise_tally_);
  if (!w.straggler_factor_.empty()) {
    // Straggler episode: this rank's node runs slow for the whole reset
    // epoch (factor drawn from the world seed in reset()).
    const double factor = w.straggler_factor_[static_cast<std::size_t>(comm->rank_)];
    if (factor > 1.0) {
      w.fault_tally_.straggler_ns +=
          static_cast<std::uint64_t>(duration * (factor - 1.0) * 1e9);
      duration *= factor;
    }
  }
  comm->busy_s_ += duration;
  SCI_TRACE_COMPLETE(comm->rank_, "compute", "compute", w.engine_.now(), duration,
                     {{"pure_s", pure_seconds}, {"noise_s", duration - pure_seconds}});
  w.engine_.schedule_after(duration, [h] { h.resume(); });
}

bool Comm::WaitLocalAwaitable::await_ready() const noexcept {
  return comm->clock_.to_global(local_time) <= comm->world_->engine_.now();
}

void Comm::WaitLocalAwaitable::await_suspend(std::coroutine_handle<> h) {
  comm->world_->engine_.schedule_at(comm->clock_.to_global(local_time), [h] { h.resume(); });
}

World::World(sim::Machine machine, int ranks, std::uint64_t seed,
             sim::AllocationPolicy policy)
    : machine_(std::move(machine)), network_(machine_.make_network()), policy_(policy) {
  if (ranks < 1) throw std::invalid_argument("World: ranks >= 1");
  const auto want = static_cast<std::size_t>(ranks);
  nodes_.resize(want);
  route_base_.resize(want * want);
  mailboxes_.resize(want);
  fifo_clock_.assign(want, std::vector<double>(want, 0.0));
  comms_.reserve(want);
  for (int r = 0; r < ranks; ++r) {
    auto comm = std::make_unique<Comm>();
    comm->world_ = this;
    comm->rank_ = r;
    comms_.push_back(std::move(comm));
  }
  reset(seed);
}

void World::reset(std::uint64_t seed) {
  // Publish any traffic still unflushed (reset mid-run or after step())
  // before the per-rank stats are zeroed below.
  flush_counters();
  engine_.reset();

  rng::Xoshiro256 seeder(seed);
  // Batch system: pick the node allocation (one node per rank if the
  // machine is large enough; otherwise round-robin over the allocation).
  // The seeder draw order below must match the original construction
  // path exactly -- allocation first, then per-rank clock offset,
  // drift, and stream split -- or reset breaks seed-for-seed identity.
  const std::size_t node_count = machine_.topology->node_count();
  const std::size_t want = comms_.size();
  const std::size_t alloc_size = std::min(want, node_count);
  sim::allocate_nodes_into(*machine_.topology, alloc_size, policy_, seeder, allocation_,
                           alloc_scratch_);
  for (std::size_t r = 0; r < want; ++r) nodes_[r] = allocation_[r % allocation_.size()];

  // Precompute the byte-independent route cost per rank pair once; the
  // p2p path then never queries the topology again.
  for (std::size_t s = 0; s < want; ++s) {
    for (std::size_t d = 0; d < want; ++d) {
      route_base_[s * want + d] = network_.route_base(nodes_[s], nodes_[d]);
    }
  }

  for (std::size_t r = 0; r < want; ++r) {
    Comm& comm = *comms_[r];
    comm.node_ = nodes_[r];
    const double offset = rng::normal(seeder, 0.0, machine_.clock_offset_sigma_s);
    const double drift = rng::normal(seeder, 0.0, machine_.clock_drift_ppm_sigma);
    comm.clock_ = LocalClock(offset, drift);
    comm.gen_ = seeder.split();
    comm.stats_ = CommStats{};
    comm.busy_s_ = 0.0;
  }

  // Fault-injection draws come LAST in the seeder order: benign
  // machines draw nothing here (the pre-fault byte streams are pinned by
  // test_exec_reuse), and a faulty machine's extra draws cannot perturb
  // the allocation/clock/stream draws above. Per-route degradation and
  // per-node straggler episodes are fixed for the whole reset epoch;
  // reset(seed) replays them exactly.
  if (machine_.faults.any()) {
    const fault::FaultSpec& f = machine_.faults;
    route_degrade_.assign(want * want, 1.0);
    if (f.link_degrade_prob > 0.0) {
      for (std::size_t s = 0; s < want; ++s) {
        for (std::size_t d = 0; d < want; ++d) {
          if (s != d && rng::bernoulli(seeder, f.link_degrade_prob)) {
            route_degrade_[s * want + d] = f.link_degrade_factor;
          }
        }
      }
    }
    straggler_factor_.assign(want, 1.0);
    if (f.straggler_prob > 0.0) {
      // One draw per allocation slot (i.e. per node in the allocation),
      // so ranks packed onto the same node straggle together.
      std::vector<double> node_factor(allocation_.size(), 1.0);
      for (double& factor : node_factor) {
        if (rng::bernoulli(seeder, f.straggler_prob)) factor = f.straggler_factor;
      }
      for (std::size_t r = 0; r < want; ++r) {
        straggler_factor_[r] = node_factor[r % allocation_.size()];
      }
    }
  } else {
    route_degrade_.clear();
    straggler_factor_.clear();
  }

  for (Mailbox& box : mailboxes_) {
    box.unexpected.clear();
    box.posted.clear();
    box.posted_nb.clear();
  }
  for (auto& row : fifo_clock_) std::fill(row.begin(), row.end(), 0.0);
  programs_.clear();
  delivered_ = 0;
  next_msg_seq_ = 0;
  counted_msgs_ = 0;
  counted_bytes_ = 0;
}

double World::energy_joules() const noexcept {
  const auto& power = machine_.power;
  // Distinct nodes in the allocation (round-robin may reuse nodes).
  std::vector<std::size_t> distinct = nodes_;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());

  double joules =
      power.idle_w * engine_.now() * static_cast<double>(distinct.size());
  for (const auto& comm : comms_) {
    joules += power.compute_w * comm->busy_seconds();
    joules += power.net_j_per_msg * static_cast<double>(comm->stats().sends);
    joules += power.net_j_per_byte * static_cast<double>(comm->stats().bytes_sent);
  }
  return joules;
}

void World::flush_counters() {
  // Watermark-based bulk publish: traffic totals are already exact in
  // CommStats; the registry only needs the delta since the last flush,
  // once per run rather than once per message.
  static obs::Counter& msgs = obs::counter(obs::keys::kNetMessages);
  static obs::Counter& bytes = obs::counter(obs::keys::kNetBytes);
  std::uint64_t total_bytes = 0;
  for (const auto& c : comms_) total_bytes += c->stats_.bytes_sent;
  if (delivered_ > counted_msgs_) msgs.add(delivered_ - counted_msgs_);
  if (total_bytes > counted_bytes_) bytes.add(total_bytes - counted_bytes_);
  counted_msgs_ = delivered_;
  counted_bytes_ = total_bytes;
  // Noise draw/injection tallies batch in the world for the same reason
  // (totals identical to per-draw publishing; see sim::NoiseTally).
  noise_tally_.flush();
  fault_tally_.flush();
}

void World::name_trace_tracks(obs::TraceSink& sink) const {
  sink.set_process_name("scibench sim: " + machine_.name);
  sink.set_track_name(obs::kHarnessTrack, "harness (host)");
  sink.set_track_name(obs::kEngineTrack, "engine");
  for (int r = 0; r < size(); ++r) {
    sink.set_track_name(r, "rank " + std::to_string(r));
    sink.set_track_name(obs::kWireTrackBase + r, "wire " + std::to_string(r));
  }
}

std::size_t World::step() {
  const std::size_t processed = engine_.run();
  flush_counters();
  return processed;
}

std::size_t World::run() {
  const std::size_t processed = engine_.run();
  flush_counters();
  for (const auto& box : mailboxes_) {
    if (!box.posted.empty()) {
      throw std::runtime_error(
          "World::run: deadlock -- a rank is blocked in recv with no matching "
          "message in flight");
    }
  }
  for (const auto& t : programs_) {
    if (!t.done()) {
      throw std::runtime_error("World::run: a rank program did not finish");
    }
  }
  programs_.clear();
  return processed;
}

void World::deliver(Message msg) {
  ++delivered_;
  auto& receiver = *comms_[static_cast<std::size_t>(msg.dst)];
  ++receiver.stats_.receives;
  receiver.stats_.bytes_received += msg.bytes;
  auto& box = mailboxes_[static_cast<std::size_t>(msg.dst)];
  const double o = machine_.loggp.overhead_s;
  auto it = std::find_if(box.posted.begin(), box.posted.end(),
                         [&](const PostedRecv& p) { return matches(p.src, p.tag, msg); });
  if (it != box.posted.end()) {
    PostedRecv posted = *it;
    box.posted.erase(it);
    // Recv span covers the full wait: from when the rank blocked to when
    // the receive-side overhead finishes. `wait_s` is the late-sender
    // time the trace CLI attributes back to sources.
    SCI_TRACE_COMPLETE(msg.dst, "recv", "p2p", posted.posted_at,
                       engine_.now() + o - posted.posted_at,
                       {{"src", msg.src},
                        {"tag", msg.tag},
                        {"bytes", msg.bytes},
                        {"mseq", msg.seq},
                        {"wait_s", engine_.now() - posted.posted_at}});
    *posted.out = std::move(msg);
    engine_.schedule_after(o, [h = posted.waiter] { h.resume(); });
    return;
  }
  auto nb = std::find_if(box.posted_nb.begin(), box.posted_nb.end(),
                         [&](const PostedIrecv& p) { return matches(p.src, p.tag, msg); });
  if (nb != box.posted_nb.end()) {
    auto state = nb->state;
    SCI_TRACE_COMPLETE(msg.dst, "irecv", "p2p", nb->posted_at,
                       engine_.now() + o - nb->posted_at,
                       {{"src", msg.src},
                        {"tag", msg.tag},
                        {"bytes", msg.bytes},
                        {"mseq", msg.seq},
                        {"wait_s", engine_.now() - nb->posted_at}});
    box.posted_nb.erase(nb);
    complete_request(state, std::move(msg));
    return;
  }
  box.unexpected.push_back(std::move(msg));
}

}  // namespace sci::simmpi
