// Message-passing interface over the discrete-event engine.
//
// World owns the machine model, one Comm per rank, mailboxes, and the
// rank programs (coroutines). Semantics mirror a small MPI subset:
// blocking eager send/recv with (source, tag) matching incl. wildcards,
// FIFO non-overtaking per (src, dst) pair, and collectives built from
// point-to-point (see collectives.hpp).
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "rng/xoshiro.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/noise.hpp"
#include "sim/task.hpp"
#include "simmpi/clock.hpp"

namespace sci::obs {
class TraceSink;
}

namespace sci::simmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::size_t bytes = 0;
  std::uint64_t seq = 0;  ///< world-unique message id (trace correlation)
  std::vector<double> payload;  ///< optional data for correctness checks
};

class World;

/// Completion handle for nonblocking operations. Copyable; all copies
/// observe the same completion.
class Request {
 public:
  Request() = default;

  /// True once the operation completed (message delivered / send done).
  [[nodiscard]] bool test() const noexcept { return state_ && state_->complete; }

  /// Awaitable: suspends until completion; returns the Message (empty
  /// payload/metadata for sends).
  struct WaitAwaitable;
  [[nodiscard]] WaitAwaitable wait();

 private:
  friend class Comm;
  friend class World;
  struct State {
    bool complete = false;
    Message msg;
    std::coroutine_handle<> waiter;
    World* world = nullptr;
  };
  std::shared_ptr<State> state_;
};

/// Per-rank traffic counters (the software-counter face of Section 6's
/// PAPI support: message and byte counts are exact in the simulator).
struct CommStats {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

/// Per-rank communication endpoint, passed to rank programs.
class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Local (skewed, drifting) clock reading in seconds -- the simulated
  /// MPI_Wtime. Measurement code must use this, not Engine::now().
  [[nodiscard]] double wtime() const noexcept;

  /// Awaitable: blocking eager send of `bytes` to `dst`.
  struct SendAwaitable;
  [[nodiscard]] SendAwaitable send(int dst, int tag, std::size_t bytes,
                                   std::vector<double> payload = {});

  /// Awaitable: blocking receive matching (src, tag); wildcards allowed.
  struct RecvAwaitable;
  [[nodiscard]] RecvAwaitable recv(int src, int tag);

  /// Nonblocking send: returns immediately; the Request completes once
  /// the sender-side resources are free (after overhead + any rendezvous
  /// handshake). The CPU overhead is charged to the wire path, not the
  /// caller -- await the Request before reusing the "buffer".
  [[nodiscard]] Request isend(int dst, int tag, std::size_t bytes,
                              std::vector<double> payload = {});

  /// Nonblocking receive: posts the match immediately, completes when a
  /// matching message is delivered.
  [[nodiscard]] Request irecv(int src, int tag);

  /// Awaitable: local computation of `pure_seconds`, perturbed by the
  /// machine's compute-noise model.
  struct ComputeAwaitable;
  [[nodiscard]] ComputeAwaitable compute(double pure_seconds);

  /// Awaitable: sleep until the *local* clock shows `local_time`.
  struct WaitLocalAwaitable;
  [[nodiscard]] WaitLocalAwaitable wait_until_local(double local_time);

  /// This rank's deterministic random stream (derived from world seed).
  [[nodiscard]] rng::Xoshiro256& rng() noexcept { return gen_; }

  /// Exact traffic counters for this rank.
  [[nodiscard]] const CommStats& stats() const noexcept { return stats_; }

  /// Total (perturbed) compute time this rank has spent so far.
  [[nodiscard]] double busy_seconds() const noexcept { return busy_s_; }

  [[nodiscard]] World& world() noexcept { return *world_; }
  [[nodiscard]] const LocalClock& clock() const noexcept { return clock_; }
  /// Physical node this rank is mapped to.
  [[nodiscard]] std::size_t node() const noexcept { return node_; }

 private:
  friend class World;
  World* world_ = nullptr;
  int rank_ = 0;
  std::size_t node_ = 0;
  LocalClock clock_;
  rng::Xoshiro256 gen_;
  CommStats stats_;
  double busy_s_ = 0.0;
};

namespace detail {

/// Trampoline: holds the program callable by value in its own (pooled)
/// coroutine frame. Rank programs are usually capturing lambdas;
/// without this, the closure (and its captures) would be destroyed
/// before the suspended coroutine first resumes inside Engine::run().
template <typename F>
sim::Task<void> run_rank_program(F program, Comm& comm) {
  co_await program(comm);
}

}  // namespace detail

/// A simulated job: machine + ranks + programs.
class World {
 public:
  /// Creates `ranks` processes on an allocation of `machine` nodes chosen
  /// by the batch policy. One rank per node if enough nodes exist,
  /// otherwise round-robin (packed allocations fill nodes first).
  World(sim::Machine machine, int ranks, std::uint64_t seed,
        sim::AllocationPolicy policy = sim::AllocationPolicy::kScattered);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Rewinds this world to the state a freshly constructed
  /// World(machine, ranks, seed, policy) would have: same node
  /// allocation, clock skews, and per-rank RNG streams, drawn in the
  /// same order from the same seeder, so a reset world is seed-for-seed
  /// byte-identical to a new one. Unlike construction, reset keeps
  /// every buffer (mailboxes, FIFO clocks, route table, event arena),
  /// so replications after the first touch the heap only when they
  /// exceed a previous high-water mark.
  void reset(std::uint64_t seed);

  /// Launches `program(comm)` on every rank at time 0. `program` is any
  /// copyable callable Comm& -> sim::Task<void>; it is held by value in
  /// the trampoline coroutine's (pooled) frame, so launching allocates
  /// no std::function.
  template <typename F>
  void launch(const F& program) {
    for (int r = 0; r < size(); ++r) launch_on(r, program);
  }

  /// Launches a program on one specific rank.
  template <typename F>
  void launch_on(int rank, F program) {
    programs_.push_back(detail::run_rank_program(std::move(program), comm(rank)));
    const sim::Task<void>& task = programs_.back();
    engine_.schedule_at(engine_.now(), [&task] { task.start(); });
  }

  /// Runs the engine to completion. Throws if any rank is still blocked
  /// when the event queue drains (deadlock).
  std::size_t run();

  /// Runs until the event queue drains, tolerating ranks parked in recv.
  /// For request/response-style programs driven incrementally (launch a
  /// client, step, launch the next); finish with run() so completion and
  /// deadlock checks still execute once.
  std::size_t step();

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] Comm& comm(int rank) { return *comms_.at(static_cast<std::size_t>(rank)); }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(comms_.size()); }
  [[nodiscard]] const sim::Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] const sim::Network& network() const noexcept { return network_; }
  [[nodiscard]] const std::vector<std::size_t>& allocation() const noexcept { return nodes_; }

  /// Total messages delivered so far (observability / tests).
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return delivered_; }

  /// Labels this world's tracks in a trace sink -- "rank r" per rank,
  /// plus wire and engine tracks -- so Perfetto shows one named lane
  /// per rank. Call once after constructing the sink.
  void name_trace_tracks(obs::TraceSink& sink) const;

  /// Job energy so far under the machine's power model (Joules): every
  /// allocated node idles for the whole makespan, compute adds its
  /// differential draw, and each message pays NIC + per-byte energy.
  [[nodiscard]] double energy_joules() const noexcept;

 private:
  friend class Comm;
  friend struct Comm::SendAwaitable;
  friend struct Comm::RecvAwaitable;

  struct PostedRecv {
    int src;
    int tag;
    std::coroutine_handle<> waiter;
    Message* out;
    double posted_at = 0.0;  ///< when the rank blocked (late-sender attribution)
  };
  struct PostedIrecv {
    int src;
    int tag;
    std::shared_ptr<Request::State> state;
    double posted_at = 0.0;
  };
  struct Mailbox {
    std::vector<Message> unexpected;
    std::vector<PostedRecv> posted;
    std::vector<PostedIrecv> posted_nb;
  };

  void complete_request(const std::shared_ptr<Request::State>& state, Message msg);

  void deliver(Message msg);  // runs at arrival time
  /// Publishes traffic deltas since the last flush to obs::counters().
  void flush_counters();
  /// Payload wire time for one (src, dst) transfer with fault injection
  /// applied: link degradation multiplies the drawn wire time, and each
  /// dropped attempt (sender's stream, so deterministic) adds the
  /// retransmit timeout plus a re-drawn transfer. Identical to
  /// transfer_time_on_route when the machine has no FaultSpec -- the
  /// fault branches draw nothing.
  [[nodiscard]] double faulty_transfer(double base, std::size_t bytes, int src_rank,
                                       int dst_rank, rng::Xoshiro256& gen);
  /// Precomputed L + hop_latency * hops for the (src_rank, dst_rank)
  /// pair: the p2p hot path pays one array load instead of a topology
  /// hop query per message.
  [[nodiscard]] double route_base(int src_rank, int dst_rank) const noexcept {
    return route_base_[static_cast<std::size_t>(src_rank) * comms_.size() +
                       static_cast<std::size_t>(dst_rank)];
  }
  [[nodiscard]] static bool matches(int want_src, int want_tag, const Message& m) noexcept {
    return (want_src == kAnySource || want_src == m.src) &&
           (want_tag == kAnyTag || want_tag == m.tag);
  }

  sim::Machine machine_;
  sim::Network network_;
  sim::AllocationPolicy policy_;
  sim::Engine engine_;
  std::vector<std::size_t> nodes_;  // rank -> node id
  std::vector<std::size_t> allocation_;     // reset(): allocate_nodes_into target
  std::vector<std::size_t> alloc_scratch_;  // reset(): shuffle permutation buffer
  std::vector<double> route_base_;  // (src_rank * ranks + dst_rank) -> L + hop cost
  sim::NoiseTally noise_tally_;     // batched noise counters, published in flush_counters()
  // Fault-injection state, drawn per reset from the world seed and
  // empty when machine_.faults.any() is false (zero hot-path cost and
  // zero extra RNG draws for benign machines).
  std::vector<double> route_degrade_;     // (src_rank * ranks + dst_rank) -> wire multiplier
  std::vector<double> straggler_factor_;  // rank -> compute multiplier (node-level draw)
  fault::FaultTally fault_tally_;         // batched fault counters, published in flush_counters()
  std::vector<std::unique_ptr<Comm>> comms_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::vector<double>> fifo_clock_;  // last arrival per (src, dst)
  std::deque<sim::Task<void>> programs_;  // deque: stable addresses for the start lambdas
  std::uint64_t delivered_ = 0;
  std::uint64_t next_msg_seq_ = 0;
  std::uint64_t counted_msgs_ = 0;   // flushed-to-registry watermarks
  std::uint64_t counted_bytes_ = 0;
};

struct Comm::SendAwaitable {
  Comm* comm;
  int dst;
  int tag;
  std::size_t bytes;
  std::vector<double> payload;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

struct Comm::RecvAwaitable {
  Comm* comm;
  int src;
  int tag;
  Message result;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h);
  [[nodiscard]] Message await_resume() noexcept { return std::move(result); }
};

struct Comm::ComputeAwaitable {
  Comm* comm;
  double pure_seconds;

  [[nodiscard]] bool await_ready() const noexcept { return pure_seconds <= 0.0; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

struct Request::WaitAwaitable {
  std::shared_ptr<State> state;

  [[nodiscard]] bool await_ready() const noexcept { return !state || state->complete; }
  void await_suspend(std::coroutine_handle<> h) noexcept { state->waiter = h; }
  [[nodiscard]] Message await_resume() noexcept {
    return state ? std::move(state->msg) : Message{};
  }
};

/// Awaits every request in order (the simulated MPI_Waitall).
[[nodiscard]] sim::Task<void> wait_all(std::span<Request> requests);

struct Comm::WaitLocalAwaitable {
  Comm* comm;
  double local_time;

  [[nodiscard]] bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

}  // namespace sci::simmpi
