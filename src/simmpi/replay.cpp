#include "simmpi/replay.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "simmpi/collectives.hpp"
#include "simmpi/comm.hpp"

namespace sci::simmpi {
namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::invalid_argument("parse_schedule: line " + std::to_string(line) + ": " +
                              message);
}

}  // namespace

std::size_t Schedule::total_ops() const {
  std::size_t total = 0;
  for (const auto& ops : per_rank) total += ops.size();
  return total;
}

Schedule parse_schedule(const std::string& text, int ranks) {
  if (ranks < 1) throw std::invalid_argument("parse_schedule: ranks >= 1");
  Schedule schedule;
  schedule.ranks = ranks;
  schedule.per_rank.assign(static_cast<std::size_t>(ranks), {});

  // -1 = "all ranks", otherwise the active rank.
  int active = -2;  // unset until the first rank/all directive
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;

    auto emit = [&](const Op& op) {
      if (active == -2) parse_error(line_no, "op before any 'rank N' or 'all' directive");
      if (active == -1) {
        for (auto& ops : schedule.per_rank) ops.push_back(op);
      } else {
        schedule.per_rank[static_cast<std::size_t>(active)].push_back(op);
      }
    };
    auto require_rank = [&](int r, const char* what) {
      if (r < 0 || r >= ranks) {
        parse_error(line_no, std::string(what) + " " + std::to_string(r) +
                                 " out of range for " + std::to_string(ranks) + " ranks");
      }
    };

    if (word == "rank") {
      int r = -1;
      if (!(ls >> r)) parse_error(line_no, "rank directive needs a number");
      require_rank(r, "rank");
      active = r;
    } else if (word == "all") {
      active = -1;
    } else if (word == "calc") {
      Op op;
      op.kind = OpKind::kCalc;
      if (!(ls >> op.seconds) || op.seconds < 0.0) {
        parse_error(line_no, "calc needs a non-negative duration");
      }
      emit(op);
    } else if (word == "send") {
      Op op;
      op.kind = OpKind::kSend;
      if (!(ls >> op.peer >> op.bytes >> op.tag)) {
        parse_error(line_no, "send needs <dst> <bytes> <tag>");
      }
      require_rank(op.peer, "send destination");
      emit(op);
    } else if (word == "recv") {
      Op op;
      op.kind = OpKind::kRecv;
      std::string src;
      if (!(ls >> src >> op.tag)) parse_error(line_no, "recv needs <src|any> <tag>");
      if (src == "any") {
        op.peer = kAnySource;
      } else {
        try {
          op.peer = std::stoi(src);
        } catch (const std::exception&) {
          parse_error(line_no, "recv source must be a rank or 'any'");
        }
        require_rank(op.peer, "recv source");
      }
      emit(op);
    } else if (word == "barrier") {
      Op op;
      op.kind = OpKind::kBarrier;
      emit(op);
    } else if (word == "reduce") {
      Op op;
      op.kind = OpKind::kReduce;
      if (!(ls >> op.peer)) parse_error(line_no, "reduce needs <root>");
      require_rank(op.peer, "reduce root");
      emit(op);
    } else if (word == "allreduce") {
      Op op;
      op.kind = OpKind::kAllreduce;
      emit(op);
    } else {
      parse_error(line_no, "unknown op '" + word + "'");
    }
    std::string trailing;
    if (ls >> trailing) parse_error(line_no, "trailing token '" + trailing + "'");
  }
  return schedule;
}

ReplayResult replay(const Schedule& schedule, const sim::Machine& machine,
                    std::uint64_t seed) {
  if (schedule.ranks < 1) throw std::invalid_argument("replay: empty schedule");
  World world(machine, schedule.ranks, seed);
  ReplayResult result;
  result.rank_finish_s.assign(static_cast<std::size_t>(schedule.ranks), 0.0);

  world.launch([&](Comm& c) -> sim::Task<void> {
    const auto& ops = schedule.per_rank[static_cast<std::size_t>(c.rank())];
    for (const Op& op : ops) {
      switch (op.kind) {
        case OpKind::kCalc: co_await c.compute(op.seconds); break;
        case OpKind::kSend: co_await c.send(op.peer, op.tag, op.bytes); break;
        case OpKind::kRecv: (void)co_await c.recv(op.peer, op.tag); break;
        case OpKind::kBarrier: co_await barrier(c); break;
        case OpKind::kReduce: (void)co_await reduce(c, 1.0, op.peer); break;
        case OpKind::kAllreduce: (void)co_await allreduce(c, 1.0); break;
      }
    }
    result.rank_finish_s[static_cast<std::size_t>(c.rank())] = c.world().engine().now();
  });
  world.run();
  result.messages = world.messages_delivered();
  return result;
}

double ReplayResult::completion_s() const {
  return *std::max_element(rank_finish_s.begin(), rank_finish_s.end());
}

Schedule make_stencil_skeleton(int ranks, int steps, double work_s,
                               std::size_t halo_bytes) {
  if (ranks < 2) throw std::invalid_argument("make_stencil_skeleton: ranks >= 2");
  if (steps < 1) throw std::invalid_argument("make_stencil_skeleton: steps >= 1");
  Schedule schedule;
  schedule.ranks = ranks;
  schedule.per_rank.assign(static_cast<std::size_t>(ranks), {});

  for (int r = 0; r < ranks; ++r) {
    auto& ops = schedule.per_rank[static_cast<std::size_t>(r)];
    const int left = (r - 1 + ranks) % ranks;
    const int right = (r + 1) % ranks;
    for (int s = 0; s < steps; ++s) {
      ops.push_back({OpKind::kCalc, work_s, 0, 0, 0});
      // Halo exchange: send both ways, then receive both (eager sends
      // complete locally, so this cannot deadlock).
      ops.push_back({OpKind::kSend, 0.0, right, halo_bytes, 2 * s});
      ops.push_back({OpKind::kSend, 0.0, left, halo_bytes, 2 * s + 1});
      ops.push_back({OpKind::kRecv, 0.0, left, 0, 2 * s});
      ops.push_back({OpKind::kRecv, 0.0, right, 0, 2 * s + 1});
      // Global convergence check.
      Op ar;
      ar.kind = OpKind::kAllreduce;
      ops.push_back(ar);
    }
  }
  return schedule;
}

}  // namespace sci::simmpi
