// Application-skeleton replay: a tiny Goal-like schedule language
// executed on the simulated cluster. This is the methodology of
// Hoefler, Schneider & Lumsdaine (SC'10), which the paper cites for
// "characterizing the influence of system noise on large-scale
// applications by simulation": strip an application to its
// compute/communication skeleton, then replay it under controlled noise
// models to see how perturbations propagate.
//
// Schedule text, one op per line ('#' comments allowed):
//
//   rank 0              # following ops belong to rank 0
//   calc 1e-3           # compute for 1 ms (perturbed by the noise model)
//   send 1 64 7         # send 64 bytes to rank 1 with tag 7
//   recv 1 7            # blocking receive from rank 1, tag 7
//   rank 1
//   recv 0 7
//   send 0 64 7
//
//   all                 # following ops run on EVERY rank
//   barrier             # dissemination barrier
//   reduce 0            # binomial reduce to root 0
//   allreduce           # recursive-doubling allreduce
//
// Wildcards: `recv any <tag>` matches any source.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace sci::simmpi {

enum class OpKind { kCalc, kSend, kRecv, kBarrier, kReduce, kAllreduce };

struct Op {
  OpKind kind = OpKind::kCalc;
  double seconds = 0.0;   ///< kCalc
  int peer = 0;           ///< kSend dst / kRecv src (kAnySource for 'any') / kReduce root
  std::size_t bytes = 0;  ///< kSend
  int tag = 0;            ///< kSend / kRecv
};

struct Schedule {
  int ranks = 0;
  std::vector<std::vector<Op>> per_rank;  ///< ops in program order
  /// Number of parsed operations across all ranks.
  [[nodiscard]] std::size_t total_ops() const;
};

/// Parses the schedule language; throws std::invalid_argument with a
/// line-numbered message on malformed input. `ranks` fixes the job size
/// (ops for ranks >= ranks are an error).
[[nodiscard]] Schedule parse_schedule(const std::string& text, int ranks);

struct ReplayResult {
  /// True (global) completion time of each rank.
  std::vector<double> rank_finish_s;
  /// max over ranks -- the job completion time.
  [[nodiscard]] double completion_s() const;
  std::uint64_t messages = 0;
};

/// Executes the schedule on `machine`; deterministic in `seed`.
[[nodiscard]] ReplayResult replay(const Schedule& schedule, const sim::Machine& machine,
                                  std::uint64_t seed);

/// Builds a BSP stencil skeleton: `steps` iterations of
/// (compute `work_s`; exchange `halo_bytes` with both ring neighbors;
/// allreduce) on `ranks` processes -- the canonical noise-amplification
/// workload.
[[nodiscard]] Schedule make_stencil_skeleton(int ranks, int steps, double work_s,
                                             std::size_t halo_bytes);

}  // namespace sci::simmpi
