#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/descriptive.hpp"
#include "stats/special_functions.hpp"

namespace sci::stats {

std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                           const Statistic& statistic,
                                           std::size_t replicates, std::uint64_t seed) {
  if (xs.size() < 2) throw std::invalid_argument("bootstrap: need n >= 2");
  if (replicates == 0) throw std::invalid_argument("bootstrap: replicates >= 1");
  rng::Xoshiro256 gen(seed);
  const std::size_t n = xs.size();
  std::vector<double> resample(n);
  std::vector<double> stats;
  stats.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = xs[static_cast<std::size_t>(rng::uniform_below(gen, n))];
    }
    stats.push_back(statistic(resample));
  }
  return stats;
}

Interval bootstrap_percentile_ci(std::span<const double> xs, const Statistic& statistic,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed) {
  const auto dist = bootstrap_distribution(xs, statistic, replicates, seed);
  const double alpha = 1.0 - confidence;
  return {quantile(dist, alpha / 2.0), quantile(dist, 1.0 - alpha / 2.0), confidence};
}

Interval bootstrap_bca_ci(std::span<const double> xs, const Statistic& statistic,
                          std::size_t replicates, double confidence, std::uint64_t seed) {
  const auto dist_unsorted = bootstrap_distribution(xs, statistic, replicates, seed);
  const auto dist = sorted_copy(dist_unsorted);
  const double theta_hat = statistic(xs);

  // Bias correction z0: fraction of bootstrap stats below the point estimate.
  std::size_t below = 0;
  for (double v : dist) {
    if (v < theta_hat) ++below;
  }
  double frac = static_cast<double>(below) / static_cast<double>(dist.size());
  frac = std::clamp(frac, 1e-10, 1.0 - 1e-10);
  const double z0 = inverse_normal_cdf(frac);

  // Acceleration from jackknife influence values.
  const std::size_t n = xs.size();
  std::vector<double> jack(n);
  std::vector<double> loo;
  loo.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    loo.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) loo.push_back(xs[j]);
    }
    jack[i] = statistic(loo);
  }
  const double jack_mean = arithmetic_mean(jack);
  double num = 0.0, den = 0.0;
  for (double v : jack) {
    const double d = jack_mean - v;
    num += d * d * d;
    den += d * d;
  }
  const double a = (den > 0.0) ? num / (6.0 * std::pow(den, 1.5)) : 0.0;

  const double alpha = 1.0 - confidence;
  auto adjusted = [&](double level) {
    const double z = inverse_normal_cdf(level);
    const double adj = normal_cdf(z0 + (z0 + z) / (1.0 - a * (z0 + z)));
    return std::clamp(adj, 0.0, 1.0);
  };
  return {quantile_sorted(dist, adjusted(alpha / 2.0)),
          quantile_sorted(dist, adjusted(1.0 - alpha / 2.0)), confidence};
}

}  // namespace sci::stats
