#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "stats/bootstrap_detail.hpp"
#include "stats/bootstrap_engine.hpp"
#include "stats/descriptive.hpp"
#include "stats/special_functions.hpp"

namespace sci::stats {

// ---------------------------------------------------------------------------
// Selection fast path.
//
// The trick: sort the sample once and precompute rank[i] = position of
// xs[i] in the sorted order (ties broken by index, so ranks are a
// strict total order refining the value order). A resample of values
// then becomes a resample of ranks drawn with the *same* RNG calls, and
// the k-th order statistic of the resample is sorted[k-th smallest
// resampled rank] -- equal values share a value even though their ranks
// differ, so ties cannot perturb the result. Each replicate costs one
// selection + one linear scan instead of a full sort, and never
// materializes a resample vector of doubles.
//
// The kernels live in stats::detail (shared with BootstrapEngine, the
// multi-lane/threaded variant) and stats::selection_quantile
// (selection.hpp). The ResampleStat overloads below delegate to a
// single-lane engine: one code path, pinned bit-identical to the
// callback reference by test_bootstrap.cpp.
// ---------------------------------------------------------------------------

namespace detail {

void require_valid(std::span<const double> xs, std::size_t replicates) {
  if (xs.size() < 2) throw std::invalid_argument("bootstrap: need n >= 2");
  if (replicates == 0) throw std::invalid_argument("bootstrap: replicates >= 1");
}

void rank_into(std::span<const double> xs, std::vector<double>& sorted,
               std::vector<std::uint32_t>& rank,
               std::vector<std::uint32_t>& order_scratch) {
  const std::size_t n = xs.size();
  order_scratch.resize(n);
  std::iota(order_scratch.begin(), order_scratch.end(), std::uint32_t{0});
  std::sort(order_scratch.begin(), order_scratch.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (xs[a] != xs[b]) return xs[a] < xs[b];
              return a < b;
            });
  sorted.resize(n);
  rank.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    sorted[pos] = xs[order_scratch[pos]];
    rank[order_scratch[pos]] = static_cast<std::uint32_t>(pos);
  }
}

double loo_quantile(std::span<const double> sorted, std::size_t skip, double p,
                    QuantileMethod method) {
  const std::size_t m = sorted.size() - 1;
  const auto at = [&](std::size_t pos) { return sorted[pos < skip ? pos : pos + 1]; };
  if (m == 1) return at(0);
  switch (method) {
    case QuantileMethod::kR1InverseEcdf: {
      if (p == 0.0) return at(0);
      const auto idx = static_cast<std::size_t>(std::ceil(p * static_cast<double>(m))) - 1;
      return at(std::min(idx, m - 1));
    }
    case QuantileMethod::kR6Weibull: {
      const double h = (static_cast<double>(m) + 1.0) * p;
      if (h <= 1.0) return at(0);
      if (h >= static_cast<double>(m)) return at(m - 1);
      const auto k = static_cast<std::size_t>(std::floor(h));
      const double frac = h - static_cast<double>(k);
      return at(k - 1) + frac * (at(k) - at(k - 1));
    }
    case QuantileMethod::kR7Linear: {
      const double h = (static_cast<double>(m) - 1.0) * p;
      const auto k = static_cast<std::size_t>(std::floor(h));
      const double frac = h - static_cast<double>(k);
      if (k + 1 >= m) return at(m - 1);
      return at(k) + frac * (at(k + 1) - at(k));
    }
  }
  throw std::logic_error("bootstrap: unknown quantile method");
}

void jackknife_mean_range(std::span<const double> xs, double* jack, std::size_t lo,
                          std::size_t hi) noexcept {
  const std::size_t n = xs.size();
  for (std::size_t i = lo; i < hi; ++i) {
    double sum = 0.0, comp = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double y = xs[j] - comp;
      const double t = sum + y;
      comp = (t - sum) - y;
      sum = t;
    }
    jack[i] = sum / static_cast<double>(n - 1);
  }
}

void jackknife_quantile_range(std::span<const double> sorted, const std::uint32_t* rank,
                              double p, QuantileMethod method, double* jack,
                              std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    jack[i] = loo_quantile(sorted, rank[i], p, method);
  }
}

void fast_jackknife_into(std::span<const double> xs, const ResampleStat& stat,
                         std::vector<double>& jack, std::vector<double>& sorted_scratch,
                         std::vector<std::uint32_t>& rank_scratch,
                         std::vector<std::uint32_t>& order_scratch) {
  const std::size_t n = xs.size();
  jack.resize(n);
  if (stat.kind() == ResampleStat::Kind::kMean) {
    jackknife_mean_range(xs, jack.data(), 0, n);
  } else {
    rank_into(xs, sorted_scratch, rank_scratch, order_scratch);
    jackknife_quantile_range(sorted_scratch, rank_scratch.data(), stat.prob(),
                             stat.method(), jack.data(), 0, n);
  }
}

Interval bca_interval(std::span<const double> dist, double theta_hat,
                      std::span<const double> jack, double confidence) {
  // Bias correction z0: fraction of bootstrap stats below the point estimate.
  std::size_t below = 0;
  for (double v : dist) {
    if (v < theta_hat) ++below;
  }
  double frac = static_cast<double>(below) / static_cast<double>(dist.size());
  frac = std::clamp(frac, 1e-10, 1.0 - 1e-10);
  const double z0 = inverse_normal_cdf(frac);

  // Acceleration from jackknife influence values.
  const double jack_mean = arithmetic_mean(jack);
  double num = 0.0, den = 0.0;
  for (double v : jack) {
    const double d = jack_mean - v;
    num += d * d * d;
    den += d * d;
  }
  const double a = (den > 0.0) ? num / (6.0 * std::pow(den, 1.5)) : 0.0;

  const double alpha = 1.0 - confidence;
  auto adjusted = [&](double level) {
    const double z = inverse_normal_cdf(level);
    const double adj = normal_cdf(z0 + (z0 + z) / (1.0 - a * (z0 + z)));
    return std::clamp(adj, 0.0, 1.0);
  };
  return {quantile_sorted(dist, adjusted(alpha / 2.0)),
          quantile_sorted(dist, adjusted(1.0 - alpha / 2.0)), confidence};
}

}  // namespace detail

namespace {

/// Leave-one-out statistic values, generic path: materializes each loo
/// vector and calls the statistic, exactly as before the fast path
/// existed.
template <typename Stat>
std::vector<double> generic_jackknife(std::span<const double> xs, const Stat& statistic) {
  const std::size_t n = xs.size();
  std::vector<double> jack(n);
  std::vector<double> loo;
  loo.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    loo.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) loo.push_back(xs[j]);
    }
    jack[i] = statistic(loo);
  }
  return jack;
}

}  // namespace

ResampleStat ResampleStat::quantile(double p, QuantileMethod method) {
  if (p < 0.0 || p > 1.0) throw std::domain_error("ResampleStat::quantile: p in [0,1]");
  ResampleStat s;
  s.kind_ = Kind::kQuantile;
  s.p_ = p;
  s.method_ = method;
  return s;
}

double ResampleStat::evaluate(std::span<const double> xs) const {
  switch (kind_) {
    case Kind::kMean:
      return arithmetic_mean(xs);
    case Kind::kQuantile:
      return ::sci::stats::quantile(xs, p_, method_);
    case Kind::kCustom:
      return fn_(xs);
  }
  throw std::logic_error("ResampleStat: unknown kind");
}

std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                           const Statistic& statistic,
                                           std::size_t replicates, std::uint64_t seed) {
  detail::require_valid(xs, replicates);
  rng::Xoshiro256 gen(seed);
  const std::size_t n = xs.size();
  std::vector<double> resample(n);
  std::vector<double> stats;
  stats.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = xs[static_cast<std::size_t>(rng::uniform_below(gen, n))];
    }
    stats.push_back(statistic(resample));
  }
  return stats;
}

std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                           const ResampleStat& statistic,
                                           std::size_t replicates, std::uint64_t seed) {
  // Single-lane engine == the historical scalar fast path, draw for draw.
  return bootstrap_distribution(xs, statistic, replicates, seed, ExecPolicy{});
}

Interval bootstrap_percentile_ci(std::span<const double> xs, const Statistic& statistic,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed) {
  auto dist = bootstrap_distribution(xs, statistic, replicates, seed);
  std::sort(dist.begin(), dist.end());
  const double alpha = 1.0 - confidence;
  return {quantile_sorted(dist, alpha / 2.0), quantile_sorted(dist, 1.0 - alpha / 2.0),
          confidence};
}

Interval bootstrap_percentile_ci(std::span<const double> xs, const ResampleStat& statistic,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed) {
  return bootstrap_percentile_ci(xs, statistic, replicates, confidence, seed, ExecPolicy{});
}

Interval bootstrap_bca_ci(std::span<const double> xs, const Statistic& statistic,
                          std::size_t replicates, double confidence, std::uint64_t seed) {
  auto dist = bootstrap_distribution(xs, statistic, replicates, seed);
  std::sort(dist.begin(), dist.end());
  const double theta_hat = statistic(xs);
  const auto jack = generic_jackknife(xs, statistic);
  return detail::bca_interval(dist, theta_hat, jack, confidence);
}

Interval bootstrap_bca_ci(std::span<const double> xs, const ResampleStat& statistic,
                          std::size_t replicates, double confidence, std::uint64_t seed) {
  return bootstrap_bca_ci(xs, statistic, replicates, confidence, seed, ExecPolicy{});
}

}  // namespace sci::stats
