// Bootstrap resampling (Efron & Tibshirani). The paper lists bootstrap
// as a "more advanced" technique beyond its scope; we include it as the
// natural extension for CIs of statistics with no analytic error theory
// (trimmed means, CoV, quantile-regression coefficients, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "stats/confidence.hpp"  // Interval

namespace sci::stats {

/// A statistic computed on a resampled series.
using Statistic = std::function<double(std::span<const double>)>;

/// Bootstrap distribution of `statistic` over `replicates` resamples
/// with replacement. Deterministic for a fixed seed.
[[nodiscard]] std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                                         const Statistic& statistic,
                                                         std::size_t replicates,
                                                         std::uint64_t seed = 0xb00f);

/// Percentile-method CI: quantiles of the bootstrap distribution.
[[nodiscard]] Interval bootstrap_percentile_ci(std::span<const double> xs,
                                               const Statistic& statistic,
                                               std::size_t replicates = 1000,
                                               double confidence = 0.95,
                                               std::uint64_t seed = 0xb00f);

/// BCa (bias-corrected and accelerated) CI; second-order accurate.
/// Acceleration from jackknife influence values -- O(n^2) in statistic
/// evaluations, so intended for small/medium n.
[[nodiscard]] Interval bootstrap_bca_ci(std::span<const double> xs,
                                        const Statistic& statistic,
                                        std::size_t replicates = 1000,
                                        double confidence = 0.95,
                                        std::uint64_t seed = 0xb00f);

}  // namespace sci::stats
