// Bootstrap resampling (Efron & Tibshirani). The paper lists bootstrap
// as a "more advanced" technique beyond its scope; we include it as the
// natural extension for CIs of statistics with no analytic error theory
// (trimmed means, CoV, quantile-regression coefficients, ...).
//
// Two statistic interfaces coexist:
//   - Statistic: an opaque callable, evaluated on a materialized
//     resample vector per replicate. Fully general, O(n log n) per
//     replicate for rank statistics.
//   - ResampleStat: a structural description (mean / quantile / custom)
//     that lets bootstrap_* dispatch to kernels which sort the sample
//     once and select order statistics per replicate (nth_element on
//     resampled ranks, O(n) per replicate) without materializing a
//     resample at all. Same seed => bit-identical results to the
//     callback path (tested seed-for-seed in test_bootstrap.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "stats/confidence.hpp"  // Interval
#include "stats/descriptive.hpp"  // QuantileMethod

namespace sci::stats {

/// A statistic computed on a resampled series.
using Statistic = std::function<double(std::span<const double>)>;

/// Structural description of a bootstrap statistic. Naming the shape
/// (mean, p-quantile) instead of hiding it behind a callable is what
/// unlocks the selection fast path; custom() keeps full generality at
/// callback-path speed.
class ResampleStat {
 public:
  enum class Kind { kMean, kQuantile, kCustom };

  [[nodiscard]] static ResampleStat mean() {
    ResampleStat s;
    s.kind_ = Kind::kMean;
    return s;
  }
  [[nodiscard]] static ResampleStat median() { return quantile(0.5); }
  [[nodiscard]] static ResampleStat quantile(double p,
                                             QuantileMethod method = QuantileMethod::kR7Linear);
  [[nodiscard]] static ResampleStat custom(Statistic fn) {
    ResampleStat s;
    s.kind_ = Kind::kCustom;
    s.fn_ = std::move(fn);
    return s;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] double prob() const noexcept { return p_; }
  [[nodiscard]] QuantileMethod method() const noexcept { return method_; }

  /// Full-sample evaluation; identical to calling the equivalent
  /// Statistic on `xs`.
  [[nodiscard]] double evaluate(std::span<const double> xs) const;

 private:
  ResampleStat() = default;
  Kind kind_ = Kind::kCustom;
  double p_ = 0.5;
  QuantileMethod method_ = QuantileMethod::kR7Linear;
  Statistic fn_;
};

/// Bootstrap distribution of `statistic` over `replicates` resamples
/// with replacement. Deterministic for a fixed seed.
[[nodiscard]] std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                                         const Statistic& statistic,
                                                         std::size_t replicates,
                                                         std::uint64_t seed = 0xb00f);

/// Fast-path overload: mean/quantile statistics skip the per-replicate
/// resample vector and sort (see header comment). Bit-identical to the
/// Statistic overload for the same seed.
[[nodiscard]] std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                                         const ResampleStat& statistic,
                                                         std::size_t replicates,
                                                         std::uint64_t seed = 0xb00f);

/// Percentile-method CI: quantiles of the bootstrap distribution.
[[nodiscard]] Interval bootstrap_percentile_ci(std::span<const double> xs,
                                               const Statistic& statistic,
                                               std::size_t replicates = 1000,
                                               double confidence = 0.95,
                                               std::uint64_t seed = 0xb00f);

[[nodiscard]] Interval bootstrap_percentile_ci(std::span<const double> xs,
                                               const ResampleStat& statistic,
                                               std::size_t replicates = 1000,
                                               double confidence = 0.95,
                                               std::uint64_t seed = 0xb00f);

/// BCa (bias-corrected and accelerated) CI; second-order accurate.
/// Acceleration from jackknife influence values -- O(n^2) in statistic
/// evaluations, so intended for small/medium n.
[[nodiscard]] Interval bootstrap_bca_ci(std::span<const double> xs,
                                        const Statistic& statistic,
                                        std::size_t replicates = 1000,
                                        double confidence = 0.95,
                                        std::uint64_t seed = 0xb00f);

/// BCa with structural statistics: the jackknife drops from O(n^2 log n)
/// to O(n) for quantiles (each leave-one-out order statistic is an index
/// shift in the sorted sample) and O(n^2) adds for the mean.
[[nodiscard]] Interval bootstrap_bca_ci(std::span<const double> xs,
                                        const ResampleStat& statistic,
                                        std::size_t replicates = 1000,
                                        double confidence = 0.95,
                                        std::uint64_t seed = 0xb00f);

}  // namespace sci::stats
