// Internal kernels shared by the scalar bootstrap fast path
// (bootstrap.cpp) and the multi-lane BootstrapEngine
// (bootstrap_engine.cpp). One definition each, so the two paths cannot
// drift apart arithmetically. Not part of the public stats API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"

namespace sci::stats::detail {

/// Sorts `xs` into `sorted` and fills rank[i] = position of xs[i] in the
/// sorted order (ties broken by index). Caller-owned buffers; alloc-free
/// once capacities are warm.
void rank_into(std::span<const double> xs, std::vector<double>& sorted,
               std::vector<std::uint32_t>& rank,
               std::vector<std::uint32_t>& order_scratch);

/// p-quantile of `sorted` with position `skip` removed, without copying.
[[nodiscard]] double loo_quantile(std::span<const double> sorted, std::size_t skip,
                                  double p, QuantileMethod method);

/// jack[i] = mean of xs with element i removed, for i in [lo, hi):
/// Kahan over xs in original order skipping i -- the op sequence
/// arithmetic_mean runs on the materialized loo vector. Range form so
/// callers can shard indices across threads; each entry depends only
/// on i, so any sharding produces the serial loop's bytes.
void jackknife_mean_range(std::span<const double> xs, double* jack, std::size_t lo,
                          std::size_t hi) noexcept;

/// jack[i] = loo_quantile(sorted, rank[i], p, method) for i in [lo, hi).
/// Same sharding contract as jackknife_mean_range.
void jackknife_quantile_range(std::span<const double> sorted, const std::uint32_t* rank,
                              double p, QuantileMethod method, double* jack,
                              std::size_t lo, std::size_t hi);

/// Jackknife (leave-one-out) statistic values for structural statistics:
/// O(n^2) adds for the mean, O(n) for quantiles. `stat` must not be
/// kCustom. Serial convenience over the range kernels above.
void fast_jackknife_into(std::span<const double> xs, const ResampleStat& stat,
                         std::vector<double>& jack, std::vector<double>& sorted_scratch,
                         std::vector<std::uint32_t>& rank_scratch,
                         std::vector<std::uint32_t>& order_scratch);

/// BCa interval from a *sorted* bootstrap distribution + jackknife values.
[[nodiscard]] Interval bca_interval(std::span<const double> dist, double theta_hat,
                                    std::span<const double> jack, double confidence);

/// Argument validation shared by all bootstrap entry points.
void require_valid(std::span<const double> xs, std::size_t replicates);

}  // namespace sci::stats::detail
