#include "stats/bootstrap_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "rng/xoshiro.hpp"
#include "stats/bootstrap_detail.hpp"
#include "stats/parallel.hpp"
#include "stats/selection.hpp"
#include "threads/team.hpp"

namespace sci::stats {

namespace {

/// Kahan-sums one index row in draw order -- the exact op sequence
/// arithmetic_mean performs on a materialized resample.
double kahan_mean_row(const double* xs, const std::uint32_t* idx, std::size_t n) noexcept {
  double sum = 0.0, comp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[idx[i]];
    const double y = x - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum / static_cast<double>(n);
}

/// Four rows at once: four independent Kahan chains in flight instead of
/// one 3-cycle serial chain. Per-row op order is identical to
/// kahan_mean_row, so results do not depend on the tiling.
void kahan_mean_rows4(const double* xs, const std::uint32_t* idx, std::size_t n,
                      std::size_t stride, double* out) noexcept {
  double s0 = 0.0, c0 = 0.0, s1 = 0.0, c1 = 0.0;
  double s2 = 0.0, c2 = 0.0, s3 = 0.0, c3 = 0.0;
  const std::uint32_t* r0 = idx;
  const std::uint32_t* r1 = idx + stride;
  const std::uint32_t* r2 = idx + 2 * stride;
  const std::uint32_t* r3 = idx + 3 * stride;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = xs[r0[i]], y0 = x0 - c0, t0 = s0 + y0;
    c0 = (t0 - s0) - y0;
    s0 = t0;
    const double x1 = xs[r1[i]], y1 = x1 - c1, t1 = s1 + y1;
    c1 = (t1 - s1) - y1;
    s1 = t1;
    const double x2 = xs[r2[i]], y2 = x2 - c2, t2 = s2 + y2;
    c2 = (t2 - s2) - y2;
    s2 = t2;
    const double x3 = xs[r3[i]], y3 = x3 - c3, t3 = s3 + y3;
    c3 = (t3 - s3) - y3;
    s3 = t3;
  }
  const auto nd = static_cast<double>(n);
  out[0] = s0 / nd;
  out[1] = s1 / nd;
  out[2] = s2 / nd;
  out[3] = s3 / nd;
}

}  // namespace

BootstrapEngine::BootstrapEngine(ExecPolicy policy) {
  policy_.threads = policy.effective_threads();
  policy_.lanes = policy.effective_lanes();
  team_size_ = std::min(policy_.threads, policy_.lanes);
  if (team_size_ > 1) {
    team_ = shared_team(team_size_);
    // Captures a single pointer (fits the std::function SBO) and is
    // built once here, so team fan-out never allocates in steady state.
    region_ = [this](std::size_t worker) {
      const std::size_t lanes = policy_.lanes;
      process_lanes(worker * lanes / team_size_, (worker + 1) * lanes / team_size_);
    };
  }
}

BootstrapEngine::~BootstrapEngine() = default;

void BootstrapEngine::distribution(std::span<const double> xs, const ResampleStat& stat,
                                   std::size_t replicates, std::uint64_t seed,
                                   std::vector<double>& out) {
  detail::require_valid(xs, replicates);
  if (xs.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("BootstrapEngine: n exceeds u32 index range");

  const std::size_t n = xs.size();
  const std::size_t lanes = policy_.lanes;
  rng_.reset(seed, lanes);
  out.resize(replicates);

  xs_ = xs;
  stat_ = &stat;
  out_ = out.data();
  base_ = replicates / lanes;
  rem_ = replicates % lanes;

  if (stat.kind() == ResampleStat::Kind::kQuantile) {
    detail::rank_into(xs, sorted_, rank_, order_);
  } else if (stat.kind() == ResampleStat::Kind::kCustom) {
    resample_.resize(lanes * n);
  }
  idx_.resize(lanes * n);

  if (team_size_ <= 1) {
    process_lanes(0, lanes);
  } else {
    team_->run(region_);
  }
  stat_ = nullptr;
  out_ = nullptr;
}

void BootstrapEngine::process_lanes(std::size_t lane_lo, std::size_t lane_hi) {
  if (lane_hi <= lane_lo) return;
  const std::size_t n = xs_.size();
  const ResampleStat& stat = *stat_;
  const std::uint32_t* map =
      stat.kind() == ResampleStat::Kind::kQuantile ? rank_.data() : nullptr;
  const std::size_t waves = base_ + (rem_ > 0 ? 1 : 0);

  // Lane block lengths are non-increasing, so the lanes still active in
  // wave w form a prefix of [lane_lo, lane_hi).
  for (std::size_t w = 0; w < waves; ++w) {
    const std::size_t hi_active = (w < base_) ? lane_hi : std::min(lane_hi, rem_);
    if (hi_active <= lane_lo) break;
    const std::size_t active = hi_active - lane_lo;
    std::uint32_t* rows = idx_.data() + lane_lo * n;
    rng_.fill_indices(n, n, lane_lo, active, map, rows, n);

    switch (stat.kind()) {
      case ResampleStat::Kind::kMean: {
        std::size_t l = 0;
        double tile[4];
        for (; l + 4 <= active; l += 4) {
          kahan_mean_rows4(xs_.data(), rows + l * n, n, n, tile);
          for (std::size_t j = 0; j < 4; ++j)
            out_[block_start(lane_lo + l + j) + w] = tile[j];
        }
        for (; l < active; ++l)
          out_[block_start(lane_lo + l) + w] = kahan_mean_row(xs_.data(), rows + l * n, n);
        break;
      }
      case ResampleStat::Kind::kQuantile: {
        for (std::size_t l = 0; l < active; ++l) {
          out_[block_start(lane_lo + l) + w] = selection_quantile(
              std::span(rows + l * n, n), sorted_, stat.prob(), stat.method());
        }
        break;
      }
      case ResampleStat::Kind::kCustom: {
        for (std::size_t l = 0; l < active; ++l) {
          double* res = resample_.data() + (lane_lo + l) * n;
          const std::uint32_t* row = rows + l * n;
          for (std::size_t i = 0; i < n; ++i) res[i] = xs_[row[i]];
          out_[block_start(lane_lo + l) + w] = stat.evaluate(std::span(res, n));
        }
        break;
      }
    }
  }
}

Interval BootstrapEngine::percentile_ci(std::span<const double> xs, const ResampleStat& stat,
                                        std::size_t replicates, double confidence,
                                        std::uint64_t seed) {
  distribution(xs, stat, replicates, seed, dist_);
  std::sort(dist_.begin(), dist_.end());
  const double alpha = 1.0 - confidence;
  return {quantile_sorted(dist_, alpha / 2.0), quantile_sorted(dist_, 1.0 - alpha / 2.0),
          confidence};
}

Interval BootstrapEngine::bca_ci(std::span<const double> xs, const ResampleStat& stat,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed) {
  distribution(xs, stat, replicates, seed, dist_);
  std::sort(dist_.begin(), dist_.end());
  const double theta_hat = stat.evaluate(xs);
  if (stat.kind() == ResampleStat::Kind::kCustom) {
    // Opaque callable: generic O(n^2) jackknife, allocation allowed.
    jack_.resize(xs.size());
    std::vector<double> loo;
    loo.reserve(xs.size() - 1);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      loo.clear();
      for (std::size_t j = 0; j < xs.size(); ++j)
        if (j != i) loo.push_back(xs[j]);
      jack_[i] = stat.evaluate(loo);
    }
  } else {
    detail::fast_jackknife_into(xs, stat, jack_, sorted_, rank_, order_);
  }
  return detail::bca_interval(dist_, theta_hat, jack_, confidence);
}

std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                           const ResampleStat& statistic,
                                           std::size_t replicates, std::uint64_t seed,
                                           const ExecPolicy& policy) {
  BootstrapEngine engine(policy);
  std::vector<double> out;
  engine.distribution(xs, statistic, replicates, seed, out);
  return out;
}

Interval bootstrap_percentile_ci(std::span<const double> xs, const ResampleStat& statistic,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed, const ExecPolicy& policy) {
  BootstrapEngine engine(policy);
  return engine.percentile_ci(xs, statistic, replicates, confidence, seed);
}

Interval bootstrap_bca_ci(std::span<const double> xs, const ResampleStat& statistic,
                          std::size_t replicates, double confidence, std::uint64_t seed,
                          const ExecPolicy& policy) {
  BootstrapEngine engine(policy);
  return engine.bca_ci(xs, statistic, replicates, confidence, seed);
}

std::vector<Interval> grouped_bootstrap_percentile_ci(
    std::span<const std::span<const double>> groups, const ResampleStat& statistic,
    std::size_t replicates, double confidence, std::uint64_t seed,
    const ExecPolicy& policy) {
  std::vector<Interval> out(groups.size());
  policy_partition(policy, groups.size(),
                   [&](std::size_t, std::size_t lo, std::size_t hi) {
                     BootstrapEngine engine(ExecPolicy{1, policy.effective_lanes()});
                     for (std::size_t g = lo; g < hi; ++g) {
                       std::uint64_t state = seed + g;
                       out[g] = engine.percentile_ci(groups[g], statistic, replicates,
                                                     confidence,
                                                     rng::splitmix64_next(state));
                     }
                   });
  return out;
}

}  // namespace sci::stats
