#include "stats/bootstrap_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "rng/xoshiro.hpp"
#include "stats/bootstrap_detail.hpp"
#include "stats/histogram_select.hpp"
#include "stats/parallel.hpp"
#include "threads/team.hpp"

namespace sci::stats {

namespace {

/// Kahan-sums one index row in draw order -- the exact op sequence
/// arithmetic_mean performs on a materialized resample. Remainder lanes
/// of a wave (< 4) take this path; full tiles go through the dispatched
/// 4-wide kernel (simd_dispatch.hpp), which runs the same chain per row.
double kahan_mean_row(const double* xs, const std::uint32_t* idx, std::size_t n) noexcept {
  double sum = 0.0, comp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[idx[i]];
    const double y = x - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum / static_cast<double>(n);
}

// AVX2 gathers use signed i32 indices, so the dispatched table requires
// every rank < 2^31; larger samples (never seen in practice) pin the
// scalar table, which has no such precondition.
constexpr std::size_t kGatherIndexLimit = std::size_t{1} << 31;

}  // namespace

BootstrapEngine::BootstrapEngine(ExecPolicy policy) {
  policy_.threads = policy.effective_threads();
  policy_.lanes = policy.effective_lanes();
  lane_workers_ = std::min(policy_.threads, policy_.lanes);
  // The team spans all threads (the jackknife shards sample indices, not
  // lanes); lane fan-out uses the first lane_workers_ workers and keeps
  // the exact lane partition of a min(threads, lanes)-sized team, so
  // thread counts beyond lanes still never change bytes.
  team_size_ = policy_.threads;
  if (team_size_ > 1) {
    team_ = shared_team(team_size_);
    // Each captures a single pointer (fits the std::function SBO) and is
    // built once here, so team fan-out never allocates in steady state.
    region_ = [this](std::size_t worker) {
      if (worker >= lane_workers_) return;
      const std::size_t lanes = policy_.lanes;
      process_lanes(worker, worker * lanes / lane_workers_,
                    (worker + 1) * lanes / lane_workers_);
    };
    jack_region_ = [this](std::size_t worker) {
      const std::size_t n = xs_.size();
      jackknife_range(worker, worker * n / team_size_, (worker + 1) * n / team_size_);
    };
  }
}

BootstrapEngine::~BootstrapEngine() = default;

void BootstrapEngine::distribution(std::span<const double> xs, const ResampleStat& stat,
                                   std::size_t replicates, std::uint64_t seed,
                                   std::vector<double>& out) {
  detail::require_valid(xs, replicates);
  if (xs.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("BootstrapEngine: n exceeds u32 index range");

  const std::size_t n = xs.size();
  const std::size_t lanes = policy_.lanes;
  rng_.reset(seed, lanes);
  out.resize(replicates);

  xs_ = xs;
  stat_ = &stat;
  out_ = out.data();
  base_ = replicates / lanes;
  rem_ = replicates % lanes;

  kernels_ = (n < kGatherIndexLimit) ? &simd::dispatch() : &simd::scalar_kernels();
  if (stat.kind() == ResampleStat::Kind::kQuantile) {
    detail::rank_into(xs, sorted_, rank_, order_);
    plan_ = make_quantile_plan(n, stat.prob(), stat.method());
    const std::size_t crossover = histogram_select_crossover();
    use_hist_ = crossover != 0 && n <= crossover &&
                plan_.mode != QuantilePlan::Mode::kMin &&
                plan_.mode != QuantilePlan::Mode::kMax;
    if (use_hist_) counts_.resize(lane_workers_ * n);
  } else if (stat.kind() == ResampleStat::Kind::kCustom) {
    resample_.resize(lanes * n);
  }
  idx_.resize(lanes * n);

  if (lane_workers_ <= 1) {
    process_lanes(0, 0, lanes);
  } else {
    team_->run(region_);
  }
  stat_ = nullptr;
  out_ = nullptr;
}

void BootstrapEngine::process_lanes(std::size_t worker, std::size_t lane_lo,
                                    std::size_t lane_hi) {
  if (lane_hi <= lane_lo) return;
  const std::size_t n = xs_.size();
  const ResampleStat& stat = *stat_;
  const simd::Kernels& kernels = *kernels_;
  const std::uint32_t* map =
      stat.kind() == ResampleStat::Kind::kQuantile ? rank_.data() : nullptr;
  const std::size_t waves = base_ + (rem_ > 0 ? 1 : 0);

  // Lane block lengths are non-increasing, so the lanes still active in
  // wave w form a prefix of [lane_lo, lane_hi).
  for (std::size_t w = 0; w < waves; ++w) {
    const std::size_t hi_active = (w < base_) ? lane_hi : std::min(lane_hi, rem_);
    if (hi_active <= lane_lo) break;
    const std::size_t active = hi_active - lane_lo;
    std::uint32_t* rows = idx_.data() + lane_lo * n;
    rng_.fill_indices(n, n, lane_lo, active, map, rows, n);

    switch (stat.kind()) {
      case ResampleStat::Kind::kMean: {
        std::size_t l = 0;
        double tile[4];
        for (; l + 4 <= active; l += 4) {
          kernels.mean_rows4(xs_.data(), rows + l * n, n, n, tile);
          for (std::size_t j = 0; j < 4; ++j)
            out_[block_start(lane_lo + l + j) + w] = tile[j];
        }
        for (; l < active; ++l)
          out_[block_start(lane_lo + l) + w] = kahan_mean_row(xs_.data(), rows + l * n, n);
        break;
      }
      case ResampleStat::Kind::kQuantile: {
        if (use_hist_) {
          const std::span<std::uint32_t> counts(counts_.data() + worker * n, n);
          for (std::size_t l = 0; l < active; ++l) {
            out_[block_start(lane_lo + l) + w] = histogram_select_quantile(
                std::span<const std::uint32_t>(rows + l * n, n), sorted_, counts, plan_,
                kernels);
          }
        } else {
          for (std::size_t l = 0; l < active; ++l) {
            out_[block_start(lane_lo + l) + w] =
                selection_quantile(std::span(rows + l * n, n), sorted_, plan_);
          }
        }
        break;
      }
      case ResampleStat::Kind::kCustom: {
        for (std::size_t l = 0; l < active; ++l) {
          double* res = resample_.data() + (lane_lo + l) * n;
          const std::uint32_t* row = rows + l * n;
          for (std::size_t i = 0; i < n; ++i) res[i] = xs_[row[i]];
          out_[block_start(lane_lo + l) + w] = stat.evaluate(std::span(res, n));
        }
        break;
      }
    }
  }
}

Interval BootstrapEngine::percentile_ci(std::span<const double> xs, const ResampleStat& stat,
                                        std::size_t replicates, double confidence,
                                        std::uint64_t seed) {
  distribution(xs, stat, replicates, seed, dist_);
  std::sort(dist_.begin(), dist_.end());
  const double alpha = 1.0 - confidence;
  return {quantile_sorted(dist_, alpha / 2.0), quantile_sorted(dist_, 1.0 - alpha / 2.0),
          confidence};
}

Interval BootstrapEngine::bca_ci(std::span<const double> xs, const ResampleStat& stat,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed) {
  distribution(xs, stat, replicates, seed, dist_);
  std::sort(dist_.begin(), dist_.end());
  const double theta_hat = stat.evaluate(xs);

  // Leave-one-out influence values, sharded across the team in static
  // per-index blocks. jack[i] depends only on (xs, stat, i), so the
  // sharding is pure scheduling: any thread count produces the bytes
  // the serial loop does.
  const std::size_t n = xs.size();
  jack_.resize(n);
  xs_ = xs;
  stat_ = &stat;
  if (stat.kind() == ResampleStat::Kind::kQuantile) {
    // distribution() just ranked this exact sample; sorted_/rank_ are
    // still current, so the O(n log n) prep is not repeated.
  } else if (stat.kind() == ResampleStat::Kind::kCustom) {
    jack_loo_.resize(team_size_ * (n - 1));
  }
  if (team_size_ <= 1) {
    jackknife_range(0, 0, n);
  } else {
    team_->run(jack_region_);
  }
  stat_ = nullptr;
  return detail::bca_interval(dist_, theta_hat, jack_, confidence);
}

void BootstrapEngine::jackknife_range(std::size_t worker, std::size_t lo, std::size_t hi) {
  if (hi <= lo) return;
  const std::size_t n = xs_.size();
  switch (stat_->kind()) {
    case ResampleStat::Kind::kMean:
      detail::jackknife_mean_range(xs_, jack_.data(), lo, hi);
      break;
    case ResampleStat::Kind::kQuantile:
      detail::jackknife_quantile_range(sorted_, rank_.data(), stat_->prob(),
                                       stat_->method(), jack_.data(), lo, hi);
      break;
    case ResampleStat::Kind::kCustom: {
      // Opaque callable: materialize each loo vector in worker-local
      // scratch. Element order matches the legacy push_back loop.
      double* loo = jack_loo_.data() + worker * (n - 1);
      for (std::size_t i = lo; i < hi; ++i) {
        std::size_t k = 0;
        for (std::size_t j = 0; j < n; ++j)
          if (j != i) loo[k++] = xs_[j];
        jack_[i] = stat_->evaluate(std::span<const double>(loo, n - 1));
      }
      break;
    }
  }
}

std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                           const ResampleStat& statistic,
                                           std::size_t replicates, std::uint64_t seed,
                                           const ExecPolicy& policy) {
  BootstrapEngine engine(policy);
  std::vector<double> out;
  engine.distribution(xs, statistic, replicates, seed, out);
  return out;
}

Interval bootstrap_percentile_ci(std::span<const double> xs, const ResampleStat& statistic,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed, const ExecPolicy& policy) {
  BootstrapEngine engine(policy);
  return engine.percentile_ci(xs, statistic, replicates, confidence, seed);
}

Interval bootstrap_bca_ci(std::span<const double> xs, const ResampleStat& statistic,
                          std::size_t replicates, double confidence, std::uint64_t seed,
                          const ExecPolicy& policy) {
  BootstrapEngine engine(policy);
  return engine.bca_ci(xs, statistic, replicates, confidence, seed);
}

std::vector<Interval> grouped_bootstrap_percentile_ci(
    std::span<const std::span<const double>> groups, const ResampleStat& statistic,
    std::size_t replicates, double confidence, std::uint64_t seed,
    const ExecPolicy& policy) {
  std::vector<Interval> out(groups.size());
  policy_partition(policy, groups.size(),
                   [&](std::size_t, std::size_t lo, std::size_t hi) {
                     BootstrapEngine engine(ExecPolicy{1, policy.effective_lanes()});
                     for (std::size_t g = lo; g < hi; ++g) {
                       std::uint64_t state = seed + g;
                       out[g] = engine.percentile_ci(groups[g], statistic, replicates,
                                                     confidence,
                                                     rng::splitmix64_next(state));
                     }
                   });
  return out;
}

}  // namespace sci::stats
