// Multi-lane, thread-sharded bootstrap with an alloc-free steady state.
//
// Replicates are partitioned into contiguous per-lane blocks (lane l
// gets replicates [l*base + min(l, rem), ...) with base = R/L, rem =
// R%L) and lane l draws from Xoshiro256(seed) jumped l times. Threads
// shard whole lanes, so for a fixed (data, statistic, replicates, seed,
// lanes) the output vector is byte-identical at any thread count -- and
// with lanes = 1 it is byte-identical to the legacy single-stream
// scalar path (which now delegates here). Within a thread, lanes are
// processed in waves of up to four: the index rows are filled lane by
// lane, then consumed together (4-wide interleaved Kahan accumulation
// for the mean). The wave tiling is pure instruction scheduling; it
// never changes any per-lane draw or evaluation order.
//
// Hot kernels come from stats::simd::dispatch() (simd_dispatch.hpp):
// AVX2 on hosts that have it, scalar elsewhere, bit-identical either
// way. Quantile replicates use histogram rank selection
// (histogram_select.hpp) when n is at or below the measured crossover
// and the partition kernels above it; both consume one QuantilePlan,
// so the switch affects speed only, never bytes.
//
// All scratch (sorted sample, rank permutation, index rows, resample
// rows, distribution buffer) lives in reusable member buffers: after a
// warm-up call of each shape, distribution() and the CI entry points
// perform zero allocator calls for mean/quantile statistics
// (bench_stats_parallel audits this with an operator-new counter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "rng/lanes.hpp"
#include "stats/bootstrap.hpp"
#include "stats/exec_policy.hpp"
#include "stats/selection.hpp"
#include "stats/simd_dispatch.hpp"

namespace sci::threads {
class ThreadTeam;
}

namespace sci::stats {

class BootstrapEngine {
 public:
  explicit BootstrapEngine(ExecPolicy policy = {});
  ~BootstrapEngine();

  BootstrapEngine(const BootstrapEngine&) = delete;
  BootstrapEngine& operator=(const BootstrapEngine&) = delete;

  [[nodiscard]] const ExecPolicy& policy() const noexcept { return policy_; }

  /// Bootstrap distribution of `stat` into `out` (resized to
  /// `replicates`). For kCustom statistics with threads > 1 the callable
  /// is invoked concurrently and must be thread-safe; mean/quantile
  /// kinds never call out.
  void distribution(std::span<const double> xs, const ResampleStat& stat,
                    std::size_t replicates, std::uint64_t seed, std::vector<double>& out);

  /// Percentile CI from the engine's distribution (internal buffer).
  [[nodiscard]] Interval percentile_ci(std::span<const double> xs, const ResampleStat& stat,
                                       std::size_t replicates = 1000,
                                       double confidence = 0.95,
                                       std::uint64_t seed = 0xb00f);

  /// BCa CI. The leave-one-out jackknife is sharded across the thread
  /// team in deterministic per-index blocks (jack[i] depends only on i,
  /// so bytes never depend on thread count). For kCustom with
  /// threads > 1 the callable is invoked concurrently here too.
  [[nodiscard]] Interval bca_ci(std::span<const double> xs, const ResampleStat& stat,
                                std::size_t replicates = 1000, double confidence = 0.95,
                                std::uint64_t seed = 0xb00f);

 private:
  void process_lanes(std::size_t worker, std::size_t lane_lo, std::size_t lane_hi);
  void jackknife_range(std::size_t worker, std::size_t lo, std::size_t hi);
  [[nodiscard]] std::size_t block_start(std::size_t lane) const noexcept {
    return lane * base_ + std::min(lane, rem_);
  }

  ExecPolicy policy_;                            // normalized (no zeros)
  std::size_t team_size_ = 1;                    // threads (jackknife fan-out)
  std::size_t lane_workers_ = 1;                 // min(threads, lanes)
  std::shared_ptr<threads::ThreadTeam> team_;    // null when team_size_ == 1
  std::function<void(std::size_t)> region_;      // preconstructed: captures only `this`
  std::function<void(std::size_t)> jack_region_; // ditto, for the jackknife
  rng::LaneRng rng_;

  // Job state for the active distribution() call (set before fan-out).
  std::span<const double> xs_;
  const ResampleStat* stat_ = nullptr;
  double* out_ = nullptr;
  std::size_t base_ = 0;  // replicates / lanes
  std::size_t rem_ = 0;   // replicates % lanes
  const simd::Kernels* kernels_ = nullptr;  // picked once per job
  QuantilePlan plan_;                       // kQuantile jobs
  bool use_hist_ = false;                   // n <= histogram crossover

  // Reusable scratch.
  std::vector<double> sorted_;
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> idx_;      // lanes x n index/rank rows
  std::vector<double> resample_;        // lanes x n rows (kCustom only)
  std::vector<std::uint32_t> counts_;   // lane_workers x n histograms
  std::vector<double> dist_;            // CI entry points
  std::vector<double> jack_;            // bca_ci
  std::vector<double> jack_loo_;        // bca_ci, kCustom: team_size x (n-1)
};

/// Policy-taking conveniences; ExecPolicy{} (or {1, 1}) is bit-identical
/// to the policy-free overloads in bootstrap.hpp.
[[nodiscard]] std::vector<double> bootstrap_distribution(std::span<const double> xs,
                                                         const ResampleStat& statistic,
                                                         std::size_t replicates,
                                                         std::uint64_t seed,
                                                         const ExecPolicy& policy);

[[nodiscard]] Interval bootstrap_percentile_ci(std::span<const double> xs,
                                               const ResampleStat& statistic,
                                               std::size_t replicates, double confidence,
                                               std::uint64_t seed, const ExecPolicy& policy);

[[nodiscard]] Interval bootstrap_bca_ci(std::span<const double> xs,
                                        const ResampleStat& statistic,
                                        std::size_t replicates, double confidence,
                                        std::uint64_t seed, const ExecPolicy& policy);

/// Per-group percentile CIs with group-level thread fan-out (each group
/// runs a serial engine with `policy.lanes` lanes; group g's stream seed
/// is splitmix64(seed + g), so results are independent of both thread
/// count and group order).
[[nodiscard]] std::vector<Interval> grouped_bootstrap_percentile_ci(
    std::span<const std::span<const double>> groups, const ResampleStat& statistic,
    std::size_t replicates = 1000, double confidence = 0.95, std::uint64_t seed = 0xb00f,
    const ExecPolicy& policy = {});

}  // namespace sci::stats
