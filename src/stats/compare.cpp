#include "stats/compare.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"

namespace sci::stats {

TestResult t_test(std::span<const double> a, std::span<const double> b, bool pooled) {
  if (a.size() < 2 || b.size() < 2) throw std::invalid_argument("t_test: need n >= 2 per group");
  const double ma = arithmetic_mean(a);
  const double mb = arithmetic_mean(b);
  const double va = sample_variance(a);
  const double vb = sample_variance(b);
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());

  double t_stat, dof;
  if (pooled) {
    const double sp2 = ((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0);
    t_stat = (ma - mb) / std::sqrt(sp2 * (1.0 / na + 1.0 / nb));
    dof = na + nb - 2.0;
  } else {
    const double se2 = va / na + vb / nb;
    t_stat = (ma - mb) / std::sqrt(se2);
    // Welch-Satterthwaite degrees of freedom.
    dof = se2 * se2 /
          (va * va / (na * na * (na - 1.0)) + vb * vb / (nb * nb * (nb - 1.0)));
  }
  const StudentT t{dof};
  const double p = 2.0 * (1.0 - t.cdf(std::fabs(t_stat)));
  return {t_stat, p};
}

AnovaResult one_way_anova(Groups groups) {
  const std::size_t k = groups.size();
  if (k < 2) throw std::invalid_argument("one_way_anova: need k >= 2 groups");
  std::size_t total_n = 0;
  double grand_sum = 0.0;
  for (const auto& g : groups) {
    if (g.size() < 2) throw std::invalid_argument("one_way_anova: need n >= 2 per group");
    total_n += g.size();
    for (double v : g) grand_sum += v;
  }
  const double grand_mean = grand_sum / static_cast<double>(total_n);

  double ss_between = 0.0, ss_within = 0.0;
  for (const auto& g : groups) {
    const double gm = arithmetic_mean(g);
    ss_between += static_cast<double>(g.size()) * (gm - grand_mean) * (gm - grand_mean);
    for (double v : g) ss_within += (v - gm) * (v - gm);
  }

  AnovaResult r;
  r.dof_between = static_cast<double>(k - 1);
  r.dof_within = static_cast<double>(total_n - k);
  r.inter_group_variability = ss_between / r.dof_between;
  r.intra_group_variability = ss_within / r.dof_within;
  if (r.intra_group_variability == 0.0) {
    // All groups internally constant: means either all equal (F=0) or
    // trivially different (F=inf -> p=0).
    r.f_statistic = (ss_between == 0.0) ? 0.0 : std::numeric_limits<double>::infinity();
    r.p_value = (ss_between == 0.0) ? 1.0 : 0.0;
    return r;
  }
  r.f_statistic = r.inter_group_variability / r.intra_group_variability;
  const FisherF f{r.dof_between, r.dof_within};
  r.p_value = 1.0 - f.cdf(r.f_statistic);
  return r;
}

TestResult kruskal_wallis(Groups groups) {
  const std::size_t k = groups.size();
  if (k < 2) throw std::invalid_argument("kruskal_wallis: need k >= 2 groups");
  std::size_t total_n = 0;
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument("kruskal_wallis: empty group");
    total_n += g.size();
  }
  // Pool all observations, rank with midranks for ties. The ranking
  // sort also yields the tie-correction term (sort once, PR 3
  // convention; this used to re-sort the pool just to find ties).
  std::vector<double> pooled;
  pooled.reserve(total_n);
  for (const auto& g : groups)
    pooled.insert(pooled.end(), g.begin(), g.end());
  double tie_term = 0.0;
  const auto ranks = midranks(pooled, &tie_term);

  const auto n = static_cast<double>(total_n);
  double h = 0.0;
  std::size_t offset = 0;
  for (const auto& g : groups) {
    double rank_sum = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i) rank_sum += ranks[offset + i];
    h += rank_sum * rank_sum / static_cast<double>(g.size());
    offset += g.size();
  }
  h = 12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0);

  // Tie correction: divide by 1 - sum(t^3 - t)/(n^3 - n).
  const double correction = 1.0 - tie_term / (n * n * n - n);
  if (correction > 0.0) h /= correction;

  const ChiSquared chi2{static_cast<double>(k - 1)};
  return {h, 1.0 - chi2.cdf(h)};
}

double effect_size_cohens_d(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2)
    throw std::invalid_argument("effect_size_cohens_d: need n >= 2 per group");
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  const double sp2 =
      ((na - 1.0) * sample_variance(a) + (nb - 1.0) * sample_variance(b)) / (na + nb - 2.0);
  if (sp2 == 0.0) throw std::domain_error("effect_size_cohens_d: zero pooled variance");
  return (arithmetic_mean(a) - arithmetic_mean(b)) / std::sqrt(sp2);
}

EffectMagnitude classify_effect(double cohens_d) noexcept {
  const double d = std::fabs(cohens_d);
  if (d < 0.2) return EffectMagnitude::kNegligible;
  if (d < 0.5) return EffectMagnitude::kSmall;
  if (d < 0.8) return EffectMagnitude::kMedium;
  return EffectMagnitude::kLarge;
}

const char* to_string(EffectMagnitude m) noexcept {
  switch (m) {
    case EffectMagnitude::kNegligible: return "negligible";
    case EffectMagnitude::kSmall: return "small";
    case EffectMagnitude::kMedium: return "medium";
    case EffectMagnitude::kLarge: return "large";
  }
  return "unknown";
}

}  // namespace sci::stats
