// Statistically sound comparison of measurement groups (Section 3.2,
// Rule 7): t-tests, one-way ANOVA, Kruskal-Wallis, and effect size.
#pragma once

#include <span>
#include <vector>

#include "stats/normality.hpp"  // TestResult

namespace sci::stats {

/// A set of measurement groups (e.g. one group per system or per rank).
using Groups = std::span<const std::vector<double>>;

/// Two-sample t-test. Welch's variant (default) does not assume equal
/// variances; `pooled = true` gives the classic Student test.
[[nodiscard]] TestResult t_test(std::span<const double> a, std::span<const double> b,
                                bool pooled = false);

struct AnovaResult {
  double f_statistic = 0.0;
  double p_value = 0.0;
  double dof_between = 0.0;
  double dof_within = 0.0;
  double inter_group_variability = 0.0;  ///< egv: mean square between
  double intra_group_variability = 0.0;  ///< igv: mean square within
  [[nodiscard]] bool reject(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

/// One-factor analysis of variance over k groups (unequal sizes
/// supported). Null hypothesis: all group means are equal. Requires
/// approximately normal groups with similar variances.
[[nodiscard]] AnovaResult one_way_anova(Groups groups);

/// Kruskal-Wallis rank one-way ANOVA with tie correction. Null
/// hypothesis: all group medians are equal. Nonparametric; this is the
/// paper's recommended test for the typical right-skewed timings.
[[nodiscard]] TestResult kruskal_wallis(Groups groups);

/// Effect size (Cohen's d with pooled standard deviation):
/// E = (mean_a - mean_b) / s_pooled. The paper recommends reporting this
/// alongside (or instead of) p-values for small effects.
[[nodiscard]] double effect_size_cohens_d(std::span<const double> a,
                                          std::span<const double> b);

/// Conventional qualitative banding of |d| (Cohen 1988).
enum class EffectMagnitude { kNegligible, kSmall, kMedium, kLarge };
[[nodiscard]] EffectMagnitude classify_effect(double cohens_d) noexcept;
[[nodiscard]] const char* to_string(EffectMagnitude m) noexcept;

}  // namespace sci::stats
