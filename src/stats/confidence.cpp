#include "stats/confidence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/parallel.hpp"
#include "stats/special_functions.hpp"

namespace sci::stats {

Interval mean_confidence_interval(std::span<const double> xs, double confidence) {
  if (xs.size() < 2) throw std::invalid_argument("mean_confidence_interval: need n >= 2");
  const double mean = arithmetic_mean(xs);
  const double s = sample_stddev(xs);
  const auto n = static_cast<double>(xs.size());
  const StudentT t{n - 1.0};
  const double half = t.critical_two_sided(1.0 - confidence) * s / std::sqrt(n);
  return {mean - half, mean + half, confidence};
}

Interval quantile_confidence_interval(std::span<const double> xs, double p,
                                      double confidence) {
  const auto sorted = sorted_copy(xs);
  return quantile_confidence_interval_sorted(sorted, p, confidence);
}

Interval quantile_confidence_interval_sorted(std::span<const double> sorted, double p,
                                             double confidence) {
  const std::size_t n = sorted.size();
  if (n < 6) throw std::invalid_argument("quantile_confidence_interval: need n > 5");
  if (p <= 0.0 || p >= 1.0)
    throw std::domain_error("quantile_confidence_interval: p in (0,1)");
  const double alpha = 1.0 - confidence;
  const double z = inverse_normal_cdf(1.0 - alpha / 2.0);
  const auto nd = static_cast<double>(n);
  // Le Boudec: ranks floor(np - z sqrt(np(1-p))) and
  // ceil(np + z sqrt(np(1-p))) + 1, clamped to [1, n] (1-based).
  const double spread = z * std::sqrt(nd * p * (1.0 - p));
  auto lo_rank = static_cast<long>(std::floor(nd * p - spread));
  auto hi_rank = static_cast<long>(std::ceil(nd * p + spread)) + 1;
  lo_rank = std::max<long>(lo_rank, 1);
  hi_rank = std::min<long>(hi_rank, static_cast<long>(n));
  return {sorted[static_cast<std::size_t>(lo_rank - 1)],
          sorted[static_cast<std::size_t>(hi_rank - 1)], confidence};
}

Interval median_confidence_interval(std::span<const double> xs, double confidence) {
  return quantile_confidence_interval(xs, 0.5, confidence);
}

std::vector<QuantileSummary> grouped_quantile_summary(
    std::span<const std::span<const double>> groups, double p, double confidence,
    const ExecPolicy& policy) {
  std::vector<QuantileSummary> out(groups.size());
  policy_partition(policy, groups.size(), [&](std::size_t, std::size_t lo, std::size_t hi) {
    std::vector<double> sorted;  // per-worker scratch, reused across its groups
    for (std::size_t g = lo; g < hi; ++g) {
      if (groups[g].empty())
        throw std::invalid_argument("grouped_quantile_summary: empty group");
      sorted.assign(groups[g].begin(), groups[g].end());
      std::sort(sorted.begin(), sorted.end());
      QuantileSummary& s = out[g];
      s.n = sorted.size();
      s.value = quantile_sorted(sorted, p);
      if (s.n > 5 && p > 0.0 && p < 1.0) {
        s.ci = quantile_confidence_interval_sorted(sorted, p, confidence);
        s.ci_rank_based = true;
      } else {
        s.ci = {sorted.front(), sorted.back(), confidence};
        s.ci_rank_based = false;
      }
    }
  });
  return out;
}

std::vector<QuantileSummary> grouped_quantile_summary(
    std::span<const std::vector<double>> groups, double p, double confidence,
    const ExecPolicy& policy) {
  std::vector<std::span<const double>> views;
  views.reserve(groups.size());
  for (const auto& g : groups) views.emplace_back(g);
  return grouped_quantile_summary(std::span<const std::span<const double>>(views), p,
                                  confidence, policy);
}

std::size_t required_samples_mean(std::span<const double> pilot, double relative_error,
                                  double confidence) {
  if (pilot.size() < 2) throw std::invalid_argument("required_samples_mean: pilot n >= 2");
  if (relative_error <= 0.0)
    throw std::domain_error("required_samples_mean: relative_error > 0");
  const double mean = arithmetic_mean(pilot);
  if (mean == 0.0) throw std::domain_error("required_samples_mean: zero pilot mean");
  const double s = sample_stddev(pilot);
  const StudentT t{static_cast<double>(pilot.size()) - 1.0};
  const double tcrit = t.critical_two_sided(1.0 - confidence);
  const double n = std::pow(s * tcrit / (relative_error * std::fabs(mean)), 2.0);
  return static_cast<std::size_t>(std::ceil(std::max(n, 2.0)));
}

bool quantile_ci_converged(std::span<const double> xs, double p, double relative_error,
                           double confidence) {
  if (xs.size() < 6) return false;
  // One sort feeds both the CI ranks and the center quantile; this runs
  // after every adaptive sample (kCiRecomputes counts how often).
  const auto sorted = sorted_copy(xs);
  const Interval ci = quantile_confidence_interval_sorted(sorted, p, confidence);
  const double center = quantile_sorted(sorted, p);
  if (center == 0.0) return ci.width() == 0.0;
  return ci.lower >= center * (1.0 - relative_error) &&
         ci.upper <= center * (1.0 + relative_error);
}

}  // namespace sci::stats
