// Confidence intervals (Sections 3.1.2, 3.1.3, 4.2.2 of the paper).
//
//  - t-based CI of the mean (parametric; requires ~normal samples)
//  - rank-based CI of the median / arbitrary quantiles (nonparametric,
//    Le Boudec's formula) -- the paper's recommended default for
//    right-skewed HPC measurements
//  - sample-size planning: how many measurements until the CI is within
//    a requested fraction of the center (Rule 5 / Section 4.2.2)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/exec_policy.hpp"

namespace sci::stats {

struct Interval {
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< e.g. 0.95
  [[nodiscard]] double width() const noexcept { return upper - lower; }
  [[nodiscard]] bool contains(double v) const noexcept { return lower <= v && v <= upper; }
  /// Non-overlap of two CIs at level 1-alpha implies a statistically
  /// significant difference at that level (Section 3.2).
  [[nodiscard]] bool overlaps(const Interval& other) const noexcept {
    return lower <= other.upper && other.lower <= upper;
  }
};

/// CI of the mean via Student's t with n-1 dof:
/// [x - t(n-1, a/2) s/sqrt(n), x + t(n-1, a/2) s/sqrt(n)].
/// Requires n >= 2. Valid only for approximately normal samples; run a
/// normality diagnostic first (Rule 6).
[[nodiscard]] Interval mean_confidence_interval(std::span<const double> xs,
                                                double confidence = 0.95);

/// Nonparametric CI of the p-quantile using rank statistics
/// (Le Boudec 2011). Requires n > 5 for meaningful output. The returned
/// bounds are observed values; the interval may be asymmetric.
[[nodiscard]] Interval quantile_confidence_interval(std::span<const double> xs, double p,
                                                    double confidence = 0.95);

/// Same CI for data already sorted ascending (no copy, no sort). Hot
/// callers that also need a quantile of the same sample should sort
/// once and pair this with quantile_sorted().
[[nodiscard]] Interval quantile_confidence_interval_sorted(std::span<const double> sorted,
                                                           double p,
                                                           double confidence = 0.95);

/// Shorthand for the median (p = 0.5).
[[nodiscard]] Interval median_confidence_interval(std::span<const double> xs,
                                                  double confidence = 0.95);

/// Number of measurements needed so that the 1-alpha CI of the mean is
/// within +-e*mean, estimated from a pilot sample (Section 4.2.2,
/// normally distributed data): n = (s * t(n-1, a/2) / (e*mean))^2.
[[nodiscard]] std::size_t required_samples_mean(std::span<const double> pilot,
                                                double relative_error,
                                                double confidence = 0.95);

/// Center + CI of one group, as reported per campaign cell / config.
struct QuantileSummary {
  double value = 0.0;        ///< the p-quantile itself
  Interval ci;               ///< rank CI when possible, observed [min, max] otherwise
  bool ci_rank_based = false;  ///< false: n <= 5 (or degenerate p) forced the fallback
  std::size_t n = 0;
};

/// Per-group p-quantile + CI with one sort per group, fanned out over
/// `policy.threads` pooled workers. Output order matches input order and
/// is independent of the thread count; each entry is bit-identical to
/// the scalar quantile()/quantile_confidence_interval() pair on the same
/// group. Throws on an empty group.
[[nodiscard]] std::vector<QuantileSummary> grouped_quantile_summary(
    std::span<const std::span<const double>> groups, double p, double confidence = 0.95,
    const ExecPolicy& policy = {});

/// Convenience overload for vector-of-vectors group sets.
[[nodiscard]] std::vector<QuantileSummary> grouped_quantile_summary(
    std::span<const std::vector<double>> groups, double p, double confidence = 0.95,
    const ExecPolicy& policy = {});

/// Sequential stopping rule for non-normal data: true once the
/// nonparametric CI of the p-quantile is within +-relative_error of the
/// quantile itself (Section 4.2.2). Requires n > 5.
[[nodiscard]] bool quantile_ci_converged(std::span<const double> xs, double p,
                                         double relative_error, double confidence = 0.95);

}  // namespace sci::stats
