#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sci::stats {
namespace {

void require_nonempty(std::span<const double> xs, const char* what) {
  if (xs.empty()) throw std::invalid_argument(std::string(what) + ": empty input");
}

}  // namespace

double arithmetic_mean(std::span<const double> xs) {
  require_nonempty(xs, "arithmetic_mean");
  // Kahan summation: bench series can hold 1e6+ samples spanning decades.
  double sum = 0.0, comp = 0.0;
  for (double x : xs) {
    const double y = x - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum / static_cast<double>(xs.size());
}

double harmonic_mean(std::span<const double> xs) {
  require_nonempty(xs, "harmonic_mean");
  double sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::domain_error("harmonic_mean: requires positive values");
    sum += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / sum;
}

double geometric_mean(std::span<const double> xs) {
  require_nonempty(xs, "geometric_mean");
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::domain_error("geometric_mean: requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double sample_variance(std::span<const double> xs) {
  require_nonempty(xs, "sample_variance");
  if (xs.size() < 2) return 0.0;
  const double mean = arithmetic_mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

double sample_stddev(std::span<const double> xs) { return std::sqrt(sample_variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) {
  const double mean = arithmetic_mean(xs);
  if (mean == 0.0) throw std::domain_error("coefficient_of_variation: zero mean");
  return sample_stddev(xs) / mean;
}

double skewness(std::span<const double> xs) {
  require_nonempty(xs, "skewness");
  const double mean = arithmetic_mean(xs);
  const auto n = static_cast<double>(xs.size());
  double m2 = 0.0, m3 = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  if (m2 == 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double excess_kurtosis(std::span<const double> xs) {
  require_nonempty(xs, "excess_kurtosis");
  const double mean = arithmetic_mean(xs);
  const auto n = static_cast<double>(xs.size());
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  if (m2 == 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double min_value(std::span<const double> xs) {
  require_nonempty(xs, "min_value");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require_nonempty(xs, "max_value");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  std::sort(out.begin(), out.end());
  return out;
}

double quantile_sorted(std::span<const double> sorted, double p, QuantileMethod method) {
  require_nonempty(sorted, "quantile_sorted");
  if (p < 0.0 || p > 1.0) throw std::domain_error("quantile: p in [0,1] required");
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];

  switch (method) {
    case QuantileMethod::kR1InverseEcdf: {
      // Smallest x with ECDF(x) >= p.
      if (p == 0.0) return sorted[0];
      const auto idx = static_cast<std::size_t>(std::ceil(p * static_cast<double>(n))) - 1;
      return sorted[std::min(idx, n - 1)];
    }
    case QuantileMethod::kR6Weibull: {
      const double h = (static_cast<double>(n) + 1.0) * p;
      if (h <= 1.0) return sorted[0];
      if (h >= static_cast<double>(n)) return sorted[n - 1];
      const auto k = static_cast<std::size_t>(std::floor(h));
      const double frac = h - static_cast<double>(k);
      return sorted[k - 1] + frac * (sorted[k] - sorted[k - 1]);
    }
    case QuantileMethod::kR7Linear: {
      const double h = (static_cast<double>(n) - 1.0) * p;
      const auto k = static_cast<std::size_t>(std::floor(h));
      const double frac = h - static_cast<double>(k);
      if (k + 1 >= n) return sorted[n - 1];
      return sorted[k] + frac * (sorted[k + 1] - sorted[k]);
    }
  }
  throw std::logic_error("quantile: unknown method");
}

double quantile(std::span<const double> xs, double p, QuantileMethod method) {
  const auto sorted = sorted_copy(xs);
  return quantile_sorted(sorted, p, method);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

BoxStats box_stats(std::span<const double> xs) {
  require_nonempty(xs, "box_stats");
  const auto sorted = sorted_copy(xs);
  BoxStats bs;
  bs.n = sorted.size();
  bs.min = sorted.front();
  bs.max = sorted.back();
  bs.q1 = quantile_sorted(sorted, 0.25);
  bs.median = quantile_sorted(sorted, 0.5);
  bs.q3 = quantile_sorted(sorted, 0.75);
  bs.mean = arithmetic_mean(xs);
  bs.iqr = bs.q3 - bs.q1;
  const double lo_fence = bs.q1 - 1.5 * bs.iqr;
  const double hi_fence = bs.q3 + 1.5 * bs.iqr;
  bs.whisker_low = bs.min;
  bs.whisker_high = bs.max;
  for (double v : sorted) {
    if (v >= lo_fence) {
      bs.whisker_low = v;
      break;
    }
    ++bs.outliers_low;
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      bs.whisker_high = *it;
      break;
    }
    ++bs.outliers_high;
  }
  return bs;
}

void OnlineMoments::merge(const OnlineMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineMoments::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineMoments::stddev() const noexcept { return std::sqrt(variance()); }

std::vector<double> midranks(std::span<const double> xs) {
  return midranks(xs, nullptr);
}

std::vector<double> midranks(std::span<const double> xs, double* tie_cubes) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n);
  if (tie_cubes != nullptr) *tie_cubes = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    const double avg = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    // Tie groups surface here in ascending value order -- the same
    // accumulation order as a scan over the sorted data, so the summed
    // correction term is bit-identical to the two-sort formulation.
    if (tie_cubes != nullptr) {
      const auto t = static_cast<double>(j - i + 1);
      if (t > 1.0) *tie_cubes += t * t * t - t;
    }
    i = j + 1;
  }
  return ranks;
}

}  // namespace sci::stats
