// Descriptive statistics: the summary measures of Section 3.1 of the
// paper (means, spread, rank statistics) plus online (streaming)
// accumulators suitable for low-overhead in-measurement collection.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sci::stats {

/// Arithmetic mean. Rule 3: the correct summary for *costs* (seconds,
/// joules, flop counts) where totals are meaningful.
[[nodiscard]] double arithmetic_mean(std::span<const double> xs);

/// Harmonic mean. Rule 3: the correct summary for *rates* (flop/s)
/// when the denominators (times) carry the primary semantic.
[[nodiscard]] double harmonic_mean(std::span<const double> xs);

/// Geometric mean, computed in log space for overflow safety. Rule 4:
/// last-resort summary for dimensionless ratios.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator), two-pass for stability.
[[nodiscard]] double sample_variance(std::span<const double> xs);

/// Sample standard deviation s.
[[nodiscard]] double sample_stddev(std::span<const double> xs);

/// Coefficient of variation s / mean; the paper's recommended
/// dimensionless stability measure (Kramer & Ryan).
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// Sample skewness g1 (biased, moment-based).
[[nodiscard]] double skewness(std::span<const double> xs);

/// Excess kurtosis g2 (biased, moment-based).
[[nodiscard]] double excess_kurtosis(std::span<const double> xs);

[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Quantile estimation scheme. Numbers follow Hyndman & Fan (1996);
/// R7 is the R default (linear interpolation), R1 is inverse-ECDF
/// (a pure rank statistic: always returns an observed value, matching
/// the paper's definition "the measurement at position n/2").
enum class QuantileMethod {
  kR1InverseEcdf,
  kR6Weibull,
  kR7Linear,
};

/// p-quantile of unsorted data (copies + sorts internally).
[[nodiscard]] double quantile(std::span<const double> xs, double p,
                              QuantileMethod method = QuantileMethod::kR7Linear);

/// p-quantile of data already sorted ascending (no copy).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double p,
                                     QuantileMethod method = QuantileMethod::kR7Linear);

[[nodiscard]] double median(std::span<const double> xs);

/// Five-number summary + mean, the contents of a box plot (Rule 12).
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double iqr = 0.0;
  double whisker_low = 0.0;   ///< lowest observation >= q1 - 1.5 IQR
  double whisker_high = 0.0;  ///< highest observation <= q3 + 1.5 IQR
  std::size_t n = 0;
  std::size_t outliers_low = 0;
  std::size_t outliers_high = 0;
};

[[nodiscard]] BoxStats box_stats(std::span<const double> xs);

/// Welford online mean/variance accumulator (Section 3.1.2 notes that
/// the sample variance "can be computed incrementally (online)").
/// Numerically stable, O(1) per observation, mergeable (parallel
/// reduction via Chan et al.).
class OnlineMoments {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Merge another accumulator (order-independent up to roundoff).
  void merge(const OnlineMoments& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< unbiased; 0 for n<2
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns a sorted copy. Many rank statistics want sorted input; keeping
/// this explicit avoids re-sorting the same series repeatedly.
[[nodiscard]] std::vector<double> sorted_copy(std::span<const double> xs);

/// Midranks (average ranks for ties), 1-based, as used by Kruskal-Wallis.
[[nodiscard]] std::vector<double> midranks(std::span<const double> xs);

/// Same, also accumulating the tie-correction term sum(t^3 - t) over tie
/// groups (ascending value order) into *tie_cubes. Lets Kruskal-Wallis
/// rank and tie-correct with one sort instead of two.
[[nodiscard]] std::vector<double> midranks(std::span<const double> xs, double* tie_cubes);

}  // namespace sci::stats
