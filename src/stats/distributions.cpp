#include "stats/distributions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/special_functions.hpp"

namespace sci::stats {

double Normal::pdf(double x) const { return normal_pdf((x - mean) / stddev) / stddev; }

double Normal::cdf(double x) const { return normal_cdf((x - mean) / stddev); }

double Normal::quantile(double p) const { return mean + stddev * inverse_normal_cdf(p); }

double StudentT::pdf(double x) const {
  const double v = dof;
  const double ln = std::lgamma((v + 1.0) / 2.0) - std::lgamma(v / 2.0) -
                    0.5 * std::log(v * M_PI) -
                    (v + 1.0) / 2.0 * std::log1p(x * x / v);
  return std::exp(ln);
}

double StudentT::cdf(double x) const {
  if (dof <= 0.0) throw std::domain_error("StudentT: dof > 0 required");
  const double t2 = x * x;
  const double ib = regularized_beta(dof / 2.0, 0.5, dof / (dof + t2));
  return (x > 0.0) ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double StudentT::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::domain_error("StudentT::quantile: p in (0,1)");
  }
  if (p == 0.5) return 0.0;
  const double pp = (p < 0.5) ? 2.0 * p : 2.0 * (1.0 - p);
  // Invert via I_x(dof/2, 1/2) with x = dof/(dof+t^2) -> t.
  const double x = inverse_regularized_beta(dof / 2.0, 0.5, pp);
  const double t = std::sqrt(dof * (1.0 - x) / x);
  return (p < 0.5) ? -t : t;
}

double StudentT::critical_two_sided(double alpha) const { return quantile(1.0 - alpha / 2.0); }

double ChiSquared::pdf(double x) const {
  if (x < 0.0) return 0.0;
  const double k = dof / 2.0;
  const double ln = (k - 1.0) * std::log(x) - x / 2.0 - k * std::log(2.0) - std::lgamma(k);
  return std::exp(ln);
}

double ChiSquared::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(dof / 2.0, x / 2.0);
}

double ChiSquared::quantile(double p) const {
  return 2.0 * inverse_regularized_gamma_p(dof / 2.0, p);
}

double FisherF::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_beta(dof1 / 2.0, dof2 / 2.0, dof1 * x / (dof1 * x + dof2));
}

double FisherF::quantile(double p) const {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  const double x = inverse_regularized_beta(dof1 / 2.0, dof2 / 2.0, p);
  return dof2 * x / (dof1 * (1.0 - x));
}

}  // namespace sci::stats
