// Probability distributions needed by the paper's analyses:
//   Student t  -> CIs of the mean (Section 3.1.2)
//   Normal     -> rank-based CIs of the median (Section 3.1.3, Le Boudec)
//   Chi^2      -> Kruskal-Wallis significance (Section 3.2.2)
//   Fisher F   -> one-way ANOVA significance (Section 3.2.1)
#pragma once

namespace sci::stats {

struct Normal {
  double mean = 0.0;
  double stddev = 1.0;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
};

struct StudentT {
  double dof;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  /// Quantile via inverse incomplete beta; matches t tables, e.g.
  /// t(0.975, dof=inf) = 1.96.
  [[nodiscard]] double quantile(double p) const;
  /// Two-sided critical value t(dof, alpha/2), the paper's t(n-1, a/2).
  [[nodiscard]] double critical_two_sided(double alpha) const;
};

struct ChiSquared {
  double dof;
  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
};

struct FisherF {
  double dof1;
  double dof2;
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double quantile(double p) const;
};

}  // namespace sci::stats
