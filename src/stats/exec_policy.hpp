// Execution policy for data-parallel statistics kernels.
//
// Determinism contract (the whole point of this knob): a kernel's result
// is a pure function of (data, statistic, replicates, seed, lanes).
// `threads` only changes wall-clock time -- any thread count produces
// byte-identical output for a fixed lane count, because lanes, not
// threads, own the RNG streams (each lane is an independent xoshiro256++
// stream derived from the seed by repeated jump()). `lanes` *is* part of
// the result's identity: changing it reshards replicates across streams
// and therefore changes which draws feed which replicate. The default
// policy {1, 1} reproduces the historical single-stream scalar path
// bit-for-bit.
#pragma once

#include <cstddef>

namespace sci::stats {

struct ExecPolicy {
  /// Worker threads sharding lanes; 0 and 1 both mean "run inline on the
  /// calling thread". Never affects results.
  std::size_t threads = 1;
  /// Independent RNG lanes; 0 and 1 both mean the legacy single stream.
  /// Part of the deterministic result identity (see header comment).
  std::size_t lanes = 1;

  [[nodiscard]] constexpr std::size_t effective_threads() const noexcept {
    return threads == 0 ? 1 : threads;
  }
  [[nodiscard]] constexpr std::size_t effective_lanes() const noexcept {
    return lanes == 0 ? 1 : lanes;
  }
  /// True when this policy may fan work out to a thread team.
  [[nodiscard]] constexpr bool parallel() const noexcept { return effective_threads() > 1; }
};

}  // namespace sci::stats
