#include "stats/factorial.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"

namespace sci::stats {

std::vector<std::vector<bool>> full_factorial_levels(std::size_t k) {
  if (k == 0 || k > 16) throw std::invalid_argument("full_factorial_levels: 1 <= k <= 16");
  const std::size_t n = std::size_t{1} << k;
  std::vector<std::vector<bool>> out(n, std::vector<bool>(k));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < k; ++f) out[i][f] = (i >> f) & 1;
  }
  return out;
}

namespace {

std::size_t cell_index(const std::vector<bool>& levels) {
  std::size_t idx = 0;
  for (std::size_t f = 0; f < levels.size(); ++f) {
    if (levels[f]) idx |= std::size_t{1} << f;
  }
  return idx;
}

std::string effect_name(std::size_t mask, std::size_t k) {
  std::string name;
  for (std::size_t f = 0; f < k; ++f) {
    if (mask & (std::size_t{1} << f)) name += static_cast<char>('A' + f);
  }
  return name;
}

}  // namespace

FactorialAnalysis analyze_factorial(std::vector<std::string> factor_names,
                                    std::span<const FactorialRun> runs,
                                    double confidence) {
  const std::size_t k = factor_names.size();
  if (k == 0 || k > 16) throw std::invalid_argument("analyze_factorial: 1 <= k <= 16");
  const std::size_t cells = std::size_t{1} << k;
  if (runs.size() != cells)
    throw std::invalid_argument("analyze_factorial: need exactly 2^k runs");

  // Index cells; verify completeness and uniform replication.
  std::vector<const FactorialRun*> cell(cells, nullptr);
  std::size_t r = 0;
  for (const auto& run : runs) {
    if (run.levels.size() != k)
      throw std::invalid_argument("analyze_factorial: level arity mismatch");
    if (run.responses.empty())
      throw std::invalid_argument("analyze_factorial: empty responses");
    const std::size_t idx = cell_index(run.levels);
    if (cell[idx] != nullptr)
      throw std::invalid_argument("analyze_factorial: duplicate configuration");
    cell[idx] = &run;
    if (r == 0) {
      r = run.responses.size();
    } else if (run.responses.size() != r) {
      throw std::invalid_argument("analyze_factorial: unequal replication");
    }
  }

  // Cell means and the replication (error) sum of squares.
  std::vector<double> means(cells);
  double error_ss = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    means[i] = arithmetic_mean(cell[i]->responses);
    for (double y : cell[i]->responses) error_ss += (y - means[i]) * (y - means[i]);
  }

  FactorialAnalysis out;
  out.factor_names = std::move(factor_names);
  out.replicates = r;
  out.experimental_error_ss = error_ss;

  // Effects via the sign table: contrast(mask) = sum over cells of
  // (+-1)^(parity of cell & mask) * mean(cell); estimate = contrast/2^k.
  // (The conventional "effect" is contrast / 2^(k-1); we report the
  // regression coefficient q_i = contrast / 2^k as in Jain, whose
  // variation decomposition is SS_i = 2^k * r * q_i^2.)
  const auto nd = static_cast<double>(cells);
  double total_ss = 0.0;
  const double grand = arithmetic_mean(means);
  out.grand_mean = grand;

  // Standard error of a coefficient from the replication error:
  // se^2 = s_e^2 / (2^k * r), s_e^2 = error_ss / (2^k (r - 1)).
  double se = 0.0;
  double t_crit = 0.0;
  if (r >= 2) {
    const double dof = nd * static_cast<double>(r - 1);
    const double s_e2 = error_ss / dof;
    se = std::sqrt(s_e2 / (nd * static_cast<double>(r)));
    t_crit = StudentT{dof}.critical_two_sided(1.0 - confidence);
  }

  std::vector<double> coefficients(cells, 0.0);
  for (std::size_t mask = 1; mask < cells; ++mask) {
    double contrast = 0.0;
    for (std::size_t i = 0; i < cells; ++i) {
      // Sign = product over participating factors of (+1 high / -1 low)
      // = (-1)^(popcount(mask) - popcount(i & mask)).
      const bool positive =
          (std::popcount(i & mask) % 2) == (std::popcount(mask) % 2);
      contrast += positive ? means[i] : -means[i];
    }
    coefficients[mask] = contrast / nd;
    total_ss += nd * static_cast<double>(r) * coefficients[mask] * coefficients[mask];
  }
  total_ss += error_ss;

  for (std::size_t mask = 1; mask < cells; ++mask) {
    Effect e;
    e.name = effect_name(mask, k);
    for (std::size_t f = 0; f < k; ++f) {
      if (mask & (std::size_t{1} << f)) e.factors.push_back(f);
    }
    e.estimate = coefficients[mask];
    const double ss = nd * static_cast<double>(r) * e.estimate * e.estimate;
    e.variation_explained = (total_ss > 0.0) ? ss / total_ss : 0.0;
    if (r >= 2 && se > 0.0) {
      e.ci = Interval{e.estimate - t_crit * se, e.estimate + t_crit * se, confidence};
    }
    out.effects.push_back(std::move(e));
  }
  // Order: main effects first, then by interaction order, then by name.
  std::sort(out.effects.begin(), out.effects.end(), [](const Effect& a, const Effect& b) {
    if (a.factors.size() != b.factors.size()) return a.factors.size() < b.factors.size();
    return a.name < b.name;
  });
  out.error_fraction = (total_ss > 0.0) ? error_ss / total_ss : 0.0;
  return out;
}

double FactorialAnalysis::predict(const std::vector<bool>& levels) const {
  double y = grand_mean;
  for (const auto& effect : effects) {
    int sign = 1;
    for (std::size_t f : effect.factors) sign *= levels.at(f) ? 1 : -1;
    y += sign * effect.estimate;
  }
  return y;
}

std::string FactorialAnalysis::to_string() const {
  std::ostringstream os;
  os << "2^" << factor_names.size() << " factorial design, r=" << replicates
     << " replicates, grand mean " << std::setprecision(5) << grand_mean << "\n";
  for (std::size_t f = 0; f < factor_names.size(); ++f) {
    os << "  " << static_cast<char>('A' + f) << " = " << factor_names[f] << "\n";
  }
  os << std::setw(8) << "effect" << std::setw(12) << "estimate" << std::setw(12)
     << "var.expl" << "  significance\n";
  for (const auto& e : effects) {
    os << std::setw(8) << e.name << std::setw(12) << std::setprecision(4) << e.estimate
       << std::setw(11) << std::setprecision(3) << e.variation_explained * 100.0 << "%";
    if (e.ci) {
      os << "  CI [" << e.ci->lower << ", " << e.ci->upper << "] "
         << (e.significant() ? "SIGNIFICANT" : "not significant");
    }
    os << "\n";
  }
  os << "  experimental error: " << std::setprecision(3) << error_fraction * 100.0
     << "% of variation\n";
  return os.str();
}

}  // namespace sci::stats
