// Factorial experimental design (Section 4: "We recommend factorial
// design to compare the influence of multiple factors, each at various
// different levels, on the measured performance. This allows
// experimenters to study the effect of each factor as well as
// interactions between factors.")
//
// Implements the classic 2^k full-factorial machinery (Box, Hunter &
// Hunter; Jain ch. 17): sign-table construction, main effects,
// interaction effects of every order, and allocation of variation.
// With replicated runs it also yields standard errors and t-based CIs
// for each effect, so "is this factor's influence statistically
// significant?" gets a sound answer (Rule 7).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "stats/confidence.hpp"

namespace sci::stats {

/// One measured cell of a 2^k design.
struct FactorialRun {
  /// Level of each factor: false = low (-1), true = high (+1).
  std::vector<bool> levels;
  /// Replicated responses measured at this configuration (>= 1).
  std::vector<double> responses;
};

/// An estimated effect: which factors participate (main effect = one
/// index; two-way interaction = two indices; ...).
struct Effect {
  std::vector<std::size_t> factors;  ///< indices into the factor-name list
  std::string name;                  ///< e.g. "A", "AB", "ABC"
  double estimate = 0.0;             ///< half the average high-low response change
  double variation_explained = 0.0;  ///< fraction of total sum of squares
  /// CI of the estimate; only available with replication (r >= 2).
  std::optional<Interval> ci;
  [[nodiscard]] bool significant() const noexcept {
    return ci.has_value() && !ci->contains(0.0);
  }
};

struct FactorialAnalysis {
  std::vector<std::string> factor_names;
  double grand_mean = 0.0;
  std::vector<Effect> effects;       ///< all 2^k - 1 effects, main first
  double experimental_error_ss = 0.0;  ///< replication sum of squares
  double error_fraction = 0.0;       ///< fraction of variation due to error
  std::size_t replicates = 0;

  /// Predicted response at a configuration using the full model.
  [[nodiscard]] double predict(const std::vector<bool>& levels) const;

  /// Human-readable effects table.
  [[nodiscard]] std::string to_string() const;
};

/// Analyzes a full 2^k design: `runs` must contain every one of the 2^k
/// level combinations exactly once, each with the same number r >= 1 of
/// replicated responses. `confidence` controls the effect CIs (r >= 2).
[[nodiscard]] FactorialAnalysis analyze_factorial(
    std::vector<std::string> factor_names, std::span<const FactorialRun> runs,
    double confidence = 0.95);

/// Generates the 2^k level combinations in standard (Yates) order:
/// factor 0 toggles fastest.
[[nodiscard]] std::vector<std::vector<bool>> full_factorial_levels(std::size_t k);

}  // namespace sci::stats
