#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/descriptive.hpp"

namespace sci::stats {

namespace {

/// NaN poisons every bin boundary below (NaN < lo comparisons are all
/// false, so samples land in garbage bins) and +/-inf collapses the
/// span to a single unusable bin; both are measurement-pipeline bugs
/// upstream, so reject them loudly instead of plotting nonsense.
void require_finite(std::span<const double> xs, const char* who) {
  for (double x : xs) {
    if (!std::isfinite(x)) {
      throw std::domain_error(std::string(who) + ": non-finite sample in input");
    }
  }
}

}  // namespace

Histogram make_histogram(std::span<const double> xs, std::size_t bins) {
  if (xs.empty()) throw std::invalid_argument("make_histogram: empty input");
  require_finite(xs, "make_histogram");
  const auto sorted = sorted_copy(xs);
  const double lo = sorted.front();
  const double hi = sorted.back();
  const auto n = static_cast<double>(xs.size());

  if (bins == 0) {
    const double iqr = quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
    if (iqr > 0.0 && hi > lo) {
      const double width = 2.0 * iqr / std::cbrt(n);  // Freedman-Diaconis
      bins = static_cast<std::size_t>(std::ceil((hi - lo) / width));
    } else {
      bins = static_cast<std::size_t>(std::ceil(std::log2(n))) + 1;  // Sturges
    }
    bins = std::clamp<std::size_t>(bins, 1, 512);
  }

  Histogram h;
  h.edges.resize(bins + 1);
  h.counts.assign(bins, 0);
  const double span_width = (hi > lo) ? (hi - lo) : 1.0;
  for (std::size_t i = 0; i <= bins; ++i) {
    h.edges[i] = lo + span_width * static_cast<double>(i) / static_cast<double>(bins);
  }
  for (double x : xs) {
    auto idx = static_cast<std::size_t>((x - lo) / span_width * static_cast<double>(bins));
    if (idx >= bins) idx = bins - 1;  // right edge inclusive
    ++h.counts[idx];
  }
  h.density.resize(bins);
  const double bin_width = span_width / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    h.density[i] = static_cast<double>(h.counts[i]) / (n * bin_width);
  }
  return h;
}

DensityCurve kernel_density(std::span<const double> xs, std::size_t points,
                            double bandwidth) {
  if (xs.empty()) throw std::invalid_argument("kernel_density: empty input");
  if (points < 2) throw std::invalid_argument("kernel_density: points >= 2");
  require_finite(xs, "kernel_density");

  // Thin very long series: KDE is a plot aid, O(points*n) matters at 1M.
  std::vector<double> thinned;
  std::span<const double> data = xs;
  constexpr std::size_t kMaxSamples = 100'000;
  if (xs.size() > kMaxSamples) {
    // Ceil-divide: floor (xs.size() / kMaxSamples) gives stride 1 for
    // any n in (kMaxSamples, 2*kMaxSamples), i.e. no thinning at all
    // and a reserve() the loop then blows past.
    const std::size_t stride = (xs.size() + kMaxSamples - 1) / kMaxSamples;
    thinned.reserve(kMaxSamples);
    for (std::size_t i = 0; i < xs.size(); i += stride) thinned.push_back(xs[i]);
    assert(thinned.size() <= kMaxSamples);
    data = thinned;
  }

  const auto n = static_cast<double>(data.size());
  if (bandwidth <= 0.0) {
    const double s = sample_stddev(data);
    const auto sorted = sorted_copy(data);
    const double iqr = quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
    double sigma = (iqr > 0.0) ? std::min(s, iqr / 1.349) : s;
    if (sigma <= 0.0) sigma = 1.0;
    bandwidth = 0.9 * sigma * std::pow(n, -0.2);  // Silverman
  }

  const double lo = *std::min_element(data.begin(), data.end()) - 3.0 * bandwidth;
  const double hi = *std::max_element(data.begin(), data.end()) + 3.0 * bandwidth;

  DensityCurve curve;
  curve.bandwidth = bandwidth;
  curve.x.resize(points);
  curve.density.assign(points, 0.0);
  const double inv_h = 1.0 / bandwidth;
  const double norm = 1.0 / (n * bandwidth * std::sqrt(2.0 * M_PI));
  for (std::size_t p = 0; p < points; ++p) {
    const double xp = lo + (hi - lo) * static_cast<double>(p) / static_cast<double>(points - 1);
    curve.x[p] = xp;
    double acc = 0.0;
    for (double v : data) {
      const double u = (xp - v) * inv_h;
      if (u * u < 40.0) acc += std::exp(-0.5 * u * u);  // exp underflows beyond
    }
    curve.density[p] = acc * norm;
  }
  return curve;
}

}  // namespace sci::stats
