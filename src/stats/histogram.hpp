// Histogram and kernel density estimation: the data behind the paper's
// density plots (Figures 1-3) and violin plots (Figure 7c, Rule 12).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sci::stats {

struct Histogram {
  std::vector<double> edges;   ///< size bins+1, ascending
  std::vector<std::size_t> counts;
  std::vector<double> density; ///< counts normalized so the area is 1
  [[nodiscard]] std::size_t bins() const noexcept { return counts.size(); }
};

/// Equal-width histogram. `bins == 0` selects the Freedman-Diaconis rule
/// (falling back to Sturges when the IQR vanishes).
[[nodiscard]] Histogram make_histogram(std::span<const double> xs, std::size_t bins = 0);

struct DensityCurve {
  std::vector<double> x;
  std::vector<double> density;
  double bandwidth = 0.0;
};

/// Gaussian KDE evaluated on `points` equally spaced positions spanning
/// the data range widened by 3 bandwidths. `bandwidth == 0` selects
/// Silverman's rule of thumb. Evaluation cost is O(points * n); for very
/// long series the input is thinned to <= 100k samples first.
[[nodiscard]] DensityCurve kernel_density(std::span<const double> xs,
                                          std::size_t points = 128,
                                          double bandwidth = 0.0);

}  // namespace sci::stats
