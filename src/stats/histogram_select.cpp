#include "stats/histogram_select.hpp"

#include <atomic>

namespace sci::stats {

namespace {

// Measured on the reference host (see DESIGN.md crossover table,
// bench_stats_parallel --crossover): at m = n draws per replicate the
// histogram path never lost -- 2.3x at n = 16 shrinking monotonically
// to 1.2x at n = 262144, the largest size measured. Both kernels are
// O(n) per lane; the histogram's sequential memset/fill/walk simply
// beats the partition kernel's data-dependent swaps at every size we
// can time. The default therefore covers the whole measured regime and
// falls back to partition selection beyond it rather than extrapolate.
constexpr std::size_t kDefaultCrossover = 262144;

std::atomic<std::size_t> g_crossover{kDefaultCrossover};

}  // namespace

std::size_t histogram_select_crossover() noexcept {
  return g_crossover.load(std::memory_order_relaxed);
}

void set_histogram_select_crossover(std::size_t n) noexcept {
  g_crossover.store(n, std::memory_order_relaxed);
}

double histogram_select_quantile(std::span<const std::uint32_t> row,
                                 std::span<const double> sorted,
                                 std::span<std::uint32_t> counts,
                                 const QuantilePlan& plan,
                                 const simd::Kernels& kernels) noexcept {
  const std::size_t m = row.size();
  // Extremes need no histogram at all -- a straight min/max scan of the
  // draws matches the partition path's min_of/max_of exactly.
  if (plan.mode == QuantilePlan::Mode::kMin) return sorted[min_of(row.data(), m)];
  if (plan.mode == QuantilePlan::Mode::kMax) return sorted[max_of(row.data(), m)];

  kernels.histogram_fill(row.data(), m, counts.data(), counts.size());
  if (plan.mode == QuantilePlan::Mode::kSingle) {
    return sorted[kernels.rank_select(counts.data(), counts.size(), plan.k)];
  }
  const SelectedPair pair = kernels.rank_select_pair(counts.data(), counts.size(), plan.k);
  const double a_val = sorted[pair.kth];
  const double b_val = sorted[pair.next];
  return a_val + plan.frac * (b_val - a_val);
}

}  // namespace sci::stats
