// Histogram (counting-sort) rank selection for small-n bootstrap
// resamples -- the data-parallel alternative to the partition kernels
// in selection.hpp.
//
// A quantile replicate is "k-th smallest of m ranks drawn from [0, n)".
// The partition path (select_kth / select_kth_pair) is O(m) per
// replicate but every pass chases data-dependent swaps. When n is
// small, counting wins: bump counts[rank] for each draw (O(m) stores,
// no comparisons), then walk the prefix sum to the k-th entry (O(n),
// vectorized 8 bins/step under AVX2). The fill also leaves the input
// row intact, so the engine skips the copy-into-scratch the destructive
// partition kernels force on it.
//
// Both kernels consume the same QuantilePlan and share the
// `a + frac * (b - a)` interpolation verbatim, so switching on the
// crossover never changes a byte -- pinned by differential tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "stats/selection.hpp"  // QuantilePlan
#include "stats/simd_dispatch.hpp"

namespace sci::stats {

/// Largest sample size n for which the engine prefers histogram
/// selection over partition selection. Default chosen by measurement
/// (bench_stats_parallel --crossover; table in DESIGN.md). 0 disables
/// the histogram path entirely.
[[nodiscard]] std::size_t histogram_select_crossover() noexcept;

/// Test/bench override for the crossover. Affects speed only, never
/// bytes.
void set_histogram_select_crossover(std::size_t n) noexcept;

/// p-quantile (per `plan`) of the resample whose sorted-sample ranks
/// are in `row`. `counts` is caller-owned scratch with
/// counts.size() == sorted.size(); all ranks must be < sorted.size().
/// Unlike selection_quantile, `row` is left intact.
[[nodiscard]] double histogram_select_quantile(std::span<const std::uint32_t> row,
                                               std::span<const double> sorted,
                                               std::span<std::uint32_t> counts,
                                               const QuantilePlan& plan,
                                               const simd::Kernels& kernels) noexcept;

}  // namespace sci::stats
