#include "stats/independence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/special_functions.hpp"

namespace sci::stats {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (n < 2) throw std::invalid_argument("autocorrelation: need n >= 2");
  if (lag >= n) throw std::invalid_argument("autocorrelation: lag < n required");
  if (lag == 0) return 1.0;
  const double mean = arithmetic_mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    den += (xs[i] - mean) * (xs[i] - mean);
    if (i + lag < n) num += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  if (den == 0.0) return 0.0;  // constant series: no signal either way
  return num / den;
}

TestResult ljung_box(std::span<const double> xs, std::size_t max_lag) {
  const std::size_t n = xs.size();
  if (max_lag == 0) throw std::invalid_argument("ljung_box: max_lag >= 1");
  if (n < max_lag + 2) throw std::invalid_argument("ljung_box: series too short");
  const auto nd = static_cast<double>(n);
  double q = 0.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    const double rho = autocorrelation(xs, k);
    q += rho * rho / (nd - static_cast<double>(k));
  }
  q *= nd * (nd + 2.0);
  const ChiSquared chi2{static_cast<double>(max_lag)};
  return {q, 1.0 - chi2.cdf(q)};
}

TestResult runs_test(std::span<const double> xs) {
  if (xs.size() < 10) throw std::invalid_argument("runs_test: need n >= 10");
  const double med = median(xs);
  std::vector<int> signs;
  signs.reserve(xs.size());
  for (double x : xs) {
    if (x > med) signs.push_back(1);
    if (x < med) signs.push_back(-1);  // ties dropped
  }
  const std::size_t m = signs.size();
  if (m < 10) throw std::invalid_argument("runs_test: too many values equal the median");

  std::size_t runs = 1, n_pos = (signs[0] > 0), n_neg = (signs[0] < 0);
  for (std::size_t i = 1; i < m; ++i) {
    if (signs[i] != signs[i - 1]) ++runs;
    (signs[i] > 0 ? n_pos : n_neg) += 1;
  }
  const auto n1 = static_cast<double>(n_pos);
  const auto n2 = static_cast<double>(n_neg);
  if (n1 == 0.0 || n2 == 0.0) return {static_cast<double>(runs), 1.0};
  const double mu = 2.0 * n1 * n2 / (n1 + n2) + 1.0;
  const double var = 2.0 * n1 * n2 * (2.0 * n1 * n2 - n1 - n2) /
                     ((n1 + n2) * (n1 + n2) * (n1 + n2 - 1.0));
  if (var <= 0.0) return {static_cast<double>(runs), 1.0};
  const double z = (static_cast<double>(runs) - mu) / std::sqrt(var);
  const double p = 2.0 * (1.0 - normal_cdf(std::fabs(z)));
  return {static_cast<double>(runs), std::clamp(p, 0.0, 1.0)};
}

double effective_sample_size(std::span<const double> xs, std::size_t max_lag) {
  const std::size_t n = xs.size();
  if (n < 4) throw std::invalid_argument("effective_sample_size: need n >= 4");
  double tau = 1.0;  // integrated autocorrelation time
  const std::size_t limit = std::min(max_lag, n - 1);
  for (std::size_t k = 1; k <= limit; ++k) {
    const double rho = autocorrelation(xs, k);
    if (rho <= 0.0) break;  // initial positive sequence truncation
    tau += 2.0 * rho;
  }
  return std::clamp(static_cast<double>(n) / tau, 1.0, static_cast<double>(n));
}

}  // namespace sci::stats
