// Independence diagnostics. Both the parametric and the rank-based CIs
// of Section 3.1 "require independent and identically distributed (iid)
// measurements" -- an assumption benchmark loops violate easily (cache
// warm-up trends, interference bursts, throttling). These checks make
// the assumption testable instead of silent:
//
//   autocorrelation     sample ACF at a given lag
//   Ljung-Box           portmanteau test: any correlation up to lag L?
//   Wald-Wolfowitz runs distribution-free randomness test around the median
//   effective sample size  n_eff <= n under AR-like correlation; CIs
//                       computed from n when n_eff << n are overconfident
#pragma once

#include <cstddef>
#include <span>

#include "stats/normality.hpp"  // TestResult

namespace sci::stats {

/// Sample autocorrelation at `lag` (biased estimator, as in Box-Jenkins).
[[nodiscard]] double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Ljung-Box portmanteau test over lags 1..max_lag; null hypothesis:
/// the series is uncorrelated (consistent with iid). chi^2(max_lag).
[[nodiscard]] TestResult ljung_box(std::span<const double> xs, std::size_t max_lag = 10);

/// Wald-Wolfowitz runs test around the median; null: random order.
/// Two-sided normal approximation. Values equal to the median are
/// dropped (standard treatment).
[[nodiscard]] TestResult runs_test(std::span<const double> xs);

/// Effective sample size n / (1 + 2 sum_{k=1..K} rho_k) with the sum
/// truncated at the first non-positive autocorrelation (Geyer's initial
/// positive sequence, simplified). Bounded to [1, n].
[[nodiscard]] double effective_sample_size(std::span<const double> xs,
                                           std::size_t max_lag = 100);

}  // namespace sci::stats
