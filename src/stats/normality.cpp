#include "stats/normality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/special_functions.hpp"

namespace sci::stats {
namespace {

double poly(std::span<const double> coeffs, double x) {
  // coeffs[0] + coeffs[1] x + coeffs[2] x^2 + ...
  double result = 0.0;
  for (std::size_t i = coeffs.size(); i > 0; --i) result = result * x + coeffs[i - 1];
  return result;
}

}  // namespace

TestResult shapiro_wilk(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 3) throw std::invalid_argument("shapiro_wilk: need n >= 3");
  if (n > 5000) throw std::invalid_argument("shapiro_wilk: n <= 5000 (subsample larger series)");

  const auto x = sorted_copy(xs);
  if (x.front() == x.back()) throw std::invalid_argument("shapiro_wilk: zero range");

  // Expected normal order statistics m_i (Blom approximation), then the
  // Shapiro-Wilk weights a_i per Royston (1992, 1995), AS R94.
  const auto nd = static_cast<double>(n);
  std::vector<double> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = inverse_normal_cdf((static_cast<double>(i + 1) - 0.375) / (nd + 0.25));
  }
  double ssq_m = 0.0;
  for (double v : m) ssq_m += v * v;

  std::vector<double> a(n);
  const double rsn = 1.0 / std::sqrt(nd);
  if (n == 3) {
    a[0] = -std::sqrt(0.5);
    a[1] = 0.0;
    a[2] = std::sqrt(0.5);
  } else {
    // Royston's polynomial corrections for the two extreme weights.
    static constexpr double c1[] = {0.0, 0.221157, -0.147981, -2.071190, 4.434685, -2.706056};
    static constexpr double c2[] = {0.0, 0.042981, -0.293762, -1.752461, 5.682633, -3.582633};
    const double norm = std::sqrt(ssq_m);
    const double an = m[n - 1] / norm + poly(c1, rsn);
    a[n - 1] = an;
    a[0] = -an;
    std::size_t i1 = 1;
    double phi;
    if (n > 5) {
      const double an1 = m[n - 2] / norm + poly(c2, rsn);
      a[n - 2] = an1;
      a[1] = -an1;
      i1 = 2;
      phi = (ssq_m - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2]) /
            (1.0 - 2.0 * an * an - 2.0 * an1 * an1);
    } else {
      phi = (ssq_m - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * an * an);
    }
    const double sqrt_phi = std::sqrt(phi);
    for (std::size_t i = i1; i < n - i1; ++i) a[i] = m[i] / sqrt_phi;
  }

  // W = (sum a_i x_(i))^2 / sum (x_i - mean)^2.
  const double mean = arithmetic_mean(x);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += a[i] * x[i];
    den += (x[i] - mean) * (x[i] - mean);
  }
  const double w = num * num / den;

  // p-value via Royston's normalizing transformation of 1 - W.
  double p_value;
  if (n == 3) {
    constexpr double pi6 = 1.90985931710274;   // 6/pi
    constexpr double stqr = 1.04719755119660;  // asin(sqrt(3/4))
    p_value = pi6 * (std::asin(std::sqrt(w)) - stqr);
    p_value = std::clamp(p_value, 0.0, 1.0);
  } else {
    const double lw = std::log(1.0 - w);
    double mu, sigma;
    if (n <= 11) {
      const double g = -2.273 + 0.459 * nd;
      mu = 0.5440 - 0.39978 * nd + 0.025054 * nd * nd - 0.0006714 * nd * nd * nd;
      sigma = std::exp(1.3822 - 0.77857 * nd + 0.062767 * nd * nd - 0.0020322 * nd * nd * nd);
      const double z = (-std::log(g - lw) - mu) / sigma;
      p_value = 1.0 - normal_cdf(z);
    } else {
      const double ln = std::log(nd);
      mu = -1.5861 - 0.31082 * ln - 0.083751 * ln * ln + 0.0038915 * ln * ln * ln;
      sigma = std::exp(-0.4803 - 0.082676 * ln + 0.0030302 * ln * ln);
      const double z = (lw - mu) / sigma;
      p_value = 1.0 - normal_cdf(z);
    }
  }
  return {w, p_value};
}

TestResult anderson_darling(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 8) throw std::invalid_argument("anderson_darling: need n >= 8");
  const auto x = sorted_copy(xs);
  const double mean = arithmetic_mean(x);
  const double s = sample_stddev(x);
  if (s == 0.0) throw std::invalid_argument("anderson_darling: zero variance");

  const auto nd = static_cast<double>(n);
  double a2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double zi = normal_cdf((x[i] - mean) / s);
    const double zni = normal_cdf((x[n - 1 - i] - mean) / s);
    // Clamp away from {0,1}: extreme observations would otherwise produce
    // log(0) with heavy-tailed data.
    const double fi = std::clamp(zi, 1e-15, 1.0 - 1e-15);
    const double fni = std::clamp(zni, 1e-15, 1.0 - 1e-15);
    a2 += (2.0 * static_cast<double>(i + 1) - 1.0) * (std::log(fi) + std::log1p(-fni));
  }
  a2 = -nd - a2 / nd;
  // Case-3 small-sample correction (mean and variance estimated).
  const double a2_star = a2 * (1.0 + 0.75 / nd + 2.25 / (nd * nd));

  // D'Agostino & Stephens Table 4.9 p-value approximation.
  double p;
  if (a2_star >= 0.6) {
    p = std::exp(1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star);
  } else if (a2_star >= 0.34) {
    p = std::exp(0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star);
  } else if (a2_star >= 0.2) {
    p = 1.0 - std::exp(-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star);
  } else {
    p = 1.0 - std::exp(-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star);
  }
  return {a2_star, std::clamp(p, 0.0, 1.0)};
}

TestResult jarque_bera(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 8) throw std::invalid_argument("jarque_bera: need n >= 8");
  const double g1 = skewness(xs);
  const double g2 = excess_kurtosis(xs);
  const auto nd = static_cast<double>(n);
  const double jb = nd / 6.0 * (g1 * g1 + g2 * g2 / 4.0);
  const ChiSquared chi2{2.0};
  return {jb, 1.0 - chi2.cdf(jb)};
}

std::vector<QQPoint> qq_normal(std::span<const double> xs, std::size_t max_points) {
  if (xs.empty()) throw std::invalid_argument("qq_normal: empty input");
  const auto sorted = sorted_copy(xs);
  const std::size_t n = sorted.size();
  const auto nd = static_cast<double>(n);
  const std::size_t points = std::min(n, max_points);
  std::vector<QQPoint> out;
  out.reserve(points);
  for (std::size_t k = 0; k < points; ++k) {
    // Even thinning over the order statistics.
    const std::size_t i =
        (points == n) ? k : (k * (n - 1)) / (points - 1 == 0 ? 1 : points - 1);
    const double pos = (static_cast<double>(i + 1) - 0.375) / (nd + 0.25);
    out.push_back({inverse_normal_cdf(pos), sorted[i]});
  }
  return out;
}

double qq_correlation(std::span<const double> xs) {
  const auto sorted = sorted_copy(xs);
  const std::size_t n = sorted.size();
  if (n < 3) throw std::invalid_argument("qq_correlation: need n >= 3");
  const auto nd = static_cast<double>(n);
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = inverse_normal_cdf((static_cast<double>(i + 1) - 0.375) / (nd + 0.25));
    const double y = sorted[i];
    sx += t;
    sy += y;
    sxx += t * t;
    syy += y * y;
    sxy += t * y;
  }
  const double cov = sxy - sx * sy / nd;
  const double vx = sxx - sx * sx / nd;
  const double vy = syy - sy * sy / nd;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace sci::stats
