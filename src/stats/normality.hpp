// Normality diagnostics (Rule 6: "Do not assume normality of collected
// data without diagnostic checking").
//
//  - Shapiro-Wilk (Royston's AS R94 approximation): the paper cites
//    Razali & Wah showing it is the most powerful of the common tests.
//  - Anderson-Darling with case-3 (estimated parameters) correction.
//  - Jarque-Bera moment test (cheap large-n screen).
//  - Q-Q plot data + the straight-line correlation diagnostic the paper
//    recommends for visually confirming test outcomes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sci::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 0.0;
  /// Convenience: reject normality at significance alpha?
  [[nodiscard]] bool reject(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

/// Shapiro-Wilk W test. Valid for 3 <= n <= 5000; larger samples throw
/// (the paper warns the test "may be misleading for large sample sizes";
/// subsample or use block means instead).
[[nodiscard]] TestResult shapiro_wilk(std::span<const double> xs);

/// Anderson-Darling A^2* test for normality with estimated mean/stddev
/// (Stephens' case 3), p-value per D'Agostino & Stephens (1986).
[[nodiscard]] TestResult anderson_darling(std::span<const double> xs);

/// Jarque-Bera skewness/kurtosis test; chi^2(2) asymptotics.
[[nodiscard]] TestResult jarque_bera(std::span<const double> xs);

/// One point of a normal Q-Q plot.
struct QQPoint {
  double theoretical = 0.0;  ///< standard normal quantile
  double sample = 0.0;       ///< observed order statistic
};

/// Normal Q-Q plot data: sample order statistics against standard normal
/// quantiles at plotting positions (i - 0.375) / (n + 0.25) (Blom).
/// For n > max_points the sample is thinned evenly (plots do not need
/// 1M points; statistics elsewhere always use the full series).
[[nodiscard]] std::vector<QQPoint> qq_normal(std::span<const double> xs,
                                             std::size_t max_points = 512);

/// Pearson correlation of the Q-Q relation; ~1 for normal data. This is
/// the probability-plot correlation coefficient (PPCC) diagnostic.
[[nodiscard]] double qq_correlation(std::span<const double> xs);

}  // namespace sci::stats
