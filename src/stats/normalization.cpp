#include "stats/normalization.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/normality.hpp"

namespace sci::stats {

std::vector<double> log_transform(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (x <= 0.0) throw std::domain_error("log_transform: requires positive values");
    out.push_back(std::log(x));
  }
  return out;
}

std::vector<double> block_means(std::span<const double> xs, std::size_t k) {
  if (k == 0) throw std::domain_error("block_means: k >= 1");
  const std::size_t blocks = xs.size() / k;
  std::vector<double> out;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    out.push_back(arithmetic_mean(xs.subspan(b * k, k)));
  }
  return out;
}

double log_average(std::span<const double> xs) { return geometric_mean(xs); }

std::size_t find_normalizing_block_size(std::span<const double> xs,
                                        std::span<const std::size_t> candidates,
                                        double alpha) {
  for (std::size_t k : candidates) {
    auto means = block_means(xs, k);
    if (means.size() < 8) continue;  // too few blocks to judge
    // Shapiro-Wilk caps at n=5000; thin evenly if needed.
    std::vector<double> test_data;
    if (means.size() > 5000) {
      test_data.reserve(5000);
      const std::size_t stride = means.size() / 5000 + 1;
      for (std::size_t i = 0; i < means.size(); i += stride) test_data.push_back(means[i]);
    } else {
      test_data = std::move(means);
    }
    if (!shapiro_wilk(test_data).reject(alpha)) return k;
  }
  return 0;
}

}  // namespace sci::stats
