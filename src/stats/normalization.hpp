// Normalization strategies for non-normal measurement data (Section
// 3.1.2, demonstrated by the paper's Figure 2 on 1M ping-pong samples):
//
//  - log-normalization: right-skewed, always-positive timings often
//    follow a log-normal law; ln(x) then behaves normally and the
//    log-average equals the geometric mean;
//  - block normalization: averaging blocks of k observations approaches
//    normality by the CLT at the cost of per-observation resolution.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sci::stats {

/// Element-wise natural log. Throws on non-positive input.
[[nodiscard]] std::vector<double> log_transform(std::span<const double> xs);

/// Means of consecutive disjoint blocks of length k; a trailing partial
/// block is discarded (it would have different variance).
[[nodiscard]] std::vector<double> block_means(std::span<const double> xs, std::size_t k);

/// Log-average = exp(mean(ln x)) = geometric mean (Section 3.1.2).
[[nodiscard]] double log_average(std::span<const double> xs);

/// Searches the smallest block size from `candidates` whose block means
/// pass Shapiro-Wilk at `alpha` (subsampled to <= 5000 for the test).
/// Returns 0 if none passes -- the caller should fall back to
/// nonparametric statistics, as the paper recommends.
[[nodiscard]] std::size_t find_normalizing_block_size(std::span<const double> xs,
                                                      std::span<const std::size_t> candidates,
                                                      double alpha = 0.05);

}  // namespace sci::stats
