#include "stats/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sci::stats {

OnlineSeries::OnlineSeries(std::size_t max_lag) : max_lag_(max_lag) {
  if (max_lag_ == 0) throw std::invalid_argument("OnlineSeries: max_lag >= 1");
  ring_.assign(max_lag_, 0.0);
  lag_products_.assign(max_lag_, 0.0);
  first_.reserve(max_lag_);
}

void OnlineSeries::add(double x) {
  const std::size_t n = moments_.count();  // samples seen before this one
  // x is x_{n+1} (1-based); pair it with the trailing window for the
  // lag products sum_i x_i * x_{i+k}: partner at lag k is x_{n+1-k}.
  const std::size_t pairs = std::min(max_lag_, n);
  for (std::size_t k = 1; k <= pairs; ++k) {
    lag_products_[k - 1] += x * ring_[(n - k) % max_lag_];
  }
  ring_[n % max_lag_] = x;
  if (first_.size() < max_lag_) first_.push_back(x);
  sum_ += x;
  moments_.add(x);
  pending_.push_back(x);
}

void OnlineSeries::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void OnlineSeries::flush_pending() const {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end());
  const std::size_t old = sorted_.size();
  sorted_.insert(sorted_.end(), pending_.begin(), pending_.end());
  std::inplace_merge(sorted_.begin(), sorted_.begin() + static_cast<std::ptrdiff_t>(old),
                     sorted_.end());
  pending_.clear();
}

std::span<const double> OnlineSeries::sorted() const {
  flush_pending();
  return sorted_;
}

double OnlineSeries::quantile(double p, QuantileMethod method) const {
  return quantile_sorted(sorted(), p, method);
}

Interval OnlineSeries::quantile_ci(double p, double confidence) const {
  return quantile_confidence_interval_sorted(sorted(), p, confidence);
}

double OnlineSeries::relative_ci_half_width(double p, double confidence) const {
  if (count() < 6) return std::numeric_limits<double>::infinity();
  const std::span<const double> view = sorted();
  const Interval ci = quantile_confidence_interval_sorted(view, p, confidence);
  const double center = quantile_sorted(view, p);
  if (center == 0.0)
    return ci.width() == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  const double half = std::max(ci.upper - center, center - ci.lower);
  return half / std::fabs(center);
}

bool OnlineSeries::quantile_converged(double p, double relative_error,
                                      double confidence) const {
  if (count() < 6) return false;
  const std::span<const double> view = sorted();
  const Interval ci = quantile_confidence_interval_sorted(view, p, confidence);
  const double center = quantile_sorted(view, p);
  if (center == 0.0) return ci.width() == 0.0;
  return ci.lower >= center * (1.0 - relative_error) &&
         ci.upper <= center * (1.0 + relative_error);
}

double OnlineSeries::autocorrelation(std::size_t lag) const {
  const std::size_t n = count();
  if (n < 2) throw std::invalid_argument("OnlineSeries::autocorrelation: need n >= 2");
  if (lag == 0) return 1.0;
  if (lag >= n) throw std::invalid_argument("OnlineSeries::autocorrelation: lag < n");
  if (lag > max_lag_)
    throw std::invalid_argument("OnlineSeries::autocorrelation: lag > max_lag");
  const double m = sum_ / static_cast<double>(n);
  // Edge sums: F = sum of the first `lag` samples, T = of the last.
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < lag; ++i) head += first_[i];
  for (std::size_t k = 1; k <= lag; ++k) tail += ring_[(n - k) % max_lag_];
  // sum_{i=1..n-lag} (x_i - m)(x_{i+lag} - m) expanded around the raw
  // cross products: pairs exclude the last `lag` left factors and the
  // first `lag` right factors.
  const double num = lag_products_[lag - 1] - m * (sum_ - head) - m * (sum_ - tail) +
                     static_cast<double>(n - lag) * m * m;
  // Denominator sum (x - m)^2: Welford's M2 (same quantity, stable).
  const double den = moments_.variance() * static_cast<double>(n - 1);
  if (den == 0.0) return 0.0;  // constant series: no signal either way
  return num / den;
}

double OnlineSeries::effective_sample_size() const {
  const std::size_t n = count();
  if (n < 2) return static_cast<double>(n);
  double tau = 1.0;  // integrated autocorrelation time
  const std::size_t limit = std::min(max_lag_, n - 1);
  for (std::size_t k = 1; k <= limit; ++k) {
    const double rho = autocorrelation(k);
    if (rho <= 0.0) break;  // initial positive sequence truncation
    tau += 2.0 * rho;
  }
  const double ess = static_cast<double>(n) / tau;
  return std::clamp(ess, 1.0, static_cast<double>(n));
}

}  // namespace sci::stats
