// Online accumulators for sequential measurement control (Rules 9/10
// made adaptive). One OnlineSeries per measured cell is enough to
// decide "keep sampling or stop": it maintains, incrementally,
//
//   - Welford mean/variance (via OnlineMoments),
//   - the nonparametric rank CI of any quantile over *all* samples seen
//     so far (new samples are buffered and merged into a sorted view
//     lazily, so adding is O(1) and each CI evaluation costs
//     O(pending log pending + n) instead of a full re-sort),
//   - lag-k autocorrelation for k = 1..max_lag from O(max_lag) state
//     (ring buffer of the trailing window plus running lag products),
//     giving an effective sample size without retaining the series.
//
// The CI and quantile values are computed from the same sorted data the
// batch functions in confidence.hpp/descriptive.hpp would see, so they
// are bit-identical to the batch results -- pinned by differential
// tests. That property is what lets core::measure_adaptive and the
// campaign runner's sequential stopping share this type without
// changing any previously published numbers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/descriptive.hpp"

namespace sci::stats {

class OnlineSeries {
 public:
  /// `max_lag` bounds the autocorrelation window used for the
  /// effective-sample-size estimate (and the trailing-state memory).
  explicit OnlineSeries(std::size_t max_lag = 32);

  void add(double x);
  void add(std::span<const double> xs);

  [[nodiscard]] std::size_t count() const noexcept { return moments_.count(); }
  [[nodiscard]] double mean() const noexcept { return moments_.mean(); }
  [[nodiscard]] double variance() const noexcept { return moments_.variance(); }
  [[nodiscard]] double stddev() const noexcept { return moments_.stddev(); }
  [[nodiscard]] double min() const noexcept { return moments_.min(); }
  [[nodiscard]] double max() const noexcept { return moments_.max(); }
  [[nodiscard]] const OnlineMoments& moments() const noexcept { return moments_; }

  /// p-quantile over all samples seen so far; identical to
  /// stats::quantile over the same data.
  [[nodiscard]] double quantile(double p,
                                QuantileMethod method = QuantileMethod::kR7Linear) const;

  /// Nonparametric rank CI of the p-quantile over all samples seen so
  /// far; identical to stats::quantile_confidence_interval. Requires
  /// n > 5 for meaningful output, like the batch function.
  [[nodiscard]] Interval quantile_ci(double p, double confidence = 0.95) const;

  /// Relative CI half-width of the p-quantile:
  /// max(upper - q, q - lower) / |q|. Returns +inf when n <= 5 (CI not
  /// meaningful yet) or when q == 0 with a nonzero-width interval;
  /// returns 0 for a zero-width interval about q == 0.
  [[nodiscard]] double relative_ci_half_width(double p, double confidence = 0.95) const;

  /// Mirrors stats::quantile_ci_converged over all samples seen so far
  /// (bit-identical decision).
  [[nodiscard]] bool quantile_converged(double p, double relative_error,
                                        double confidence = 0.95) const;

  /// Lag-k autocorrelation (biased Box-Jenkins estimator, matching
  /// stats::autocorrelation up to final-mean centering roundoff).
  /// Requires 1 <= lag <= min(max_lag, n-1).
  [[nodiscard]] double autocorrelation(std::size_t lag) const;

  /// Effective sample size n / (1 + 2 sum rho_k) with Geyer's
  /// initial-positive-sequence truncation, over lags 1..max_lag.
  /// Bounded to [1, n]; returns n for n < 2.
  [[nodiscard]] double effective_sample_size() const;

  /// Sorted view of everything seen so far (merges the pending buffer
  /// first). Valid until the next add().
  [[nodiscard]] std::span<const double> sorted() const;

 private:
  void flush_pending() const;

  std::size_t max_lag_;
  OnlineMoments moments_;
  double sum_ = 0.0;               ///< exact running sum (for ACF centering)
  std::vector<double> first_;      ///< first max_lag_ samples, in order
  std::vector<double> ring_;       ///< trailing max_lag_ samples (ring buffer)
  std::vector<double> lag_products_;  ///< sum_i x_i * x_{i+k}, k = 1..max_lag_
  mutable std::vector<double> sorted_;   ///< merged sorted samples
  mutable std::vector<double> pending_;  ///< samples not yet merged into sorted_
};

}  // namespace sci::stats
