#include "stats/outliers.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace sci::stats {

TukeyFences tukey_fences(std::span<const double> xs, double constant) {
  if (xs.empty()) throw std::invalid_argument("tukey_fences: empty input");
  const auto sorted = sorted_copy(xs);
  return tukey_fences_sorted(sorted, constant);
}

TukeyFences tukey_fences_sorted(std::span<const double> sorted, double constant) {
  if (sorted.empty()) throw std::invalid_argument("tukey_fences: empty input");
  if (constant <= 0.0) throw std::domain_error("tukey_fences: constant > 0");
  const double q1 = quantile_sorted(sorted, 0.25);
  const double q3 = quantile_sorted(sorted, 0.75);
  const double iqr = q3 - q1;
  return {q1 - constant * iqr, q3 + constant * iqr};
}

OutlierFilterResult remove_outliers_tukey(std::span<const double> xs, double constant) {
  OutlierFilterResult result;
  result.fences = tukey_fences(xs, constant);
  result.kept.reserve(xs.size());
  for (double x : xs) {
    if (x < result.fences.lower) {
      ++result.removed_low;
    } else if (x > result.fences.upper) {
      ++result.removed_high;
    } else {
      result.kept.push_back(x);
    }
  }
  return result;
}

}  // namespace sci::stats
