// Outlier handling ("On Removing Outliers", Section 3.1.3).
//
// The paper's position: avoid removal, prefer robust rank statistics.
// When the mean is required, use Tukey's fences and *always report the
// number of removed observations* -- the API returns that count so
// callers cannot silently drop it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sci::stats {

struct TukeyFences {
  double lower = 0.0;
  double upper = 0.0;
};

/// Tukey fences [q1 - c*IQR, q3 + c*IQR]; the conventional constant is
/// c = 1.5, larger values are more conservative.
[[nodiscard]] TukeyFences tukey_fences(std::span<const double> xs, double constant = 1.5);

/// Fences for data already sorted ascending (no copy, no sort). Callers
/// that computed other rank statistics from the same sorted series pair
/// this with quantile_sorted() -- the PR 3 sort-once convention.
[[nodiscard]] TukeyFences tukey_fences_sorted(std::span<const double> sorted,
                                              double constant = 1.5);

struct OutlierFilterResult {
  std::vector<double> kept;
  std::size_t removed_low = 0;
  std::size_t removed_high = 0;
  TukeyFences fences;
  [[nodiscard]] std::size_t removed() const noexcept { return removed_low + removed_high; }
};

/// Filters observations outside the Tukey fences.
[[nodiscard]] OutlierFilterResult remove_outliers_tukey(std::span<const double> xs,
                                                        double constant = 1.5);

}  // namespace sci::stats
