#include "stats/parallel.hpp"

#include <map>
#include <mutex>

#include "threads/team.hpp"

namespace sci::stats {

std::shared_ptr<threads::ThreadTeam> shared_team(std::size_t size) {
  static std::mutex mutex;
  static std::map<std::size_t, std::weak_ptr<threads::ThreadTeam>> pool;
  const std::lock_guard lock(mutex);
  auto& slot = pool[size];
  if (auto team = slot.lock()) return team;
  auto team = std::make_shared<threads::ThreadTeam>(size);
  slot = team;
  return team;
}

void policy_partition(const ExecPolicy& policy, std::size_t count,
                      const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::min(policy.effective_threads(), count);
  if (workers <= 1) {
    body(0, 0, count);
    return;
  }
  const auto team = shared_team(workers);
  team->run([&](std::size_t worker) {
    const std::size_t lo = worker * count / workers;
    const std::size_t hi = (worker + 1) * count / workers;
    if (lo < hi) body(worker, lo, hi);
  });
}

}  // namespace sci::stats
