// Process-wide ThreadTeam pooling for ExecPolicy consumers.
//
// Spawning a thread costs more than most grouped-CI workloads, so teams
// are shared: one live team per size, handed out as shared_ptr and torn
// down when the last holder releases it. Everything here is
// coarse-grained fan-out plumbing; the deterministic fine-grained lane
// sharding lives in BootstrapEngine.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "stats/exec_policy.hpp"

namespace sci::threads {
class ThreadTeam;
}

namespace sci::stats {

/// The pooled team of `size` workers (size >= 2). Creates it on first
/// use; concurrent callers of the same size share one team.
[[nodiscard]] std::shared_ptr<threads::ThreadTeam> shared_team(std::size_t size);

/// Runs body(worker, lo, hi) over a static contiguous partition of
/// [0, count): worker w gets [w*count/W, (w+1)*count/W). Inline on the
/// calling thread (single call, worker 0) when the policy is serial or
/// count <= 1; otherwise fans out over min(threads, count) pooled
/// workers. Exceptions from workers propagate (first one wins).
void policy_partition(const ExecPolicy& policy, std::size_t count,
                      const std::function<void(std::size_t worker, std::size_t lo,
                                               std::size_t hi)>& body);

}  // namespace sci::stats
