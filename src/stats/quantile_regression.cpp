#include "stats/quantile_regression.hpp"

#include <cmath>
#include <stdexcept>

#include "lp/simplex.hpp"
#include "rng/distributions.hpp"
#include "rng/lanes.hpp"
#include "stats/descriptive.hpp"
#include "stats/parallel.hpp"

namespace sci::stats {
namespace {

// LP formulation: variables [b+ (k+1), b- (k+1), u+ (n), u- (n)], all >= 0.
//   minimize  tau * sum u+  +  (1 - tau) * sum u-
//   s.t.      X (b+ - b-) + u+ - u- = y          (n equality rows)
QuantRegResult solve_one(std::span<const double> y,
                         std::span<const std::vector<double>> design, double tau) {
  const std::size_t n = y.size();
  if (n == 0) throw std::invalid_argument("quantile_regression: empty response");
  if (tau <= 0.0 || tau >= 1.0) throw std::domain_error("quantile_regression: tau in (0,1)");
  const std::size_t k = design.empty() ? 0 : design.front().size();
  for (const auto& row : design) {
    if (row.size() != k) throw std::invalid_argument("quantile_regression: ragged design");
  }
  if (!design.empty() && design.size() != n)
    throw std::invalid_argument("quantile_regression: design/response size mismatch");

  const std::size_t p = k + 1;  // + intercept
  const std::size_t cols = 2 * p + 2 * n;
  lp::Problem prob(n, cols);

  for (std::size_t i = 0; i < n; ++i) {
    prob.set_coefficient(i, 0, 1.0);       // intercept b0+
    prob.set_coefficient(i, p, -1.0);      // intercept b0-
    for (std::size_t j = 0; j < k; ++j) {
      prob.set_coefficient(i, 1 + j, design[i][j]);
      prob.set_coefficient(i, p + 1 + j, -design[i][j]);
    }
    prob.set_coefficient(i, 2 * p + i, 1.0);       // u+
    prob.set_coefficient(i, 2 * p + n + i, -1.0);  // u-
    prob.set_rhs(i, y[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    prob.set_objective(2 * p + i, tau);
    prob.set_objective(2 * p + n + i, 1.0 - tau);
  }

  const lp::Solution sol = prob.solve();
  QuantRegResult out;
  out.tau = tau;
  out.converged = (sol.status == lp::Status::kOptimal);
  if (!out.converged) return out;
  out.objective = sol.objective;
  out.coefficients.resize(p);
  for (std::size_t j = 0; j < p; ++j) out.coefficients[j] = sol.x[j] - sol.x[p + j];
  return out;
}

}  // namespace

QuantRegResult quantile_regression(std::span<const double> y,
                                   std::span<const std::vector<double>> design,
                                   double tau) {
  return solve_one(y, design, tau);
}

std::vector<QuantRegResult> quantile_regression_sweep(
    std::span<const double> y, std::span<const std::vector<double>> design,
    std::span<const double> taus) {
  std::vector<QuantRegResult> out;
  out.reserve(taus.size());
  for (double tau : taus) out.push_back(solve_one(y, design, tau));
  return out;
}

QuantRegCI quantile_regression_bootstrap_ci(std::span<const double> y,
                                            std::span<const std::vector<double>> design,
                                            double tau, std::size_t replicates,
                                            double confidence, std::uint64_t seed,
                                            const ExecPolicy& policy) {
  const std::size_t n = y.size();
  const std::size_t p = (design.empty() ? 0 : design.front().size()) + 1;

  // Lane l refits the contiguous replicate block [l*base + min(l, rem),
  // ...) using Xoshiro256(seed) jumped l times -- the same sharding
  // contract as BootstrapEngine, so CIs depend on `lanes` but never on
  // `threads`, and lanes = 1 is the historical single-stream sequence.
  const std::size_t lanes = std::min(policy.effective_lanes(),
                                     std::max<std::size_t>(replicates, 1));
  rng::LaneRng lane_rng;
  lane_rng.reset(seed, lanes);
  const std::size_t base = replicates / lanes;
  const std::size_t rem = replicates % lanes;

  // fits[rep]: coefficient vector of replicate rep, empty if the refit
  // failed to converge. Indexed by global replicate so the later scan
  // reproduces the exact legacy push order.
  std::vector<std::vector<double>> fits(replicates);
  policy_partition(ExecPolicy{policy.effective_threads(), 1}, lanes,
                   [&](std::size_t, std::size_t lane_lo, std::size_t lane_hi) {
                     std::vector<double> yb(n);
                     std::vector<std::vector<double>> xb(design.empty() ? 0 : n);
                     for (std::size_t l = lane_lo; l < lane_hi; ++l) {
                       rng::Xoshiro256 gen = lane_rng.lane(l);
                       const std::size_t start = l * base + std::min(l, rem);
                       const std::size_t len = base + (l < rem ? 1 : 0);
                       for (std::size_t rep = start; rep < start + len; ++rep) {
                         for (std::size_t i = 0; i < n; ++i) {
                           const auto idx =
                               static_cast<std::size_t>(rng::uniform_below(gen, n));
                           yb[i] = y[idx];
                           if (!design.empty()) xb[i] = design[idx];
                         }
                         const auto fit = solve_one(yb, xb, tau);
                         if (fit.converged) fits[rep] = fit.coefficients;
                       }
                     }
                   });

  std::vector<std::vector<double>> coef_samples(p);
  for (std::size_t rep = 0; rep < replicates; ++rep) {
    if (fits[rep].empty()) continue;
    for (std::size_t j = 0; j < p; ++j) coef_samples[j].push_back(fits[rep][j]);
  }

  QuantRegCI ci;
  ci.lower.resize(p);
  ci.upper.resize(p);
  const double alpha = 1.0 - confidence;
  for (std::size_t j = 0; j < p; ++j) {
    if (coef_samples[j].size() < 10)
      throw std::runtime_error("quantile_regression_bootstrap_ci: too few converged refits");
    const auto sorted = sorted_copy(coef_samples[j]);
    ci.lower[j] = quantile_sorted(sorted, alpha / 2.0);
    ci.upper[j] = quantile_sorted(sorted, 1.0 - alpha / 2.0);
  }
  return ci;
}

}  // namespace sci::stats
