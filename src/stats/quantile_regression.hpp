// Quantile regression (Section 3.2.3): models the effect of factors on
// arbitrary quantiles. Solved exactly as a linear program (Koenker &
// Bassett 1978) on the sci_lp simplex substrate.
//
// The paper's Figure 4 use case -- latency ~ system indicator -- is a
// one-regressor design; the general interface accepts any design matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/exec_policy.hpp"

namespace sci::stats {

struct QuantRegResult {
  bool converged = false;
  double tau = 0.5;                   ///< fitted quantile
  std::vector<double> coefficients;   ///< [intercept, beta_1, ...]
  double objective = 0.0;             ///< sum of check-function losses
};

/// Fits  Q_tau(y | x) = b0 + b1 x1 + ... + bk xk  by minimizing the
/// check loss  sum_i rho_tau(y_i - x_i' b)  via LP.
/// `design` holds the regressor rows *without* the intercept column
/// (it is added internally); pass an empty design for a pure intercept
/// model, whose solution is the tau-quantile of y.
[[nodiscard]] QuantRegResult quantile_regression(std::span<const double> y,
                                                 std::span<const std::vector<double>> design,
                                                 double tau);

/// Sweep of taus for QR plots (paper Figure 4: quantiles on the x-axis).
[[nodiscard]] std::vector<QuantRegResult> quantile_regression_sweep(
    std::span<const double> y, std::span<const std::vector<double>> design,
    std::span<const double> taus);

/// Bootstrap percentile CI half-widths for each coefficient (xy-pair
/// bootstrap, `replicates` refits on resampled data, deterministic seed).
/// Refits are sharded across `policy.lanes` RNG lanes and
/// min(policy.threads, lanes) pooled workers; results are a pure
/// function of (data, tau, replicates, seed, lanes) -- any thread count
/// produces identical CIs, and the default {1, 1} policy reproduces the
/// historical single-stream refit sequence draw for draw.
struct QuantRegCI {
  std::vector<double> lower;
  std::vector<double> upper;
};
[[nodiscard]] QuantRegCI quantile_regression_bootstrap_ci(
    std::span<const double> y, std::span<const std::vector<double>> design, double tau,
    std::size_t replicates = 200, double confidence = 0.95,
    std::uint64_t seed = 0x5eedc0ffee, const ExecPolicy& policy = {});

}  // namespace sci::stats
