#include "stats/ranktests.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/distributions.hpp"
#include "stats/special_functions.hpp"

namespace sci::stats {
namespace {

/// Sum of (t^3 - t) over tie groups of a sorted series.
double tie_term(std::vector<double> sorted) {
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const auto t = static_cast<double>(j - i + 1);
    if (t > 1.0) total += t * t * t - t;
    i = j + 1;
  }
  return total;
}

}  // namespace

MannWhitneyResult mann_whitney_u(std::span<const double> a, std::span<const double> b) {
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  if (na < 2 || nb < 2) throw std::invalid_argument("mann_whitney_u: n >= 2 per group");

  std::vector<double> pooled;
  pooled.reserve(na + nb);
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  const auto ranks = midranks(pooled);

  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < na; ++i) rank_sum_a += ranks[i];
  const auto nad = static_cast<double>(na);
  const auto nbd = static_cast<double>(nb);
  const double u_a = rank_sum_a - nad * (nad + 1.0) / 2.0;

  MannWhitneyResult out;
  out.u_statistic = std::min(u_a, nad * nbd - u_a);
  out.prob_superiority = u_a / (nad * nbd);

  const double n = nad + nbd;
  const double mu = nad * nbd / 2.0;
  const double tie = tie_term(pooled);
  const double sigma2 =
      nad * nbd / 12.0 * ((n + 1.0) - tie / (n * (n - 1.0)));
  if (sigma2 <= 0.0) {
    out.p_value = 1.0;  // all observations tied
    return out;
  }
  // Continuity-corrected z.
  const double z = (std::fabs(u_a - mu) - 0.5) / std::sqrt(sigma2);
  out.p_value = 2.0 * (1.0 - normal_cdf(std::max(z, 0.0)));
  out.p_value = std::clamp(out.p_value, 0.0, 1.0);
  return out;
}

TestResult wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("wilcoxon_signed_rank: size mismatch");
  std::vector<double> abs_diff;
  std::vector<int> signs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) {
      abs_diff.push_back(std::fabs(d));
      signs.push_back(d > 0.0 ? 1 : -1);
    }
  }
  const std::size_t n = abs_diff.size();
  if (n < 6) throw std::invalid_argument("wilcoxon_signed_rank: need >= 6 nonzero diffs");

  const auto ranks = midranks(abs_diff);
  double w_plus = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (signs[i] > 0) w_plus += ranks[i];
  }
  const auto nd = static_cast<double>(n);
  const double mu = nd * (nd + 1.0) / 4.0;
  const double tie = tie_term(abs_diff);
  const double sigma2 = nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie / 48.0;
  const double z = (std::fabs(w_plus - mu) - 0.5) / std::sqrt(sigma2);
  const double p = std::clamp(2.0 * (1.0 - normal_cdf(std::max(z, 0.0))), 0.0, 1.0);
  return {w_plus, p};
}

TestResult spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: size mismatch");
  const std::size_t n = x.size();
  if (n < 4) throw std::invalid_argument("spearman: need n >= 4");

  const auto rx = midranks(x);
  const auto ry = midranks(y);
  // Pearson correlation of the ranks (handles ties correctly).
  const double mx = arithmetic_mean(rx);
  const double my = arithmetic_mean(ry);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (rx[i] - mx) * (ry[i] - my);
    sxx += (rx[i] - mx) * (rx[i] - mx);
    syy += (ry[i] - my) * (ry[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return {0.0, 1.0};
  const double rho = sxy / std::sqrt(sxx * syy);

  // t-transform significance.
  const auto nd = static_cast<double>(n);
  const double denom = 1.0 - rho * rho;
  double p = 0.0;
  if (denom <= 0.0) {
    p = 0.0;  // |rho| == 1: perfectly monotone
  } else {
    const double t = rho * std::sqrt((nd - 2.0) / denom);
    const StudentT dist{nd - 2.0};
    p = 2.0 * (1.0 - dist.cdf(std::fabs(t)));
  }
  return {rho, std::clamp(p, 0.0, 1.0)};
}

}  // namespace sci::stats
