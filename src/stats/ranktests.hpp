// Additional nonparametric tests complementing Kruskal-Wallis
// (Section 3.2.2). These are the two-sample / paired / correlation
// counterparts a practitioner needs once the measured distributions are
// -- as the paper shows they usually are -- far from normal:
//
//   Mann-Whitney U      two independent samples (k = 2 rank test with a
//                       direct effect-size interpretation: P[X > Y])
//   Wilcoxon signed rank  paired samples (e.g. per-benchmark before/after
//                       an optimization on the same inputs)
//   Spearman rho        monotone association between two series (e.g.
//                       message size vs latency without assuming a law)
#pragma once

#include <span>

#include "stats/normality.hpp"  // TestResult

namespace sci::stats {

struct MannWhitneyResult {
  double u_statistic = 0.0;
  double p_value = 1.0;      ///< two-sided, normal approximation w/ tie correction
  /// Common-language effect size: estimate of P[a > b] + P[a == b]/2.
  double prob_superiority = 0.5;
  [[nodiscard]] bool reject(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

/// Mann-Whitney U (Wilcoxon rank-sum) test; requires n >= 2 per group.
/// Uses the normal approximation (fine for n >= ~8 per group).
[[nodiscard]] MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                               std::span<const double> b);

/// Wilcoxon signed-rank test of paired differences (two-sided, normal
/// approximation with tie/zero handling per Pratt). Requires matching
/// sizes and at least 6 nonzero differences.
[[nodiscard]] TestResult wilcoxon_signed_rank(std::span<const double> a,
                                              std::span<const double> b);

/// Spearman rank correlation coefficient rho in [-1, 1] with the t-based
/// two-sided significance (statistic = rho, p from t(n-2) transform).
[[nodiscard]] TestResult spearman(std::span<const double> x, std::span<const double> y);

}  // namespace sci::stats
