#include "stats/regression.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/distributions.hpp"

namespace sci::stats {
namespace {

/// Cholesky solve of the symmetric positive-definite system A x = b;
/// returns false when A is not (numerically) SPD. A is n x n row-major
/// and also receives the factor; diag_inv receives the inverse diagonal
/// of A^-1 needed for coefficient standard errors.
bool cholesky_solve(std::vector<double>& a, std::vector<double>& b, std::size_t n,
                    std::vector<double>& ainv_diag) {
  // Factor A = L L^T in place (lower triangle).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) return false;
    a[j * n + j] = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / a[j * n + j];
    }
  }
  // Solve L y = b, then L^T x = y.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= a[k * n + i] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Diagonal of (L L^T)^-1: solve for each unit vector (n is tiny).
  ainv_diag.assign(n, 0.0);
  std::vector<double> e(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::fill(e.begin(), e.end(), 0.0);
    e[col] = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      double s = e[i];
      for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * e[k];
      e[i] = s / a[i * n + i];
    }
    for (std::size_t i = n; i-- > 0;) {
      double s = e[i];
      for (std::size_t k = i + 1; k < n; ++k) s -= a[k * n + i] * e[k];
      e[i] = s / a[i * n + i];
    }
    ainv_diag[col] = e[col];
  }
  return true;
}

}  // namespace

double FitResult::predict(double x) const {
  double y = 0.0;
  for (std::size_t j = 0; j < bases.size() && j < coefficients.size(); ++j) {
    y += coefficients[j] * bases[j].phi(x);
  }
  return y;
}

std::string FitResult::to_string() const {
  std::ostringstream os;
  os << "least-squares fit (R^2 = " << r_squared << ", residual sd = "
     << residual_stddev << ")\n";
  for (std::size_t j = 0; j < coefficients.size(); ++j) {
    os << "  " << bases[j].name << ": " << coefficients[j];
    if (j < coefficient_cis.size()) {
      os << "  CI [" << coefficient_cis[j].lower << ", " << coefficient_cis[j].upper
         << "]";
    }
    os << '\n';
  }
  return os.str();
}

FitResult fit_least_squares(std::span<const double> xs, std::span<const double> ys,
                            std::vector<Basis> bases, double confidence) {
  const std::size_t n = xs.size();
  const std::size_t k = bases.size();
  if (n != ys.size()) throw std::invalid_argument("fit_least_squares: size mismatch");
  if (k == 0) throw std::invalid_argument("fit_least_squares: need >= 1 basis");
  if (n <= k) throw std::invalid_argument("fit_least_squares: need n > #bases");

  // Normal equations: (Phi^T Phi) beta = Phi^T y.
  std::vector<double> ata(k * k, 0.0);
  std::vector<double> aty(k, 0.0);
  std::vector<double> phi(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) phi[j] = bases[j].phi(xs[i]);
    for (std::size_t a = 0; a < k; ++a) {
      aty[a] += phi[a] * ys[i];
      for (std::size_t b = a; b < k; ++b) ata[a * k + b] += phi[a] * phi[b];
    }
  }
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < a; ++b) ata[a * k + b] = ata[b * k + a];
  }

  FitResult fit;
  fit.bases = std::move(bases);
  std::vector<double> beta = aty;
  std::vector<double> ainv_diag;
  if (!cholesky_solve(ata, beta, k, ainv_diag)) return fit;  // singular design
  fit.coefficients = beta;

  // Residuals, R^2, coefficient CIs.
  double ss_res = 0.0, ss_tot = 0.0, y_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) y_mean += ys[i];
  y_mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = fit.predict(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
  }
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  const double dof = static_cast<double>(n - k);
  const double sigma2 = ss_res / dof;
  fit.residual_stddev = std::sqrt(sigma2);
  const double tcrit = StudentT{dof}.critical_two_sided(1.0 - confidence);
  fit.coefficient_cis.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    const double se = std::sqrt(sigma2 * ainv_diag[j]);
    fit.coefficient_cis.push_back(
        {fit.coefficients[j] - tcrit * se, fit.coefficients[j] + tcrit * se, confidence});
  }
  fit.ok = true;
  return fit;
}

Basis basis_constant() {
  return {"1", [](double) { return 1.0; }};
}
Basis basis_identity() {
  return {"x", [](double x) { return x; }};
}
Basis basis_inverse() {
  return {"1/x", [](double x) { return 1.0 / x; }};
}
Basis basis_log2() {
  return {"log2(x)", [](double x) { return std::log2(x); }};
}

double ScalingFit::serial_fraction() const {
  const double total = t_serial + t_parallel;
  return (total > 0.0) ? t_serial / total : 0.0;
}

double ScalingFit::predict(double p) const {
  return t_serial + t_parallel / p + c_log * std::log2(p);
}

ScalingFit fit_scaling_model(std::span<const double> processes,
                             std::span<const double> times) {
  const auto fit = fit_least_squares(processes, times,
                                     {basis_constant(), basis_inverse(), basis_log2()});
  ScalingFit out;
  out.ok = fit.ok;
  if (!fit.ok) return out;
  out.t_serial = fit.coefficients[0];
  out.t_parallel = fit.coefficients[1];
  out.c_log = fit.coefficients[2];
  out.r_squared = fit.r_squared;
  return out;
}

}  // namespace sci::stats
