// Least-squares regression on arbitrary basis functions, and the
// scaling-law fits the paper's Section 5.1 calls "simple analytic or
// semi-analytic modeling": combine measurements with a small model to
// put results into perspective (Rule 11). Used, e.g., to fit
//   T(p) = t_serial + t_parallel / p + c * log2(p)
// to measured scaling data and read off the serial fraction and the
// parallel overhead coefficient with confidence intervals.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "stats/confidence.hpp"

namespace sci::stats {

/// One regression basis function phi_j(x) with a printable name.
struct Basis {
  std::string name;
  std::function<double(double)> phi;
};

struct FitResult {
  bool ok = false;
  std::vector<double> coefficients;       ///< one per basis function
  std::vector<Interval> coefficient_cis;  ///< t-based, homoskedastic errors
  double r_squared = 0.0;
  double residual_stddev = 0.0;

  /// Model prediction at x.
  [[nodiscard]] double predict(double x) const;

  /// Printable fit summary.
  [[nodiscard]] std::string to_string() const;

  // Kept for predict(): the bases used during fitting.
  std::vector<Basis> bases;
};

/// Ordinary least squares of y on the given bases (normal equations +
/// Cholesky; fine for the handful of terms scaling models use).
/// Requires xs.size() == ys.size() > bases.size().
[[nodiscard]] FitResult fit_least_squares(std::span<const double> xs,
                                          std::span<const double> ys,
                                          std::vector<Basis> bases,
                                          double confidence = 0.95);

/// Convenience bases.
[[nodiscard]] Basis basis_constant();
[[nodiscard]] Basis basis_identity();     ///< phi(x) = x
[[nodiscard]] Basis basis_inverse();      ///< phi(x) = 1/x
[[nodiscard]] Basis basis_log2();         ///< phi(x) = log2(x)

/// The scaling model of Section 5.1 / Figure 7:
///   T(p) = t_serial + t_parallel / p + c_log * log2(p).
struct ScalingFit {
  bool ok = false;
  double t_serial = 0.0;
  double t_parallel = 0.0;
  double c_log = 0.0;
  double r_squared = 0.0;
  /// Derived Amdahl serial fraction b = t_serial / (t_serial + t_parallel).
  [[nodiscard]] double serial_fraction() const;
  [[nodiscard]] double predict(double p) const;
};

/// Fits the scaling model to (process count, time) measurements.
[[nodiscard]] ScalingFit fit_scaling_model(std::span<const double> processes,
                                           std::span<const double> times);

}  // namespace sci::stats
